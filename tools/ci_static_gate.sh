#!/usr/bin/env bash
# Single-command static gate: warning wall as errors, determinism lint,
# clang-tidy gate (skipped when clang-tidy is absent), then the sanitizer
# suites. Every stage runs even if an earlier one fails; the summary at the
# end is the one pass/fail signal CI needs.
#
# Usage: tools/ci_static_gate.sh [--skip-sanitizers]
#   --skip-sanitizers   stop after the lint/tidy stages (fast local gate)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 2

SKIP_SAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
declare -a NAMES
declare -a RESULTS

record() {  # record <name> <status-word>
  NAMES+=("$1")
  RESULTS+=("$2")
}

run_stage() {  # run_stage <name> <cmd...>
  local name="$1"; shift
  echo
  echo "=== [$name] $*"
  if "$@"; then
    record "$name" PASS
  else
    record "$name" FAIL
  fi
}

# Stage 1: warning-wall build. The lint preset configures with PSS_WERROR=ON
# so -Wall -Wextra -Wconversion -Wshadow -Wdouble-promotion are all fatal.
run_stage "warning-wall" cmake --preset lint
run_stage "warning-wall-build" cmake --build --preset lint -j "$JOBS"

# Stage 2: determinism linter, directly (also registered as `ctest -L lint`).
if command -v python3 >/dev/null 2>&1; then
  run_stage "pss-lint" python3 tools/lint/pss_lint.py --root "$ROOT" \
    --json build-lint/lint_report.json
else
  echo "=== [pss-lint] SKIP: no python3 on PATH"
  record "pss-lint" SKIP
fi

# Stage 3: clang-tidy gate. The container may only have GCC; the tidy targets
# exist only when clang-tidy was found at configure time.
if command -v clang-tidy >/dev/null 2>&1 && [ -d build-lint ]; then
  run_stage "tidy-gate" cmake --build build-lint --target tidy-gate
else
  echo "=== [tidy-gate] SKIP: clang-tidy not installed"
  record "tidy-gate" SKIP
fi

# Stage 3b: perf-regression gate, directly (also registered as `ctest -L
# perf`). Diffs the committed bench record against its committed baseline —
# deterministic, so a FAIL always means the two files drifted apart.
if command -v python3 >/dev/null 2>&1; then
  run_stage "bench-compare" python3 tools/bench_compare.py \
    bench/baselines/backend.json BENCH_backend.json --quiet
  run_stage "bench-compare-graph" python3 tools/bench_compare.py \
    bench/baselines/graph.json BENCH_graph.json --quiet
else
  echo "=== [bench-compare] SKIP: no python3 on PATH"
  record "bench-compare" SKIP
fi

# Stage 4: lint + options + perf test labels from the wall build.
run_stage "ctest-lint" ctest --preset lint

# Stage 4b: event-driven sparse-path suite (label `sparse`) from the wall
# build — lazy-STDP bitwise equivalence, event-list encoders, sparse resume.
run_stage "ctest-sparse" ctest --test-dir build-lint -L sparse \
  --output-on-failure -j "$JOBS"

# Stage 4c: serving-daemon suite (label `serve`) from the wall build —
# framing, requeue/backoff determinism, hot reload, load shedding, plus the
# bench_serve sidecar validated by validate_manifest.py's serve checks.
run_stage "ctest-serve" ctest --test-dir build-lint -L serve \
  --output-on-failure -j "$JOBS"

# Stage 4d: layer-graph suite (label `graph`) from the wall build — spec
# grammar, conv/pool kernel equivalence, layer-wise training, multi-layer
# snapshot/checkpoint roundtrips, stacked serving.
run_stage "ctest-graph" ctest --test-dir build-lint -L graph \
  --output-on-failure -j "$JOBS"

# Stage 4e: property / differential / fuzz suite (label `prop`) from the
# wall build — seeded generative invariants, cross-backend differential
# runs, grammar fuzzing with committed crasher corpora, corruption matrices
# and the fault-schedule explorer. Failures print a one-line
# PSS_PROP_SEED=... PSS_PROP_CASE=... repro.
run_stage "ctest-prop" ctest --test-dir build-lint -L prop \
  --output-on-failure -j "$JOBS"

# Stage 5: sanitizer suites (the slow half of the gate).
if [ "$SKIP_SAN" -eq 0 ]; then
  run_stage "tsan-configure" cmake --preset tsan
  run_stage "tsan-build" cmake --build --preset tsan -j "$JOBS"
  run_stage "tsan-ctest" ctest --preset tsan
  run_stage "asan-configure" cmake --preset asan
  run_stage "asan-build" cmake --build --preset asan -j "$JOBS"
  run_stage "asan-ctest" ctest --preset asan
else
  record "sanitizers" SKIP
fi

echo
echo "=== static gate summary ==="
EXIT=0
for i in "${!NAMES[@]}"; do
  printf '  %-20s %s\n' "${NAMES[$i]}" "${RESULTS[$i]}"
  [ "${RESULTS[$i]}" = FAIL ] && EXIT=1
done
if [ "$EXIT" -eq 0 ]; then
  echo "static gate: PASS"
else
  echo "static gate: FAIL"
fi
exit "$EXIT"
