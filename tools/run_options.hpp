// Shared command-line option handling for the runnable front-ends
// (tools/pss_run, examples/mnist_unsupervised). Every key that configures an
// ExperimentSpec — including the compute-backend selector `backend=` — is
// parsed in exactly one place, so adding a flag here adds it to every tool
// that links pss_tool_options.
#pragma once

#include <string>
#include <vector>

#include "pss/experiment/experiment.hpp"
#include "pss/graph/layer_spec.hpp"
#include "pss/io/config.hpp"

namespace pss::tools {

/// Every key the shared parser understands (spec_from_config +
/// arm_faults_from_config + enable_observability), sorted.
const std::vector<std::string>& shared_config_keys();

/// Rejects any cfg key that is neither a shared key nor in `extra` (the
/// tool's own keys), throwing pss::Error that names the offender and — when
/// a known key is within small edit distance — suggests it ("did you mean
/// 'backend'?"). Call after parsing so typos fail loudly instead of
/// silently running with defaults.
void require_known_keys(const Config& cfg,
                        const std::vector<std::string>& extra = {});

/// fp32|16bit|8bit|4bit|2bit|highfreq -> Table I learning option.
LearningOption parse_learning_option(const std::string& name);

/// nearest|trunc|stochastic -> quantizer rounding mode.
RoundingMode parse_rounding_mode(const std::string& name);

/// stochastic|deterministic -> STDP kind; anything else is an error.
StdpKind parse_stdp_kind(const std::string& name);

/// Builds an ExperimentSpec from the shared keys:
///   kind= option= rounding= neurons= train= label= eval= seed=
///   workers= batch= backend= checkpoints=
///   checkpoint= checkpoint_every= resume=
/// `backend=` is validated against the backend registry so a typo fails at
/// parse time; the cuda stub's gating message still surfaces at network
/// construction (see src/pss/backend/backend.hpp).
ExperimentSpec spec_from_config(const Config& cfg,
                                const std::string& default_name);

/// Builds the layer-graph architecture from the `layers=` spec grammar
/// (src/pss/graph/layer_spec.hpp):
///   layers=encode:peak=220,temporal=diff;conv:filters=8,kernel=5,bank=dog;
///          pool:window=2;wta:neurons=200;readout:inhibition=0
/// over `base` (backend / dt / STDP rule from the shared keys). Without a
/// `layers=` key the result is the single-WTA graph of `base` — the
/// configuration bitwise-equivalent to a standalone WtaNetwork. Malformed
/// specs throw pss::Error naming the offending kind/key/value with a "did
/// you mean" suggestion.
graph::GraphConfig graph_config_from_options(const Config& cfg,
                                             const WtaConfig& base);

/// Arms deterministic fault injection from faults= / fault_seed= keys
/// (no-op when neither key is present).
void arm_faults_from_config(const Config& cfg);

/// Observability sidecar paths (empty string = not requested).
struct ObsPaths {
  std::string metrics;
  std::string trace;
  std::string manifest;
  std::string profile;  ///< pss.profile.v1 hardware-counter sidecar
  std::string prom;     ///< Prometheus textfile dump of the final registry
  /// metrics_port= value: -1 = no exporter, 0 = ephemeral port, else bind
  /// that loopback TCP port and serve Prometheus text until exit.
  int metrics_port = -1;
  bool any() const {
    return !metrics.empty() || !trace.empty() || !manifest.empty() ||
           !profile.empty() || !prom.empty() || metrics_port >= 0;
  }
};

/// Reads metrics=/trace=/manifest=/profile=/prom=/metrics_port= and switches
/// the metrics registry, tracer and hardware-counter profiler on as
/// requested. profile= also enables metrics (the profile rows are mirrored
/// into the registry at publish time).
ObsPaths enable_observability(const Config& cfg);

}  // namespace pss::tools
