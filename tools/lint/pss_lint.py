#!/usr/bin/env python3
"""pss_lint — the repo's determinism static-analysis pass.

The reproduction's headline guarantees (bitwise worker-count-invariant
stochastic STDP, bitwise checkpoint resume, cross-backend equivalence) rest on
source-level invariants that no compiler flag checks:

  nondeterministic-rng   No wall-clock/hardware entropy feeding simulation
                         state: rand()/srand(), std::random_device,
                         time(nullptr)-style seeds, or std::chrono-derived
                         seeds anywhere outside tools/. Every stochastic
                         draw must come from the counter-based Philox
                         streams (src/pss/common/rng.hpp).
  unordered-iteration    No iteration over std::unordered_{map,set,...} in
                         numeric paths — iteration order is
                         implementation-defined, so any sum/update fed by it
                         breaks bitwise reproducibility.
  kernel-rng             Kernel translation units (src/pss/backend/kernels_*,
                         src/pss/engine/) draw randomness exclusively through
                         Philox; <random> engines/distributions are banned
                         there (distribution algorithms are not pinned by the
                         standard, so they are not cross-platform bitwise).
  fp-reassociation       No float-reassociation flags or pragmas
                         (-ffast-math, -Ofast, -fassociative-math, ...)
                         anywhere in the build: the approved SIMD TUs get
                         their speed from -O3 -mavx2 which keeps IEEE
                         semantics. A TU that genuinely needs an exception
                         carries a per-line suppression.
  raw-alloc              No raw new/delete or malloc/free in hot paths
                         (src/pss/backend/, src/pss/engine/): per-launch
                         allocation is both a perf bug (the Engine exists to
                         avoid it) and a determinism hazard once allocators
                         get involved in timing-sensitive code.
  raw-perf-syscall       No raw syscall(SYS_perf_event_open, ...) anywhere:
                         counter groups are opened only through the audited
                         wrapper in src/pss/obs/perf.cpp (which carries the
                         one suppression), so fd lifetime, gating, and the
                         unavailable-host fallback live in a single place.
  raw-socket-syscall     No raw BSD socket syscalls (::socket, ::bind,
                         ::connect, ::recv, ::send, ...) or socket-header
                         includes anywhere outside src/pss/serve/net.cpp
                         (which carries the audited suppressions): deadlines,
                         EINTR retries, partial-IO loops, and the no-socket
                         platform fallback live in that one wrapper, so every
                         other TU gets them for free and none can wedge on a
                         slow peer.

  prop-seed              Property-test code (src/pss/prop/ and
                         tests/test_prop_*.cpp) never seeds its own RNGs
                         with literals and never uses <random> engines:
                         every draw flows from the harness's (seed, case)
                         Philox stream so a printed PSS_PROP_SEED=...
                         PSS_PROP_CASE=... line replays the exact case.

Suppressions: append `// pss-lint: allow(<rule>[,<rule>...])` (or `# ...` in
CMake/script files) to the offending line. Suppressions are recorded in the
JSON report so reviewers can audit them; an unknown rule name in a
suppression is itself an error.

Usage:
  pss_lint.py [--root DIR] [--json PATH] [--rules r1,r2] [--list-rules]
              [--quiet]

Exit codes: 0 = clean, 1 = violations found, 2 = usage/internal error.
The JSON report (schema `pss.lint.v1`) lists violations, suppressions and
per-rule counts; tests/lint_fixtures/ pins the behaviour of every rule.
"""

import argparse
import json
import os
import re
import sys

SCHEMA = "pss.lint.v1"

# Directories never scanned (build trees, VCS, outputs, and the seeded-
# violation fixture tree that tests the linter itself).
SKIP_DIRS = {".git", "out", "__pycache__", "lint_fixtures"}
SKIP_DIR_PREFIXES = ("build",)

CXX_EXTS = (".cpp", ".hpp", ".cc", ".h", ".cu", ".cuh")
BUILD_FILES = ("CMakeLists.txt",)
BUILD_EXTS = (".cmake", ".json")

# Numeric paths: anything whose FP results feed learning/inference state.
NUMERIC_PATHS = (
    "src/pss/backend/",
    "src/pss/engine/",
    "src/pss/synapse/",
    "src/pss/neuron/",
    "src/pss/encoding/",
    "src/pss/network/",
    "src/pss/learning/",
    "src/pss/fixedpoint/",
    "src/pss/baseline/",
)

# Hot paths: the launch/dispatch layer where allocation is a per-step cost.
HOT_PATHS = ("src/pss/backend/", "src/pss/engine/")

# Kernel TUs: Philox-only territory.
KERNEL_PATHS = ("src/pss/backend/", "src/pss/engine/")

SUPPRESS_RE = re.compile(r"pss-lint:\s*allow\(([a-z0-9_,\- ]+)\)")

RULE_DOCS = {
    "nondeterministic-rng":
        "wall-clock/hardware entropy outside tools/ (rand, srand, "
        "std::random_device, time(nullptr) seeds, chrono-derived seeds)",
    "unordered-iteration":
        "iteration over std::unordered_* containers in numeric paths",
    "kernel-rng":
        "<random> engines/distributions in kernel TUs (Philox only)",
    "fp-reassociation":
        "float-reassociation flags/pragmas (-ffast-math, -Ofast, ...)",
    "raw-alloc":
        "raw new/delete/malloc/free in hot paths (backend/, engine/)",
    "raw-perf-syscall":
        "raw perf_event_open syscall outside the pss/obs/perf.cpp wrapper",
    "raw-socket-syscall":
        "raw BSD socket syscall or socket-header include outside the "
        "pss/serve/net.cpp wrapper",
    "prop-seed":
        "hard-coded RNG seed or <random> engine in property-test code "
        "(src/pss/prop/, tests/test_prop_*.cpp); draw through prop::Source "
        "so PSS_PROP_SEED/PSS_PROP_CASE repros replay",
}


def is_cxx(rel):
    return rel.endswith(CXX_EXTS)


def is_build_file(rel):
    base = os.path.basename(rel)
    return base in BUILD_FILES or base.endswith(BUILD_EXTS)


def under(rel, prefixes):
    return any(rel.startswith(p) for p in prefixes)


def strip_cxx_noncode(text):
    """Blanks comments and string/char literals, preserving line structure.

    Rule regexes then run on code only, so `// old rand() call` or a log
    message mentioning "malloc" never trips a rule. Suppression comments are
    read from the *raw* lines separately.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated; be lenient
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --- rule implementations -------------------------------------------------
# Each checker yields (line_number, rule, message, raw_line) tuples. `code`
# is the comment/string-stripped text for C++ files, raw text otherwise.

RNG_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "libc rand()/srand() is not reproducible; draw from a Philox stream"),
    (re.compile(r"std\s*::\s*random_device"),
     "std::random_device is hardware entropy; seeds must be fixed or "
     "config-provided"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time(...) seeding is run-dependent; seeds must be fixed or "
     "config-provided"),
]
CHRONO_SEED_RE = re.compile(r"std\s*::\s*chrono")
SEED_CONTEXT_RE = re.compile(r"seed", re.IGNORECASE)


def check_nondeterministic_rng(rel, code_lines):
    if rel.startswith("tools/"):
        return
    for ln, line in enumerate(code_lines, 1):
        for pat, msg in RNG_PATTERNS:
            if pat.search(line):
                yield ln, "nondeterministic-rng", msg
        if CHRONO_SEED_RE.search(line) and SEED_CONTEXT_RE.search(line):
            yield (ln, "nondeterministic-rng",
                   "std::chrono-derived seed is run-dependent; seeds must be "
                   "fixed or config-provided")


UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;=]*?>\s*&?\s*"
    r"(\w+)\s*[;={(,)]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;]*?[:\s&*]\s*:\s*(\w+)\s*\)")
ITER_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")


def check_unordered_iteration(rel, code_lines):
    if not under(rel, NUMERIC_PATHS):
        return
    unordered_names = set()
    for line in code_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return
    msg = ("iteration over std::unordered_* '{0}': order is "
           "implementation-defined, so any numeric state it feeds is not "
           "bitwise reproducible — use std::map or sort keys first")
    for ln, line in enumerate(code_lines, 1):
        m = RANGE_FOR_RE.search(line)
        if m and m.group(1) in unordered_names:
            yield ln, "unordered-iteration", msg.format(m.group(1))
            continue
        m = ITER_CALL_RE.search(line)
        if m and m.group(1) in unordered_names:
            yield ln, "unordered-iteration", msg.format(m.group(1))


KERNEL_RNG_RE = re.compile(
    r"std\s*::\s*(mt19937(?:_64)?|minstd_rand0?|ranlux\w+|knuth_b|"
    r"default_random_engine|uniform_int_distribution|"
    r"uniform_real_distribution|normal_distribution|bernoulli_distribution|"
    r"poisson_distribution|discrete_distribution)")


def check_kernel_rng(rel, code_lines):
    if not under(rel, KERNEL_PATHS):
        return
    for ln, line in enumerate(code_lines, 1):
        m = KERNEL_RNG_RE.search(line)
        if m:
            yield (ln, "kernel-rng",
                   "std::" + m.group(1) + " in a kernel TU: kernels draw "
                   "randomness only via pss::Philox (counter-based, "
                   "presentation-indexed) so draws replay bit for bit")


FP_FLAG_RE = re.compile(
    r"-ffast-math|-Ofast|-funsafe-math-optimizations|-fassociative-math|"
    r"-freciprocal-math|-ffp-contract\s*=\s*fast|/fp:fast")
FP_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+GCC\s+optimize|__attribute__\s*\(\s*\(\s*optimize|"
    r"#\s*pragma\s+float_control|#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON")


def check_fp_reassociation(rel, code_lines, raw_lines):
    for ln, line in enumerate(code_lines, 1):
        if FP_PRAGMA_RE.search(line):
            yield (ln, "fp-reassociation",
                   "optimization pragma can enable FP reassociation; use "
                   "per-file COMPILE_OPTIONS with IEEE-safe flags instead")
    for ln, line in enumerate(raw_lines, 1):
        # In build files the flag may sit inside a quoted string; scan the
        # raw line but ignore pure-comment lines (cmake '#', json has none).
        stripped = line.lstrip()
        if stripped.startswith("#") and "pss-lint" not in stripped:
            continue
        if FP_FLAG_RE.search(line):
            yield (ln, "fp-reassociation",
                   "float-reassociation flag: breaks IEEE-exact kernel "
                   "equivalence (the approved SIMD TUs use -O3 -mavx2, "
                   "which keeps IEEE semantics)")


RAW_ALLOC_RE = re.compile(
    r"(?<![\w:])(new\b(?![>\s]*[>)])|malloc\s*\(|calloc\s*\(|"
    r"realloc\s*\(|free\s*\(|delete\b)")
# Not allocations: deleted special members and #include <new>.
DELETED_MEMBER_RE = re.compile(r"=\s*delete\s*;?")
INCLUDE_RE = re.compile(r"^\s*#\s*include")


def check_raw_alloc(rel, code_lines):
    if not under(rel, HOT_PATHS):
        return
    for ln, line in enumerate(code_lines, 1):
        if INCLUDE_RE.match(line):
            continue
        m = RAW_ALLOC_RE.search(DELETED_MEMBER_RE.sub("", line))
        if m:
            yield (ln, "raw-alloc",
                   "raw '" + m.group(1).strip() + "' in a hot path: use "
                   "containers/make_unique sized at construction; per-launch "
                   "allocation is the overhead the Engine exists to avoid")


PERF_SYSCALL_RE = re.compile(r"\b(?:SYS|__NR)_perf_event_open\b")

# Global-scope-qualified socket-family calls only: `(?<![\w>])` keeps
# qualified member definitions (`BaselineNetwork::connect(...)`) and wrapper
# calls (`net::connect_loopback(...)`) out. ::poll/::close/::fcntl are
# deliberately absent — they are general fd plumbing, not socket setup/IO.
SOCKET_CALL_RE = re.compile(
    r"(?<![\w>])::\s*(socket|socketpair|bind|listen|accept4?|connect|"
    r"recv(?:from|msg)?|send(?:to|msg)?|setsockopt|getsockopt|getsockname|"
    r"getpeername|shutdown)\s*\(")
SOCKET_HEADER_RE = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|sys/un\.h|netinet/[\w.]+|"
    r"arpa/inet\.h|netdb\.h)>")


def check_raw_socket_syscall(rel, code_lines):
    for ln, line in enumerate(code_lines, 1):
        m = SOCKET_CALL_RE.search(line)
        if m:
            yield (ln, "raw-socket-syscall",
                   "raw ::" + m.group(1) + " syscall: do socket IO through "
                   "pss::serve::net (listen/connect/read_frame/write_frame) "
                   "so deadlines, EINTR handling, and the no-socket platform "
                   "fallback stay in the one audited wrapper "
                   "(src/pss/serve/net.cpp)")
        elif SOCKET_HEADER_RE.search(line):
            yield (ln, "raw-socket-syscall",
                   "socket header include: only src/pss/serve/net.cpp talks "
                   "to the BSD socket API; use pss::serve::net instead")


# Property-test territory: the harness derives every draw from the (seed,
# case) Philox stream so a printed PSS_PROP_SEED/PSS_PROP_CASE line replays
# the exact failing case. A literal-seeded RNG (or a <random> engine, whose
# algorithms the standard does not pin) inside a property breaks that replay
# contract silently — the repro line no longer determines the values drawn.
PROP_PATHS = ("src/pss/prop/",)
PROP_TEST_RE = re.compile(r"^tests/test_prop_\w+\.(?:cpp|cc)$")
PROP_LITERAL_SEED_RE = re.compile(
    r"\b(CounterRng|SequentialRng|Philox)\b(?:\s+\w+)?\s*[({]\s*"
    r"(?:0[xX][0-9a-fA-F']+|\d[\d']*)\b")


def in_prop_scope(rel):
    return under(rel, PROP_PATHS) or PROP_TEST_RE.match(rel)


def check_prop_seed(rel, code_lines):
    if not in_prop_scope(rel):
        return
    for ln, line in enumerate(code_lines, 1):
        m = PROP_LITERAL_SEED_RE.search(line)
        if m:
            yield (ln, "prop-seed",
                   "literal-seeded " + m.group(1) + " in property code: "
                   "derive draws from the prop::Source (s.bits/range/...) or "
                   "prop::case_source so the printed PSS_PROP_SEED/"
                   "PSS_PROP_CASE repro replays this exact case")
            continue
        m = KERNEL_RNG_RE.search(line)
        if m:
            yield (ln, "prop-seed",
                   "std::" + m.group(1) + " in property code: <random> "
                   "algorithms are not pinned by the standard, so cases "
                   "would not replay bit for bit across platforms — draw "
                   "through prop::Source instead")


def check_raw_perf_syscall(rel, code_lines):
    for ln, line in enumerate(code_lines, 1):
        if PERF_SYSCALL_RE.search(line):
            yield (ln, "raw-perf-syscall",
                   "raw perf_event_open syscall: open counter groups through "
                   "pss::obs (KernelProfiler/PerfScope) so availability "
                   "fallback, enable gating, and fd lifetime stay in the one "
                   "audited wrapper (src/pss/obs/perf.cpp)")


# --- driver ---------------------------------------------------------------

def scan_file(root, rel, active_rules):
    path = os.path.join(root, rel)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        raise RuntimeError("cannot read " + rel + ": " + str(e))
    raw_lines = text.split("\n")

    findings = []
    if is_cxx(rel):
        code_lines = strip_cxx_noncode(text).split("\n")
        checks = [
            lambda: check_nondeterministic_rng(rel, code_lines),
            lambda: check_unordered_iteration(rel, code_lines),
            lambda: check_kernel_rng(rel, code_lines),
            lambda: check_fp_reassociation(rel, code_lines, raw_lines),
            lambda: check_raw_alloc(rel, code_lines),
            lambda: check_raw_perf_syscall(rel, code_lines),
            lambda: check_raw_socket_syscall(rel, code_lines),
            lambda: check_prop_seed(rel, code_lines),
        ]
        for chk in checks:
            findings.extend(chk())
    elif is_build_file(rel):
        findings.extend(check_fp_reassociation(rel, [], raw_lines))

    violations, suppressed = [], []
    for ln, rule, msg in findings:
        if rule not in active_rules:
            continue
        raw = raw_lines[ln - 1] if 0 < ln <= len(raw_lines) else ""
        sup = SUPPRESS_RE.search(raw)
        allowed = set()
        if sup:
            allowed = {r.strip() for r in sup.group(1).split(",")}
            unknown = allowed - set(RULE_DOCS)
            if unknown:
                violations.append({
                    "file": rel, "line": ln, "rule": "bad-suppression",
                    "message": "unknown rule in pss-lint suppression: " +
                               ", ".join(sorted(unknown)),
                    "snippet": raw.strip()})
        entry = {"file": rel, "line": ln, "rule": rule, "message": msg,
                 "snippet": raw.strip()}
        if rule in allowed:
            suppressed.append(entry)
        else:
            violations.append(entry)
    return violations, suppressed


def walk_tree(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_DIR_PREFIXES))
        for name in sorted(filenames):
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            rel = rel.replace(os.sep, "/")
            if is_cxx(rel) or is_build_file(rel):
                yield rel


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default=".",
                    help="tree to scan (default: cwd)")
    ap.add_argument("--json", dest="json_path", default="",
                    help="write the pss.lint.v1 report here")
    ap.add_argument("--rules", default="",
                    help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress per-violation stderr lines")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print(rule + ": " + RULE_DOCS[rule])
        return 0

    active = set(RULE_DOCS)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = active - set(RULE_DOCS)
        if unknown:
            print("pss_lint: unknown rule(s): " + ", ".join(sorted(unknown)),
                  file=sys.stderr)
            return 2

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("pss_lint: not a directory: " + root, file=sys.stderr)
        return 2

    violations, suppressed, files_scanned = [], [], 0
    try:
        for rel in walk_tree(root):
            files_scanned += 1
            v, s = scan_file(root, rel, active)
            violations.extend(v)
            suppressed.extend(s)
    except RuntimeError as e:
        print("pss_lint: " + str(e), file=sys.stderr)
        return 2

    counts = {}
    for v in violations:
        counts[v["rule"]] = counts.get(v["rule"], 0) + 1
    report = {
        "schema": SCHEMA,
        "root": root,
        "rules": sorted(active),
        "files_scanned": files_scanned,
        "violations": violations,
        "suppressed": suppressed,
        "counts": counts,
        "status": "fail" if violations else "pass",
    }
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")

    if not args.quiet:
        for v in violations:
            print("%s:%d: [%s] %s" % (v["file"], v["line"], v["rule"],
                                      v["message"]), file=sys.stderr)
    summary = ("pss_lint: %d file(s), %d violation(s), %d suppressed"
               % (files_scanned, len(violations), len(suppressed)))
    print(summary, file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
