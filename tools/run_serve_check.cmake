# End-to-end serving-sidecar check, run as a ctest (labels "serve;obs"):
# drive bench_serve against an in-process daemon with transient serve.worker
# faults armed, then schema-validate the BENCH_serve.json sidecar with
# tools/validate_manifest.py — which applies the serve accounting checks
# (every serve.* family present, completed + expired <= admitted, latency
# histogram total == completed) on top of the generic pss.metrics.v1 schema.
#
# Expected -D inputs: BENCH_SERVE, VALIDATOR, PYTHON, WORK_DIR.

foreach(var BENCH_SERVE VALIDATOR PYTHON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_serve_check.cmake: missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Small but non-trivial load; the fault spec forces at least one requeue so
# the sidecar's recovery counters carry real values.
execute_process(
  COMMAND "${BENCH_SERVE}" requests=48 clients=2 workers=2 t_present=5
          "faults=serve.worker:rate=0.1,count=3,kind=transient"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "bench_serve failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

set(sidecar "${WORK_DIR}/out/BENCH_serve.json")
if(NOT EXISTS "${sidecar}")
  message(FATAL_ERROR "bench_serve did not write ${sidecar}:\n${run_out}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" "${sidecar}"
  RESULT_VARIABLE validate_rc
  OUTPUT_VARIABLE validate_out
  ERROR_VARIABLE validate_err)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR
          "serve sidecar validation failed:\n${validate_out}\n${validate_err}")
endif()
message(STATUS "serve sidecar valid:\n${validate_out}")
