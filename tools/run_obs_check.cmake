# End-to-end observability check, run as a ctest (label "obs"): drive pss_run
# with trace=/metrics=/manifest=/profile=/prom= on a tiny configuration, then
# schema-validate every artifact with tools/validate_manifest.py (the profile
# sidecar validates in both the perf-capable and the available=0 container
# case; the prom sidecar is the Prometheus-exposition smoke test).
#
# Expected -D inputs: PSS_RUN, VALIDATOR, PYTHON, WORK_DIR.

foreach(var PSS_RUN VALIDATOR PYTHON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_obs_check.cmake: missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(trace "${WORK_DIR}/trace.json")
set(metrics "${WORK_DIR}/metrics.json")
set(manifest "${WORK_DIR}/manifest.json")
set(profile "${WORK_DIR}/profile.json")
set(prom "${WORK_DIR}/metrics.prom")

execute_process(
  COMMAND "${PSS_RUN}" mode=train neurons=20 train=8 label=8 eval=8 seed=3
          trace=${trace} metrics=${metrics} manifest=${manifest}
          profile=${profile} prom=${prom}
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "pss_run failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

foreach(artifact ${trace} ${metrics} ${manifest} ${profile} ${prom})
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "pss_run did not write ${artifact}:\n${run_out}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" "${trace}" "${metrics}" "${manifest}"
          "${profile}" "${prom}"
  RESULT_VARIABLE validate_rc
  OUTPUT_VARIABLE validate_out
  ERROR_VARIABLE validate_err)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR
          "artifact validation failed:\n${validate_out}\n${validate_err}")
endif()
message(STATUS "obs artifacts valid:\n${validate_out}")
