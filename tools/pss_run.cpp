// pss_run — the configuration-file driver (paper Sec. III-A: the CPU
// "constructs the simulation environment with configuration and input data
// file"). One binary covers the three deployment modes:
//
//   train:  run the unsupervised protocol, report accuracy, optionally save
//           a model snapshot.
//   infer:  load a snapshot and classify a test set (no training).
//   both:   train then immediately reload the saved snapshot and verify.
//
// Usage:
//   pss_run <config-file> [key=value overrides...]
//   pss_run mode=train dataset=mnist option=2bit snapshot=model.bin
//
// Recognized keys (all optional; defaults in parentheses):
//   mode=train|infer|both (train)     dataset=mnist|fashion (mnist)
//   kind=stochastic|deterministic     option=fp32|16bit|8bit|4bit|2bit|highfreq
//   rounding=nearest|trunc|stochastic neurons=100 train=400 label=250 eval=250
//   seed=1  snapshot=<path>  maps=<path.pgm>  verbose=0|1
//   backend=cpu|cpu_simd (cpu)  compute backend (see README "Compute
//   backends"; cpu_simd vectorizes the fused-step and STDP-row kernels)
//   workers=1 (0 = all cores; != 1 runs labelling/eval image-parallel with
//   bitwise-identical results)  batch=1 (> 1 = minibatch STDP training)
//
// Deep SNN stacks (see README "Deep SNN stacks" and DESIGN.md §6):
//   layers=<spec>      build a conv/pool/WTA layer graph instead of the
//                      single WTA network and train it layer-wise, e.g.
//                      layers=conv:filters=8,kernel=5;pool:window=2;
//                             wta:neurons=200
//   dataset=gestures   procedural temporal-gesture streams (moving-edge
//                      frame sequences, 8 direction classes) presented
//                      frame-by-frame through the graph
//   frame_ms=25        per-frame presentation duration for sequences
//   snapshot=<path>    stacked models save as "PSSSNAP2" (single-WTA graphs
//                      keep the legacy v1 bytes); infer mode reloads any
//                      model kind through the unified sniffing reader
//
// Observability (all optional; see README "Observability"):
//   metrics=<path.json>   dump the metrics registry (pss.metrics.v1)
//   trace=<path.json>     Chrome trace_event JSON (open in Perfetto)
//   manifest=<path.json>  run manifest: config + phase times + metrics
//                         (pss.manifest.v1)
//   profile=<path.json>   hardware-counter kernel profile (pss.profile.v1;
//                         "available": 0 where perf_event_open is blocked)
//   prom=<path.prom>      Prometheus textfile dump of the final registry
//   metrics_port=<port>   serve the registry live as Prometheus text on
//                         127.0.0.1:<port> (0 = pick an ephemeral port)
//
// Fault tolerance (see README "Fault tolerance & resume"):
//   checkpoint=<path>       training checkpoint file (atomic writes)
//   checkpoint_every=<N>    write it every N trained images (0 = off)
//   resume=<path>           resume an interrupted run from this checkpoint;
//                           continues bitwise-identically (same config/seed)
//   retries=<N>             BatchRunner retry budget for transient faults (2)
//   faults=<spec>           arm deterministic fault injection, e.g.
//                           "io.snapshot.write:count=1" (or env PSS_FAULTS;
//                           see src/pss/robust/fault_injection.hpp)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/data/idx.hpp"
#include "pss/data/synthetic_digits.hpp"
#include "pss/data/synthetic_fashion.hpp"
#include "pss/data/temporal_gestures.hpp"
#include "pss/experiment/experiment.hpp"
#include "pss/graph/graph_snapshot.hpp"
#include "pss/graph/graph_trainer.hpp"
#include "pss/graph/network_graph.hpp"
#include "pss/io/config.hpp"
#include "pss/io/pgm.hpp"
#include "pss/io/snapshot.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/obs/exporter.hpp"
#include "pss/obs/manifest.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"
#include "pss/obs/trace.hpp"
#include "pss/robust/checkpoint.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/robust/synaptic_faults.hpp"
#include "tools/run_options.hpp"

using namespace pss;

namespace {

Config parse_cli(int argc, char** argv) {
  // First positional argument without '=' is a config file; later key=value
  // tokens override it.
  Config config;
  int first_kv = 1;
  if (argc > 1 && std::string(argv[1]).find('=') == std::string::npos) {
    config = Config::from_file(argv[1]);
    first_kv = 2;
  }
  const Config overrides = Config::from_args(argc, argv, first_kv);
  for (const auto& key : overrides.keys()) {
    config.set(key, overrides.get_string(key, ""));
  }
  tools::require_known_keys(
      config, {"mode", "dataset", "snapshot", "maps", "retries", "verbose"});
  return config;
}

LabeledDataset load_data(const Config& cfg, const ExperimentSpec& spec) {
  const std::string which =
      cfg.get_string("dataset", "mnist") == "fashion" ? "fashion-mnist"
                                                      : "mnist";
  if (auto real = load_real_dataset_from_env(which)) return std::move(*real);
  SyntheticConfig synth;
  synth.train_count = spec.train_images + 100;
  synth.test_count = spec.label_images + spec.eval_images;
  synth.seed = 7;
  return which == "fashion-mnist" ? make_synthetic_fashion(synth)
                                  : make_synthetic_digits(synth);
}

ExperimentSpec spec_from_config(const Config& cfg) {
  return tools::spec_from_config(cfg, /*default_name=*/"pss_run");
}

/// Applies companion-paper synaptic faults (stuck-at rails / perturbation)
/// when any `synapse.*` fault point is armed. In train mode this damages the
/// initial conductances (STDP may later rewrite stuck cells — the model is
/// initial-state damage, not a persistent hardware clamp); in infer mode it
/// damages the restored snapshot, matching the bench_fault_sweep protocol.
void maybe_damage_synapses(WtaNetwork& net, const char* when) {
  const robust::SynapticFaultPlan plan = robust::synaptic_plan_from_injector();
  if (!plan.any()) return;
  const robust::SynapticFaultSummary summary =
      robust::apply_synaptic_faults(net.conductance(), plan);
  std::printf("synaptic faults (%s): %llu stuck-lo, %llu stuck-hi, "
              "%llu perturbed\n",
              when, static_cast<unsigned long long>(summary.stuck_lo),
              static_cast<unsigned long long>(summary.stuck_hi),
              static_cast<unsigned long long>(summary.perturbed));
}

/// Emplaces a BatchRunner for the spec (left empty when the run is fully
/// sequential). Out-param because a BatchRunner owns a thread pool and
/// cannot move.
void make_runner(const ExperimentSpec& spec,
                 std::optional<BatchRunner>& runner) {
  if (spec.workers != 1 || spec.batch_size > 1) runner.emplace(spec.workers);
}

int run_train(const Config& cfg, obs::RunManifest* manifest) {
  const ExperimentSpec spec = spec_from_config(cfg);
  const LabeledDataset data = load_data(cfg, spec);
  std::printf("train: %s STDP, %s, %zu neurons, %zu images (%s)\n",
              stdp_kind_name(spec.kind), learning_option_name(spec.option),
              spec.neuron_count, spec.train_images, data.name.c_str());

  // Explicit pipeline so the trained network can be snapshotted.
  WtaNetwork net(spec.network_config());
  UnsupervisedTrainer trainer(net, spec.trainer_config());
  if (!spec.resume_path.empty()) {
    trainer.resume_from(robust::load_checkpoint(spec.resume_path));
    std::printf("resumed from checkpoint: %s\n", spec.resume_path.c_str());
  }
  maybe_damage_synapses(net, "pre-train");
  std::optional<BatchRunner> runner;
  make_runner(spec, runner);
  if (runner && cfg.has("retries")) {
    const auto retries = cfg.get_int("retries", 2);
    PSS_REQUIRE(retries >= 0, "retries must be >= 0");
    runner->set_retry_budget(static_cast<std::size_t>(retries));
  }
  const Dataset train_set = data.train.head(spec.train_images);
  const TrainingStats stats = spec.batch_size > 1
                                  ? trainer.train(train_set, *runner)
                                  : trainer.train(train_set);
  const PixelFrequencyMap map(spec.trainer_config().f_min_hz,
                              spec.trainer_config().f_max_hz);
  const auto [label_set, eval_set] = data.labelling_split(spec.label_images);
  const LabelingResult labels =
      runner ? label_neurons(net, label_set, map, spec.t_label_ms, *runner)
             : label_neurons(net, label_set, map, spec.t_label_ms);
  SnnClassifier classifier(net, labels.neuron_labels, labels.class_count, map,
                           spec.t_infer_ms);
  const EvaluationResult eval =
      runner ? classifier.evaluate(eval_set.head(spec.eval_images), *runner)
             : classifier.evaluate(eval_set.head(spec.eval_images));

  std::printf("accuracy %.1f%% (%llu/%llu) | %zu labelled neurons | %.1f s "
              "training wall\n",
              100.0 * eval.accuracy,
              static_cast<unsigned long long>(eval.confusion.correct()),
              static_cast<unsigned long long>(eval.confusion.total()),
              labels.labelled_neurons, stats.wall_seconds);

  if (manifest) {
    manifest->dataset = data.name;
    manifest->results.emplace_back("accuracy", eval.accuracy);
    manifest->results.emplace_back(
        "labelled_neurons", static_cast<double>(labels.labelled_neurons));
    manifest->results.emplace_back("train_wall_seconds", stats.wall_seconds);
    manifest->results.emplace_back(
        "train_post_spikes", static_cast<double>(stats.total_post_spikes));
    const robust::CheckpointLineage& lin = trainer.lineage();
    if (spec.train_checkpoint_every > 0 || lin.resumed) {
      manifest->has_checkpoint = true;
      manifest->resumed = lin.resumed;
      manifest->checkpoint_run_id = lin.run_id;
      manifest->checkpoint_parent_run_id = lin.parent_run_id;
      manifest->checkpoint_count = lin.checkpoint_count;
      manifest->presentation_cursor = lin.presentation_cursor;
    }
  }
  if (runner && obs::metrics_enabled()) runner->publish_stats("batch");

  if (cfg.has("snapshot")) {
    const std::string path = cfg.get_string("snapshot", "");
    save_snapshot(path, NetworkSnapshot::capture(net, &labels.neuron_labels));
    std::printf("snapshot saved: %s\n", path.c_str());
  }
  if (cfg.has("maps")) {
    const std::string path = cfg.get_string("maps", "");
    write_pgm(path, tile_images(conductance_maps(net, 25), 5, 5));
    std::printf("conductance maps saved: %s\n", path.c_str());
  }
  return 0;
}

int run_infer(const Config& cfg, obs::RunManifest* manifest) {
  PSS_REQUIRE(cfg.has("snapshot"), "infer mode needs snapshot=<path>");
  const ExperimentSpec spec = spec_from_config(cfg);
  const LabeledDataset data = load_data(cfg, spec);
  const NetworkSnapshot snap =
      load_snapshot(cfg.get_string("snapshot", ""));
  PSS_REQUIRE(!snap.neuron_labels.empty(),
              "snapshot carries no neuron labels; retrain with mode=train");

  WtaConfig net_cfg = spec.network_config();
  net_cfg.neuron_count = snap.neuron_count;
  net_cfg.input_channels = snap.input_channels;
  WtaNetwork net(net_cfg);
  snap.restore(net);
  maybe_damage_synapses(net, "post-restore");

  const PixelFrequencyMap map(spec.trainer_config().f_min_hz,
                              spec.trainer_config().f_max_hz);
  std::vector<int> labels(snap.neuron_labels.begin(),
                          snap.neuron_labels.end());
  std::size_t classes = 1;
  for (int l : labels) classes = std::max(classes, static_cast<std::size_t>(l + 1));
  SnnClassifier classifier(net, labels, classes, map, spec.t_infer_ms);
  std::optional<BatchRunner> runner;
  make_runner(spec, runner);
  const EvaluationResult eval =
      runner ? classifier.evaluate(data.test.head(spec.eval_images), *runner)
             : classifier.evaluate(data.test.head(spec.eval_images));
  std::printf("infer: accuracy %.1f%% on %llu images\n",
              100.0 * eval.accuracy,
              static_cast<unsigned long long>(eval.confusion.total()));
  std::printf("%s\n", eval.confusion.to_string().c_str());
  if (manifest) {
    if (manifest->dataset.empty()) manifest->dataset = data.name;
    manifest->results.emplace_back("infer.accuracy", eval.accuracy);
    manifest->results.emplace_back(
        "infer.images", static_cast<double>(eval.confusion.total()));
  }
  if (runner && obs::metrics_enabled()) runner->publish_stats("infer.batch");
  return 0;
}

// ----------------------------------------------------------- graph mode

/// The graph path handles stacked architectures (layers=) and the temporal
/// gesture workload (dataset=gestures); plain single-network runs keep the
/// battle-tested run_train/run_infer paths above.
bool wants_graph(const Config& cfg) {
  return cfg.has("layers") || cfg.get_string("dataset", "") == "gestures";
}

/// True when `path` holds a stacked graph model ("PSSSNAP2").
bool stacked_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return static_cast<bool>(in) && std::memcmp(magic, "PSSSNAP2", 8) == 0;
}

graph::GraphTrainerConfig graph_trainer_config(const Config& cfg,
                                               const ExperimentSpec& spec) {
  graph::GraphTrainerConfig tc;
  tc.t_learn_ms = spec.trainer_config().t_learn_ms;
  tc.t_readout_ms = spec.t_infer_ms;
  tc.frame_ms = cfg.get_double("frame_ms", 25.0);
  PSS_REQUIRE(tc.frame_ms > 0.0, "frame_ms must be positive");
  return tc;
}

GestureDataset load_gestures(const ExperimentSpec& spec) {
  GestureConfig gc;
  gc.train_count = spec.train_images;
  gc.test_count = spec.label_images + spec.eval_images;
  return make_temporal_gestures(gc);
}

void report_graph(const char* phase, const graph::GraphEvaluation& eval,
                  std::size_t labelled, obs::RunManifest* manifest) {
  std::printf("%s: accuracy %.1f%% (%zu/%zu, %zu abstained) | %zu labelled "
              "neurons\n",
              phase, 100.0 * eval.accuracy(), eval.correct, eval.total,
              eval.abstained, labelled);
  if (manifest) {
    manifest->results.emplace_back(std::string(phase) + ".accuracy",
                                   eval.accuracy());
    manifest->results.emplace_back(
        std::string(phase) + ".labelled_neurons",
        static_cast<double>(labelled));
  }
}

int run_graph_train(const Config& cfg, obs::RunManifest* manifest) {
  const ExperimentSpec spec = spec_from_config(cfg);
  const bool gestures = cfg.get_string("dataset", "mnist") == "gestures";
  graph::GraphConfig gcfg =
      tools::graph_config_from_options(cfg, spec.network_config());
  graph::NetworkGraph net(gcfg);
  graph::GraphTrainer trainer(net, graph_trainer_config(cfg, spec));

  std::printf("graph train: %zu stack layers, %zu WTA blocks, %s\n",
              gcfg.layers.size(), net.block_count(),
              gestures ? "temporal gestures" : "images");
  std::size_t labelled = 0;
  graph::GraphEvaluation eval;
  std::string dataset_name;
  if (gestures) {
    const GestureDataset data = load_gestures(spec);
    dataset_name = data.name;
    trainer.train(data.train);
    const auto label_end =
        data.test.begin() + static_cast<std::ptrdiff_t>(
                                std::min(spec.label_images, data.test.size()));
    labelled = trainer.label({data.test.begin(), label_end});
    eval = trainer.evaluate({label_end, data.test.end()});
  } else {
    const LabeledDataset data = load_data(cfg, spec);
    dataset_name = data.name;
    trainer.train(data.train.head(spec.train_images));
    const auto [label_set, eval_set] = data.labelling_split(spec.label_images);
    labelled = trainer.label(label_set);
    eval = trainer.evaluate(eval_set.head(spec.eval_images));
  }
  report_graph("graph", eval, labelled, manifest);
  if (manifest && manifest->dataset.empty()) manifest->dataset = dataset_name;

  if (cfg.has("snapshot")) {
    const std::string path = cfg.get_string("snapshot", "");
    graph::save_graph_model(path, graph::GraphModel::capture(net));
    std::printf("model saved: %s\n", path.c_str());
  }
  return 0;
}

int run_graph_infer(const Config& cfg, obs::RunManifest* manifest) {
  PSS_REQUIRE(cfg.has("snapshot"), "infer mode needs snapshot=<path>");
  const ExperimentSpec spec = spec_from_config(cfg);
  const bool gestures = cfg.get_string("dataset", "mnist") == "gestures";
  const graph::GraphModel model =
      graph::load_graph_model(cfg.get_string("snapshot", ""));
  graph::NetworkGraph net(model.to_config(spec.network_config()));
  model.restore(net);
  PSS_REQUIRE(!net.neuron_labels().empty(),
              "model carries no neuron labels; retrain with mode=train");
  graph::GraphTrainer trainer(net, graph_trainer_config(cfg, spec));

  graph::GraphEvaluation eval;
  if (gestures) {
    const GestureDataset data = load_gestures(spec);
    const auto eval_begin =
        data.test.begin() + static_cast<std::ptrdiff_t>(
                                std::min(spec.label_images, data.test.size()));
    eval = trainer.evaluate({eval_begin, data.test.end()});
  } else {
    const LabeledDataset data = load_data(cfg, spec);
    const auto [label_set, eval_set] = data.labelling_split(spec.label_images);
    eval = trainer.evaluate(eval_set.head(spec.eval_images));
  }
  std::printf("graph infer: accuracy %.1f%% on %zu presentations\n",
              100.0 * eval.accuracy(), eval.total);
  if (manifest) {
    manifest->results.emplace_back("graph.infer.accuracy", eval.accuracy());
    manifest->results.emplace_back("graph.infer.presentations",
                                   static_cast<double>(eval.total));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = parse_cli(argc, argv);
    if (!cfg.get_bool("verbose", false)) set_log_level(LogLevel::kWarn);

    tools::arm_faults_from_config(cfg);

    const tools::ObsPaths obs_paths = tools::enable_observability(cfg);
    const std::string& trace_path = obs_paths.trace;
    const std::string& metrics_path = obs_paths.metrics;
    const std::string& manifest_path = obs_paths.manifest;
    const bool want_obs = obs_paths.any();

    // Live exposition: scrapers see the registry as it fills during the run
    // (the sidecar files below capture only the final state).
    std::optional<obs::MetricsExporter> exporter;
    if (obs_paths.metrics_port >= 0) {
      exporter.emplace(static_cast<std::uint16_t>(obs_paths.metrics_port));
      std::printf("metrics exporter listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(exporter->port()));
    }

    obs::RunManifest manifest;
    manifest.tool = "pss_run";
    const ExperimentSpec spec = spec_from_config(cfg);
    manifest.seed = spec.seed;
    manifest.workers = spec.workers;
    manifest.batch_size = spec.batch_size;
    for (const auto& key : cfg.keys()) {
      manifest.config.emplace_back(key, cfg.get_string(key, ""));
    }
    obs::RunManifest* mp = want_obs ? &manifest : nullptr;

    const std::uint64_t wall_t0 = obs::monotonic_ns();
    int rc = 0;
    const std::string mode = cfg.get_string("mode", "train");
    // A stacked snapshot routes infer through the graph path even without
    // layers= — the architecture lives in the model file.
    const auto graph_infer = [&](const Config& c) {
      return wants_graph(c) ||
             stacked_model_file(c.get_string("snapshot", ""));
    };
    if (mode == "train") {
      rc = wants_graph(cfg) ? run_graph_train(cfg, mp) : run_train(cfg, mp);
    } else if (mode == "infer") {
      rc = graph_infer(cfg) ? run_graph_infer(cfg, mp) : run_infer(cfg, mp);
    } else if (mode == "both") {
      Config with_snapshot = cfg;
      if (!cfg.has("snapshot")) {
        with_snapshot.set("snapshot", "out/pss_model.bin");
        std::filesystem::create_directories("out");
      }
      rc = wants_graph(with_snapshot) ? run_graph_train(with_snapshot, mp)
                                      : run_train(with_snapshot, mp);
      if (rc == 0) {
        rc = graph_infer(with_snapshot) ? run_graph_infer(with_snapshot, mp)
                                        : run_infer(with_snapshot, mp);
      }
    } else {
      throw Error("unknown mode: " + mode + " (train|infer|both)");
    }
    manifest.wall_seconds =
        static_cast<double>(obs::monotonic_ns() - wall_t0) * 1e-9;

    if (want_obs) {
      publish_engine_stats(default_engine(), "engine");
      // Mirror profiler rows (and profile.available) into the registry
      // before any dump, so metrics/prom/manifest all carry them.
      obs::publish_profile_stats();
      if (!metrics_path.empty()) {
        obs::write_metrics_json(metrics_path, "pss_run");
        std::printf("metrics saved: %s\n", metrics_path.c_str());
      }
      if (!trace_path.empty()) {
        obs::write_chrome_trace(trace_path);
        std::printf("trace saved: %s\n", trace_path.c_str());
      }
      if (!manifest_path.empty()) {
        obs::write_manifest(manifest_path, manifest);
        std::printf("manifest saved: %s\n", manifest_path.c_str());
      }
      if (!obs_paths.profile.empty()) {
        obs::write_profile_json(obs_paths.profile, "pss_run");
        std::printf("profile saved: %s\n", obs_paths.profile.c_str());
      }
      if (!obs_paths.prom.empty()) {
        obs::write_prometheus_text(obs_paths.prom);
        std::printf("prometheus text saved: %s\n", obs_paths.prom.c_str());
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pss_run: %s\n", e.what());
    return 1;
  }
}
