#!/usr/bin/env python3
"""Schema validator for the pss observability artifacts.

Validates any of the files the instrumented binaries emit:

  pss.metrics.v1    (pss_run metrics=..., bench BENCH_*.json records;
                     serve runs — label "pss_serve" or any serve.* counter —
                     additionally get the serving-daemon accounting checks)
  pss.manifest.v1   (pss_run manifest=...)
  pss.profile.v1    (pss_run profile=..., bench BENCH_*.profile.json —
                     hardware-counter kernel tables)
  Chrome trace      (pss_run trace=..., detected by "traceEvents")
  Prometheus text   (pss_run prom=... / metrics_port= scrapes; detected by
                     failing JSON parse with '# TYPE' lines present)

Usage:
  tools/validate_manifest.py FILE [FILE...]

Exits non-zero (and prints the reason) on the first invalid file. Pure
stdlib — no third-party dependencies.
"""

from __future__ import annotations

import json
import math
import re
import sys


def fail(path: str, message: str) -> None:
    print(f"validate_manifest: {path}: {message}", file=sys.stderr)
    sys.exit(1)


def expect(cond: bool, path: str, message: str) -> None:
    if not cond:
        fail(path, message)


def is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_metrics_object(m: dict, path: str, where: str) -> None:
    expect(isinstance(m, dict), path, f"{where}: must be an object")
    for section in ("counters", "gauges", "histograms"):
        expect(section in m, path, f"{where}: missing '{section}'")
    counters = m["counters"]
    expect(isinstance(counters, dict), path, f"{where}.counters: not an object")
    for name, value in counters.items():
        expect(isinstance(value, int) and value >= 0, path,
               f"{where}.counters[{name}]: not a non-negative integer")
    gauges = m["gauges"]
    expect(isinstance(gauges, dict), path, f"{where}.gauges: not an object")
    for name, value in gauges.items():
        expect(value is None or is_num(value), path,
               f"{where}.gauges[{name}]: not a number")
    hists = m["histograms"]
    expect(isinstance(hists, dict), path, f"{where}.histograms: not an object")
    for name, h in hists.items():
        ctx = f"{where}.histograms[{name}]"
        expect(isinstance(h, dict), path, f"{ctx}: not an object")
        for key in ("upper_edges", "counts", "total", "sum"):
            expect(key in h, path, f"{ctx}: missing '{key}'")
        edges = h["upper_edges"]
        counts = h["counts"]
        expect(isinstance(edges, list) and len(edges) >= 1, path,
               f"{ctx}.upper_edges: need at least one edge")
        expect(all(is_num(e) for e in edges), path,
               f"{ctx}.upper_edges: non-numeric edge")
        expect(all(b < a for b, a in zip(edges, edges[1:])), path,
               f"{ctx}.upper_edges: not strictly increasing")
        expect(isinstance(counts, list) and len(counts) == len(edges) + 1,
               path, f"{ctx}.counts: expected {len(edges) + 1} buckets "
               "(edges + overflow)")
        expect(all(isinstance(c, int) and c >= 0 for c in counts), path,
               f"{ctx}.counts: non-count entry")
        expect(h["total"] == sum(counts), path,
               f"{ctx}: total {h['total']} != sum of buckets {sum(counts)}")


def validate_metrics(doc: dict, path: str) -> None:
    expect(doc.get("schema") == "pss.metrics.v1", path,
           f"schema is {doc.get('schema')!r}, expected 'pss.metrics.v1'")
    expect("metrics" in doc, path, "missing 'metrics'")
    validate_metrics_object(doc["metrics"], path, "metrics")
    counters = doc["metrics"].get("counters", {})
    if doc.get("label") == "pss_serve" or \
            any(name.startswith("serve.") for name in counters):
        validate_serve_metrics(doc["metrics"], path)
    if any(name.startswith("graph.") for name in counters):
        validate_graph_metrics(doc["metrics"], path)


# Counter families the serving daemon always registers (src/pss/serve/):
# a serve sidecar missing one of these was written by a partial or torn run.
_SERVE_COUNTERS = (
    "serve.admitted", "serve.completed", "serve.shed", "serve.expired",
    "serve.requeue", "serve.faults", "serve.worker_restarts",
    "serve.reloads", "serve.batches",
)
_SERVE_HISTOGRAMS = ("serve.latency_seconds", "serve.batch_size")


def validate_serve_metrics(m: dict, path: str) -> None:
    """Serving-daemon sidecar (pss_serve metrics= dumps, BENCH_serve.json):
    every serve.* family must be present, and the request accounting must
    balance — a request is answered (completed), expired, or still queued,
    never silently dropped."""
    counters = m["counters"]
    for name in _SERVE_COUNTERS:
        expect(name in counters, path,
               f"serve sidecar: missing counter '{name}'")
    hists = m["histograms"]
    for name in _SERVE_HISTOGRAMS:
        expect(name in hists, path,
               f"serve sidecar: missing histogram '{name}'")
    admitted = counters["serve.admitted"]
    completed = counters["serve.completed"]
    expired = counters["serve.expired"]
    expect(completed + expired <= admitted, path,
           f"serve sidecar: completed ({completed}) + expired ({expired}) "
           f"exceeds admitted ({admitted})")
    # Latency is observed exactly once per completed request, before the
    # response becomes visible (the serve metrics-ordering invariant).
    latency_total = hists["serve.latency_seconds"]["total"]
    expect(latency_total == completed, path,
           f"serve sidecar: latency histogram total ({latency_total}) != "
           f"completed ({completed})")
    # Batches are what workers executed; an executed batch holds >= 1 request.
    batch_total = hists["serve.batch_size"]["total"]
    expect(batch_total == counters["serve.batches"], path,
           f"serve sidecar: batch_size histogram total ({batch_total}) != "
           f"serve.batches ({counters['serve.batches']})")


def validate_manifest(doc: dict, path: str) -> None:
    expect(doc.get("schema") == "pss.manifest.v1", path,
           f"schema is {doc.get('schema')!r}, expected 'pss.manifest.v1'")
    for key in ("tool", "dataset"):
        expect(isinstance(doc.get(key), str), path, f"'{key}': not a string")
    for key in ("seed", "workers", "batch_size"):
        expect(isinstance(doc.get(key), int), path, f"'{key}': not an integer")
    expect(is_num(doc.get("wall_seconds")) and doc["wall_seconds"] >= 0, path,
           "'wall_seconds': not a non-negative number")
    expect(isinstance(doc.get("config"), dict), path, "'config': not an object")

    phases = doc.get("phases")
    expect(isinstance(phases, dict), path, "'phases': not an object")
    phase_total = 0.0
    for name, entry in phases.items():
        ctx = f"phases[{name}]"
        expect(isinstance(entry, dict), path, f"{ctx}: not an object")
        expect(is_num(entry.get("seconds")) and entry["seconds"] >= 0, path,
               f"{ctx}.seconds: not a non-negative number")
        expect(is_num(entry.get("fraction")), path,
               f"{ctx}.fraction: not a number")
        phase_total += entry["seconds"]
    expect(is_num(doc.get("phase_seconds_total")), path,
           "'phase_seconds_total': not a number")
    expect(math.isclose(doc["phase_seconds_total"], phase_total,
                        rel_tol=1e-6, abs_tol=1e-9), path,
           f"phase_seconds_total {doc['phase_seconds_total']} != "
           f"sum of phases {phase_total}")
    expect(is_num(doc.get("phase_coverage")), path,
           "'phase_coverage': not a number")

    results = doc.get("results")
    expect(isinstance(results, dict), path, "'results': not an object")
    for name, value in results.items():
        expect(is_num(value), path, f"results[{name}]: not a number")

    if "checkpoint" in doc:
        validate_checkpoint_sidecar(doc["checkpoint"], path)

    validate_metrics_object(doc.get("metrics"), path, "metrics")


def validate_checkpoint_sidecar(cp, path: str) -> None:
    """Resume-lineage metadata written by checkpointing runs (optional)."""
    expect(isinstance(cp, dict), path, "'checkpoint': not an object")
    expect(isinstance(cp.get("resumed"), bool), path,
           "checkpoint.resumed: not a boolean")
    # Run ids are 64-bit values serialized as 0x-prefixed hex strings so they
    # survive JSON number precision.
    for key in ("run_id", "parent_run_id"):
        value = cp.get(key)
        expect(isinstance(value, str) and value.startswith("0x"), path,
               f"checkpoint.{key}: not a 0x-prefixed hex string")
        try:
            int(value, 16)
        except ValueError:
            fail(path, f"checkpoint.{key}: not parseable as hex: {value!r}")
    for key in ("checkpoint_count", "presentation_cursor"):
        expect(isinstance(cp.get(key), int) and cp[key] >= 0, path,
               f"checkpoint.{key}: not a non-negative integer")
    if cp["resumed"]:
        expect(int(cp["parent_run_id"], 16) != 0, path,
               "checkpoint: resumed run must carry a non-zero parent_run_id")


def validate_profile(doc: dict, path: str) -> None:
    """pss.profile.v1: hardware-counter per-kernel tables (tools may rely on
    'available' being exactly 0 or 1; an unavailable host still writes a
    valid document with an empty kernel table)."""
    expect(doc.get("schema") == "pss.profile.v1", path,
           f"schema is {doc.get('schema')!r}, expected 'pss.profile.v1'")
    expect(doc.get("available") in (0, 1), path,
           f"'available': {doc.get('available')!r}, expected 0 or 1")
    events = doc.get("events")
    expect(isinstance(events, list) and len(events) >= 1, path,
           "'events': not a non-empty list")
    expect(all(isinstance(e, str) and e for e in events), path,
           "'events': non-string entry")
    kernels = doc.get("kernels")
    expect(isinstance(kernels, dict), path, "'kernels': not an object")
    counter_keys = ("samples", "enabled_ns", "running_ns", "cycles",
                    "instructions", "cache_misses", "branch_misses")
    ratio_keys = ("ipc", "cache_miss_per_kinst", "branch_miss_per_kinst",
                  "multiplex_fraction")
    for name, k in kernels.items():
        ctx = f"kernels[{name}]"
        expect(isinstance(k, dict), path, f"{ctx}: not an object")
        for key in counter_keys:
            expect(isinstance(k.get(key), int) and k[key] >= 0, path,
                   f"{ctx}.{key}: not a non-negative integer")
        for key in ratio_keys:
            expect(is_num(k.get(key)), path, f"{ctx}.{key}: not a number")
        expect(k["samples"] >= 1, path,
               f"{ctx}: zero-sample rows must be omitted")
    if doc["available"] == 0:
        expect(all(k["cycles"] == 0 for k in kernels.values()), path,
               "available=0 but a kernel row carries cycle counts")


# Prometheus text exposition format (version 0.0.4): '# TYPE' headers,
# optional labels, numeric sample values (+Inf/-Inf/NaN allowed).
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$")
_PROM_SUFFIX = re.compile(r"_(bucket|sum|count)$")


def validate_prometheus(text: str, path: str) -> None:
    typed: dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            expect(len(parts) == 4, path,
                   f"line {lineno}: malformed TYPE line: {line!r}")
            expect(parts[3] in ("counter", "gauge", "histogram", "summary",
                                "untyped"), path,
                   f"line {lineno}: unknown metric type {parts[3]!r}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _PROM_SAMPLE.match(line)
        expect(m is not None, path,
               f"line {lineno}: not a valid sample line: {line!r}")
        name = m.group(1)
        base = _PROM_SUFFIX.sub("", name)
        expect(name in typed or base in typed, path,
               f"line {lineno}: sample {name!r} has no preceding TYPE line")
        value = m.group(3)
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                fail(path, f"line {lineno}: non-numeric value {value!r}")
        samples += 1
    expect(samples > 0, path, "exposition contains no samples")


_GRAPH_LAYER_NS = re.compile(r"^graph\.l(\d+)\.(conv|pool|wta)\.ns$")
_GRAPH_LAYER_SPIKES = re.compile(r"^graph\.l(\d+)\.spikes$")


def validate_graph_metrics(m: dict, path: str) -> None:
    """Layer-graph sidecar (pss_run layers=..., BENCH_graph.json): the
    per-presentation families must be present and the per-layer counters
    must name a contiguous stack — layer i appearing without i-1 means a
    torn run or a renamed family."""
    counters = m["counters"]
    for name in ("graph.presentations", "graph.input_spikes",
                 "graph.encode.ns"):
        expect(name in counters, path,
               f"graph sidecar: missing counter '{name}'")
    ns_layers = set()
    spike_layers = set()
    for name in counters:
        match = _GRAPH_LAYER_NS.match(name)
        if match:
            ns_layers.add(int(match.group(1)))
        match = _GRAPH_LAYER_SPIKES.match(name)
        if match:
            spike_layers.add(int(match.group(1)))
    expect(ns_layers == spike_layers, path,
           f"graph sidecar: per-layer ns counters name layers "
           f"{sorted(ns_layers)} but spike counters name "
           f"{sorted(spike_layers)}")
    expect(ns_layers == set(range(len(ns_layers))), path,
           f"graph sidecar: layer indices {sorted(ns_layers)} are not "
           "contiguous from 0")
    expect(len(ns_layers) > 0, path,
           "graph sidecar: no per-layer graph.l<i>.* counters")


def validate_trace(doc: dict, path: str) -> None:
    events = doc.get("traceEvents")
    expect(isinstance(events, list), path, "'traceEvents': not a list")
    expect(len(events) > 0, path, "trace contains no events")
    for i, e in enumerate(events):
        ctx = f"traceEvents[{i}]"
        expect(isinstance(e, dict), path, f"{ctx}: not an object")
        expect(isinstance(e.get("name"), str) and e["name"], path,
               f"{ctx}.name: not a non-empty string")
        expect(e.get("ph") == "X", path,
               f"{ctx}.ph: {e.get('ph')!r}, expected 'X' (complete event)")
        for key in ("ts", "dur"):
            expect(is_num(e.get(key)) and e[key] >= 0, path,
                   f"{ctx}.{key}: not a non-negative number")
        for key in ("pid", "tid"):
            expect(isinstance(e.get(key), int), path,
                   f"{ctx}.{key}: not an integer")
        # Layer-graph spans: graph.present is categorised by pass kind,
        # every other graph.* span (encode + per-layer) by "graph".
        name = e["name"]
        if name == "graph.present":
            expect(e.get("cat") in ("train", "readout"), path,
                   f"{ctx}: graph.present cat {e.get('cat')!r}, expected "
                   "'train' or 'readout'")
        elif name.startswith("graph."):
            expect(e.get("cat") == "graph", path,
                   f"{ctx}: {name} cat {e.get('cat')!r}, expected 'graph'")


def validate_file(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        fail(path, f"cannot read: {exc}")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        # Not JSON: the only non-JSON artifact we emit is the Prometheus
        # text exposition (prom= sidecar / metrics_port= scrape).
        if any(line.startswith("# TYPE ") for line in text.splitlines()):
            validate_prometheus(text, path)
            return "prometheus-text"
        fail(path, f"cannot parse: {exc}")
    expect(isinstance(doc, dict), path, "top level is not an object")
    if "traceEvents" in doc:
        validate_trace(doc, path)
        return "chrome-trace"
    schema = doc.get("schema")
    if schema == "pss.manifest.v1":
        validate_manifest(doc, path)
    elif schema == "pss.metrics.v1":
        validate_metrics(doc, path)
    elif schema == "pss.profile.v1":
        validate_profile(doc, path)
    else:
        fail(path, f"unrecognized document (schema={schema!r})")
    return schema


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        kind = validate_file(path)
        print(f"validate_manifest: {path}: OK ({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
