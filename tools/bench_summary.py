#!/usr/bin/env python3
"""Diff two pss.metrics.v1 bench files (e.g. BENCH_backend.json before/after
a kernel change) gauge by gauge, and render the per-backend phase table.

Usage:
    tools/bench_summary.py A.json [B.json] [--prefix bench.]

With two files, prints one row per gauge present in either file: the value
in A, the value in B, and B/A. Counters are compared the same way when
--counters is given. Ratios for *.ns / *.seconds gauges read as "B took X
times as long as A" (< 1 means B is faster).

With one file, or whenever a file carries bench.backend.phase.* gauges
(written by bench_backend), renders the phase breakdown as a table — one row
per phase (encode/integrate/stdp/aggregate), one column pair per backend
(milliseconds + speedup vs the reference backend). Records carrying sparse.*
metrics additionally get the event-driven activity section: the
sparse.synapses_touched / sparse.flush.synapses counters and the
sparse.catchup.depth histogram (how long lazy synapses sleep between STDP
catch-up replays). Stdlib only; exit code 1 on malformed input.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "pss.metrics.v1":
        raise ValueError(f"{path}: not a pss.metrics.v1 file "
                         f"(schema={doc.get('schema')!r})")
    metrics = doc.get("metrics", {})
    return doc.get("label", "?"), metrics


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:.6g}"
    return str(value)


def diff_section(name, a_map, b_map, prefix):
    names = sorted(set(a_map) | set(b_map))
    names = [n for n in names if n.startswith(prefix)]
    if not names:
        return
    width = max(len(n) for n in names)
    print(f"{name}:")
    print(f"  {'name':<{width}}  {'A':>14}  {'B':>14}  {'B/A':>8}")
    for n in names:
        a, b = a_map.get(n), b_map.get(n)
        if a is not None and b is not None and a != 0:
            ratio = f"{b / a:.3f}"
        else:
            ratio = "-"
        print(f"  {n:<{width}}  {fmt(a):>14}  {fmt(b):>14}  {ratio:>8}")


PHASE_PREFIX = "bench.backend.phase."
PHASE_ORDER = ("encode", "integrate", "stdp", "aggregate")


def parse_phase_gauges(gauges):
    """bench.backend.phase.<phase>.<backend>.<ns|speedup> -> nested dict."""
    phases = {}
    for name, value in gauges.items():
        if not name.startswith(PHASE_PREFIX):
            continue
        parts = name[len(PHASE_PREFIX):].split(".")
        if len(parts) != 3 or parts[2] not in ("ns", "speedup"):
            continue
        phase, backend, unit = parts
        phases.setdefault(phase, {}).setdefault(backend, {})[unit] = value
    return phases


def phase_table(title, gauges):
    phases = parse_phase_gauges(gauges)
    if not phases:
        return
    backends = sorted({b for per in phases.values() for b in per})
    # The backend with no speedup gauge is the reference the others are
    # measured against (bench_backend publishes speedups vs `cpu`).
    backends.sort(key=lambda b: (any("speedup" in phases[p].get(b, {})
                                     for p in phases), b))
    ordered = [p for p in PHASE_ORDER if p in phases]
    ordered += sorted(p for p in phases if p not in PHASE_ORDER)
    width = max(len(p) for p in ordered + ["phase"])
    print(f"{title} phase breakdown (ms, speedup vs reference):")
    header = f"  {'phase':<{width}}"
    for b in backends:
        header += f"  {b:>10}  {'x':>6}"
    print(header)
    for phase in ordered:
        row = f"  {phase:<{width}}"
        for b in backends:
            cell = phases[phase].get(b, {})
            ns, speedup = cell.get("ns"), cell.get("speedup")
            ms = f"{ns / 1e6:.1f}" if ns is not None else "-"
            x = f"{speedup:.2f}" if speedup is not None else "-"
            row += f"  {ms:>10}  {x:>6}"
        print(row)


def sparse_section(title, metrics):
    """Event-driven backend activity: the sparse.* counters (work actually
    done — synapses flushed, events coalesced) plus the catch-up depth
    histogram, which shows how many presentations a lazy synapse typically
    sleeps through before its STDP catch-up replay."""
    counters = {n: v for n, v in metrics.get("counters", {}).items()
                if n.startswith("sparse.")}
    hist = metrics.get("histograms", {}).get("sparse.catchup.depth")
    if not counters and not hist:
        return
    print(f"{title} event-driven (cpu_sparse) activity:")
    if counters:
        width = max(len(n) for n in counters)
        for n in sorted(counters):
            print(f"  {n:<{width}}  {counters[n]}")
    if hist:
        total, hsum = hist["total"], hist["sum"]
        mean = hsum / total if total else 0.0
        print(f"  sparse.catchup.depth  {total} catch-ups, "
              f"mean depth {mean:.2f}")
        edges, counts = hist["upper_edges"], hist["counts"]
        labels = [f"<={fmt(e)}" for e in edges] + [f">{fmt(edges[-1])}"]
        shown = [(lab, c) for lab, c in zip(labels, counts) if c]
        if shown:
            lwidth = max(len(lab) for lab, _ in shown)
            peak = max(c for _, c in shown)
            for lab, c in shown:
                bar = "#" * max(1, round(20 * c / peak))
                print(f"    {lab:>{lwidth}}  {c:>10}  {bar}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff the gauges of two pss.metrics.v1 files and render "
                    "the per-backend phase table.")
    parser.add_argument("file_a")
    parser.add_argument("file_b", nargs="?",
                        help="omit to just summarize one bench file")
    parser.add_argument("--prefix", default="",
                        help="only show metrics whose name starts with this")
    parser.add_argument("--counters", action="store_true",
                        help="also diff the counters section")
    args = parser.parse_args(argv)

    try:
        label_a, metrics_a = load_metrics(args.file_a)
        if args.file_b is not None:
            label_b, metrics_b = load_metrics(args.file_b)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_summary: {err}", file=sys.stderr)
        return 1

    if args.file_b is None:
        print(f"A = {args.file_a} (label {label_a})")
        phase_table("A", metrics_a.get("gauges", {}))
        sparse_section("A", metrics_a)
        return 0

    print(f"A = {args.file_a} (label {label_a})")
    print(f"B = {args.file_b} (label {label_b})")
    diff_section("gauges", metrics_a.get("gauges", {}),
                 metrics_b.get("gauges", {}), args.prefix)
    if args.counters:
        diff_section("counters", metrics_a.get("counters", {}),
                     metrics_b.get("counters", {}), args.prefix)
    phase_table("A", metrics_a.get("gauges", {}))
    phase_table("B", metrics_b.get("gauges", {}))
    sparse_section("A", metrics_a)
    sparse_section("B", metrics_b)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
