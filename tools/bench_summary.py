#!/usr/bin/env python3
"""Diff two pss.metrics.v1 bench files (e.g. BENCH_backend.json before/after
a kernel change) gauge by gauge.

Usage:
    tools/bench_summary.py A.json B.json [--prefix bench.]

Prints one row per gauge present in either file: the value in A, the value
in B, and B/A. Counters are compared the same way when --counters is given.
Ratios for *.ns / *.seconds gauges read as "B took X times as long as A"
(< 1 means B is faster). Stdlib only; exit code 1 on malformed input.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "pss.metrics.v1":
        raise ValueError(f"{path}: not a pss.metrics.v1 file "
                         f"(schema={doc.get('schema')!r})")
    metrics = doc.get("metrics", {})
    return doc.get("label", "?"), metrics


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:.6g}"
    return str(value)


def diff_section(name, a_map, b_map, prefix):
    names = sorted(set(a_map) | set(b_map))
    names = [n for n in names if n.startswith(prefix)]
    if not names:
        return
    width = max(len(n) for n in names)
    print(f"{name}:")
    print(f"  {'name':<{width}}  {'A':>14}  {'B':>14}  {'B/A':>8}")
    for n in names:
        a, b = a_map.get(n), b_map.get(n)
        if a is not None and b is not None and a != 0:
            ratio = f"{b / a:.3f}"
        else:
            ratio = "-"
        print(f"  {n:<{width}}  {fmt(a):>14}  {fmt(b):>14}  {ratio:>8}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff the gauges of two pss.metrics.v1 files.")
    parser.add_argument("file_a")
    parser.add_argument("file_b")
    parser.add_argument("--prefix", default="",
                        help="only show metrics whose name starts with this")
    parser.add_argument("--counters", action="store_true",
                        help="also diff the counters section")
    args = parser.parse_args(argv)

    try:
        label_a, metrics_a = load_metrics(args.file_a)
        label_b, metrics_b = load_metrics(args.file_b)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_summary: {err}", file=sys.stderr)
        return 1

    print(f"A = {args.file_a} (label {label_a})")
    print(f"B = {args.file_b} (label {label_b})")
    diff_section("gauges", metrics_a.get("gauges", {}),
                 metrics_b.get("gauges", {}), args.prefix)
    if args.counters:
        diff_section("counters", metrics_a.get("counters", {}),
                     metrics_b.get("counters", {}), args.prefix)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
