#!/usr/bin/env python3
"""Perf-regression gate: diff a pss.metrics.v1 bench record against a
committed baseline and fail on regressions outside the tolerance band.

Usage:
    tools/bench_compare.py BASELINE CURRENT [--update] [--quiet]

BASELINE is a pss.bench-baseline.v1 file (see bench/baselines/*.json):

    {
      "schema": "pss.bench-baseline.v1",
      "bench": "backend",
      "metrics": {
        "bench.backend.e2e.speedup":
            {"value": 0.996, "tolerance": 0.15, "direction": "higher"}
      }
    }

CURRENT is the pss.metrics.v1 file a bench binary wrote (its gauges are
compared; counters are consulted when a gauge with the name is absent).

The band is one-sided and relative: a metric with direction "higher" fails
only when current < value * (1 - tolerance); "lower" fails only when
current > value * (1 + tolerance). Improvements always pass — the gate
catches regressions, not drift in the good direction. A metric listed in
the baseline but missing from CURRENT fails (a deleted metric is how
regressions hide).

Exit codes: 0 all metrics within band, 1 regression or missing metric,
2 malformed input / usage error.

--update rewrites BASELINE in place with the values from CURRENT (keeping
each metric's tolerance and direction) — the ratchet for intentional
performance changes. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys

BASELINE_SCHEMA = "pss.bench-baseline.v1"


class InputError(Exception):
    pass


def load_json(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise InputError(f"{path}: cannot parse: {exc}") from exc
    if not isinstance(doc, dict):
        raise InputError(f"{path}: top level is not an object")
    return doc


def load_baseline(path: str) -> dict:
    doc = load_json(path)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise InputError(f"{path}: schema is {doc.get('schema')!r}, "
                         f"expected {BASELINE_SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise InputError(f"{path}: 'metrics' is not a non-empty object")
    for name, spec in metrics.items():
        if not isinstance(spec, dict):
            raise InputError(f"{path}: metrics[{name}]: not an object")
        value = spec.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InputError(f"{path}: metrics[{name}].value: not a number")
        tol = spec.get("tolerance")
        if not isinstance(tol, (int, float)) or isinstance(tol, bool) \
                or tol < 0:
            raise InputError(f"{path}: metrics[{name}].tolerance: "
                             "not a non-negative number")
        if spec.get("direction") not in ("higher", "lower"):
            raise InputError(f"{path}: metrics[{name}].direction: "
                             f"{spec.get('direction')!r}, expected "
                             "'higher' or 'lower'")
    return doc


def load_current(path: str) -> dict:
    doc = load_json(path)
    if doc.get("schema") != "pss.metrics.v1":
        raise InputError(f"{path}: schema is {doc.get('schema')!r}, "
                         "expected 'pss.metrics.v1'")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise InputError(f"{path}: 'metrics' is not an object")
    merged = {}
    merged.update(metrics.get("counters") or {})
    merged.update(metrics.get("gauges") or {})  # gauges win on name clash
    return merged


def bound(spec: dict) -> float:
    """The worst acceptable value for this metric."""
    if spec["direction"] == "higher":
        return spec["value"] * (1.0 - spec["tolerance"])
    return spec["value"] * (1.0 + spec["tolerance"])


def compare(baseline: dict, current: dict, quiet: bool) -> int:
    regressions = 0
    width = max(len(n) for n in baseline["metrics"])
    for name, spec in sorted(baseline["metrics"].items()):
        limit = bound(spec)
        got = current.get(name)
        if got is None:
            regressions += 1
            print(f"REGRESS  {name:<{width}}  missing from current record "
                  f"(baseline {spec['value']:.6g})")
            continue
        if spec["direction"] == "higher":
            ok = got >= limit
        else:
            ok = got <= limit
        if ok:
            if not quiet:
                print(f"ok       {name:<{width}}  {got:.6g}  "
                      f"(baseline {spec['value']:.6g}, "
                      f"{spec['direction']} is better, "
                      f"limit {limit:.6g})")
        else:
            regressions += 1
            print(f"REGRESS  {name:<{width}}  {got:.6g}  vs baseline "
                  f"{spec['value']:.6g} — past the "
                  f"{spec['tolerance']:.0%} band (limit {limit:.6g})")
    return regressions


def update_baseline(path: str, baseline: dict, current: dict) -> int:
    missing = [n for n in baseline["metrics"] if n not in current]
    if missing:
        for name in missing:
            print(f"bench_compare: --update: {name} missing from current "
                  "record, baseline untouched", file=sys.stderr)
        return 2
    for name, spec in baseline["metrics"].items():
        spec["value"] = current[name]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench_compare: baseline {path} updated "
          f"({len(baseline['metrics'])} metrics)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a bench record regresses past its committed "
                    "baseline tolerance band.")
    parser.add_argument("baseline", help="pss.bench-baseline.v1 file")
    parser.add_argument("current", help="pss.metrics.v1 bench record")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline values from CURRENT")
    parser.add_argument("--quiet", action="store_true",
                        help="only print regressions")
    args = parser.parse_args(argv)

    try:
        baseline = load_baseline(args.baseline)
        current = load_current(args.current)
    except InputError as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    if args.update:
        return update_baseline(args.baseline, baseline, current)

    regressions = compare(baseline, current, args.quiet)
    if regressions:
        print(f"bench_compare: {regressions} regression(s) vs "
              f"{args.baseline}")
        return 1
    print(f"bench_compare: {len(baseline['metrics'])} metrics within band "
          f"({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
