// pss_serve — fault-tolerant sharded serving daemon for trained networks
// (ROADMAP item 2; DESIGN.md §5 has the architecture).
//
// Loads a trained model (snapshot from `pss_run mode=train snapshot=...`, or
// a mid-training checkpoint) and serves classify/train requests over a
// length-prefixed framed protocol on a loopback TCP port. Requests coalesce
// into minibatches behind a dynamic batching window and are sharded across
// worker threads, each owning a serial-engine replica of the model. A
// heartbeat monitor requeues the in-flight requests of a crashed or hung
// worker onto healthy ones with deterministic capped-exponential backoff;
// per-request deadlines plus a bounded admission queue shed overload with
// explicit `overloaded` responses.
//
// Server usage:
//   pss_serve model=<snapshot-or-checkpoint> [port=0] [workers=2]
//     [queue=64] [max_batch=8] [window_ms=5] [deadline_ms=2000]
//     [io_timeout_ms=10000] [heartbeat_ms=20] [heartbeat_timeout_ms=1000]
//     [max_restarts=8] [backoff_base_ms=1] [backoff_cap_ms=64]
//     [backend=cpu] [f_min=1] [f_max=22] [t_present=300]
//
// Admin / client usage (one-shot verbs against a running daemon):
//   pss_serve send=ping|stats|reload|shutdown port=<port>
//
// Signals: SIGHUP hot-reloads the model file (same as the `reload` verb;
// in-flight batches finish on the old weights), SIGINT/SIGTERM shut down
// gracefully (drain the queue, answer everything admitted).
//
// Observability: metrics=/trace=/prom=/metrics_port= work as in pss_run;
// every request shows up in the serve.* counters and latency histograms
// (README "Serving"). faults= arms deterministic fault injection — e.g.
// faults=serve.worker:count=1,kind=fatal kills a worker mid-batch.
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/obs/exporter.hpp"
#include "pss/obs/manifest.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/trace.hpp"
#include "pss/serve/client.hpp"
#include "pss/serve/server.hpp"
#include "tools/run_options.hpp"

using namespace pss;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void handle_stop(int) { g_stop = 1; }
void handle_reload(int) { g_reload = 1; }

serve::ServeOptions options_from_config(const Config& cfg) {
  serve::ServeOptions opts;
  opts.model_path = cfg.get_string("model", "");
  PSS_REQUIRE(!opts.model_path.empty(),
              "pss_serve: model=<snapshot-or-checkpoint> is required");
  opts.base_config.backend = cfg.get_string("backend", "cpu");
  opts.f_min_hz = cfg.get_double("f_min", 1.0);
  opts.f_max_hz = cfg.get_double("f_max", 22.0);
  opts.t_present_ms = cfg.get_double("t_present", 300.0);
  opts.port = static_cast<std::uint16_t>(cfg.get_int("port", 0));
  opts.workers = static_cast<std::size_t>(cfg.get_int("workers", 2));
  opts.queue_capacity = static_cast<std::size_t>(cfg.get_int("queue", 64));
  opts.max_batch = static_cast<std::size_t>(cfg.get_int("max_batch", 8));
  opts.window_ms = static_cast<std::uint32_t>(cfg.get_int("window_ms", 5));
  opts.default_deadline_ms =
      static_cast<std::uint32_t>(cfg.get_int("deadline_ms", 2000));
  opts.io_timeout_ms =
      static_cast<std::uint32_t>(cfg.get_int("io_timeout_ms", 10000));
  opts.heartbeat_interval_ms =
      static_cast<std::uint32_t>(cfg.get_int("heartbeat_ms", 20));
  opts.heartbeat_timeout_ms = static_cast<std::uint32_t>(
      cfg.get_int("heartbeat_timeout_ms", 1000));
  opts.max_worker_restarts =
      static_cast<std::uint32_t>(cfg.get_int("max_restarts", 8));
  opts.backoff.base_ms = cfg.get_double("backoff_base_ms", 1.0);
  opts.backoff.cap_ms = cfg.get_double("backoff_cap_ms", 64.0);
  return opts;
}

int run_client_verb(const Config& cfg) {
  const std::string verb = cfg.get_string("send", "");
  const long port = cfg.get_int("port", 0);
  PSS_REQUIRE(port > 0, "pss_serve: send= needs port=<bound port>");
  serve::ServeClient client(static_cast<std::uint16_t>(port));
  serve::Response response;
  if (verb == "ping") {
    response = client.ping();
  } else if (verb == "stats") {
    response = client.stats();
  } else if (verb == "reload") {
    response = client.reload();
  } else if (verb == "shutdown") {
    response = client.shutdown_server();
  } else {
    throw Error("pss_serve: unknown send verb: " + verb +
                " (ping|stats|reload|shutdown)");
  }
  std::printf("%s value=%lld %s\n", serve::status_name(response.status),
              static_cast<long long>(response.value),
              response.message.c_str());
  return response.status == serve::Status::kOk ? 0 : 1;
}

int run_daemon(const Config& cfg) {
  const tools::ObsPaths obs_paths = tools::enable_observability(cfg);
  std::optional<obs::MetricsExporter> exporter;
  if (obs_paths.metrics_port >= 0) {
    exporter.emplace(static_cast<std::uint16_t>(obs_paths.metrics_port));
    std::printf("metrics exporter listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(exporter->port()));
  }

  serve::ServeServer server(options_from_config(cfg));
  std::printf("pss_serve listening on 127.0.0.1:%u (model=%s)\n",
              static_cast<unsigned>(server.port()),
              cfg.get_string("model", "").c_str());
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
#ifdef SIGHUP
  std::signal(SIGHUP, handle_reload);
#endif

  while (g_stop == 0 && !server.stopping()) {
    if (g_reload != 0) {
      g_reload = 0;
      try {
        server.reload();
        log_message(LogLevel::kInfo,
                    "pss_serve: model reloaded (generation " +
                        std::to_string(server.model_generation()) + ")");
      } catch (const std::exception& e) {
        log_message(LogLevel::kError,
                    std::string("pss_serve: reload failed, keeping old "
                                "model: ") +
                        e.what());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  std::printf("pss_serve: stopped (%s)\n", server.stats_text().c_str());

  if (!obs_paths.metrics.empty()) {
    obs::write_metrics_json(obs_paths.metrics, "pss_serve");
  }
  if (!obs_paths.trace.empty()) obs::write_chrome_trace(obs_paths.trace);
  if (!obs_paths.prom.empty()) obs::write_prometheus_text(obs_paths.prom);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = Config::from_args(argc, argv, 1);
    tools::require_known_keys(
        cfg, {"model", "port", "queue", "max_batch", "window_ms",
              "deadline_ms", "io_timeout_ms", "heartbeat_ms",
              "heartbeat_timeout_ms", "max_restarts", "backoff_base_ms",
              "backoff_cap_ms", "f_min", "f_max", "t_present", "send",
              "verbose"});
    if (!cfg.get_bool("verbose", false)) set_log_level(LogLevel::kWarn);
    tools::arm_faults_from_config(cfg);
    if (!cfg.get_string("send", "").empty()) return run_client_verb(cfg);
    return run_daemon(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pss_serve: %s\n", e.what());
    return 1;
  }
}
