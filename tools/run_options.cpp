#include "tools/run_options.hpp"

#include <algorithm>
#include <vector>

#include "pss/backend/backend.hpp"
#include "pss/common/error.hpp"
#include "pss/common/suggest.hpp"
#include "pss/graph/layer_spec.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"
#include "pss/obs/trace.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss::tools {

LearningOption parse_learning_option(const std::string& name) {
  if (name == "fp32") return LearningOption::kFloat32;
  if (name == "16bit") return LearningOption::k16Bit;
  if (name == "8bit") return LearningOption::k8Bit;
  if (name == "4bit") return LearningOption::k4Bit;
  if (name == "2bit") return LearningOption::k2Bit;
  if (name == "highfreq") return LearningOption::kHighFrequency;
  throw Error("unknown option: " + name);
}

StdpKind parse_stdp_kind(const std::string& name) {
  if (name == "stochastic") return StdpKind::kStochastic;
  if (name == "deterministic") return StdpKind::kDeterministic;
  throw Error("unknown kind: " + name);
}

RoundingMode parse_rounding_mode(const std::string& name) {
  if (name == "nearest") return RoundingMode::kNearest;
  if (name == "trunc") return RoundingMode::kTruncate;
  if (name == "stochastic") return RoundingMode::kStochastic;
  throw Error("unknown rounding: " + name);
}

namespace {

std::string require_known_backend(const std::string& name) {
  std::vector<std::string> names;
  std::string known;
  for (const BackendInfo& info : backend_registry()) {
    if (info.name == name) return name;
    if (!known.empty()) known += "|";
    known += info.name;
    names.push_back(info.name);
  }
  throw Error("unknown backend '" + name + "' (known: " + known + ")" +
              suggestion_for(name, names));
}

}  // namespace

const std::vector<std::string>& shared_config_keys() {
  static const std::vector<std::string> keys = {
      "backend",    "batch",   "checkpoint", "checkpoint_every",
      "checkpoints", "eval",   "fault_seed", "faults",
      "frame_ms",   "kind",    "label",      "layers",
      "manifest",   "metrics", "metrics_port", "name",
      "neurons",    "option",  "profile",    "prom",
      "resume",     "rounding", "seed",      "trace",
      "train",      "workers",
  };
  return keys;
}

void require_known_keys(const Config& cfg,
                        const std::vector<std::string>& extra) {
  std::vector<std::string> known = shared_config_keys();
  known.insert(known.end(), extra.begin(), extra.end());
  for (const std::string& key : cfg.keys()) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      throw Error("unknown config key '" + key + "'" +
                  suggestion_for(key, known));
    }
  }
}

ExperimentSpec spec_from_config(const Config& cfg,
                                const std::string& default_name) {
  ExperimentSpec spec;
  spec.name = cfg.get_string("name", default_name);
  // `kind=anything-else` used to fall through to stochastic silently
  // (found by the prop grammar fuzzer; corpus token kind=quantum).
  spec.kind = parse_stdp_kind(cfg.get_string("kind", "stochastic"));
  spec.option = parse_learning_option(cfg.get_string("option", "fp32"));
  spec.rounding = parse_rounding_mode(cfg.get_string("rounding", "nearest"));
  // Count-valued keys: a negative long would wrap to a huge size_t via the
  // cast (silent acceptance, found by the prop grammar fuzzer).
  const auto neurons = cfg.get_int("neurons", 100);
  PSS_REQUIRE(neurons >= 1, "neurons must be >= 1");
  spec.neuron_count = static_cast<std::size_t>(neurons);
  const auto train = cfg.get_int("train", 400);
  const auto label = cfg.get_int("label", 250);
  const auto eval = cfg.get_int("eval", 250);
  PSS_REQUIRE(train >= 0, "train must be >= 0");
  PSS_REQUIRE(label >= 0, "label must be >= 0");
  PSS_REQUIRE(eval >= 0, "eval must be >= 0");
  spec.train_images = static_cast<std::size_t>(train);
  spec.label_images = static_cast<std::size_t>(label);
  spec.eval_images = static_cast<std::size_t>(eval);
  const auto checkpoints = cfg.get_int("checkpoints", 0);
  PSS_REQUIRE(checkpoints >= 0, "checkpoints must be >= 0");
  spec.checkpoints = static_cast<std::size_t>(checkpoints);
  const auto workers = cfg.get_int("workers", 1);
  const auto batch = cfg.get_int("batch", 1);
  PSS_REQUIRE(workers >= 0, "workers must be >= 0 (0 = all cores)");
  PSS_REQUIRE(batch >= 1, "batch must be >= 1");
  spec.workers = static_cast<std::size_t>(workers);
  spec.batch_size = static_cast<std::size_t>(batch);
  const auto seed = cfg.get_int("seed", 1);
  PSS_REQUIRE(seed >= 0, "seed must be >= 0");
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.backend = require_known_backend(cfg.get_string("backend", "cpu"));
  const auto checkpoint_every = cfg.get_int("checkpoint_every", 0);
  PSS_REQUIRE(checkpoint_every >= 0, "checkpoint_every must be >= 0");
  spec.train_checkpoint_every = static_cast<std::size_t>(checkpoint_every);
  spec.train_checkpoint_path = cfg.get_string("checkpoint", "");
  spec.resume_path = cfg.get_string("resume", "");
  return spec;
}

graph::GraphConfig graph_config_from_options(const Config& cfg,
                                             const WtaConfig& base) {
  if (cfg.has("layers")) {
    return graph::graph_config_from_spec(cfg.get_string("layers", ""), base);
  }
  return graph::single_wta_graph(base);
}

void arm_faults_from_config(const Config& cfg) {
  if (cfg.has("faults")) {
    robust::faults().arm_from_spec(cfg.get_string("faults", ""));
  }
  if (cfg.has("fault_seed")) {
    const auto fault_seed = cfg.get_int("fault_seed", 0);
    PSS_REQUIRE(fault_seed >= 0, "fault_seed must be >= 0");
    robust::faults().set_seed(static_cast<std::uint64_t>(fault_seed));
  }
}

ObsPaths enable_observability(const Config& cfg) {
  ObsPaths paths;
  paths.metrics = cfg.get_string("metrics", "");
  paths.trace = cfg.get_string("trace", "");
  paths.manifest = cfg.get_string("manifest", "");
  paths.profile = cfg.get_string("profile", "");
  paths.prom = cfg.get_string("prom", "");
  if (cfg.has("metrics_port")) {
    const auto port = cfg.get_int("metrics_port", 0);
    PSS_REQUIRE(port >= 0 && port <= 65535,
                "metrics_port must be in [0, 65535] (0 = ephemeral)");
    paths.metrics_port = static_cast<int>(port);
  }
  if (paths.any()) obs::set_metrics_enabled(true);
  if (!paths.trace.empty()) {
    obs::set_trace_enabled(true);
    obs::reset_trace();
  }
  if (!paths.profile.empty()) obs::set_profile_enabled(true);
  return paths;
}

}  // namespace pss::tools
