#include "tools/run_options.hpp"

#include "pss/backend/backend.hpp"
#include "pss/common/error.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/trace.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss::tools {

LearningOption parse_learning_option(const std::string& name) {
  if (name == "fp32") return LearningOption::kFloat32;
  if (name == "16bit") return LearningOption::k16Bit;
  if (name == "8bit") return LearningOption::k8Bit;
  if (name == "4bit") return LearningOption::k4Bit;
  if (name == "2bit") return LearningOption::k2Bit;
  if (name == "highfreq") return LearningOption::kHighFrequency;
  throw Error("unknown option: " + name);
}

RoundingMode parse_rounding_mode(const std::string& name) {
  if (name == "nearest") return RoundingMode::kNearest;
  if (name == "trunc") return RoundingMode::kTruncate;
  if (name == "stochastic") return RoundingMode::kStochastic;
  throw Error("unknown rounding: " + name);
}

namespace {

std::string require_known_backend(const std::string& name) {
  std::string known;
  for (const BackendInfo& info : backend_registry()) {
    if (info.name == name) return name;
    if (!known.empty()) known += "|";
    known += info.name;
  }
  throw Error("unknown backend '" + name + "' (known: " + known + ")");
}

}  // namespace

ExperimentSpec spec_from_config(const Config& cfg,
                                const std::string& default_name) {
  ExperimentSpec spec;
  spec.name = cfg.get_string("name", default_name);
  spec.kind = cfg.get_string("kind", "stochastic") == "deterministic"
                  ? StdpKind::kDeterministic
                  : StdpKind::kStochastic;
  spec.option = parse_learning_option(cfg.get_string("option", "fp32"));
  spec.rounding = parse_rounding_mode(cfg.get_string("rounding", "nearest"));
  spec.neuron_count = static_cast<std::size_t>(cfg.get_int("neurons", 100));
  spec.train_images = static_cast<std::size_t>(cfg.get_int("train", 400));
  spec.label_images = static_cast<std::size_t>(cfg.get_int("label", 250));
  spec.eval_images = static_cast<std::size_t>(cfg.get_int("eval", 250));
  const auto checkpoints = cfg.get_int("checkpoints", 0);
  PSS_REQUIRE(checkpoints >= 0, "checkpoints must be >= 0");
  spec.checkpoints = static_cast<std::size_t>(checkpoints);
  const auto workers = cfg.get_int("workers", 1);
  const auto batch = cfg.get_int("batch", 1);
  PSS_REQUIRE(workers >= 0, "workers must be >= 0 (0 = all cores)");
  PSS_REQUIRE(batch >= 1, "batch must be >= 1");
  spec.workers = static_cast<std::size_t>(workers);
  spec.batch_size = static_cast<std::size_t>(batch);
  spec.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  spec.backend = require_known_backend(cfg.get_string("backend", "cpu"));
  const auto checkpoint_every = cfg.get_int("checkpoint_every", 0);
  PSS_REQUIRE(checkpoint_every >= 0, "checkpoint_every must be >= 0");
  spec.train_checkpoint_every = static_cast<std::size_t>(checkpoint_every);
  spec.train_checkpoint_path = cfg.get_string("checkpoint", "");
  spec.resume_path = cfg.get_string("resume", "");
  return spec;
}

void arm_faults_from_config(const Config& cfg) {
  if (cfg.has("faults")) {
    robust::faults().arm_from_spec(cfg.get_string("faults", ""));
  }
  if (cfg.has("fault_seed")) {
    robust::faults().set_seed(
        static_cast<std::uint64_t>(cfg.get_int("fault_seed", 0)));
  }
}

ObsPaths enable_observability(const Config& cfg) {
  ObsPaths paths;
  paths.metrics = cfg.get_string("metrics", "");
  paths.trace = cfg.get_string("trace", "");
  paths.manifest = cfg.get_string("manifest", "");
  if (paths.any()) obs::set_metrics_enabled(true);
  if (!paths.trace.empty()) {
    obs::set_trace_enabled(true);
    obs::reset_trace();
  }
  return paths;
}

}  // namespace pss::tools
