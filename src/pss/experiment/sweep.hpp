// Parameter sweeps over the experiment harness (Fig. 7a frequency sweep,
// Table II precision x rounding grid, ablations).
#pragma once

#include <functional>
#include <vector>

#include "pss/experiment/experiment.hpp"

namespace pss {

struct SweepPoint {
  double parameter = 0.0;
  ExperimentResult result;
};

/// Runs `base` once per value in `f_max_values`, scaling f_min with the same
/// ratio as the Table I high-frequency row (f_min = f_max * base_ratio) and
/// shrinking t_learn proportionally when `scale_t_learn` is set — the
/// frequency-control module's two phases (Sec. IV-C).
std::vector<SweepPoint> sweep_input_frequency(
    const ExperimentSpec& base, const LabeledDataset& data,
    const std::vector<double>& f_max_values, bool scale_t_learn);

/// Generic sweep: `mutate(spec, value)` produces the spec for each value.
std::vector<SweepPoint> sweep(
    const ExperimentSpec& base, const LabeledDataset& data,
    const std::vector<double>& values,
    const std::function<void(ExperimentSpec&, double)>& mutate);

}  // namespace pss
