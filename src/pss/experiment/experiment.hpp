// End-to-end learning experiment harness: the paper's protocol (train ->
// label neurons with the first part of the test set -> infer on the rest)
// packaged so each bench configures one table cell / figure point in a few
// lines.
//
// Scale note: the paper trains on all 60k images with 1000 neurons. The
// default spec is scaled down (hundreds of images, ~100 neurons) so a full
// table reproduces in minutes on one CPU core; pass scale=full via each
// bench's command line to run the paper-sized protocol. The qualitative
// shapes (which rule wins, where precision collapses, how frequency trades
// accuracy for time) are preserved at the reduced scale — that is what
// EXPERIMENTS.md records.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pss/data/dataset.hpp"
#include "pss/learning/classifier.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/learning/trainer.hpp"
#include "pss/network/wta_network.hpp"

namespace pss {

struct ExperimentSpec {
  std::string name = "experiment";
  StdpKind kind = StdpKind::kStochastic;
  LearningOption option = LearningOption::kFloat32;
  RoundingMode rounding = RoundingMode::kNearest;

  std::size_t neuron_count = 100;
  std::size_t train_images = 400;
  std::size_t label_images = 200;
  std::size_t eval_images = 200;

  /// Overrides of the Table I row frequency/time values (Fig. 7 sweeps).
  std::optional<double> f_min_hz;
  std::optional<double> f_max_hz;
  std::optional<TimeMs> t_learn_ms;

  TimeMs t_label_ms = 300.0;
  TimeMs t_infer_ms = 300.0;

  /// Number of evenly spaced mid-training evaluation checkpoints (0 = only
  /// final). Each checkpoint labels + evaluates on small subsets — used for
  /// the Fig. 7b / Fig. 8c error-vs-time curves.
  std::size_t checkpoints = 0;
  std::size_t checkpoint_eval_images = 100;

  /// Batched presentation engine. `workers` != 1 runs labelling and
  /// evaluation image-parallel on a BatchRunner (0 = hardware concurrency;
  /// results are bitwise-identical to the sequential path at any worker
  /// count). `batch_size` > 1 additionally switches training to minibatch
  /// STDP (a different — batched — learning schedule; still worker-count
  /// independent).
  std::size_t workers = 1;
  std::size_t batch_size = 1;

  std::uint64_t seed = 1;

  /// Compute backend name (registry key: cpu | cpu_simd | cuda stub). The
  /// spec validates the name at network construction time.
  std::string backend = "cpu";

  /// Fault tolerance: write a training checkpoint every N images to
  /// `train_checkpoint_path` (0 = off), and/or resume an interrupted run
  /// from the checkpoint file at `resume_path` before training. A resumed
  /// run continues bitwise-identically to the uninterrupted one (same spec
  /// and seed required; see src/pss/robust/checkpoint.hpp). Distinct from
  /// `checkpoints` above, which configures mid-training *evaluations*.
  std::size_t train_checkpoint_every = 0;
  std::string train_checkpoint_path;
  std::string resume_path;

  /// Full WtaConfig derived from this spec (exposed for tests).
  WtaConfig network_config() const;
  TrainerConfig trainer_config() const;
};

struct ErrorTracePoint {
  std::size_t images_seen = 0;
  TimeMs simulated_ms = 0.0;
  double wall_seconds = 0.0;
  double error_rate = 1.0;
};

struct ExperimentResult {
  std::string name;
  double accuracy = 0.0;
  double error_rate = 1.0;
  std::size_t labelled_neurons = 0;
  std::size_t neuron_count = 0;

  double train_wall_seconds = 0.0;
  double total_wall_seconds = 0.0;
  TimeMs simulated_learning_ms = 0.0;

  /// Conductance-map quality metrics (Fig. 5 / Fig. 6b).
  double conductance_contrast = 0.0;  ///< quartile contrast, per-neuron mean
  double bottom_fraction = 0.0;       ///< synapses at/near G_min
  double top_fraction = 0.0;          ///< synapses at/near G_max

  std::vector<ErrorTracePoint> error_trace;

  /// Run identity / resume ancestry (from the trainer; see obs manifests).
  robust::CheckpointLineage lineage;
};

/// Runs the full protocol on `data`. The dataset's test split is divided
/// into labelling/evaluation parts per the spec.
ExperimentResult run_learning_experiment(const ExperimentSpec& spec,
                                         const LabeledDataset& data);

/// Per-neuron conductance maps as images (Fig. 5 / Fig. 8a visualization).
std::vector<Image> conductance_maps(const WtaNetwork& network,
                                    std::size_t max_maps,
                                    std::size_t image_side = kImageSide);

/// Fraction of conductances within one grid step of the bottom/top of the
/// range (Fig. 6b collapse metric).
std::pair<double, double> edge_fractions(const ConductanceMatrix& matrix,
                                         double tolerance = 0.02);

}  // namespace pss
