#include "pss/experiment/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/common/stopwatch.hpp"
#include "pss/io/pgm.hpp"
#include "pss/robust/synaptic_faults.hpp"
#include "pss/stats/summary.hpp"

namespace pss {

WtaConfig ExperimentSpec::network_config() const {
  WtaConfig cfg = WtaConfig::from_table1(option, kind, neuron_count);
  cfg.stdp.rounding = rounding;
  cfg.seed = seed;
  cfg.backend = backend;
  return cfg;
}

TrainerConfig ExperimentSpec::trainer_config() const {
  TrainerConfig cfg = TrainerConfig::from_table1(option);
  if (f_min_hz) cfg.f_min_hz = *f_min_hz;
  if (f_max_hz) cfg.f_max_hz = *f_max_hz;
  if (t_learn_ms) cfg.t_learn_ms = *t_learn_ms;
  cfg.batch_size = batch_size;
  cfg.checkpoint_every = train_checkpoint_every;
  cfg.checkpoint_path = train_checkpoint_path;
  return cfg;
}

namespace {

/// Labels and evaluates the current network state (shared by the final
/// measurement and mid-training checkpoints). With a runner, both phases go
/// image-parallel — the results are identical either way.
double evaluate_now(WtaNetwork& network, const PixelFrequencyMap& map,
                    const Dataset& label_set, const Dataset& eval_set,
                    TimeMs t_label, TimeMs t_infer, BatchRunner* runner,
                    std::size_t* labelled_out = nullptr) {
  const LabelingResult labels =
      runner ? label_neurons(network, label_set, map, t_label, *runner)
             : label_neurons(network, label_set, map, t_label);
  if (labelled_out) *labelled_out = labels.labelled_neurons;
  SnnClassifier classifier(network, labels.neuron_labels, labels.class_count,
                           map, t_infer);
  return (runner ? classifier.evaluate(eval_set, *runner)
                 : classifier.evaluate(eval_set))
      .accuracy;
}

}  // namespace

ExperimentResult run_learning_experiment(const ExperimentSpec& spec,
                                         const LabeledDataset& data) {
  PSS_REQUIRE(spec.train_images > 0, "need training images");
  PSS_REQUIRE(!data.train.empty() && !data.test.empty(),
              "dataset must have train and test splits");

  Stopwatch total_clock;
  WtaNetwork network(spec.network_config());
  const TrainerConfig tcfg = spec.trainer_config();
  UnsupervisedTrainer trainer(network, tcfg);
  if (!spec.resume_path.empty()) {
    trainer.resume_from(robust::load_checkpoint(spec.resume_path));
  }
  // Companion-paper synaptic faults (armed via `synapse.*` fault points):
  // damage the initial conductances before any training. STDP may later
  // rewrite stuck cells — the model is initial-state damage, not a
  // persistent hardware clamp.
  if (const robust::SynapticFaultPlan fault_plan =
          robust::synaptic_plan_from_injector();
      fault_plan.any()) {
    const robust::SynapticFaultSummary damage =
        robust::apply_synaptic_faults(network.conductance(), fault_plan);
    PSS_LOG_INFO << "synaptic faults: " << damage.stuck_lo << " stuck-lo, "
                 << damage.stuck_hi << " stuck-hi, " << damage.perturbed
                 << " perturbed";
  }
  const PixelFrequencyMap map(tcfg.f_min_hz, tcfg.f_max_hz);

  std::optional<BatchRunner> runner;
  if (spec.workers != 1 || spec.batch_size > 1) runner.emplace(spec.workers);
  BatchRunner* runner_ptr = runner ? &*runner : nullptr;

  const Dataset train = data.train.head(spec.train_images);
  const auto [label_set_full, eval_set_full] =
      data.labelling_split(spec.label_images);
  const Dataset eval_set = eval_set_full.head(spec.eval_images);
  PSS_REQUIRE(!label_set_full.empty() && !eval_set.empty(),
              "labelling/evaluation splits are empty — test set too small");

  ExperimentResult result;
  result.name = spec.name;
  result.neuron_count = spec.neuron_count;

  // Mid-training checkpoints for error-vs-time curves.
  std::vector<std::size_t> checkpoint_at;
  if (spec.checkpoints > 0) {
    for (std::size_t k = 1; k <= spec.checkpoints; ++k) {
      checkpoint_at.push_back(
          std::max<std::size_t>(1, train.size() * k / (spec.checkpoints + 1)));
    }
  }
  const Dataset cp_label = label_set_full.head(spec.checkpoint_eval_images);
  const Dataset cp_eval = eval_set.head(spec.checkpoint_eval_images);

  Stopwatch train_clock;
  double checkpoint_overhead_s = 0.0;
  const auto on_image = [&](std::size_t index) {
    if (std::find(checkpoint_at.begin(), checkpoint_at.end(), index + 1) ==
        checkpoint_at.end()) {
      return;
    }
    Stopwatch cp_clock;
    const double acc =
        evaluate_now(network, map, cp_label, cp_eval, spec.t_label_ms,
                     spec.t_infer_ms, runner_ptr);
    checkpoint_overhead_s += cp_clock.seconds();
    result.error_trace.push_back(
        {index + 1, static_cast<double>(index + 1) * tcfg.t_learn_ms,
         train_clock.seconds() - checkpoint_overhead_s, 1.0 - acc});
  };
  // Minibatch STDP (spec.batch_size > 1) trains through the runner; with
  // per-image updates the sequential trainer is the reference path.
  TrainingStats tstats = spec.batch_size > 1
                             ? trainer.train(train, *runner, on_image)
                             : trainer.train(train, on_image);
  result.train_wall_seconds = train_clock.seconds() - checkpoint_overhead_s;
  result.simulated_learning_ms = tstats.simulated_ms;
  result.lineage = trainer.lineage();

  std::size_t labelled = 0;
  result.accuracy =
      evaluate_now(network, map, label_set_full, eval_set, spec.t_label_ms,
                   spec.t_infer_ms, runner_ptr, &labelled);
  result.error_rate = 1.0 - result.accuracy;
  result.labelled_neurons = labelled;
  result.error_trace.push_back({train.size(), tstats.simulated_ms,
                                result.train_wall_seconds,
                                result.error_rate});

  // Conductance-map quality metrics.
  const ConductanceMatrix& g = network.conductance();
  double contrast = 0.0;
  for (std::size_t j = 0; j < g.post_count(); ++j) {
    contrast += quartile_contrast(g.row(static_cast<NeuronIndex>(j)));
  }
  result.conductance_contrast = contrast / static_cast<double>(g.post_count());
  const auto [bottom, top] = edge_fractions(g);
  result.bottom_fraction = bottom;
  result.top_fraction = top;

  result.total_wall_seconds = total_clock.seconds();
  PSS_LOG_INFO << spec.name << ": accuracy " << result.accuracy << " ("
               << labelled << "/" << spec.neuron_count
               << " neurons labelled, " << result.train_wall_seconds
               << " s training)";
  return result;
}

std::vector<Image> conductance_maps(const WtaNetwork& network,
                                    std::size_t max_maps,
                                    std::size_t image_side) {
  PSS_REQUIRE(network.input_channels() == image_side * image_side,
              "input channel count is not a square image");
  const ConductanceMatrix& g = network.conductance();
  const std::size_t count = std::min<std::size_t>(max_maps, g.post_count());
  std::vector<Image> maps;
  maps.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    maps.push_back(conductance_to_image(g.row(static_cast<NeuronIndex>(j)),
                                        image_side, image_side, g.g_min(),
                                        g.g_max()));
  }
  return maps;
}

std::pair<double, double> edge_fractions(const ConductanceMatrix& matrix,
                                         double tolerance) {
  const double range = matrix.g_max() - matrix.g_min();
  const double lo = matrix.g_min() + tolerance * range;
  const double hi = matrix.g_max() - tolerance * range;
  std::uint64_t bottom = 0;
  std::uint64_t top = 0;
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < matrix.post_count(); ++j) {
    for (double v : matrix.row(static_cast<NeuronIndex>(j))) {
      ++total;
      if (v <= lo) ++bottom;
      if (v >= hi) ++top;
    }
  }
  return {static_cast<double>(bottom) / static_cast<double>(total),
          static_cast<double>(top) / static_cast<double>(total)};
}

}  // namespace pss
