#include "pss/experiment/sweep.hpp"

#include <algorithm>

#include "pss/common/error.hpp"
#include "pss/io/table.hpp"

namespace pss {

std::vector<SweepPoint> sweep(
    const ExperimentSpec& base, const LabeledDataset& data,
    const std::vector<double>& values,
    const std::function<void(ExperimentSpec&, double)>& mutate) {
  PSS_REQUIRE(!values.empty(), "sweep needs at least one value");
  std::vector<SweepPoint> points;
  points.reserve(values.size());
  for (double v : values) {
    ExperimentSpec spec = base;
    mutate(spec, v);
    points.push_back({v, run_learning_experiment(spec, data)});
  }
  return points;
}

std::vector<SweepPoint> sweep_input_frequency(
    const ExperimentSpec& base, const LabeledDataset& data,
    const std::vector<double>& f_max_values, bool scale_t_learn) {
  const TrainerConfig base_cfg = base.trainer_config();
  const double ratio = base_cfg.f_min_hz / base_cfg.f_max_hz;
  return sweep(base, data, f_max_values,
               [&](ExperimentSpec& spec, double f_max) {
                 spec.f_max_hz = f_max;
                 spec.f_min_hz = std::max(0.5, f_max * ratio);
                 if (scale_t_learn) {
                   spec.t_learn_ms = std::max(
                       20.0, base_cfg.t_learn_ms * base_cfg.f_max_hz / f_max);
                 }
                 spec.name = base.name + " f_max=" + format_fixed(f_max, 0);
               });
}

}  // namespace pss
