#include "pss/stats/spiketrain.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

IsiStats isi_statistics(std::span<const TimeMs> spike_times) {
  IsiStats s;
  if (spike_times.size() < 2) return s;
  std::vector<double> intervals;
  intervals.reserve(spike_times.size() - 1);
  for (std::size_t i = 1; i < spike_times.size(); ++i) {
    const double isi = spike_times[i] - spike_times[i - 1];
    PSS_REQUIRE(isi >= 0.0, "spike times must be sorted ascending");
    intervals.push_back(isi);
  }
  s.interval_count = intervals.size();
  s.min_ms = *std::min_element(intervals.begin(), intervals.end());
  s.max_ms = *std::max_element(intervals.begin(), intervals.end());
  double sum = 0.0;
  for (double v : intervals) sum += v;
  s.mean_ms = sum / static_cast<double>(intervals.size());
  double ss = 0.0;
  for (double v : intervals) ss += (v - s.mean_ms) * (v - s.mean_ms);
  s.stddev_ms = std::sqrt(ss / static_cast<double>(intervals.size()));
  s.cv = s.mean_ms > 0.0 ? s.stddev_ms / s.mean_ms : 0.0;
  return s;
}

double fano_factor(std::span<const TimeMs> spike_times, TimeMs duration_ms,
                   TimeMs window_ms) {
  PSS_REQUIRE(duration_ms > 0.0 && window_ms > 0.0, "invalid windows");
  const auto windows = static_cast<std::size_t>(duration_ms / window_ms);
  PSS_REQUIRE(windows >= 2, "need at least two windows");
  std::vector<std::size_t> counts(windows, 0);
  for (TimeMs t : spike_times) {
    const auto w = static_cast<std::size_t>(t / window_ms);
    if (w < windows) ++counts[w];
  }
  double mean = 0.0;
  for (std::size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(windows);
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (std::size_t c : counts) {
    var += (static_cast<double>(c) - mean) * (static_cast<double>(c) - mean);
  }
  var /= static_cast<double>(windows);
  return var / mean;
}

std::vector<double> rate_curve(std::span<const TimeMs> spike_times,
                               TimeMs duration_ms, TimeMs bin_ms) {
  PSS_REQUIRE(duration_ms > 0.0 && bin_ms > 0.0, "invalid bins");
  const auto bins =
      static_cast<std::size_t>(std::ceil(duration_ms / bin_ms));
  std::vector<double> rates(bins, 0.0);
  for (TimeMs t : spike_times) {
    auto b = static_cast<std::size_t>(t / bin_ms);
    if (b >= bins) b = bins - 1;
    rates[b] += 1.0;
  }
  const double to_hz = 1000.0 / bin_ms;
  for (double& r : rates) r *= to_hz;
  return rates;
}

double van_rossum_distance(std::span<const TimeMs> a, std::span<const TimeMs> b,
                           TimeMs tau_ms) {
  PSS_REQUIRE(tau_ms > 0.0, "tau must be positive");
  // D^2 = (1/tau) * [ sum_ij e^{-|ai-aj|/tau} + sum_ij e^{-|bi-bj|/tau}
  //                   - 2 sum_ij e^{-|ai-bj|/tau} ] / 2
  // (closed form of the L2 distance between exponentially filtered trains,
  // up to the conventional normalization; we fold 1/(2 tau) into the sum).
  auto kernel_sum = [tau_ms](std::span<const TimeMs> x,
                             std::span<const TimeMs> y) {
    double s = 0.0;
    for (TimeMs xi : x) {
      for (TimeMs yj : y) {
        s += std::exp(-std::abs(xi - yj) / tau_ms);
      }
    }
    return s;
  };
  const double d2 =
      0.5 * (kernel_sum(a, a) + kernel_sum(b, b) - 2.0 * kernel_sum(a, b));
  return std::sqrt(std::max(0.0, d2));
}

double coincidence_fraction(std::span<const TimeMs> a,
                            std::span<const TimeMs> b, TimeMs window_ms) {
  PSS_REQUIRE(window_ms >= 0.0, "window must be non-negative");
  if (a.empty()) return 0.0;
  std::size_t hits = 0;
  std::size_t j = 0;
  for (TimeMs t : a) {
    while (j < b.size() && b[j] < t - window_ms) ++j;
    if (j < b.size() && b[j] <= t + window_ms) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

}  // namespace pss
