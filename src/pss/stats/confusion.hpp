// Confusion matrix and accuracy accounting for the inference phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pss {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t class_count);

  std::size_t class_count() const { return classes_; }

  /// Records one prediction. `predicted == -1` counts as an abstention
  /// (always wrong, attributed to no predicted class).
  void record(std::size_t truth, int predicted);

  std::uint64_t count(std::size_t truth, std::size_t predicted) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t correct() const { return correct_; }
  std::uint64_t abstentions() const { return abstentions_; }

  double accuracy() const;
  double error_rate() const { return 1.0 - accuracy(); }

  /// Per-class recall (correct / truth-count); 0 for unseen classes.
  std::vector<double> recall() const;

  /// Multi-line human-readable rendering for experiment logs.
  std::string to_string() const;

 private:
  std::size_t classes_;
  std::vector<std::uint64_t> cells_;  // truth-major
  std::vector<std::uint64_t> truth_totals_;
  std::uint64_t total_ = 0;
  std::uint64_t correct_ = 0;
  std::uint64_t abstentions_ = 0;
};

}  // namespace pss
