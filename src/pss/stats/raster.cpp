#include "pss/stats/raster.hpp"

#include <algorithm>
#include <sstream>

#include "pss/common/error.hpp"

namespace pss {

SpikeRaster::SpikeRaster(std::size_t row_count, TimeMs duration_ms)
    : rows_(row_count), duration_(duration_ms) {
  PSS_REQUIRE(row_count > 0, "raster needs rows");
  PSS_REQUIRE(duration_ms > 0.0, "raster duration must be positive");
}

void SpikeRaster::record(NeuronIndex row, TimeMs t) {
  PSS_REQUIRE(row < rows_, "raster row out of range");
  events_.emplace_back(t, row);
}

std::vector<TimeMs> SpikeRaster::row_times(NeuronIndex row) const {
  std::vector<TimeMs> out;
  for (const auto& [t, r] : events_) {
    if (r == row) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double SpikeRaster::row_rate_hz(NeuronIndex row) const {
  std::size_t n = 0;
  for (const auto& [t, r] : events_) {
    if (r == row) ++n;
  }
  return static_cast<double>(n) / (duration_ * 1e-3);
}

std::string SpikeRaster::to_string(std::size_t width,
                                   std::size_t max_rows) const {
  const std::size_t shown = std::min(rows_, max_rows);
  const std::size_t stride = (rows_ + shown - 1) / shown;
  std::vector<std::string> lines(shown, std::string(width, ' '));
  for (const auto& [t, r] : events_) {
    const std::size_t line = r / stride;
    if (line >= shown) continue;
    auto col =
        static_cast<std::size_t>(t / duration_ * static_cast<double>(width));
    if (col >= width) col = width - 1;
    lines[line][col] = '.';
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < shown; ++i) {
    os << lines[i] << "\n";
  }
  return os.str();
}

}  // namespace pss
