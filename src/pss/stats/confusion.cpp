#include "pss/stats/confusion.hpp"

#include <iomanip>
#include <sstream>

#include "pss/common/error.hpp"

namespace pss {

ConfusionMatrix::ConfusionMatrix(std::size_t class_count)
    : classes_(class_count),
      cells_(class_count * class_count, 0),
      truth_totals_(class_count, 0) {
  PSS_REQUIRE(class_count > 0, "need at least one class");
}

void ConfusionMatrix::record(std::size_t truth, int predicted) {
  PSS_REQUIRE(truth < classes_, "truth label out of range");
  ++total_;
  ++truth_totals_[truth];
  if (predicted < 0) {
    ++abstentions_;
    return;
  }
  PSS_REQUIRE(static_cast<std::size_t>(predicted) < classes_,
              "predicted label out of range");
  ++cells_[truth * classes_ + static_cast<std::size_t>(predicted)];
  if (static_cast<std::size_t>(predicted) == truth) ++correct_;
}

std::uint64_t ConfusionMatrix::count(std::size_t truth,
                                     std::size_t predicted) const {
  PSS_REQUIRE(truth < classes_ && predicted < classes_, "index out of range");
  return cells_[truth * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct_) /
                           static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::recall() const {
  std::vector<double> out(classes_, 0.0);
  for (std::size_t t = 0; t < classes_; ++t) {
    if (truth_totals_[t] == 0) continue;
    out[t] = static_cast<double>(cells_[t * classes_ + t]) /
             static_cast<double>(truth_totals_[t]);
  }
  return out;
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "truth\\pred";
  for (std::size_t p = 0; p < classes_; ++p) os << std::setw(6) << p;
  os << "\n";
  for (std::size_t t = 0; t < classes_; ++t) {
    os << std::setw(10) << t;
    for (std::size_t p = 0; p < classes_; ++p) {
      os << std::setw(6) << cells_[t * classes_ + p];
    }
    os << "\n";
  }
  os << "accuracy " << std::fixed << std::setprecision(3) << accuracy()
     << " (" << correct_ << "/" << total_ << ", " << abstentions_
     << " abstained)";
  return os.str();
}

}  // namespace pss
