// Spike raster recording and ASCII rendering (Fig. 6a: "each dot represents
// one spike").
#pragma once

#include <string>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

class SpikeRaster {
 public:
  SpikeRaster(std::size_t row_count, TimeMs duration_ms);

  std::size_t row_count() const { return rows_; }
  TimeMs duration_ms() const { return duration_; }

  void record(NeuronIndex row, TimeMs t);

  std::size_t spike_count() const { return events_.size(); }
  const std::vector<std::pair<TimeMs, NeuronIndex>>& events() const {
    return events_;
  }

  /// Spikes of one row, sorted by time.
  std::vector<TimeMs> row_times(NeuronIndex row) const;

  /// Mean firing rate of a row in Hz.
  double row_rate_hz(NeuronIndex row) const;

  /// ASCII dot plot: one text row per raster row (subsampled to at most
  /// `max_rows`), time binned into `width` columns.
  std::string to_string(std::size_t width = 80, std::size_t max_rows = 24) const;

 private:
  std::size_t rows_;
  TimeMs duration_;
  std::vector<std::pair<TimeMs, NeuronIndex>> events_;
};

}  // namespace pss
