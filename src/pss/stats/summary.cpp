#include "pss/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

SummaryStats summarize(std::span<const double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = sorted[sorted.size() / 2];
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(sorted.size()));
  return s;
}

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) {
  PSS_REQUIRE(a.size() == b.size() && !a.empty(),
              "correlation needs equal-length non-empty series");
  const auto n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double quartile_contrast(std::span<const double> values) {
  PSS_REQUIRE(values.size() >= 4, "need at least four values");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t q = sorted.size() / 4;
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < q; ++i) {
    lo += sorted[i];
    hi += sorted[sorted.size() - 1 - i];
  }
  return (hi - lo) / static_cast<double>(q);
}

}  // namespace pss
