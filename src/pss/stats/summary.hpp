// Small descriptive-statistics helpers shared by tests and benches.
#pragma once

#include <span>
#include <vector>

namespace pss {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

SummaryStats summarize(std::span<const double> values);

/// Pearson correlation of two equal-length series (Fig. 4 activity match).
double pearson_correlation(std::span<const double> a,
                           std::span<const double> b);

/// Image-contrast measure used for conductance-map quality (Fig. 5): the
/// difference between the mean of the top quartile and the bottom quartile
/// of values. High contrast = crisp learned pattern; near zero = washed-out
/// map that "learned the overlapping features of all classes".
double quartile_contrast(std::span<const double> values);

}  // namespace pss
