#include "pss/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "pss/common/error.hpp"

namespace pss {

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), counts_(bin_count, 0) {
  PSS_REQUIRE(hi > lo, "histogram range must be non-empty");
  PSS_REQUIRE(bin_count > 0, "histogram needs at least one bin");
  width_ = (hi - lo) / static_cast<double>(bin_count);
}

void Histogram::add(double value) {
  const double clamped = std::clamp(value, lo_, hi_);
  auto i = static_cast<std::size_t>((clamped - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
  ++total_;
  sum_ += value;
  sum_sq_ += value * value;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::fraction(std::size_t i) const {
  PSS_REQUIRE(i < counts_.size(), "bin index out of range");
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_[i]) /
                           static_cast<double>(total_);
}

double Histogram::center(std::size_t i) const {
  PSS_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double Histogram::variance() const {
  if (total_ == 0) return 0.0;
  const double m = mean();
  return sum_sq_ / static_cast<double>(total_) - m * m;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::ostringstream os;
  const std::uint64_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) *
                        static_cast<double>(max_width) /
                        static_cast<double>(peak));
    os << std::fixed << std::setprecision(3) << std::setw(8) << center(i)
       << " |" << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace pss
