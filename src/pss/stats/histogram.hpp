// Fixed-range histogram used by the Fig. 6b conductance-distribution
// analysis (distribution of all synapse conductances after learning).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pss {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bin_count);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }

  void add(double value);
  void add_all(std::span<const double> values);

  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }

  /// Fraction of samples in bin i.
  double fraction(std::size_t i) const;

  /// Bin centre value.
  double center(std::size_t i) const;

  double mean() const;
  double variance() const;

  /// Fraction of mass in the lowest bin — the Fig. 6b signature of
  /// deterministic low-precision collapse ("a large portion of synapses
  /// drops to the minimal conductance value").
  double bottom_fraction() const { return fraction(0); }
  double top_fraction() const { return fraction(bin_count() - 1); }

  /// ASCII bar rendering for bench output.
  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace pss
