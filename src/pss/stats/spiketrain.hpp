// Spike-train analysis: the statistics an SNN-simulator release needs to
// characterize and compare activity — inter-spike-interval moments, CV,
// Fano factor, binned rate curves, and the van Rossum distance used to
// quantify "similar spiking activity" between simulators (Fig. 4) more
// sharply than rate correlation alone.
#pragma once

#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

struct IsiStats {
  std::size_t interval_count = 0;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  /// Coefficient of variation (stddev/mean). ~1 for a Poisson process,
  /// -> 0 for a regular (clock-like) train.
  double cv = 0.0;
};

/// ISI statistics of one spike train (times must be sorted ascending;
/// fewer than two spikes yields an all-zero result).
IsiStats isi_statistics(std::span<const TimeMs> spike_times);

/// Fano factor of spike counts in windows of `window_ms` over [0, duration):
/// variance/mean of per-window counts. 1 for Poisson, < 1 for regular.
double fano_factor(std::span<const TimeMs> spike_times, TimeMs duration_ms,
                   TimeMs window_ms);

/// Binned firing-rate curve (Hz per bin) over [0, duration).
std::vector<double> rate_curve(std::span<const TimeMs> spike_times,
                               TimeMs duration_ms, TimeMs bin_ms);

/// van Rossum (2001) spike-train distance: each train is convolved with a
/// causal exponential kernel exp(-t/tau) and the L2 distance of the filtered
/// signals is returned (computed in closed form; O(n*m)). 0 iff the trains
/// are identical; grows with missing/extra/shifted spikes.
double van_rossum_distance(std::span<const TimeMs> a,
                           std::span<const TimeMs> b, TimeMs tau_ms);

/// Pairwise smoothed population synchrony: fraction of spikes of train `a`
/// that have a spike of `b` within +-window_ms (a simple coincidence
/// measure used by the activity tests).
double coincidence_fraction(std::span<const TimeMs> a,
                            std::span<const TimeMs> b, TimeMs window_ms);

}  // namespace pss
