#include "pss/learning/labeler.hpp"

#include <algorithm>

#include "pss/common/error.hpp"

namespace pss {

LabelingResult label_neurons(WtaNetwork& network, const Dataset& labelling_set,
                             const PixelFrequencyMap& frequency_map,
                             TimeMs t_present_ms) {
  PSS_REQUIRE(!labelling_set.empty(), "labelling set must not be empty");
  const std::size_t classes = labelling_set.class_count();
  const std::size_t neurons = network.neuron_count();

  LabelingResult result;
  result.class_count = classes;
  result.response.assign(neurons, std::vector<std::uint32_t>(classes, 0));

  std::vector<double> rates;
  for (std::size_t i = 0; i < labelling_set.size(); ++i) {
    const Image& img = labelling_set[i];
    frequency_map.frequencies(img.span(), rates);
    const PresentationResult r =
        network.present(rates, t_present_ms, /*learn=*/false);
    for (std::size_t j = 0; j < neurons; ++j) {
      result.response[j][img.label] += r.spike_counts[j];
    }
  }

  result.neuron_labels.assign(neurons, -1);
  for (std::size_t j = 0; j < neurons; ++j) {
    const auto& row = result.response[j];
    const auto it = std::max_element(row.begin(), row.end());
    if (*it > 0) {
      result.neuron_labels[j] = static_cast<int>(it - row.begin());
      ++result.labelled_neurons;
    }
  }
  return result;
}

}  // namespace pss
