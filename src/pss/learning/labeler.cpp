#include "pss/learning/labeler.hpp"

#include <algorithm>

#include "pss/common/error.hpp"
#include "pss/obs/trace.hpp"

namespace pss {

namespace {

/// Argmax pass shared by the sequential and batched paths.
void assign_labels(LabelingResult& result, std::size_t neurons) {
  result.neuron_labels.assign(neurons, -1);
  for (std::size_t j = 0; j < neurons; ++j) {
    const auto& row = result.response[j];
    const auto it = std::max_element(row.begin(), row.end());
    if (*it > 0) {
      result.neuron_labels[j] = static_cast<int>(it - row.begin());
      ++result.labelled_neurons;
    }
  }
}

}  // namespace

LabelingResult label_neurons(WtaNetwork& network, const Dataset& labelling_set,
                             const PixelFrequencyMap& frequency_map,
                             TimeMs t_present_ms) {
  PSS_REQUIRE(!labelling_set.empty(), "labelling set must not be empty");
  obs::TraceSpan span("label", "pipeline",
                      static_cast<std::int64_t>(labelling_set.size()));
  const std::size_t classes = labelling_set.class_count();
  const std::size_t neurons = network.neuron_count();

  LabelingResult result;
  result.class_count = classes;
  result.response.assign(neurons, std::vector<std::uint32_t>(classes, 0));

  std::vector<double> rates;
  for (std::size_t i = 0; i < labelling_set.size(); ++i) {
    const Image& img = labelling_set[i];
    frequency_map.frequencies(img.span(), rates);
    const PresentationResult r =
        network.present(rates, t_present_ms, /*learn=*/false);
    for (std::size_t j = 0; j < neurons; ++j) {
      result.response[j][img.label] += r.spike_counts[j];
    }
  }

  assign_labels(result, neurons);
  return result;
}

LabelingResult label_neurons(WtaNetwork& network, const Dataset& labelling_set,
                             const PixelFrequencyMap& frequency_map,
                             TimeMs t_present_ms, BatchRunner& runner) {
  PSS_REQUIRE(!labelling_set.empty(), "labelling set must not be empty");
  obs::TraceSpan span("label", "pipeline",
                      static_cast<std::int64_t>(labelling_set.size()));
  const std::size_t classes = labelling_set.class_count();
  const std::size_t neurons = network.neuron_count();

  // Image i replays as presentation base + i on whichever replica gets it —
  // exactly the index the sequential loop would have used.
  const std::uint64_t base = network.presentation_index();

  struct WorkerState {
    WtaNetwork net;
    std::vector<double> rates;
  };
  PerWorker<WorkerState> workers(runner.worker_count());
  std::vector<std::vector<std::uint32_t>> counts(labelling_set.size());

  runner.run(labelling_set.size(), [&](std::size_t w, std::size_t i) {
    WorkerState& state = workers.get(w, [&] {
      return WorkerState{network.replicate(&runner.worker_engine(w)), {}};
    });
    frequency_map.frequencies(labelling_set[i].span(), state.rates);
    state.net.set_presentation_index(base + i);
    counts[i] =
        state.net.present(state.rates, t_present_ms, /*learn=*/false)
            .spike_counts;
  });
  network.skip_presentations(labelling_set.size(), t_present_ms);

  LabelingResult result;
  result.class_count = classes;
  result.response.assign(neurons, std::vector<std::uint32_t>(classes, 0));
  for (std::size_t i = 0; i < labelling_set.size(); ++i) {
    const int label = labelling_set[i].label;
    for (std::size_t j = 0; j < neurons; ++j) {
      result.response[j][label] += counts[i][j];
    }
  }

  assign_labels(result, neurons);
  return result;
}

}  // namespace pss
