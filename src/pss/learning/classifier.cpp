#include "pss/learning/classifier.hpp"

#include <algorithm>

#include "pss/common/error.hpp"
#include "pss/common/stopwatch.hpp"
#include "pss/obs/trace.hpp"

namespace pss {

SnnClassifier::SnnClassifier(WtaNetwork& network,
                             std::vector<int> neuron_labels,
                             std::size_t class_count,
                             PixelFrequencyMap frequency_map,
                             TimeMs t_present_ms)
    : network_(network),
      neuron_labels_(std::move(neuron_labels)),
      class_count_(class_count),
      frequency_map_(frequency_map),
      t_present_ms_(t_present_ms),
      class_sizes_(class_count, 0) {
  PSS_REQUIRE(neuron_labels_.size() == network.neuron_count(),
              "label vector size must equal neuron count");
  PSS_REQUIRE(class_count > 0, "need at least one class");
  PSS_REQUIRE(t_present_ms > 0.0, "presentation time must be positive");
  for (int label : neuron_labels_) {
    if (label >= 0) {
      PSS_REQUIRE(static_cast<std::size_t>(label) < class_count,
                  "neuron label out of class range");
      ++class_sizes_[static_cast<std::size_t>(label)];
    }
  }
}

int SnnClassifier::predict(const Image& image) {
  frequency_map_.frequencies(image.span(), rates_);
  const PresentationResult r =
      network_.present(rates_, t_present_ms_, /*learn=*/false);
  return predict_from_counts(r.spike_counts);
}

int SnnClassifier::predict_from_counts(
    std::span<const std::uint32_t> spike_counts) const {
  PSS_REQUIRE(spike_counts.size() == neuron_labels_.size(),
              "spike count vector size must equal neuron count");
  std::vector<double> score(class_count_, 0.0);
  for (std::size_t j = 0; j < neuron_labels_.size(); ++j) {
    const int label = neuron_labels_[j];
    if (label < 0) continue;
    score[static_cast<std::size_t>(label)] += spike_counts[j];
  }
  double best = 0.0;
  int winner = -1;
  for (std::size_t c = 0; c < class_count_; ++c) {
    if (class_sizes_[c] == 0) continue;
    const double mean = score[c] / static_cast<double>(class_sizes_[c]);
    if (mean > best) {
      best = mean;
      winner = static_cast<int>(c);
    }
  }
  return winner;
}

EvaluationResult SnnClassifier::evaluate(const Dataset& data) {
  PSS_REQUIRE(!data.empty(), "evaluation set must not be empty");
  obs::TraceSpan span("evaluate", "pipeline",
                      static_cast<std::int64_t>(data.size()));
  EvaluationResult result(class_count_);
  Stopwatch clock;
  for (std::size_t i = 0; i < data.size(); ++i) {
    result.confusion.record(data[i].label, predict(data[i]));
  }
  result.accuracy = result.confusion.accuracy();
  result.wall_seconds = clock.seconds();
  return result;
}

EvaluationResult SnnClassifier::evaluate(const Dataset& data,
                                         BatchRunner& runner) {
  PSS_REQUIRE(!data.empty(), "evaluation set must not be empty");
  obs::TraceSpan span("evaluate", "pipeline",
                      static_cast<std::int64_t>(data.size()));
  EvaluationResult result(class_count_);
  Stopwatch clock;

  const std::uint64_t base = network_.presentation_index();

  struct WorkerState {
    WtaNetwork net;
    std::vector<double> rates;
  };
  PerWorker<WorkerState> workers(runner.worker_count());
  std::vector<int> predictions(data.size(), -1);

  runner.run(data.size(), [&](std::size_t w, std::size_t i) {
    WorkerState& state = workers.get(w, [&] {
      return WorkerState{network_.replicate(&runner.worker_engine(w)), {}};
    });
    frequency_map_.frequencies(data[i].span(), state.rates);
    state.net.set_presentation_index(base + i);
    const PresentationResult r =
        state.net.present(state.rates, t_present_ms_, /*learn=*/false);
    predictions[i] = predict_from_counts(r.spike_counts);
  });
  network_.skip_presentations(data.size(), t_present_ms_);

  for (std::size_t i = 0; i < data.size(); ++i) {
    result.confusion.record(data[i].label, predictions[i]);
  }
  result.accuracy = result.confusion.accuracy();
  result.wall_seconds = clock.seconds();
  return result;
}

}  // namespace pss
