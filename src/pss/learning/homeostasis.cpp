#include "pss/learning/homeostasis.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

AdaptiveThreshold::AdaptiveThreshold(std::size_t size,
                                     HomeostasisParams params)
    : params_(params), theta_(size, 0.0) {
  PSS_REQUIRE(params.tau_ms > 0.0, "homeostasis tau must be positive");
  PSS_REQUIRE(params.theta_plus >= 0.0, "theta_plus must be non-negative");
  decay_per_ms_ = std::exp(-1.0 / params.tau_ms);
}

void AdaptiveThreshold::reset() { std::fill(theta_.begin(), theta_.end(), 0.0); }

void AdaptiveThreshold::on_spike(NeuronIndex i) {
  if (!params_.enabled) return;
  PSS_DASSERT(i < theta_.size());
  theta_[i] = std::min(params_.theta_max, theta_[i] + params_.theta_plus);
}

void AdaptiveThreshold::set_theta(std::span<const double> values) {
  PSS_REQUIRE(values.size() == theta_.size(),
              "theta snapshot size must match population");
  theta_.assign(values.begin(), values.end());
}

void AdaptiveThreshold::decay(TimeMs dt) {
  if (!params_.enabled) return;
  if (dt != cached_dt_) {
    cached_dt_ = dt;
    cached_factor_ = std::pow(decay_per_ms_, dt);
  }
  for (double& t : theta_) t *= cached_factor_;
}

}  // namespace pss
