#include "pss/learning/trainer.hpp"

#include <algorithm>
#include <utility>

#include <cmath>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/trace.hpp"

namespace pss {

namespace {

/// Publishes the learning-progress gauges: mean conductance of the matrix
/// and mean |ΔG| against `prev` (the drift a presentation/batch caused).
/// `prev` is updated to the current values. Purely observational.
void publish_conductance_drift(std::span<const double> g,
                               std::vector<double>& prev) {
  double sum = 0.0;
  double drift = 0.0;
  for (std::size_t s = 0; s < g.size(); ++s) {
    sum += g[s];
    drift += std::abs(g[s] - prev[s]);
  }
  const double n = g.empty() ? 1.0 : static_cast<double>(g.size());
  obs::metrics().gauge("train.mean_conductance").set(sum / n);
  obs::metrics().gauge("train.conductance_drift").set(drift / n);
  prev.assign(g.begin(), g.end());
}

}  // namespace

TrainerConfig TrainerConfig::from_table1(LearningOption option) {
  const Table1Row& row = table1_row(option);
  return TrainerConfig{row.f_input_min_hz, row.f_input_max_hz,
                       row.t_learn_ms};
}

UnsupervisedTrainer::UnsupervisedTrainer(WtaNetwork& network,
                                         TrainerConfig config)
    : network_(network),
      config_(config),
      frequency_map_(config.f_min_hz, config.f_max_hz) {
  PSS_REQUIRE(config.t_learn_ms > 0.0, "t_learn must be positive");
}

TrainingStats UnsupervisedTrainer::train(const Dataset& data,
                                         const ProgressCallback& on_image) {
  TrainingStats stats;
  Stopwatch clock;
  obs::TraceSpan train_span("train", "pipeline",
                            static_cast<std::int64_t>(data.size()));
  const bool observed = obs::metrics_enabled();
  std::vector<double> prev_g;
  if (observed) {
    const auto g = network_.conductance().values();
    prev_g.assign(g.begin(), g.end());
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Image& img = data[i];
    PSS_REQUIRE(img.pixel_count() == network_.input_channels(),
                "image pixel count must equal network input channels");
    frequency_map_.frequencies(img.span(), rates_);
    const PresentationResult r =
        network_.present(rates_, config_.t_learn_ms, /*learn=*/true);
    ++stats.images_presented;
    stats.total_post_spikes += r.total_spikes;
    stats.total_input_spikes += r.input_spikes;
    stats.simulated_ms += config_.t_learn_ms;
    if (observed) {
      publish_conductance_drift(network_.conductance().values(), prev_g);
    }
    if (on_image) on_image(i);
  }
  stats.wall_seconds = clock.seconds();
  PSS_LOG_DEBUG << "trained " << stats.images_presented << " images, "
                << stats.total_post_spikes << " post spikes, "
                << stats.wall_seconds << " s";
  return stats;
}

TrainingStats UnsupervisedTrainer::train(const Dataset& data,
                                         BatchRunner& runner,
                                         const ProgressCallback& on_image) {
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
  const std::size_t pre_count = network_.input_channels();
  // Deltas clamp to the range the sequential updater itself enforces, so
  // quantized runs stay on the representable grid.
  const double g_lo = network_.conductance().g_min();
  const double g_hi = std::min(network_.conductance().g_max(),
                               network_.updater().effective_g_max());
  const double theta_max = network_.config().homeostasis.theta_max;

  /// Everything one image contributes to the batch-boundary update.
  struct ImageOutcome {
    std::vector<std::pair<std::size_t, double>> g_deltas;  ///< (flat idx, ΔG)
    std::vector<double> theta;  ///< full offsets after the image
    std::uint64_t post_spikes = 0;
    std::uint64_t input_spikes = 0;
  };

  struct WorkerState {
    WtaNetwork net;
    std::vector<double> rates;
  };
  PerWorker<WorkerState> workers(runner.worker_count());

  TrainingStats stats;
  Stopwatch clock;
  obs::TraceSpan train_span("train", "pipeline",
                            static_cast<std::int64_t>(data.size()));
  const bool observed = obs::metrics_enabled();
  std::vector<double> prev_g;
  if (observed) {
    const auto g = network_.conductance().values();
    prev_g.assign(g.begin(), g.end());
  }
  std::vector<ImageOutcome> outcomes;

  for (std::size_t b = 0; b < data.size(); b += batch) {
    const std::size_t count = std::min(batch, data.size() - b);
    obs::TraceSpan batch_span("train.batch", "pipeline",
                              static_cast<std::int64_t>(b / batch));

    // Frozen batch-start state every replica presents against.
    const std::vector<double> g0 = network_.conductance().to_vector();
    const std::vector<double> theta0(network_.theta().begin(),
                                     network_.theta().end());
    const std::uint64_t pbase = network_.presentation_index();

    // Replicas created in an earlier batch carry that batch's mutations;
    // re-freeze them. First-use replicas copy the live state when built.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (workers.slot(w)) workers.slot(w)->net.sync_from(network_);
    }

    outcomes.assign(count, {});
    runner.run(count, [&](std::size_t w, std::size_t k) {
      WorkerState& state = workers.get(w, [&] {
        return WorkerState{network_.replicate(&runner.worker_engine(w)), {}};
      });
      const Image& img = data[b + k];
      PSS_REQUIRE(img.pixel_count() == pre_count,
                  "image pixel count must equal network input channels");
      frequency_map_.frequencies(img.span(), state.rates);
      state.net.set_presentation_index(pbase + k);
      const PresentationResult r =
          state.net.present(state.rates, config_.t_learn_ms, /*learn=*/true);

      ImageOutcome& out = outcomes[k];
      out.post_spikes = r.total_spikes;
      out.input_spikes = r.input_spikes;
      const auto g = state.net.conductance().values();
      for (std::size_t s = 0; s < g.size(); ++s) {
        if (g[s] != g0[s]) out.g_deltas.emplace_back(s, g[s] - g0[s]);
      }
      out.theta.assign(state.net.theta().begin(), state.net.theta().end());
      // Back to the frozen state for this worker's next image in the batch.
      state.net.sync_from(network_);
    });

    // Batch-boundary update, strictly in image order — the result depends on
    // the batch split but never on which worker ran which image.
    std::vector<double> g_acc = g0;
    std::vector<double> theta_acc = theta0;
    for (std::size_t k = 0; k < count; ++k) {
      const ImageOutcome& out = outcomes[k];
      for (const auto& [s, dg] : out.g_deltas) {
        g_acc[s] = std::clamp(g_acc[s] + dg, g_lo, g_hi);
      }
      for (std::size_t j = 0; j < theta_acc.size(); ++j) {
        theta_acc[j] = std::clamp(theta_acc[j] + (out.theta[j] - theta0[j]),
                                  0.0, theta_max);
      }
      ++stats.images_presented;
      stats.total_post_spikes += out.post_spikes;
      stats.total_input_spikes += out.input_spikes;
      stats.simulated_ms += config_.t_learn_ms;
    }
    network_.conductance().upload(g_acc);
    network_.restore_theta(theta_acc);
    network_.skip_presentations(count, config_.t_learn_ms);
    if (observed) publish_conductance_drift(g_acc, prev_g);

    if (on_image) {
      for (std::size_t k = 0; k < count; ++k) on_image(b + k);
    }
  }

  stats.wall_seconds = clock.seconds();
  PSS_LOG_DEBUG << "minibatch-trained " << stats.images_presented
                << " images (batch " << batch << ", "
                << runner.worker_count() << " workers), "
                << stats.total_post_spikes << " post spikes, "
                << stats.wall_seconds << " s";
  return stats;
}

}  // namespace pss
