#include "pss/learning/trainer.hpp"

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"

namespace pss {

TrainerConfig TrainerConfig::from_table1(LearningOption option) {
  const Table1Row& row = table1_row(option);
  return TrainerConfig{row.f_input_min_hz, row.f_input_max_hz,
                       row.t_learn_ms};
}

UnsupervisedTrainer::UnsupervisedTrainer(WtaNetwork& network,
                                         TrainerConfig config)
    : network_(network),
      config_(config),
      frequency_map_(config.f_min_hz, config.f_max_hz) {
  PSS_REQUIRE(config.t_learn_ms > 0.0, "t_learn must be positive");
}

TrainingStats UnsupervisedTrainer::train(const Dataset& data,
                                         const ProgressCallback& on_image) {
  TrainingStats stats;
  Stopwatch clock;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Image& img = data[i];
    PSS_REQUIRE(img.pixel_count() == network_.input_channels(),
                "image pixel count must equal network input channels");
    frequency_map_.frequencies(img.span(), rates_);
    const PresentationResult r =
        network_.present(rates_, config_.t_learn_ms, /*learn=*/true);
    ++stats.images_presented;
    stats.total_post_spikes += r.total_spikes;
    stats.total_input_spikes += r.input_spikes;
    stats.simulated_ms += config_.t_learn_ms;
    if (on_image) on_image(i);
  }
  stats.wall_seconds = clock.seconds();
  PSS_LOG_DEBUG << "trained " << stats.images_presented << " images, "
                << stats.total_post_spikes << " post spikes, "
                << stats.wall_seconds << " s";
  return stats;
}

}  // namespace pss
