#include "pss/learning/trainer.hpp"

#include <algorithm>
#include <utility>

#include <cmath>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/trace.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/robust/guards.hpp"

namespace pss {

namespace {

/// splitmix64 finalizer: derives run ids from seeds / parent ids. Purely a
/// label-mixing function — never feeds back into simulation RNG.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Publishes the learning-progress gauges: mean conductance of the matrix
/// and mean |ΔG| against `prev` (the drift a presentation/batch caused).
/// `prev` is updated to the current values. Purely observational.
void publish_conductance_drift(std::span<const double> g,
                               std::vector<double>& prev) {
  double sum = 0.0;
  double drift = 0.0;
  for (std::size_t s = 0; s < g.size(); ++s) {
    sum += g[s];
    drift += std::abs(g[s] - prev[s]);
  }
  const double n = g.empty() ? 1.0 : static_cast<double>(g.size());
  obs::metrics().gauge("train.mean_conductance").set(sum / n);
  obs::metrics().gauge("train.conductance_drift").set(drift / n);
  prev.assign(g.begin(), g.end());
}

}  // namespace

TrainerConfig TrainerConfig::from_table1(LearningOption option) {
  const Table1Row& row = table1_row(option);
  return TrainerConfig{row.f_input_min_hz, row.f_input_max_hz,
                       row.t_learn_ms};
}

UnsupervisedTrainer::UnsupervisedTrainer(WtaNetwork& network,
                                         TrainerConfig config)
    : network_(network),
      config_(config),
      frequency_map_(config.f_min_hz, config.f_max_hz) {
  PSS_REQUIRE(config.t_learn_ms > 0.0, "t_learn must be positive");
  PSS_REQUIRE(config_.checkpoint_every == 0 || !config_.checkpoint_path.empty(),
              "checkpoint_every requires a checkpoint_path");
  lineage_.run_id = mix64(network.config().seed ^ 0x70737372756e31ull);
}

void UnsupervisedTrainer::resume_from(const robust::TrainingCheckpoint& cp) {
  cp.restore(network_);
  start_image_ = cp.images_done;
  last_checkpoint_images_ = cp.images_done;
  base_stats_.images_presented = static_cast<std::size_t>(cp.images_presented);
  base_stats_.total_post_spikes = cp.total_post_spikes;
  base_stats_.total_input_spikes = cp.total_input_spikes;
  base_stats_.wall_seconds = cp.wall_seconds;
  base_stats_.simulated_ms = cp.simulated_ms;
  lineage_.resumed = true;
  lineage_.parent_run_id = cp.run_id;
  lineage_.run_id = mix64(cp.run_id ^ (cp.images_done + 1));
  lineage_.checkpoint_count = cp.checkpoint_count;
  lineage_.presentation_cursor = cp.presentation_cursor;
  PSS_LOG_INFO << "resuming from checkpoint: " << cp.images_done
               << " images done, presentation cursor "
               << cp.presentation_cursor << ", checkpoint #"
               << cp.checkpoint_count;
}

void UnsupervisedTrainer::maybe_checkpoint(std::uint64_t images_done,
                                           const TrainingStats& stats,
                                           const Stopwatch& clock) {
  if (config_.checkpoint_every == 0) return;
  if (images_done - last_checkpoint_images_ < config_.checkpoint_every) return;
  robust::TrainingCheckpoint cp = robust::TrainingCheckpoint::capture(network_);
  cp.run_id = lineage_.run_id;
  cp.parent_run_id = lineage_.parent_run_id;
  cp.checkpoint_count = lineage_.checkpoint_count + 1;
  cp.images_done = images_done;
  cp.images_presented = stats.images_presented;
  cp.total_post_spikes = stats.total_post_spikes;
  cp.total_input_spikes = stats.total_input_spikes;
  cp.simulated_ms = stats.simulated_ms;
  cp.wall_seconds = base_stats_.wall_seconds + clock.seconds();
  try {
    robust::save_checkpoint(config_.checkpoint_path, cp);
  } catch (const std::exception& e) {
    // The write is atomic, so the previous checkpoint file is still valid;
    // losing one checkpoint is strictly better than losing the run.
    obs::metrics().counter("checkpoint.failures").add(1);
    PSS_LOG_WARN << "checkpoint write failed (training continues): "
                 << e.what();
    return;
  }
  ++lineage_.checkpoint_count;
  lineage_.presentation_cursor = cp.presentation_cursor;
  last_checkpoint_images_ = images_done;
  obs::metrics().counter("checkpoint.writes").add(1);
}

TrainingStats UnsupervisedTrainer::train(const Dataset& data,
                                         const ProgressCallback& on_image) {
  TrainingStats stats = base_stats_;
  stats.wall_seconds = 0.0;
  Stopwatch clock;
  obs::TraceSpan train_span("train", "pipeline",
                            static_cast<std::int64_t>(data.size()));
  const bool observed = obs::metrics_enabled();
  std::vector<double> prev_g;
  if (observed) {
    const auto g = network_.conductance().values();
    prev_g.assign(g.begin(), g.end());
  }
  for (std::size_t i = start_image_; i < data.size(); ++i) {
    const Image& img = data[i];
    PSS_REQUIRE(img.pixel_count() == network_.input_channels(),
                "image pixel count must equal network input channels");
    frequency_map_.frequencies(img.span(), rates_);
    const PresentationResult r =
        network_.present(rates_, config_.t_learn_ms, /*learn=*/true);
    ++stats.images_presented;
    stats.total_post_spikes += r.total_spikes;
    stats.total_input_spikes += r.input_spikes;
    stats.simulated_ms += config_.t_learn_ms;
    if (observed) {
      publish_conductance_drift(network_.conductance().values(), prev_g);
    }
    if (config_.divergence_checks) {
      robust::require_finite_network(network_,
                                     "image " + std::to_string(i));
    }
    // The checkpoint lands after the progress callback so any state the
    // callback touches (e.g. a mid-train evaluation presenting images on
    // this network) is part of the captured cursor.
    if (on_image) on_image(i);
    maybe_checkpoint(i + 1, stats, clock);
    robust::fault_point("train.interrupt");
  }
  stats.wall_seconds = base_stats_.wall_seconds + clock.seconds();
  PSS_LOG_DEBUG << "trained " << stats.images_presented << " images, "
                << stats.total_post_spikes << " post spikes, "
                << stats.wall_seconds << " s";
  return stats;
}

TrainingStats UnsupervisedTrainer::train(const Dataset& data,
                                         BatchRunner& runner,
                                         const ProgressCallback& on_image) {
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
  // Batches are carved from image 0 in fixed strides, so a resume point must
  // sit on a batch boundary for the remaining schedule (and therefore the
  // result) to be bitwise-identical to an uninterrupted batched run. The
  // batched path only writes checkpoints at batch boundaries, so this only
  // rejects cross-mode resumes (sequential checkpoint into batched run).
  PSS_REQUIRE(start_image_ % batch == 0 || start_image_ >= data.size(),
              "resume point must align with the batch size for "
              "bitwise-reproducible batched training");
  const std::size_t pre_count = network_.input_channels();
  // Deltas clamp to the range the sequential updater itself enforces, so
  // quantized runs stay on the representable grid. The StatePool owns the
  // learnable range (g_min .. min(g_max, updater cap)); read it back rather
  // than recomputing it here.
  const double g_lo = network_.conductance().learn_lo();
  const double g_hi = network_.conductance().learn_hi();
  const double theta_max = network_.config().homeostasis.theta_max;

  /// Everything one image contributes to the batch-boundary update.
  struct ImageOutcome {
    std::vector<std::pair<std::size_t, double>> g_deltas;  ///< (flat idx, ΔG)
    std::vector<double> theta;  ///< full offsets after the image
    std::uint64_t post_spikes = 0;
    std::uint64_t input_spikes = 0;
  };

  struct WorkerState {
    WtaNetwork net;
    std::vector<double> rates;
  };
  PerWorker<WorkerState> workers(runner.worker_count());

  TrainingStats stats = base_stats_;
  stats.wall_seconds = 0.0;
  Stopwatch clock;
  obs::TraceSpan train_span("train", "pipeline",
                            static_cast<std::int64_t>(data.size()));
  const bool observed = obs::metrics_enabled();
  std::vector<double> prev_g;
  if (observed) {
    const auto g = network_.conductance().values();
    prev_g.assign(g.begin(), g.end());
  }
  std::vector<ImageOutcome> outcomes;

  for (std::size_t b = start_image_; b < data.size(); b += batch) {
    const std::size_t count = std::min(batch, data.size() - b);
    obs::TraceSpan batch_span("train.batch", "pipeline",
                              static_cast<std::int64_t>(b / batch));

    // Frozen batch-start state every replica presents against.
    const std::vector<double> g0 = network_.conductance().to_vector();
    const std::vector<double> theta0(network_.theta().begin(),
                                     network_.theta().end());
    const std::uint64_t pbase = network_.presentation_index();

    // Replicas created in an earlier batch carry that batch's mutations;
    // re-freeze them. First-use replicas copy the live state when built.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (workers.slot(w)) workers.slot(w)->net.sync_from(network_);
    }

    outcomes.assign(count, {});
    runner.run(count, [&](std::size_t w, std::size_t k) {
      WorkerState& state = workers.get(w, [&] {
        return WorkerState{network_.replicate(&runner.worker_engine(w)), {}};
      });
      const Image& img = data[b + k];
      PSS_REQUIRE(img.pixel_count() == pre_count,
                  "image pixel count must equal network input channels");
      frequency_map_.frequencies(img.span(), state.rates);
      state.net.set_presentation_index(pbase + k);
      const PresentationResult r =
          state.net.present(state.rates, config_.t_learn_ms, /*learn=*/true);

      ImageOutcome& out = outcomes[k];
      out.post_spikes = r.total_spikes;
      out.input_spikes = r.input_spikes;
      const auto g = state.net.conductance().values();
      for (std::size_t s = 0; s < g.size(); ++s) {
        if (g[s] != g0[s]) out.g_deltas.emplace_back(s, g[s] - g0[s]);
      }
      out.theta.assign(state.net.theta().begin(), state.net.theta().end());
      // Back to the frozen state for this worker's next image in the batch.
      state.net.sync_from(network_);
    });

    // Batch-boundary update, strictly in image order — the result depends on
    // the batch split but never on which worker ran which image.
    std::vector<double> g_acc = g0;
    std::vector<double> theta_acc = theta0;
    for (std::size_t k = 0; k < count; ++k) {
      const ImageOutcome& out = outcomes[k];
      for (const auto& [s, dg] : out.g_deltas) {
        g_acc[s] = std::clamp(g_acc[s] + dg, g_lo, g_hi);
      }
      for (std::size_t j = 0; j < theta_acc.size(); ++j) {
        theta_acc[j] = std::clamp(theta_acc[j] + (out.theta[j] - theta0[j]),
                                  0.0, theta_max);
      }
      ++stats.images_presented;
      stats.total_post_spikes += out.post_spikes;
      stats.total_input_spikes += out.input_spikes;
      stats.simulated_ms += config_.t_learn_ms;
    }
    network_.conductance().upload(g_acc);
    network_.restore_theta(theta_acc);
    network_.skip_presentations(count, config_.t_learn_ms);
    if (observed) publish_conductance_drift(g_acc, prev_g);
    if (config_.divergence_checks) {
      robust::require_finite_network(
          network_, "batch ending at image " + std::to_string(b + count));
    }

    if (on_image) {
      for (std::size_t k = 0; k < count; ++k) on_image(b + k);
    }
    maybe_checkpoint(b + count, stats, clock);
    robust::fault_point("train.interrupt");
  }

  stats.wall_seconds = base_stats_.wall_seconds + clock.seconds();
  PSS_LOG_DEBUG << "minibatch-trained " << stats.images_presented
                << " images (batch " << batch << ", "
                << runner.worker_count() << " workers), "
                << stats.total_post_spikes << " post spikes, "
                << stats.wall_seconds << " s";
  return stats;
}

}  // namespace pss
