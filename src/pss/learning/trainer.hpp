// Unsupervised training loop (paper Fig. 2 / Sec. III-B).
//
// Each training image is converted to per-pixel Poisson rates via the
// pixel->frequency map and presented to the WTA network for t_learn ms with
// STDP enabled. The paper's two operating points: 1–22 Hz / 500 ms per image
// (baseline) and 5–78 Hz / 100 ms per image (high-frequency).
#pragma once

#include <functional>
#include <string>

#include "pss/common/stopwatch.hpp"
#include "pss/data/dataset.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/robust/checkpoint.hpp"

namespace pss {

struct TrainerConfig {
  double f_min_hz = 1.0;
  double f_max_hz = 22.0;
  TimeMs t_learn_ms = 500.0;

  /// Minibatch size for the batched train() overload (Saunders et al. 2019):
  /// each batch's images are presented in parallel against the frozen
  /// batch-start state, their STDP/threshold deltas accumulated and applied
  /// at the batch boundary in image order. 1 = per-image updates computed on
  /// a replica (sequential-equivalent update schedule). Ignored by the
  /// sequential train().
  std::size_t batch_size = 1;

  /// Write a training checkpoint to `checkpoint_path` every this many images
  /// (0 = never). The batched path checkpoints at the first batch boundary
  /// at or past each multiple. A failed checkpoint write logs a warning and
  /// training continues — writes are atomic, so the previous checkpoint
  /// survives.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path{};

  /// Scan conductances and theta for NaN/Inf/out-of-bounds after every
  /// image (sequential) or batch; on divergence training throws pss::Error
  /// carrying a structured report instead of checkpointing corrupt state.
  bool divergence_checks = true;

  /// Convenience constructor from a Table I row.
  static TrainerConfig from_table1(LearningOption option);
};

struct TrainingStats {
  std::size_t images_presented = 0;
  std::uint64_t total_post_spikes = 0;
  std::uint64_t total_input_spikes = 0;
  double wall_seconds = 0.0;
  TimeMs simulated_ms = 0.0;  ///< biological time simulated
};

class UnsupervisedTrainer {
 public:
  /// Invoked after every presented image; `index` counts from 0. Used by the
  /// Fig. 8c moving-error experiment to checkpoint mid-training.
  using ProgressCallback = std::function<void(std::size_t index)>;

  UnsupervisedTrainer(WtaNetwork& network, TrainerConfig config);

  const TrainerConfig& config() const { return config_; }

  /// Presents every image of `data` once, learning enabled.
  TrainingStats train(const Dataset& data,
                      const ProgressCallback& on_image = nullptr);

  /// Minibatch STDP training (opt-in; batch size from config().batch_size).
  /// Images of one batch run in parallel on `runner`'s worker replicas, all
  /// starting from the frozen batch-start network; each image's conductance
  /// and threshold deltas are applied to the live network at the batch
  /// boundary, in image order. Results are therefore bitwise independent of
  /// the worker count (only the batch size changes the learning schedule).
  /// Progress callbacks fire in image order at batch boundaries.
  TrainingStats train(const Dataset& data, BatchRunner& runner,
                      const ProgressCallback& on_image = nullptr);

  /// Restores network state (conductances, theta, presentation cursor) and
  /// training progress from `cp`, so the next train() call skips the first
  /// `cp.images_done` images and continues bitwise-identically to the run
  /// that wrote the checkpoint. Must be called before train(); geometry and
  /// seed must match the network (throws pss::Error otherwise).
  void resume_from(const robust::TrainingCheckpoint& cp);

  /// This run's identity and resume ancestry (surfaced in run manifests).
  const robust::CheckpointLineage& lineage() const { return lineage_; }

 private:
  void maybe_checkpoint(std::uint64_t images_done, const TrainingStats& stats,
                        const Stopwatch& clock);

  WtaNetwork& network_;
  TrainerConfig config_;
  PixelFrequencyMap frequency_map_;
  std::vector<double> rates_;

  robust::CheckpointLineage lineage_;
  std::uint64_t start_image_ = 0;    ///< images already trained before resume
  TrainingStats base_stats_;         ///< stats carried over from the parent
  std::uint64_t last_checkpoint_images_ = 0;
};

}  // namespace pss
