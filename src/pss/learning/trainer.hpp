// Unsupervised training loop (paper Fig. 2 / Sec. III-B).
//
// Each training image is converted to per-pixel Poisson rates via the
// pixel->frequency map and presented to the WTA network for t_learn ms with
// STDP enabled. The paper's two operating points: 1–22 Hz / 500 ms per image
// (baseline) and 5–78 Hz / 100 ms per image (high-frequency).
#pragma once

#include <functional>

#include "pss/common/stopwatch.hpp"
#include "pss/data/dataset.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/network/wta_network.hpp"

namespace pss {

struct TrainerConfig {
  double f_min_hz = 1.0;
  double f_max_hz = 22.0;
  TimeMs t_learn_ms = 500.0;

  /// Minibatch size for the batched train() overload (Saunders et al. 2019):
  /// each batch's images are presented in parallel against the frozen
  /// batch-start state, their STDP/threshold deltas accumulated and applied
  /// at the batch boundary in image order. 1 = per-image updates computed on
  /// a replica (sequential-equivalent update schedule). Ignored by the
  /// sequential train().
  std::size_t batch_size = 1;

  /// Convenience constructor from a Table I row.
  static TrainerConfig from_table1(LearningOption option);
};

struct TrainingStats {
  std::size_t images_presented = 0;
  std::uint64_t total_post_spikes = 0;
  std::uint64_t total_input_spikes = 0;
  double wall_seconds = 0.0;
  TimeMs simulated_ms = 0.0;  ///< biological time simulated
};

class UnsupervisedTrainer {
 public:
  /// Invoked after every presented image; `index` counts from 0. Used by the
  /// Fig. 8c moving-error experiment to checkpoint mid-training.
  using ProgressCallback = std::function<void(std::size_t index)>;

  UnsupervisedTrainer(WtaNetwork& network, TrainerConfig config);

  const TrainerConfig& config() const { return config_; }

  /// Presents every image of `data` once, learning enabled.
  TrainingStats train(const Dataset& data,
                      const ProgressCallback& on_image = nullptr);

  /// Minibatch STDP training (opt-in; batch size from config().batch_size).
  /// Images of one batch run in parallel on `runner`'s worker replicas, all
  /// starting from the frozen batch-start network; each image's conductance
  /// and threshold deltas are applied to the live network at the batch
  /// boundary, in image order. Results are therefore bitwise independent of
  /// the worker count (only the batch size changes the learning schedule).
  /// Progress callbacks fire in image order at batch boundaries.
  TrainingStats train(const Dataset& data, BatchRunner& runner,
                      const ProgressCallback& on_image = nullptr);

 private:
  WtaNetwork& network_;
  TrainerConfig config_;
  PixelFrequencyMap frequency_map_;
  std::vector<double> rates_;
};

}  // namespace pss
