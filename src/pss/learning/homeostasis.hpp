// Adaptive-threshold homeostasis (extension beyond the paper; see DESIGN.md).
//
// With pure WTA inhibition a handful of early winners can capture every
// pattern. The standard remedy in unsupervised STDP networks (Diehl & Cook
// 2015, Querlioz 2013 — the paper's refs [3] and [4]) is an adaptive
// threshold: each spike raises the neuron's effective threshold by
// theta_plus and the offset decays exponentially, so busy neurons become
// harder to excite and quiet ones get their turn. The paper does not spell
// this mechanism out but its baselines reproduce Diehl's accuracy, which
// requires it; we make it explicit and optional.
#pragma once

#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

struct HomeostasisParams {
  bool enabled = true;
  double theta_plus = 0.05;     ///< threshold increment per spike (mV)
  TimeMs tau_ms = 2.0e5;       ///< decay time constant of the offset
  double theta_max = 25.0;     ///< safety cap on the offset
};

class AdaptiveThreshold {
 public:
  AdaptiveThreshold(std::size_t size, HomeostasisParams params);

  void reset();

  /// Called when neuron `i` spikes.
  void on_spike(NeuronIndex i);

  /// Exponential decay for one simulation step.
  void decay(TimeMs dt);

  /// Current threshold offsets (all zero when disabled).
  std::span<const double> theta() const { return theta_; }

  /// Restores offsets from a snapshot (size must match).
  void set_theta(std::span<const double> values);

  const HomeostasisParams& params() const { return params_; }

 private:
  HomeostasisParams params_;
  std::vector<double> theta_;
  double decay_per_ms_;  // cached exp(-1/tau)
  TimeMs cached_dt_ = -1.0;
  double cached_factor_ = 1.0;
};

}  // namespace pss
