// Inference (paper Sec. III-B): "The rest of the test set ... are used for
// inference."
//
// An image is presented (learning off); class scores are the mean spike
// count of the neurons labelled with each class (averaging, as in Diehl &
// Cook, prevents classes that captured more neurons from dominating). The
// prediction is the argmax; if no labelled neuron spikes the classifier
// abstains (-1, counted as an error).
#pragma once

#include "pss/data/dataset.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/stats/confusion.hpp"

namespace pss {

struct EvaluationResult {
  ConfusionMatrix confusion;
  double accuracy = 0.0;
  double wall_seconds = 0.0;

  explicit EvaluationResult(std::size_t classes) : confusion(classes) {}
};

class SnnClassifier {
 public:
  /// `labels` comes from label_neurons(); class_count from the same result.
  SnnClassifier(WtaNetwork& network, std::vector<int> neuron_labels,
                std::size_t class_count, PixelFrequencyMap frequency_map,
                TimeMs t_present_ms);

  std::size_t class_count() const { return class_count_; }

  /// Predicted class for one image, or -1 (abstain).
  int predict(const Image& image);

  /// Accuracy + confusion over a dataset.
  EvaluationResult evaluate(const Dataset& data);

 private:
  WtaNetwork& network_;
  std::vector<int> neuron_labels_;
  std::size_t class_count_;
  PixelFrequencyMap frequency_map_;
  TimeMs t_present_ms_;
  std::vector<std::size_t> class_sizes_;
  std::vector<double> rates_;
};

}  // namespace pss
