// Inference (paper Sec. III-B): "The rest of the test set ... are used for
// inference."
//
// An image is presented (learning off); class scores are the mean spike
// count of the neurons labelled with each class (averaging, as in Diehl &
// Cook, prevents classes that captured more neurons from dominating). The
// prediction is the argmax; if no labelled neuron spikes the classifier
// abstains (-1, counted as an error).
#pragma once

#include <span>

#include "pss/data/dataset.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/stats/confusion.hpp"

namespace pss {

struct EvaluationResult {
  ConfusionMatrix confusion;
  double accuracy = 0.0;
  double wall_seconds = 0.0;

  explicit EvaluationResult(std::size_t classes) : confusion(classes) {}
};

class SnnClassifier {
 public:
  /// `labels` comes from label_neurons(); class_count from the same result.
  SnnClassifier(WtaNetwork& network, std::vector<int> neuron_labels,
                std::size_t class_count, PixelFrequencyMap frequency_map,
                TimeMs t_present_ms);

  std::size_t class_count() const { return class_count_; }

  /// Predicted class for one image, or -1 (abstain).
  int predict(const Image& image);

  /// Pure scoring half of predict(): argmax of the mean per-class spike
  /// counts. Lets batched evaluation score replica-produced counts.
  int predict_from_counts(std::span<const std::uint32_t> spike_counts) const;

  /// Accuracy + confusion over a dataset.
  EvaluationResult evaluate(const Dataset& data);

  /// Batched evaluation: images presented in parallel on `runner`'s worker
  /// replicas; predictions are recorded in image order, so the confusion
  /// matrix is bit-for-bit the sequential one at any worker count.
  EvaluationResult evaluate(const Dataset& data, BatchRunner& runner);

 private:
  WtaNetwork& network_;
  std::vector<int> neuron_labels_;
  std::size_t class_count_;
  PixelFrequencyMap frequency_map_;
  TimeMs t_present_ms_;
  std::vector<std::size_t> class_sizes_;
  std::vector<double> rates_;
};

}  // namespace pss
