// Neuron labelling (paper Sec. III-B): "After learning is complete, the
// first 1000 images in the test set are used to label all the neurons in the
// first layer."
//
// Each labelling image is presented with learning off; every neuron
// accumulates its spike count per true class, and is assigned the class it
// responded to most. Neurons that never spike remain unlabelled and take no
// part in classification.
//
// Labelling presentations are independent (conductances and thresholds are
// frozen), so the batched overload shards images across a BatchRunner's
// worker replicas and accumulates the responses in image order — producing
// bit-for-bit the sequential result at any worker count.
#pragma once

#include <vector>

#include "pss/data/dataset.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/network/wta_network.hpp"

namespace pss {

struct LabelingResult {
  /// Per-neuron assigned class; -1 = never spiked during labelling.
  std::vector<int> neuron_labels;
  /// response[neuron][class] = accumulated spikes.
  std::vector<std::vector<std::uint32_t>> response;
  std::size_t labelled_neurons = 0;
  std::size_t class_count = 0;
};

/// Presents `labelling_set` (learning off) for `t_present_ms` per image
/// through the [f_min, f_max] pixel->frequency map and assigns labels.
LabelingResult label_neurons(WtaNetwork& network, const Dataset& labelling_set,
                             const PixelFrequencyMap& frequency_map,
                             TimeMs t_present_ms);

/// Batched labelling: identical result, images presented in parallel on
/// `runner`'s worker replicas. `network` itself is only read (plus its
/// presentation counter advancing past the batch, as the sequential path
/// would have left it).
LabelingResult label_neurons(WtaNetwork& network, const Dataset& labelling_set,
                             const PixelFrequencyMap& frequency_map,
                             TimeMs t_present_ms, BatchRunner& runner);

}  // namespace pss
