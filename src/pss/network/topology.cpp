#include "pss/network/topology.hpp"

#include "pss/common/error.hpp"

namespace pss {

std::vector<Connection> connect_all_to_all(std::size_t pre_count,
                                           std::size_t post_count,
                                           const WeightFn& weight,
                                           TimeMs delay_ms) {
  PSS_REQUIRE(pre_count > 0 && post_count > 0, "empty population");
  std::vector<Connection> out;
  out.reserve(pre_count * post_count);
  for (std::size_t pre = 0; pre < pre_count; ++pre) {
    for (std::size_t post = 0; post < post_count; ++post) {
      out.push_back({static_cast<NeuronIndex>(pre),
                     static_cast<NeuronIndex>(post),
                     weight(static_cast<NeuronIndex>(pre),
                            static_cast<NeuronIndex>(post)),
                     delay_ms});
    }
  }
  return out;
}

std::vector<Connection> connect_one_to_one(std::size_t count, double weight,
                                           TimeMs delay_ms) {
  PSS_REQUIRE(count > 0, "empty population");
  std::vector<Connection> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({static_cast<NeuronIndex>(i), static_cast<NeuronIndex>(i),
                   weight, delay_ms});
  }
  return out;
}

std::vector<Connection> connect_random(std::size_t pre_count,
                                       std::size_t post_count, double p,
                                       const WeightFn& weight,
                                       SequentialRng& rng, TimeMs delay_ms) {
  PSS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  std::vector<Connection> out;
  out.reserve(static_cast<std::size_t>(p * static_cast<double>(pre_count) *
                                       static_cast<double>(post_count) * 1.1));
  for (std::size_t pre = 0; pre < pre_count; ++pre) {
    for (std::size_t post = 0; post < post_count; ++post) {
      if (rng.bernoulli(p)) {
        out.push_back({static_cast<NeuronIndex>(pre),
                       static_cast<NeuronIndex>(post),
                       weight(static_cast<NeuronIndex>(pre),
                              static_cast<NeuronIndex>(post)),
                       delay_ms});
      }
    }
  }
  return out;
}

void validate_connections(const std::vector<Connection>& connections,
                          std::size_t pre_count, std::size_t post_count) {
  for (const auto& c : connections) {
    PSS_REQUIRE(c.pre < pre_count, "connection pre index out of range");
    PSS_REQUIRE(c.post < post_count, "connection post index out of range");
    PSS_REQUIRE(c.delay_ms >= 0.0, "negative delay");
  }
}

}  // namespace pss
