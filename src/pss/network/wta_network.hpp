// The paper's unsupervised-learning network (Fig. 3).
//
// Input image -> spike-train array (one Poisson train per pixel, rate
// proportional to intensity) -> all-to-all plastic synapses -> layer of LIF
// neurons. When a first-layer neuron spikes, the corresponding second-layer
// neuron inhibits every *other* first-layer neuron for t_inh ms
// (winner-take-all). The second layer has no state beyond this reflex, so it
// is implemented as the inhibit_all_except() call rather than as a separate
// population — its observable behaviour (Fig. 3) is preserved exactly.
//
// Learning happens at post-spike events: the winner's full conductance row is
// updated by the StdpUpdater (deterministic or stochastic, any precision).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "pss/backend/kernels.hpp"
#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/engine/spike_events.hpp"
#include "pss/learning/homeostasis.hpp"
#include "pss/neuron/izhikevich.hpp"
#include "pss/neuron/lif.hpp"
#include "pss/synapse/conductance_matrix.hpp"
#include "pss/synapse/parameter_registry.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {

/// First-layer neuron model ("support different neuron/synaptic models").
enum class NeuronModelKind { kLif, kIzhikevich };

const char* neuron_model_name(NeuronModelKind kind);

struct WtaConfig {
  /// Compute backend the network's state and kernels live on — a name from
  /// the backend registry ("cpu", "cpu_simd"; see src/pss/backend/).
  /// Construction throws pss::Error for unknown or unavailable names.
  std::string backend = "cpu";

  std::size_t input_channels = kImagePixels;
  std::size_t neuron_count = 100;  ///< paper uses 1000; scaled experiments less
  NeuronModelKind neuron_model = NeuronModelKind::kLif;
  LifParameters lif = paper_lif_parameters();
  IzhikevichParameters izhikevich = izhikevich_regular_spiking();
  /// Input-gain multiplier applied when the Izhikevich model drives the
  /// first layer: its quadratic upstroke regenerates spikes much more
  /// readily than the paper's LIF under the same current, so the
  /// weight-to-current conversion must be scaled down to keep WTA dynamics
  /// comparable (calibrated empirically; see bench_ablations, ablation 5).
  double izhikevich_gain = 0.7;
  TimeMs dt = kDefaultDtMs;
  TimeMs t_inh_ms = 20.0;          ///< WTA inhibition duration (Fig. 3)
  double spike_amplitude = 3.0;    ///< v_pre of eq. 3 (paper: tuned to input)
  TimeMs current_decay_ms = 2.5;   ///< synaptic current decay; 0 = eq. 3 verbatim

  /// Fuse the per-step current-decay + accumulate + neuron-update kernels
  /// into a single launch (bitwise-identical results, one dispatch instead
  /// of three). Off = the original three-kernel sequence, kept for A/B
  /// benchmarking. Ignored on event-driven backends (the sparse loop
  /// propagates along CSR rows instead of gathering dense rows).
  bool fused_step = true;

  /// Lazy STDP on event-driven backends (backends registering the sparse
  /// kernel-table slots, e.g. cpu_sparse): post-spike row updates are
  /// recorded as pending events and applied per synapse on demand — when the
  /// synapse's pre fires (catch-up) or at presentation end (bulk flush) —
  /// instead of sweeping the dense row at every post spike. Final
  /// conductances are bitwise-identical to the eager sweep on the same
  /// backend (asserted by tests/test_properties.cpp); off = eager rows, kept
  /// for that A/B. Ignored on dense backends.
  bool lazy_stdp = true;

  /// Amplitude auto-gain — the "tuned based on input spiking frequency and
  /// voltage" part of Sec. II-B made explicit. When > 0, each presentation
  /// scales the per-spike amplitude by (reference / Σ channel rates), so the
  /// expected membrane drive is what `spike_amplitude` delivers at the
  /// reference total input rate. This keeps the network calibrated across
  /// frequency boosts (each spike carries proportionally less charge while
  /// the information rate rises — Sec. IV-C) and across datasets of
  /// different brightness. 0 disables the gain (fixed amplitude).
  double reference_total_rate_hz = 2100.0;

  StdpUpdaterConfig stdp;          ///< rule, precision, rounding (Table I)

  /// Multiplier on α_p/α_d compensating for training runs far shorter than
  /// the paper's 60k images (a learning-rate/epoch trade; Table I values
  /// are used verbatim when running at paper scale with scale = 1).
  double learning_rate_scale = 5.0;

  HomeostasisParams homeostasis;   ///< see learning/homeostasis.hpp

  double init_g_lo = 0.15;         ///< initial conductance range (uniform)
  double init_g_hi = 0.85;
  std::uint64_t seed = 1234;

  /// Readout behaviour (labelling/inference, learn = false). With WTA
  /// inhibition on, an inference score is effectively the vote of a single
  /// winning neuron; turning it off lets every matching neuron respond and
  /// makes the class score a population vote, which is far more robust.
  /// The homeostatic offsets can likewise be frozen-in or ignored.
  bool readout_inhibition = true;
  bool readout_theta = true;
  /// Inhibition duration during readout; learning benefits from a hard WTA
  /// while readout is more robust with a softer one (more neurons get to
  /// vote). Negative = use t_inh_ms.
  TimeMs t_inh_readout_ms = 1.0;

  /// Builds a config from a Table I row: STDP parameters, format, and the
  /// row's frequency range is returned alongside via table1_row(option).
  static WtaConfig from_table1(LearningOption option, StdpKind kind,
                               std::size_t neuron_count = 100);
};

/// Activity summary of one presentation.
struct PresentationResult {
  std::vector<std::uint32_t> spike_counts;  ///< per-neuron spikes
  std::uint64_t total_spikes = 0;
  std::uint64_t input_spikes = 0;

  /// (time-within-presentation, neuron) events; filled only when present()
  /// is called with record_spikes = true.
  std::vector<std::pair<TimeMs, NeuronIndex>> spike_events;

  /// Neuron with the most spikes (first such index); -1 if silent.
  int winner() const;
};

class WtaNetwork {
 public:
  explicit WtaNetwork(const WtaConfig& config, Engine* engine = nullptr);

  ~WtaNetwork();
  WtaNetwork(WtaNetwork&&) noexcept;
  WtaNetwork& operator=(WtaNetwork&&) noexcept;

  const WtaConfig& config() const { return config_; }

  /// The compute backend the network dispatches its kernels through.
  Backend& backend() const { return *backend_; }
  /// The SoA state pool holding the network's per-presentation hot state.
  StatePool& pool() const { return *pool_; }
  std::size_t neuron_count() const { return config_.neuron_count; }
  std::size_t input_channels() const { return config_.input_channels; }

  /// Presents one stimulus: per-channel Poisson rates (Hz) for `duration`
  /// ms. STDP runs only when `learn` is true. Membrane state, synaptic
  /// current and per-image spike timers are reset at the start of each
  /// presentation (the paper presents images independently).
  ///
  /// Determinism contract: every random draw inside a presentation is
  /// counter-indexed by (presentation_index, step), and all dynamic state
  /// resets at the presentation boundary, so the outcome is a pure function
  /// of (config, conductances, theta, presentation_index, rates). A replica
  /// with the same frozen state replays any presentation bit for bit — the
  /// property the batched presentation engine builds on. The index advances
  /// by one per call.
  PresentationResult present(std::span<const double> rates_hz,
                             TimeMs duration_ms, bool learn,
                             bool record_spikes = false);

  /// Index the next present() call will use (== presentations completed so
  /// far unless overridden).
  std::uint64_t presentation_index() const { return presentation_index_; }

  /// Repositions the presentation counter — a replica replays presentation k
  /// of the source network by setting index k before present(). Must be
  /// < 2^32 (the encoder packs it with the step counter).
  void set_presentation_index(std::uint64_t index);

  /// Restores the presentation cursor (counter + biological clock) from a
  /// checkpoint. With the conductances and theta also restored, the next
  /// present() replays exactly what an uninterrupted run would have done —
  /// presentation RNG state is derived from the index alone.
  void restore_cursor(std::uint64_t presentation_index, TimeMs now);

  /// Advances the presentation counter and biological clock as if `count`
  /// presentations of `duration_ms` each had run, without simulating them.
  /// Keeps a network that delegated those presentations to replicas in sync
  /// with the sequential path.
  void skip_presentations(std::uint64_t count, TimeMs duration_ms);

  /// Deep-copies this network onto another engine: same config, current
  /// conductances, homeostatic offsets, clock and presentation index. The
  /// copy replays upcoming presentations bitwise-identically to the source;
  /// batch workers each own one (with a serial Engine — the pool parallelism
  /// is across images, not within a replica).
  WtaNetwork replicate(Engine* engine) const;

  /// Synchronizes a replica with `source` without reconstructing it: copies
  /// conductances, theta, clock and presentation index (configs must match).
  void sync_from(const WtaNetwork& source);

  ConductanceMatrix& conductance() { return conductance_; }
  const ConductanceMatrix& conductance() const { return conductance_; }

  const StdpUpdater& updater() const { return updater_; }

  /// Homeostatic threshold offsets (for diagnostics/tests).
  std::span<const double> theta() const { return threshold_.theta(); }

  /// Restores homeostatic offsets from a snapshot (see pss/io/snapshot.hpp).
  void restore_theta(std::span<const double> values) {
    threshold_.set_theta(values);
  }

  /// Biological time simulated so far (ms).
  TimeMs now() const { return now_; }

  /// Total post-synaptic (layer 1) spikes since construction.
  std::uint64_t total_spikes() const;

 private:
  using Population = std::variant<LifPopulation, IzhikevichPopulation>;

  void apply_stdp_row(NeuronIndex winner, TimeMs t_post);
  void apply_pre_spike_depression(TimeMs now,
                                  std::span<const ChannelIndex> active);

  // --- lazy-STDP machinery (event-driven backends only) --------------------
  /// Records a post-spike row update as pending, reserving the same RNG
  /// counter block the eager path would have consumed.
  void defer_stdp_row(NeuronIndex winner, TimeMs t_post, StepIndex step);
  /// Applies every pending event to the (pending row × active channel)
  /// synapses about to be read this step, keeping their trajectories
  /// bitwise-equal to eager updates.
  void catch_up_synapses(std::span<const ChannelIndex> active);
  /// Presentation-end flush: completes every pending row's event chain via
  /// the backend's stdp_flush kernel and resets the lazy scratch.
  void flush_pending();

  WtaConfig config_;
  std::unique_ptr<Backend> backend_;   ///< from the registry (config.backend)
  std::unique_ptr<StatePool> pool_;    ///< SoA hot state, shared by components
  Population neurons_;
  ConductanceMatrix conductance_;
  StdpUpdater updater_;
  AdaptiveThreshold threshold_;
  PoissonEncoder encoder_;
  CounterRng stdp_rng_;          ///< root stream; forked per presentation
  CounterRng presentation_rng_;  ///< stdp_rng_.fork(presentation) during present()

  TimeMs now_ = 0.0;
  std::uint64_t presentation_index_ = 0;
  std::uint64_t stdp_event_counter_ = 0;  ///< within-presentation draw index

  // Host-side scratch reused across steps (the dense per-step state —
  // currents, pre-spike timers — lives in the pool).
  std::vector<ChannelIndex> active_channels_;
  std::vector<NeuronIndex> spikes_;

  /// True when the backend registers the event-list encode kernels — the
  /// presentation loop then goes event-driven (list-sliced encoding, CSR
  /// propagation, lazy STDP per config_.lazy_stdp).
  bool sparse_ = false;
  /// The presentation's spike events (encoder output + lazy-STDP history).
  SpikeEventList events_;
  /// Per post neuron: deferred post-spike row updates, ascending in time.
  std::vector<std::vector<PendingPostEvent>> pending_;
  /// Post neurons with non-empty pending lists, in first-spike order.
  std::vector<NeuronIndex> rows_with_pending_;

  /// Recent post spikes (neuron, time) inside the eq. 7 horizon — the
  /// candidates for anti-causal depression at pre-spike events.
  std::vector<std::pair<NeuronIndex, TimeMs>> recent_post_spikes_;
  TimeMs dep_horizon_ms_ = 0.0;
};

}  // namespace pss
