#include "pss/network/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

namespace {

/// Delayed spike delivery: per-step buckets of (neuron, current) deposits.
class DelayRing {
 public:
  DelayRing(std::size_t neuron_count, std::size_t max_delay_steps)
      : buckets_(max_delay_steps + 1,
                 std::vector<double>(neuron_count, 0.0)) {}

  void deposit(std::size_t delay_steps, NeuronIndex neuron, double amount) {
    PSS_DASSERT(delay_steps < buckets_.size());
    buckets_[(head_ + delay_steps) % buckets_.size()][neuron] += amount;
  }

  /// Adds the current slot into `currents` and clears it, then advances.
  void drain_into(std::vector<double>& currents) {
    auto& slot = buckets_[head_];
    for (std::size_t i = 0; i < currents.size(); ++i) {
      currents[i] += slot[i];
      slot[i] = 0.0;
    }
    head_ = (head_ + 1) % buckets_.size();
  }

 private:
  std::vector<std::vector<double>> buckets_;
  std::size_t head_ = 0;
};

struct Csr {
  // Connections grouped by pre-neuron for O(spikes) propagation.
  std::vector<std::uint32_t> offsets;
  std::vector<NeuronIndex> posts;
  std::vector<double> weights;
  std::vector<std::uint16_t> delay_steps;
  std::size_t max_delay_steps = 1;
};

Csr build_csr(const std::vector<Connection>& connections,
              std::size_t neuron_count, TimeMs dt) {
  validate_connections(connections, neuron_count, neuron_count);
  Csr csr;
  csr.offsets.assign(neuron_count + 1, 0);
  for (const auto& c : connections) csr.offsets[c.pre + 1]++;
  for (std::size_t i = 1; i <= neuron_count; ++i) {
    csr.offsets[i] += csr.offsets[i - 1];
  }
  csr.posts.resize(connections.size());
  csr.weights.resize(connections.size());
  csr.delay_steps.resize(connections.size());
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (const auto& c : connections) {
    const std::uint32_t slot = cursor[c.pre]++;
    csr.posts[slot] = c.post;
    csr.weights[slot] = c.weight;
    const auto steps = static_cast<std::uint16_t>(
        std::max(1.0, std::round(c.delay_ms / dt)));
    csr.delay_steps[slot] = steps;
    csr.max_delay_steps = std::max<std::size_t>(csr.max_delay_steps, steps);
  }
  return csr;
}

template <typename Population>
ActivityResult run_activity(Population& population,
                            const std::vector<Connection>& connections,
                            const ActivityConfig& config,
                            std::size_t max_recorded) {
  PSS_REQUIRE(config.duration_ms > 0.0 && config.dt > 0.0,
              "invalid activity config");
  const std::size_t n = population.size();
  const Csr csr = build_csr(connections, n, config.dt);

  PoissonEncoder input(n, config.seed);
  input.set_uniform_rate(config.input_rate_hz);

  DelayRing ring(n, csr.max_delay_steps);
  std::vector<double> currents(n, 0.0);
  std::vector<NeuronIndex> spikes;
  std::vector<ChannelIndex> drive;

  ActivityResult result;
  result.per_neuron_spikes.assign(n, 0);

  const auto steps =
      static_cast<StepIndex>(std::ceil(config.duration_ms / config.dt));
  Stopwatch clock;
  TimeMs now = 0.0;
  for (StepIndex s = 0; s < steps; ++s) {
    now += config.dt;
    std::fill(currents.begin(), currents.end(), 0.0);

    // External Poisson drive.
    input.active_channels(s, config.dt, drive);
    for (ChannelIndex c : drive) currents[c] += config.input_amplitude;

    // Recurrent spikes whose delay expires this step.
    ring.drain_into(currents);

    population.step(currents, now, config.dt, spikes);

    for (NeuronIndex j : spikes) {
      ++result.per_neuron_spikes[j];
      ++result.total_spikes;
      if (result.raster.size() < max_recorded) {
        result.raster.emplace_back(now, j);
      }
      for (std::uint32_t k = csr.offsets[j]; k < csr.offsets[j + 1]; ++k) {
        ring.deposit(csr.delay_steps[k], csr.posts[k], csr.weights[k]);
      }
    }
  }
  result.wall_seconds = clock.seconds();
  // Normalize by the time actually simulated — ceil(duration/dt) steps of dt
  // each — not the requested duration, which overstates rates whenever the
  // duration is not a multiple of dt.
  const TimeMs simulated_ms = static_cast<TimeMs>(steps) * config.dt;
  result.mean_rate_hz = static_cast<double>(result.total_spikes) /
                        static_cast<double>(n) / (simulated_ms * 1e-3);
  result.steps_per_second =
      result.wall_seconds > 0.0 ? static_cast<double>(steps) / result.wall_seconds : 0.0;
  return result;
}

}  // namespace

ActivityResult run_lif_activity(std::size_t neuron_count,
                                const LifParameters& params,
                                const std::vector<Connection>& connections,
                                const ActivityConfig& config,
                                std::size_t max_recorded) {
  LifPopulation population(neuron_count, params);
  return run_activity(population, connections, config, max_recorded);
}

ActivityResult run_izhikevich_activity(
    std::size_t neuron_count, const IzhikevichParameters& params,
    const std::vector<Connection>& connections, const ActivityConfig& config,
    std::size_t max_recorded) {
  IzhikevichPopulation population(neuron_count, params);
  return run_activity(population, connections, config, max_recorded);
}

}  // namespace pss
