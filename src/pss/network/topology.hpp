// Connectivity builders shared by the pss network and the CARLsim-style
// baseline: explicit connection lists for all-to-all, one-to-one and random
// sparse wiring (the unified "network object" of paper Sec. III-A
// encapsulates layer connectivity; these are its building blocks).
#pragma once

#include <functional>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"

namespace pss {

struct Connection {
  NeuronIndex pre = 0;
  NeuronIndex post = 0;
  double weight = 0.0;
  TimeMs delay_ms = 1.0;
};

using WeightFn = std::function<double(NeuronIndex pre, NeuronIndex post)>;

/// Every pre connects to every post (paper Fig. 3: input -> first layer).
std::vector<Connection> connect_all_to_all(std::size_t pre_count,
                                           std::size_t post_count,
                                           const WeightFn& weight,
                                           TimeMs delay_ms = 1.0);

/// pre i connects to post i (paper Fig. 3: first layer -> inhibition layer).
std::vector<Connection> connect_one_to_one(std::size_t count, double weight,
                                           TimeMs delay_ms = 1.0);

/// Each (pre, post) pair is wired with probability `p` (used by the Fig. 4
/// activity benchmark: 10^3 neurons, 10^4 synapses -> p = 0.01).
std::vector<Connection> connect_random(std::size_t pre_count,
                                       std::size_t post_count, double p,
                                       const WeightFn& weight,
                                       SequentialRng& rng,
                                       TimeMs delay_ms = 1.0);

/// Validates that all indices are in range; throws pss::Error otherwise.
void validate_connections(const std::vector<Connection>& connections,
                          std::size_t pre_count, std::size_t post_count);

}  // namespace pss
