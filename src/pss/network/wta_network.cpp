#include "pss/network/wta_network.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <new>
#include <utility>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/error.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"
#include "pss/obs/trace.hpp"

namespace pss {

namespace {

// Phase indices for the per-presentation time breakdown (manifest phases).
enum PresentPhase { kPhEncode = 0, kPhIntegrate, kPhStdp, kPhHomeostasis };
constexpr const char* kPhaseCounter[] = {
    "phase.encode.ns", "phase.integrate.ns", "phase.stdp.ns",
    "phase.homeostasis.ns"};
constexpr const char* kPhaseSpan[] = {"encode", "integrate", "stdp",
                                      "homeostasis"};

/// Hardware-counter rows for the same four phases (obs::profiler() keys).
obs::ProfileAccum* const* phase_profile_rows() {
  static obs::ProfileAccum* const rows[4] = {
      &obs::profiler().row("phase.encode"),
      &obs::profiler().row("phase.integrate"),
      &obs::profiler().row("phase.stdp"),
      &obs::profiler().row("phase.homeostasis")};
  return rows;
}

/// Catch-up chain depth (pending post events applied per (row, channel)
/// pair) — how far behind the lazy-STDP path lets synapses drift.
obs::FixedHistogram& catchup_depth_histogram() {
  static obs::FixedHistogram& hist = obs::metrics().histogram(
      "sparse.catchup.depth",
      {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0});
  return hist;
}

/// Input-spike occupancy per step — the quantity the event-driven path's
/// costs scale with (the dense path's costs don't, which is the point).
obs::FixedHistogram& spikes_per_step_histogram() {
  static obs::FixedHistogram& hist = obs::metrics().histogram(
      "present.spikes_per_step",
      {0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0});
  return hist;
}

}  // namespace

WtaConfig WtaConfig::from_table1(LearningOption option, StdpKind kind,
                                 std::size_t neuron_count) {
  const Table1Row& row = table1_row(option);
  WtaConfig cfg;
  cfg.neuron_count = neuron_count;
  cfg.stdp.kind = kind;
  // Rows <= 8 bit leave alpha/beta blank (delta = 1/2^n); the magnitudes
  // default to the 16-bit row values, which the deterministic rule needs for
  // its pre-rounding float delta.
  cfg.stdp.magnitude = row.magnitude.value_or(
      StdpMagnitudeParams{0.01, 3.0, 0.005, 3.0, 1.0, 0.0});
  cfg.stdp.gate = row.gate;
  cfg.stdp.format = row.format;
  return cfg;
}

int PresentationResult::winner() const {
  if (spike_counts.empty()) return -1;
  const auto it = std::max_element(spike_counts.begin(), spike_counts.end());
  if (*it == 0) return -1;
  return static_cast<int>(it - spike_counts.begin());
}

const char* neuron_model_name(NeuronModelKind kind) {
  switch (kind) {
    case NeuronModelKind::kLif: return "LIF";
    case NeuronModelKind::kIzhikevich: return "Izhikevich";
  }
  return "?";
}

namespace {

/// The updater sees the scaled eq. 4-5 magnitudes (see learning_rate_scale).
StdpUpdaterConfig scaled_stdp(const WtaConfig& config) {
  StdpUpdaterConfig stdp = config.stdp;
  stdp.magnitude.alpha_p *= config.learning_rate_scale;
  stdp.magnitude.alpha_d *= config.learning_rate_scale;
  return stdp;
}

std::variant<LifPopulation, IzhikevichPopulation> make_population(
    const WtaConfig& config, StatePool& pool) {
  if (config.neuron_model == NeuronModelKind::kIzhikevich) {
    return IzhikevichPopulation(pool, config.izhikevich);
  }
  return LifPopulation(pool, config.lif);
}

}  // namespace

WtaNetwork::WtaNetwork(const WtaConfig& config, Engine* engine)
    : config_(config),
      backend_(make_backend(config.backend, engine)),
      pool_(std::make_unique<StatePool>(
          backend_.get(),
          StatePool::Geometry{config.neuron_count, config.input_channels})),
      neurons_(make_population(config, *pool_)),
      conductance_(*pool_, config.stdp.magnitude.g_min,
                   config.stdp.magnitude.g_max),
      updater_(scaled_stdp(config)),
      threshold_(config.neuron_count, config.homeostasis),
      encoder_(*pool_, config.seed),
      stdp_rng_(config.seed, /*stream=*/0x57d9ull) {
  PSS_REQUIRE(config.neuron_count > 0, "network needs neurons");
  PSS_REQUIRE(config.input_channels > 0, "network needs input channels");
  PSS_REQUIRE(config.dt > 0.0, "dt must be positive");
  PSS_REQUIRE(config.spike_amplitude > 0.0, "spike amplitude must be positive");
  PSS_REQUIRE(config.init_g_hi >= config.init_g_lo, "invalid init range");

  // Learned conductances saturate at the quantizer's cap; the pool is the
  // one place the learnable range [learn_lo, learn_hi] is recorded.
  pool_->set_learn_cap(updater_.effective_g_max());

  SequentialRng init_rng(config.seed, /*stream=*/0x1417ull);
  const Quantizer* q = nullptr;
  std::optional<Quantizer> quant;
  if (config.stdp.format) {
    quant.emplace(*config.stdp.format, config.stdp.rounding);
    q = &*quant;
  }
  conductance_.initialize_uniform(
      config.init_g_lo, std::min(config.init_g_hi, updater_.effective_g_max()),
      init_rng, q);
  // Beyond ~5 time constants the eq. 7 probability is negligible.
  dep_horizon_ms_ = 5.0 * config_.stdp.gate.tau_dep;

  // Event-driven path: selected by probing the kernel table, not the backend
  // name, so any backend registering the sparse slots gets it.
  sparse_ = backend_->kernels().poisson_encode_events != nullptr;
  if (sparse_) {
    pool_->build_sparse();
    pending_.resize(config.neuron_count);
  }
}

WtaNetwork::~WtaNetwork() = default;
WtaNetwork::WtaNetwork(WtaNetwork&&) noexcept = default;
WtaNetwork& WtaNetwork::operator=(WtaNetwork&& other) noexcept {
  // Not defaulted: member-wise move assignment replaces backend_ (declared
  // first) before pool_, so the outgoing pool's buffers would be freed
  // through an already-destroyed backend. Tear the whole object down in
  // reverse declaration order instead, then rebuild by move.
  if (this != &other) {
    this->~WtaNetwork();
    ::new (static_cast<void*>(this)) WtaNetwork(std::move(other));
  }
  return *this;
}

PresentationResult WtaNetwork::present(std::span<const double> rates_hz,
                                       TimeMs duration_ms, bool learn,
                                       bool record_spikes) {
  PSS_REQUIRE(rates_hz.size() == config_.input_channels,
              "rate vector size must equal input channel count");
  PSS_REQUIRE(duration_ms > 0.0, "presentation must have positive duration");

  encoder_.set_rates(rates_hz);
  encoder_.set_presentation(presentation_index_);
  // Per-presentation STDP stream: draws depend only on the presentation
  // index and the within-presentation event counter, never on how many
  // learning events earlier presentations produced.
  presentation_rng_ = stdp_rng_.fork(presentation_index_);
  stdp_event_counter_ = 0;

  // Amplitude auto-gain (see WtaConfig::reference_total_rate_hz).
  double amplitude = config_.spike_amplitude;
  if (config_.neuron_model == NeuronModelKind::kIzhikevich) {
    amplitude *= config_.izhikevich_gain;
  }
  if (config_.reference_total_rate_hz > 0.0) {
    double total_rate = 0.0;
    for (double r : rates_hz) total_rate += r;
    if (total_rate > 1e-9) {
      amplitude *= config_.reference_total_rate_hz / total_rate;
    }
  }

  // Images are presented independently: dynamic state resets, while the
  // learned conductances, the homeostatic offsets and the global clock
  // persist across presentations.
  std::visit([](auto& pop) { pop.reset(); }, neurons_);
  const auto currents = pool_->currents();
  const auto last_pre_spike = pool_->last_pre_spike();
  std::fill(currents.begin(), currents.end(), 0.0);
  std::fill(last_pre_spike.begin(), last_pre_spike.end(), kNeverSpiked);
  recent_post_spikes_.clear();

  PresentationResult result;
  result.spike_counts.assign(config_.neuron_count, 0);

  const TimeMs dt = config_.dt;
  const double decay_factor =
      config_.current_decay_ms > 0.0 ? std::exp(-dt / config_.current_decay_ms)
                                     : 0.0;
  const auto steps = static_cast<StepIndex>(std::ceil(duration_ms / dt));

  // Phase accounting (observational only — never touches RNG or any
  // simulated state, so results are bitwise identical with it on or off).
  // Each phase_stop() charges the time since the previous mark to one
  // phase, so the four buckets partition the step loop's wall time exactly.
  const bool observed = obs::metrics_enabled();
  const bool traced = obs::trace_enabled();
  const bool timed = observed || traced;
  // Per-phase hardware counters ride the same stop marks as the wall clock:
  // each phase_stop() charges the counter deltas since the previous mark to
  // one phase row, so the four rows partition the loop's retired work
  // exactly (launch-scope read overhead included — it ran in that phase).
  const bool profiled = obs::profile_enabled();
  std::uint64_t phase_ns[4] = {0, 0, 0, 0};
  obs::PerfReading perf_mark;
  if (profiled) perf_mark = obs::perf_read_now();
  const std::uint64_t present_t0 = timed ? obs::monotonic_ns() : 0;
  std::uint64_t mark = present_t0;
  const auto phase_stop = [&](PresentPhase p) {
    if (timed) {
      const std::uint64_t now_ns = obs::monotonic_ns();
      phase_ns[p] += now_ns - mark;
      mark = now_ns;
    }
    if (profiled) {
      const obs::PerfReading now = obs::perf_read_now();
      phase_profile_rows()[p]->add(perf_mark, now);
      perf_mark = now;
    }
  };

  // Lazy STDP is an event-driven-path feature (pending events key off the
  // presentation's event list); eager rows remain available there for A/B.
  const bool lazy = sparse_ && learn && config_.lazy_stdp;

  // 4. Post-spike processing: STDP (eager row sweep or lazy deferral) + WTA
  //    inhibition + homeostasis. Shared by both step loops.
  const auto process_post_spikes = [&](TimeMs t, StepIndex s) {
    for (NeuronIndex j : spikes_) {
      ++result.spike_counts[j];
      ++result.total_spikes;
      if (record_spikes) result.spike_events.emplace_back(t, j);
      if (learn) {
        phase_stop(kPhHomeostasis);  // loop bookkeeping up to here
        if (lazy) {
          defer_stdp_row(j, t, s);
        } else {
          apply_stdp_row(j, t);
        }
        phase_stop(kPhStdp);
        if (updater_.wants_pre_spike_events()) {
          recent_post_spikes_.emplace_back(j, t);
        }
      }
      // Homeostasis adapts only while learning; during labelling and
      // inference the thresholds are frozen (Diehl & Cook protocol).
      if (learn) threshold_.on_spike(j);
      if (learn) {
        std::visit(
            [&](auto& pop) { pop.inhibit_all_except(j, t + config_.t_inh_ms); },
            neurons_);
      } else if (config_.readout_inhibition) {
        const TimeMs t_inh = config_.t_inh_readout_ms >= 0.0
                                 ? config_.t_inh_readout_ms
                                 : config_.t_inh_ms;
        std::visit(
            [&](auto& pop) { pop.inhibit_all_except(j, t + t_inh); },
            neurons_);
      }
    }
  };

  if (sparse_) {
    // Event-driven presentation: one encode call builds the whole
    // presentation's spike events (geometric inter-spike sampling), then
    // each step consumes its slice — per-step cost scales with spikes
    // (~0.9/step on MNIST-like input), not channels (784).
    encoder_.build_events(steps, dt, events_);
    result.input_spikes = events_.total();
    phase_stop(kPhEncode);

    const auto row_ptr = pool_->csr_row_ptr();
    const auto cols = pool_->csr_cols();
    const KernelTable& kernels = backend_->kernels();
    Engine& engine = backend_->engine();

    for (StepIndex s = 0; s < steps; ++s) {
      const TimeMs t = static_cast<TimeMs>(s + 1) * dt;
      const auto active = events_.at_step(s);
      if (observed) {
        spikes_per_step_histogram().observe(
            static_cast<double>(active.size()));
      }

      // Lazy STDP: every synapse read this step (integration along the
      // active CSR rows, eq. 7 depression at active channels) is first
      // caught up on its row's pending post events, so its trajectory is
      // bitwise-equal to eager updates.
      if (lazy && !active.empty() && !rows_with_pending_.empty()) {
        catch_up_synapses(active);
      }
      if (learn && updater_.wants_pre_spike_events() &&
          !recent_post_spikes_.empty()) {
        apply_pre_spike_depression(t, active);
      }
      // Eager STDP reads the last-pre timers; the lazy path reconstructs
      // pre-spike times from the event list's channel history instead.
      if (learn && !lazy) {
        for (ChannelIndex c : active) last_pre_spike[c] = t;
      }
      phase_stop(kPhStdp);

      // 2. CSR spike propagation: conductance accumulates only along fired
      //    rows. 3. Neuron-update kernel (the unfused form — with ~1 active
      //    row per step there is no dense gather left to fuse).
      if (decay_factor == 0.0) {
        std::fill(currents.begin(), currents.end(), 0.0);
      } else {
        for (double& i : currents) i *= decay_factor;
      }
      if (!active.empty()) {
        SparseAccumulateArgs args{row_ptr,
                                  cols,
                                  conductance_.values(),
                                  config_.input_channels,
                                  active,
                                  amplitude,
                                  currents};
        kernels.sparse_accumulate(engine, args);
      }
      const bool use_theta = learn || config_.readout_theta;
      const std::span<const double> offsets =
          use_theta ? threshold_.theta() : std::span<const double>{};
      std::visit(
          [&](auto& pop) { pop.step(currents, t, dt, spikes_, offsets); },
          neurons_);
      phase_stop(kPhIntegrate);

      process_post_spikes(t, s);
      if (learn) threshold_.decay(dt);
      phase_stop(kPhHomeostasis);
    }

    // Complete every pending row's event chain (the bulk of the lazy work,
    // batched per row with strided draws and memoized gates).
    if (lazy && !rows_with_pending_.empty()) {
      flush_pending();
      phase_stop(kPhStdp);
    }
  } else {
    for (StepIndex s = 0; s < steps; ++s) {
      // Presentation-local clock: every timer that consumes it (membrane
      // dynamics, inhibition, pre/post spike gaps) resets at the
      // presentation boundary, so using local time keeps presentations
      // exactly replayable.
      const TimeMs t = static_cast<TimeMs>(s + 1) * dt;

      // 1. Input spike trains for this step (counter-indexed by
      //    (presentation, step), so trains differ across presentations but
      //    are independent of presentation order).
      encoder_.active_channels(s, dt, active_channels_);
      result.input_spikes += active_channels_.size();
      if (observed) {
        spikes_per_step_histogram().observe(
            static_cast<double>(active_channels_.size()));
      }
      phase_stop(kPhEncode);

      // Anti-causal depression (eq. 7): an input spike arriving shortly
      // after a post spike depresses that synapse with P_dep. Evaluated
      // before the pre-spike timers are refreshed.
      if (learn && updater_.wants_pre_spike_events() &&
          !recent_post_spikes_.empty()) {
        apply_pre_spike_depression(t, active_channels_);
      }
      for (ChannelIndex c : active_channels_) last_pre_spike[c] = t;
      phase_stop(kPhStdp);

      const bool use_theta = learn || config_.readout_theta;
      const std::span<const double> offsets =
          use_theta ? threshold_.theta() : std::span<const double>{};

      if (config_.fused_step) {
        // 2+3 fused: current decay, accumulation (eq. 3) and the neuron
        // update in one kernel launch (one dispatch per step instead of
        // three; bitwise-identical to the unfused branch below).
        std::visit(
            [&](auto& pop) {
              pop.step_fused(currents, decay_factor, conductance_.values(),
                             config_.input_channels, active_channels_,
                             amplitude, t, dt, spikes_, offsets);
            },
            neurons_);
      } else {
        // 2. Current accumulation kernel (eq. 3), with optional exponential
        //    decay standing in for the synaptic current waveform.
        if (decay_factor == 0.0) {
          std::fill(currents.begin(), currents.end(), 0.0);
        } else {
          for (double& i : currents) i *= decay_factor;
        }
        conductance_.accumulate_currents(active_channels_, amplitude,
                                         currents);

        // 3. Neuron-update kernel.
        std::visit(
            [&](auto& pop) { pop.step(currents, t, dt, spikes_, offsets); },
            neurons_);
      }
      phase_stop(kPhIntegrate);

      process_post_spikes(t, s);
      if (learn) threshold_.decay(dt);
      phase_stop(kPhHomeostasis);
    }
  }

  if (timed) {
    const std::uint64_t present_end = obs::monotonic_ns();
    if (observed) {
      auto& reg = obs::metrics();
      for (int p = 0; p < 4; ++p) {
        reg.counter(kPhaseCounter[p]).add(phase_ns[p]);
      }
      reg.counter("present.count").add(1);
      reg.counter("present.steps").add(steps);
      reg.counter("present.input_spikes").add(result.input_spikes);
      reg.counter("present.output_spikes").add(result.total_spikes);
      static obs::FixedHistogram& spikes_hist = reg.histogram(
          "present.spikes_per_image",
          {0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0});
      spikes_hist.observe(static_cast<double>(result.total_spikes));
    }
    if (traced) {
      // One real span for the presentation plus synthetic sequential spans
      // for the four phases, laid out back to back from the presentation
      // start — per-step spans at dt = 0.5 ms would swamp the trace file.
      obs::emit_trace_event("present", learn ? "train" : "readout",
                            present_t0, present_end - present_t0,
                            static_cast<std::int64_t>(presentation_index_));
      std::uint64_t cursor = present_t0;
      for (int p = 0; p < 4; ++p) {
        if (phase_ns[p] == 0) continue;
        obs::emit_trace_event(kPhaseSpan[p], "phase", cursor, phase_ns[p]);
        cursor += phase_ns[p];
      }
    }
  }

  // The biological clock and the presentation counter advance only at the
  // boundary, keeping them equal on networks that split the same workload
  // differently (sequential vs batched).
  now_ += static_cast<TimeMs>(steps) * dt;
  ++presentation_index_;
  return result;
}

void WtaNetwork::set_presentation_index(std::uint64_t index) {
  PSS_REQUIRE(index < (1ull << 32),
              "presentation index must fit in 32 bits (encoder packs it "
              "with the step counter)");
  presentation_index_ = index;
}

void WtaNetwork::restore_cursor(std::uint64_t presentation_index, TimeMs now) {
  PSS_REQUIRE(now >= 0.0, "biological time cannot be negative");
  set_presentation_index(presentation_index);
  now_ = now;
}

void WtaNetwork::skip_presentations(std::uint64_t count, TimeMs duration_ms) {
  PSS_REQUIRE(duration_ms > 0.0, "presentation must have positive duration");
  const auto steps = static_cast<StepIndex>(std::ceil(duration_ms / config_.dt));
  presentation_index_ += count;
  now_ += static_cast<TimeMs>(count) * static_cast<TimeMs>(steps) * config_.dt;
}

WtaNetwork WtaNetwork::replicate(Engine* engine) const {
  WtaNetwork twin(config_, engine);
  twin.sync_from(*this);
  return twin;
}

void WtaNetwork::sync_from(const WtaNetwork& source) {
  PSS_REQUIRE(config_.neuron_count == source.config_.neuron_count &&
                  config_.input_channels == source.config_.input_channels,
              "sync_from requires identically shaped networks");
  conductance_.upload(source.conductance_.values());
  threshold_.set_theta(source.threshold_.theta());
  now_ = source.now_;
  presentation_index_ = source.presentation_index_;
}

std::uint64_t WtaNetwork::total_spikes() const {
  return std::visit([](const auto& pop) { return pop.spike_count(); },
                    neurons_);
}

void WtaNetwork::apply_stdp_row(NeuronIndex winner, TimeMs t_post) {
  auto row = conductance_.row_mut(winner);
  const std::uint64_t base = stdp_event_counter_;
  stdp_event_counter_ += row.size() * StdpUpdater::kDrawsPerEvent;

  // Registered STDP kernel: one logical thread per afferent synapse. Draw
  // indices are derived from the event base so results are
  // schedule-independent.
  StdpRowArgs args{&updater_, row, std::as_const(*pool_).last_pre_spike(),
                   t_post, &presentation_rng_, base};
  backend_->kernels().stdp_row(backend_->engine(), args);
}

void WtaNetwork::apply_pre_spike_depression(
    TimeMs now, std::span<const ChannelIndex> active) {
  // Prune post spikes older than the eq. 7 horizon (sorted by time).
  std::size_t keep = 0;
  while (keep < recent_post_spikes_.size() &&
         now - recent_post_spikes_[keep].second > dep_horizon_ms_) {
    ++keep;
  }
  if (keep > 0) {
    recent_post_spikes_.erase(recent_post_spikes_.begin(),
                              recent_post_spikes_.begin() +
                                  static_cast<std::ptrdiff_t>(keep));
  }

  // Few events on both axes (WTA keeps post spikes sparse), so a serial
  // host loop with counter-indexed draws is cheap and deterministic.
  for (const auto& [j, t_post] : recent_post_spikes_) {
    const double age = now - t_post;
    auto row = conductance_.row_mut(j);
    for (ChannelIndex c : active) {
      const std::uint64_t k = stdp_event_counter_;
      stdp_event_counter_ += StdpUpdater::kDrawsPerEvent;
      row[c] = updater_.update_at_pre_spike(row[c], age,
                                            presentation_rng_.uniform(k),
                                            presentation_rng_.uniform(k + 1));
    }
  }
}

void WtaNetwork::defer_stdp_row(NeuronIndex winner, TimeMs t_post,
                                StepIndex step) {
  // Reserve the exact counter block the eager row sweep would have consumed
  // — deferred application then draws bit-identical uniforms, and the
  // pre-spike depression events interleaved later in the presentation keep
  // their own counters unchanged.
  const std::uint64_t base = stdp_event_counter_;
  stdp_event_counter_ +=
      config_.input_channels * StdpUpdater::kDrawsPerEvent;
  if (pending_[winner].empty()) rows_with_pending_.push_back(winner);
  pending_[winner].push_back(
      PendingPostEvent{t_post, static_cast<std::uint32_t>(step), base});
}

void WtaNetwork::catch_up_synapses(std::span<const ChannelIndex> active) {
  // Serial host loop: WTA keeps both axes small (~1 active channel per step,
  // a handful of rows with pending events), and each (row, channel) pair
  // applies only the events recorded since its last catch-up. The chain
  // walk itself — gap reconstruction from the channel history, draw-slot
  // elision, memoized gate probabilities — is the same stdp_apply_chain the
  // stdp.flush kernel uses, so the serial catch-up and the parallel flush
  // cannot drift apart. Bitwise equals the eager path's order: post events
  // in time order, interleaved with the immediate pre-spike depression.
  std::uint64_t applied = 0;
  const bool observed = obs::metrics_enabled();
  const StdpChainContext ctx = make_stdp_chain_context(updater_, config_.dt);
  for (NeuronIndex j : rows_with_pending_) {
    const auto& events = pending_[j];
    auto row = conductance_.row_mut(j);
    const auto progress = pool_->stdp_progress_row(j);
    const auto n_events = static_cast<std::uint32_t>(events.size());
    const std::uint64_t stride = stdp_chain_counter_stride(events);
    for (ChannelIndex c : active) {
      const std::uint32_t done = progress[c];
      if (done >= n_events) continue;
      if (observed) {
        catchup_depth_histogram().observe(
            static_cast<double>(n_events - done));
      }
      progress[c] = n_events;
      row[c] = stdp_apply_chain(ctx, row[c], c, events, done,
                                events_.channel_history(c),
                                presentation_rng_, stride, &applied);
    }
  }
  if (applied != 0 && obs::metrics_enabled()) {
    static obs::Counter& touched =
        obs::metrics().counter("sparse.synapses_touched");
    touched.add(applied);
  }
}

void WtaNetwork::flush_pending() {
  const bool observed = obs::metrics_enabled();
  std::atomic<std::uint64_t> applied{0};
  for (NeuronIndex j : rows_with_pending_) {
    auto& events = pending_[j];
    const auto progress = pool_->stdp_progress_row(j);
    StdpFlushArgs args{&updater_, conductance_.row_mut(j), progress,
                       events,    &events_,                config_.dt,
                       &presentation_rng_,                 &applied};
    backend_->kernels().stdp_flush(backend_->engine(), args);
    // Reset the lazy scratch for the next presentation.
    std::fill(progress.begin(), progress.end(), 0u);
    events.clear();
  }
  rows_with_pending_.clear();
  const std::uint64_t n = applied.load(std::memory_order_relaxed);
  if (observed && n != 0) {
    // Honest application count: chain skips and gate-elided events are
    // excluded, so the counter tracks work actually done, not work deferred.
    static obs::Counter& touched =
        obs::metrics().counter("sparse.synapses_touched");
    touched.add(n);
    // Flush-only share of the lazy work (the catch-up path contributes the
    // rest of sparse.synapses_touched) — the quantity ROADMAP item 1's
    // "flush walks every synapse" headroom note is about.
    static obs::Counter& flushed =
        obs::metrics().counter("sparse.flush.synapses");
    flushed.add(n);
  }
}

}  // namespace pss
