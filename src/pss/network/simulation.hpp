// Generic recurrent-network activity simulation (no learning) — the workload
// of the paper's Fig. 4 accuracy/performance comparison: "an SNN of 10^3 LIF
// neurons and 10^4 synapses" driven by external input, spiking activity
// recorded and wall-clock simulation time measured.
//
// The network is a sparse connection list (pss/network/topology.hpp) over a
// LifPopulation or IzhikevichPopulation; recurrent spikes are delivered with
// their per-connection delay through a small ring buffer, external drive is
// Poisson.
#pragma once

#include <vector>

#include "pss/common/stopwatch.hpp"
#include "pss/common/types.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/network/topology.hpp"
#include "pss/neuron/izhikevich.hpp"
#include "pss/neuron/lif.hpp"

namespace pss {

struct ActivityConfig {
  TimeMs duration_ms = 1000.0;
  TimeMs dt = kDefaultDtMs;
  /// External Poisson drive: every neuron receives an independent train of
  /// this rate, each spike injecting `input_amplitude` of current.
  double input_rate_hz = 50.0;
  double input_amplitude = 15.0;
  std::uint64_t seed = 99;
};

struct ActivityResult {
  std::uint64_t total_spikes = 0;
  double mean_rate_hz = 0.0;           ///< averaged over neurons
  double wall_seconds = 0.0;           ///< simulation wall-clock time
  double steps_per_second = 0.0;
  std::vector<std::uint32_t> per_neuron_spikes;
  /// (time, neuron) pairs of the first `max_recorded` spikes, for rasters.
  std::vector<std::pair<TimeMs, NeuronIndex>> raster;
};

/// Runs the activity simulation on a LIF population.
ActivityResult run_lif_activity(std::size_t neuron_count,
                                const LifParameters& params,
                                const std::vector<Connection>& connections,
                                const ActivityConfig& config,
                                std::size_t max_recorded = 20000);

/// Same on an Izhikevich population (the baseline simulator's neuron model,
/// run through the pss engine for an apples-to-apples activity check).
ActivityResult run_izhikevich_activity(
    std::size_t neuron_count, const IzhikevichParameters& params,
    const std::vector<Connection>& connections, const ActivityConfig& config,
    std::size_t max_recorded = 20000);

}  // namespace pss
