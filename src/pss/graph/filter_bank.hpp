// Fixed analytic filter banks for the conv front-end: Difference-of-Gaussians
// (center-surround, ON/OFF polarity pairs across scales — retina-style edge
// detectors) and Gabor (oriented edge/grating detectors — V1-style), the two
// families Spyker-era deep-SNN front-ends standardize on. Filters are
// deterministic closed forms: no RNG, no learning, identical on every
// backend.
#pragma once

#include <cstddef>
#include <vector>

#include "pss/graph/layer_spec.hpp"

namespace pss::graph {

/// Builds `filters` kernels of side `kernel` over `in_channels` input planes,
/// f-major layout [f][c][ky][kx] (ConvAccumulateArgs::filters). Each spatial
/// kernel is zero-mean and L2-normalized. Channel handling:
///  * 1 plane: the spatial kernel verbatim.
///  * 2 planes (temporal-diff ON/OFF): opponent weighting (+w on ON, -w on
///    OFF) — the filter responds to the signed change pattern, which is what
///    distinguishes motion directions.
///  * C planes (stacked conv): w/C on every plane (channel-summing).
std::vector<double> make_filter_bank(FilterBank bank, std::size_t filters,
                                     std::size_t kernel,
                                     std::size_t in_channels);

}  // namespace pss::graph
