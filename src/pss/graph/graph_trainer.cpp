#include "pss/graph/graph_trainer.hpp"

#include <algorithm>

#include "pss/common/error.hpp"

namespace pss::graph {

namespace {

/// Shared labelling core: accumulate per-neuron responses by true class over
/// presentations produced by `present_one`, then assign each neuron its
/// strongest class (-1 = silent), exactly the Sec. III-B rule the
/// single-layer labeler applies.
template <typename Items, typename PresentOne>
std::size_t label_from(NetworkGraph& graph, const Items& items,
                       std::size_t class_count, PresentOne&& present_one) {
  PSS_REQUIRE(class_count > 0, "labelling needs a non-empty class set");
  const std::size_t neurons = graph.output_units();
  std::vector<std::vector<std::uint32_t>> response(
      neurons, std::vector<std::uint32_t>(class_count, 0));
  for (const auto& item : items) {
    const GraphResult r = present_one(item);
    const auto cls = static_cast<std::size_t>(item.label);
    PSS_REQUIRE(cls < class_count, "label out of class range");
    for (std::size_t j = 0; j < neurons; ++j) {
      response[j][cls] += r.spike_counts[j];
    }
  }
  std::vector<int> labels(neurons, -1);
  std::size_t labelled = 0;
  for (std::size_t j = 0; j < neurons; ++j) {
    std::uint32_t best = 0;
    for (std::size_t c = 0; c < class_count; ++c) {
      if (response[j][c] > best) {
        best = response[j][c];
        labels[j] = static_cast<int>(c);
      }
    }
    if (labels[j] >= 0) ++labelled;
  }
  // set_neuron_labels derives class_count from the max assigned label; a
  // tail class no neuron won simply never wins a vote.
  graph.set_neuron_labels(std::move(labels));
  return labelled;
}

template <typename Items, typename PresentOne>
GraphEvaluation evaluate_with(NetworkGraph& graph, const Items& items,
                              PresentOne&& present_one) {
  PSS_REQUIRE(!graph.neuron_labels().empty(),
              "evaluate needs labelled neurons — call label() first");
  GraphEvaluation eval;
  for (const auto& item : items) {
    const GraphResult r = present_one(item);
    const int predicted =
        graph_predict(r.spike_counts, graph.neuron_labels(),
                      graph.class_count());
    ++eval.total;
    if (predicted < 0) {
      ++eval.abstained;
    } else if (predicted == static_cast<int>(item.label)) {
      ++eval.correct;
    }
  }
  return eval;
}

template <typename Count>
std::size_t data_class_count(Count max_label) {
  return static_cast<std::size_t>(max_label) + 1;
}

}  // namespace

int graph_predict(std::span<const std::uint32_t> spike_counts,
                  std::span<const int> neuron_labels,
                  std::size_t class_count) {
  PSS_REQUIRE(spike_counts.size() == neuron_labels.size(),
              "spike count vector size must equal neuron count");
  if (class_count == 0) return -1;
  std::vector<double> score(class_count, 0.0);
  std::vector<std::size_t> sizes(class_count, 0);
  for (std::size_t j = 0; j < neuron_labels.size(); ++j) {
    const int label = neuron_labels[j];
    if (label < 0) continue;
    PSS_REQUIRE(static_cast<std::size_t>(label) < class_count,
                "neuron label out of class range");
    score[static_cast<std::size_t>(label)] += spike_counts[j];
    ++sizes[static_cast<std::size_t>(label)];
  }
  double best = 0.0;
  int winner = -1;
  for (std::size_t c = 0; c < class_count; ++c) {
    if (sizes[c] == 0) continue;
    const double mean = score[c] / static_cast<double>(sizes[c]);
    if (mean > best) {
      best = mean;
      winner = static_cast<int>(c);
    }
  }
  return winner;
}

GraphTrainer::GraphTrainer(NetworkGraph& graph, GraphTrainerConfig config)
    : graph_(graph), config_(config) {}

void GraphTrainer::train(const Dataset& train) {
  PSS_REQUIRE(!train.empty(), "training set is empty");
  for (std::size_t b = 0; b < graph_.block_count(); ++b) {
    for (std::size_t epoch = 0; epoch < config_.epochs_per_block; ++epoch) {
      for (std::size_t i = 0; i < train.size(); ++i) {
        graph_.present_image(train[i], config_.t_learn_ms,
                             static_cast<int>(b));
      }
    }
  }
}

std::size_t GraphTrainer::label(const Dataset& labelling) {
  PSS_REQUIRE(!labelling.empty(), "labelling set is empty");
  Label max_label = 0;
  for (const Image& image : labelling.images()) {
    max_label = std::max(max_label, image.label);
  }
  return label_from(graph_, labelling.images(),
                    data_class_count(max_label), [&](const Image& image) {
                      return graph_.present_image(image, config_.t_readout_ms,
                                                  -1);
                    });
}

GraphEvaluation GraphTrainer::evaluate(const Dataset& test) {
  return evaluate_with(graph_, test.images(), [&](const Image& image) {
    return graph_.present_image(image, config_.t_readout_ms, -1);
  });
}

void GraphTrainer::train(const std::vector<GestureSequence>& train) {
  PSS_REQUIRE(!train.empty(), "training set is empty");
  for (std::size_t b = 0; b < graph_.block_count(); ++b) {
    for (std::size_t epoch = 0; epoch < config_.epochs_per_block; ++epoch) {
      for (const GestureSequence& seq : train) {
        graph_.present_sequence(seq.frames, config_.frame_ms,
                                static_cast<int>(b));
      }
    }
  }
}

std::size_t GraphTrainer::label(const std::vector<GestureSequence>& labelling) {
  PSS_REQUIRE(!labelling.empty(), "labelling set is empty");
  Label max_label = 0;
  for (const GestureSequence& seq : labelling) {
    max_label = std::max(max_label, seq.label);
  }
  return label_from(graph_, labelling, data_class_count(max_label),
                    [&](const GestureSequence& seq) {
                      return graph_.present_sequence(seq.frames,
                                                     config_.frame_ms, -1);
                    });
}

GraphEvaluation GraphTrainer::evaluate(
    const std::vector<GestureSequence>& test) {
  return evaluate_with(graph_, test, [&](const GestureSequence& seq) {
    return graph_.present_sequence(seq.frames, config_.frame_ms, -1);
  });
}

}  // namespace pss::graph
