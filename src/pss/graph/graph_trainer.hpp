// Layer-wise training schedule for the network graph (DESIGN.md §6).
//
// Deep STDP stacks are trained greedily, one plastic block at a time
// (Spyker/SDNN-style): the training set is swept once per WTA block with
// STDP enabled only in that block — earlier blocks run frozen, later blocks
// are skipped — then the final block's neurons are labelled from a held-out
// labelling split and evaluation presents with learning off end to end.
// Each sweep reuses the graph presentation counter, so the whole schedule
// is a pure function of (config, data, seed) and bitwise worker-count
// invariant.
//
// Works over both workload shapes: static image datasets (LabeledDataset —
// SyntheticDigits/Fashion) and frame-sequence gesture sets (GestureDataset,
// consumed through present_sequence).
#pragma once

#include <cstddef>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/data/dataset.hpp"
#include "pss/data/temporal_gestures.hpp"
#include "pss/graph/network_graph.hpp"

namespace pss::graph {

struct GraphTrainerConfig {
  TimeMs t_learn_ms = 200.0;    ///< presentation length while training
  TimeMs t_readout_ms = 200.0;  ///< presentation length for label/eval
  TimeMs frame_ms = 25.0;       ///< per-frame duration for sequences
  std::size_t epochs_per_block = 1;  ///< sweeps of the train set per block
};

struct GraphEvaluation {
  std::size_t total = 0;
  std::size_t correct = 0;
  std::size_t abstained = 0;  ///< no labelled neuron spiked

  double accuracy() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
};

/// Pure scoring shared with the serving path: argmax of mean per-class
/// spike counts over the labelled neurons, -1 = abstain.
int graph_predict(std::span<const std::uint32_t> spike_counts,
                  std::span<const int> neuron_labels,
                  std::size_t class_count);

class GraphTrainer {
 public:
  GraphTrainer(NetworkGraph& graph, GraphTrainerConfig config);

  const GraphTrainerConfig& config() const { return config_; }

  // --- static image workloads ---------------------------------------------
  /// One layer-wise schedule: for each WTA block b (in stack order), sweep
  /// `train` config().epochs_per_block times with learn_block = b.
  void train(const Dataset& train);
  /// Labels the final block's neurons from `labelling` (learning off) and
  /// installs them on the graph. Returns the number of labelled neurons.
  std::size_t label(const Dataset& labelling);
  /// Learning-off presentation of `test`, scored against the graph labels.
  GraphEvaluation evaluate(const Dataset& test);

  // --- frame-sequence workloads -------------------------------------------
  void train(const std::vector<GestureSequence>& train);
  std::size_t label(const std::vector<GestureSequence>& labelling);
  GraphEvaluation evaluate(const std::vector<GestureSequence>& test);

 private:
  NetworkGraph& graph_;
  GraphTrainerConfig config_;
};

}  // namespace pss::graph
