#include "pss/graph/layer_spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "pss/common/error.hpp"
#include "pss/common/suggest.hpp"

namespace pss::graph {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kEncode: return "encode";
    case LayerKind::kConv: return "conv";
    case LayerKind::kPool: return "pool";
    case LayerKind::kWta: return "wta";
    case LayerKind::kReadout: return "readout";
  }
  return "?";
}

LayerShape GraphConfig::encoded_input() const {
  LayerShape shape = input;
  if (encode.temporal_diff) shape.channels *= 2;
  return shape;
}

bool GraphConfig::single_wta() const {
  return layers.size() == 1 && layers[0].kind == LayerKind::kWta;
}

namespace {

/// Strict numeric parsing: the whole token must be consumed (the config
/// parser's no-trailing-garbage policy, applied to spec values too).
std::size_t parse_size(const std::string& where, const std::string& value) {
  PSS_REQUIRE(!value.empty(), "layers spec: empty value for " + where);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  PSS_REQUIRE(end == value.c_str() + value.size() && value[0] != '-',
              "layers spec: bad integer '" + value + "' for " + where);
  // strtoull clamps overflow to ULLONG_MAX instead of failing; a spec like
  // neurons=18446744073709551616 must be an error, not a silent clamp.
  PSS_REQUIRE(errno != ERANGE,
              "layers spec: integer '" + value + "' for " + where +
                  " is out of range");
  return static_cast<std::size_t>(v);
}

double parse_real(const std::string& where, const std::string& value) {
  PSS_REQUIRE(!value.empty(), "layers spec: empty value for " + where);
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  PSS_REQUIRE(end == value.c_str() + value.size(),
              "layers spec: bad number '" + value + "' for " + where);
  // strtod accepts "inf"/"nan" and overflows to ±inf; every real-valued key
  // in the grammar means a finite quantity, so reject non-finite here once
  // rather than per-key (conv.gain had no range check at all).
  PSS_REQUIRE(std::isfinite(v),
              "layers spec: number '" + value + "' for " + where +
                  " must be finite");
  return v;
}

bool parse_bool(const std::string& where, const std::string& value) {
  if (value == "1" || value == "on" || value == "true") return true;
  if (value == "0" || value == "off" || value == "false") return false;
  throw Error("layers spec: bad flag '" + value + "' for " + where +
              " (want 0|1)");
}

/// Shortest roundtrip-exact formatting for canonical specs.
std::string format_real(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that roundtrips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

struct KeyValue {
  std::string key;
  std::string value;
};

/// One `kind:key=value,...` segment split into parts.
struct Segment {
  std::string kind;
  std::vector<KeyValue> options;
};

std::vector<Segment> split_segments(const std::string& spec) {
  std::vector<Segment> segments;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string part = spec.substr(pos, semi - pos);
    pos = semi + 1;
    PSS_REQUIRE(!part.empty(), "layers spec: empty layer segment");
    Segment seg;
    const std::size_t colon = part.find(':');
    seg.kind = part.substr(0, colon);
    if (colon != std::string::npos) {
      std::size_t opt = colon + 1;
      while (opt <= part.size()) {
        std::size_t comma = part.find(',', opt);
        if (comma == std::string::npos) comma = part.size();
        const std::string kv = part.substr(opt, comma - opt);
        opt = comma + 1;
        PSS_REQUIRE(!kv.empty(),
                    "layers spec: empty option in '" + seg.kind + "' layer");
        const std::size_t eq = kv.find('=');
        PSS_REQUIRE(eq != std::string::npos && eq > 0,
                    "layers spec: option '" + kv + "' in '" + seg.kind +
                        "' layer is not key=value");
        seg.options.push_back({kv.substr(0, eq), kv.substr(eq + 1)});
      }
    }
    segments.push_back(std::move(seg));
    if (semi == spec.size()) break;
  }
  return segments;
}

[[noreturn]] void unknown_key(const std::string& kind, const std::string& key,
                              const std::vector<std::string>& known) {
  throw Error("layers spec: unknown key '" + key + "' in '" + kind +
              "' layer" + suggestion_for(key, known));
}

}  // namespace

GraphConfig graph_config_from_spec(const std::string& spec,
                                   const WtaConfig& base) {
  PSS_REQUIRE(!spec.empty(), "layers spec must not be empty");
  GraphConfig config;
  config.wta_base = base;
  config.readout.inhibition = base.readout_inhibition;
  config.readout.theta = base.readout_theta;

  static const std::vector<std::string> kKinds = {"encode", "conv", "pool",
                                                  "wta", "readout"};
  bool saw_wta = false;
  bool saw_readout = false;
  const std::vector<Segment> segments = split_segments(spec);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const Segment& seg = segments[i];
    PSS_REQUIRE(!saw_readout, "layers spec: 'readout' must be the last layer");
    if (seg.kind == "encode") {
      PSS_REQUIRE(i == 0, "layers spec: 'encode' must be the first layer");
      static const std::vector<std::string> keys = {"peak", "temporal"};
      for (const KeyValue& kv : seg.options) {
        if (kv.key == "peak") {
          config.encode.peak_hz = parse_real("encode.peak", kv.value);
          PSS_REQUIRE(config.encode.peak_hz > 0.0,
                      "layers spec: encode.peak must be > 0");
        } else if (kv.key == "temporal") {
          if (kv.value == "diff") {
            config.encode.temporal_diff = true;
          } else if (kv.value == "none") {
            config.encode.temporal_diff = false;
          } else {
            throw Error("layers spec: encode.temporal must be none|diff, got '" +
                        kv.value + "'");
          }
        } else {
          unknown_key(seg.kind, kv.key, keys);
        }
      }
    } else if (seg.kind == "conv") {
      PSS_REQUIRE(!saw_wta,
                  "layers spec: 'conv' must precede the WTA blocks");
      LayerSpec layer;
      layer.kind = LayerKind::kConv;
      static const std::vector<std::string> keys = {
          "filters", "kernel", "stride", "bank", "threshold", "gain",
          "decay_ms"};
      for (const KeyValue& kv : seg.options) {
        if (kv.key == "filters") {
          layer.conv.filters = parse_size("conv.filters", kv.value);
        } else if (kv.key == "kernel") {
          layer.conv.kernel = parse_size("conv.kernel", kv.value);
        } else if (kv.key == "stride") {
          layer.conv.stride = parse_size("conv.stride", kv.value);
        } else if (kv.key == "bank") {
          if (kv.value == "dog") {
            layer.conv.bank = FilterBank::kDog;
          } else if (kv.value == "gabor") {
            layer.conv.bank = FilterBank::kGabor;
          } else {
            throw Error("layers spec: conv.bank must be dog|gabor, got '" +
                        kv.value + "'" +
                        suggestion_for(kv.value, {"dog", "gabor"}));
          }
        } else if (kv.key == "threshold") {
          layer.conv.threshold = parse_real("conv.threshold", kv.value);
          PSS_REQUIRE(layer.conv.threshold > 0.0,
                      "layers spec: conv.threshold must be > 0");
        } else if (kv.key == "gain") {
          layer.conv.gain = parse_real("conv.gain", kv.value);
        } else if (kv.key == "decay_ms") {
          layer.conv.decay_ms = parse_real("conv.decay_ms", kv.value);
          PSS_REQUIRE(layer.conv.decay_ms >= 0.0,
                      "layers spec: conv.decay_ms must be >= 0");
        } else {
          unknown_key(seg.kind, kv.key, keys);
        }
      }
      PSS_REQUIRE(layer.conv.filters > 0 && layer.conv.kernel > 0 &&
                      layer.conv.stride > 0,
                  "layers spec: conv filters/kernel/stride must be > 0");
      config.layers.push_back(layer);
    } else if (seg.kind == "pool") {
      PSS_REQUIRE(!saw_wta,
                  "layers spec: 'pool' must precede the WTA blocks");
      LayerSpec layer;
      layer.kind = LayerKind::kPool;
      static const std::vector<std::string> keys = {"window"};
      for (const KeyValue& kv : seg.options) {
        if (kv.key == "window") {
          layer.pool.window = parse_size("pool.window", kv.value);
        } else {
          unknown_key(seg.kind, kv.key, keys);
        }
      }
      PSS_REQUIRE(layer.pool.window > 0,
                  "layers spec: pool.window must be > 0");
      config.layers.push_back(layer);
    } else if (seg.kind == "wta") {
      LayerSpec layer;
      layer.kind = LayerKind::kWta;
      static const std::vector<std::string> keys = {"neurons", "gain"};
      for (const KeyValue& kv : seg.options) {
        if (kv.key == "neurons") {
          layer.wta.neurons = parse_size("wta.neurons", kv.value);
          PSS_REQUIRE(layer.wta.neurons > 0,
                      "layers spec: wta.neurons must be > 0");
        } else if (kv.key == "gain") {
          layer.wta.gain = parse_real("wta.gain", kv.value);
          PSS_REQUIRE(layer.wta.gain > 0.0,
                      "layers spec: wta.gain must be > 0");
        } else {
          unknown_key(seg.kind, kv.key, keys);
        }
      }
      saw_wta = true;
      config.layers.push_back(layer);
    } else if (seg.kind == "readout") {
      saw_readout = true;
      static const std::vector<std::string> keys = {"inhibition", "theta"};
      for (const KeyValue& kv : seg.options) {
        if (kv.key == "inhibition") {
          config.readout.inhibition = parse_bool("readout.inhibition",
                                                 kv.value);
        } else if (kv.key == "theta") {
          config.readout.theta = parse_bool("readout.theta", kv.value);
        } else {
          unknown_key(seg.kind, kv.key, keys);
        }
      }
    } else {
      throw Error("layers spec: unknown layer kind '" + seg.kind + "'" +
                  suggestion_for(seg.kind, kKinds));
    }
  }
  PSS_REQUIRE(saw_wta, "layers spec: at least one 'wta' block is required");
  compute_shapes(config);  // geometry validation
  return config;
}

std::string canonical_layers_spec(const GraphConfig& config) {
  std::string spec = "encode:peak=" + format_real(config.encode.peak_hz) +
                     ",temporal=" +
                     (config.encode.temporal_diff ? "diff" : "none");
  for (const LayerSpec& layer : config.layers) {
    switch (layer.kind) {
      case LayerKind::kConv:
        spec += ";conv:filters=" + std::to_string(layer.conv.filters) +
                ",kernel=" + std::to_string(layer.conv.kernel) +
                ",stride=" + std::to_string(layer.conv.stride) + ",bank=" +
                (layer.conv.bank == FilterBank::kDog ? "dog" : "gabor") +
                ",threshold=" + format_real(layer.conv.threshold) +
                ",gain=" + format_real(layer.conv.gain) +
                ",decay_ms=" + format_real(layer.conv.decay_ms);
        break;
      case LayerKind::kPool:
        spec += ";pool:window=" + std::to_string(layer.pool.window);
        break;
      case LayerKind::kWta:
        spec += ";wta:neurons=" + std::to_string(layer.wta.neurons) +
                ",gain=" + format_real(layer.wta.gain);
        break;
      case LayerKind::kEncode:
      case LayerKind::kReadout:
        break;  // never stored in `layers`
    }
  }
  spec += ";readout:inhibition=";
  spec += config.readout.inhibition ? "1" : "0";
  spec += ",theta=";
  spec += config.readout.theta ? "1" : "0";
  return spec;
}

std::vector<LayerShape> compute_shapes(const GraphConfig& config) {
  std::vector<LayerShape> shapes;
  shapes.push_back(config.encoded_input());
  PSS_REQUIRE(shapes[0].units() > 0, "graph input shape must be non-empty");
  bool saw_wta = false;
  for (const LayerSpec& layer : config.layers) {
    const LayerShape in = shapes.back();
    switch (layer.kind) {
      case LayerKind::kConv: {
        PSS_REQUIRE(!saw_wta, "conv layers must precede the WTA blocks");
        PSS_REQUIRE(in.height >= layer.conv.kernel &&
                        in.width >= layer.conv.kernel,
                    "conv kernel does not fit the input plane");
        LayerShape out;
        out.channels = layer.conv.filters;
        out.height = (in.height - layer.conv.kernel) / layer.conv.stride + 1;
        out.width = (in.width - layer.conv.kernel) / layer.conv.stride + 1;
        shapes.push_back(out);
        break;
      }
      case LayerKind::kPool: {
        PSS_REQUIRE(!saw_wta, "pool layers must precede the WTA blocks");
        // Pooling OR-reduces a spike-flag plane; the encoder emits event
        // lists, not flags, so a pool layer needs a conv/pool predecessor.
        PSS_REQUIRE(shapes.size() > 1,
                    "a pool layer must follow a conv or pool layer");
        LayerShape out;
        out.channels = in.channels;
        out.height = (in.height + layer.pool.window - 1) / layer.pool.window;
        out.width = (in.width + layer.pool.window - 1) / layer.pool.window;
        shapes.push_back(out);
        break;
      }
      case LayerKind::kWta: {
        saw_wta = true;
        shapes.push_back(LayerShape{1, 1, layer.wta.neurons});
        break;
      }
      case LayerKind::kEncode:
      case LayerKind::kReadout:
        PSS_REQUIRE(false, "encode/readout are not stack layers");
    }
  }
  PSS_REQUIRE(saw_wta, "graph needs at least one WTA block");
  return shapes;
}

GraphConfig single_wta_graph(const WtaConfig& config) {
  GraphConfig graph;
  graph.input = LayerShape{1, 1, config.input_channels};
  graph.wta_base = config;
  graph.readout.inhibition = config.readout_inhibition;
  graph.readout.theta = config.readout_theta;
  LayerSpec layer;
  layer.kind = LayerKind::kWta;
  layer.wta.neurons = config.neuron_count;
  graph.layers.push_back(layer);
  return graph;
}

}  // namespace pss::graph
