// NetworkGraph — the composable layer graph (DESIGN.md §6): encode →
// conv/pool front-end → stacked WTA/STDP blocks → readout, executed
// per-timestep over the Engine/KernelTable seam.
//
// Execution model (one presentation):
//   1. The encoder turns input rates into per-step active-channel lists —
//      dense per-step Bernoulli on cpu/cpu_simd, a SpikeEventList built once
//      and sliced per step on event-driven backends (sparse inter-layer
//      propagation).
//   2. Each conv layer gathers the step's active list through its fixed
//      DoG/Gabor filter bank (conv_accumulate kernel) into per-unit currents
//      and advances its integrate-and-fire population (lif_step kernel over
//      a dedicated StatePool population segment); fired units are compacted
//      into the next layer's active list. Pool layers OR-reduce spike flags
//      spatially (pool_forward kernel).
//   3. Per-presentation spike counts of the last front-end layer are recoded
//      to rates (counts → Hz over the presentation duration) and fed to the
//      WTA blocks, each an embedded WtaNetwork presenting in sequence; block
//      b+1 consumes block b's spike counts the same way. STDP runs in at
//      most one block per presentation (`learn_block`) — the layer-wise
//      training schedule.
//
// Determinism: every draw is counter-indexed from the graph presentation
// index (front-end encode uses index·kMaxFrames + frame; each block's
// presentation index is set to the graph index before it presents), all
// dynamic state resets at the presentation boundary, and every kernel
// thread writes only its own slot — results are a pure function of
// (config, learned state, presentation index, input) and are bitwise
// worker-count-invariant.
//
// A graph of exactly one WTA layer with no front-end delegates straight to
// the embedded WtaNetwork — same draws, same state, bitwise-identical
// outputs and snapshots (tests/test_graph.cpp asserts this). WtaNetwork is,
// in this sense, the one-layer instance of the graph.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pss/backend/state_pool.hpp"
#include "pss/common/types.hpp"
#include "pss/data/image.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/engine/spike_events.hpp"
#include "pss/graph/layer_spec.hpp"
#include "pss/network/wta_network.hpp"

namespace pss::graph {

/// Activity summary of one graph presentation.
struct GraphResult {
  std::vector<std::uint32_t> spike_counts;  ///< final block, per neuron
  std::uint64_t input_spikes = 0;
  /// Total spikes per stack layer (config().layers order). During a
  /// training pass, blocks after `learn_block` do not run and report 0.
  std::vector<std::uint64_t> layer_spikes;

  /// Neuron with the most spikes (first such index); -1 if silent.
  int winner() const;
};

class NetworkGraph {
 public:
  /// Frames per presentation cap: the front-end encoder packs
  /// (presentation·kMaxFrames + frame) into its 32-bit presentation slot.
  static constexpr std::size_t kMaxFrames = 64;

  explicit NetworkGraph(const GraphConfig& config, Engine* engine = nullptr);

  ~NetworkGraph();
  NetworkGraph(NetworkGraph&&) noexcept;
  NetworkGraph& operator=(NetworkGraph&&) noexcept;

  const GraphConfig& config() const { return config_; }
  /// shapes()[0] = encoded input, shapes()[i+1] = output of layers[i].
  const std::vector<LayerShape>& shapes() const { return shapes_; }
  std::size_t input_units() const { return shapes_.front().units(); }
  std::size_t output_units() const { return shapes_.back().units(); }

  std::size_t block_count() const { return blocks_.size(); }
  WtaNetwork& block(std::size_t b) { return blocks_.at(b); }
  const WtaNetwork& block(std::size_t b) const { return blocks_.at(b); }

  /// The shared pool carrying the encoder + front-end population segments.
  StatePool& pool() const { return *pool_; }

  /// Presents one static stimulus: per-unit Poisson rates (Hz) over the
  /// encoded input shape. `learn_block` selects the WTA block STDP runs in
  /// (-1 = pure inference); during a training pass, blocks after the
  /// learning one are skipped (their output is unused) and the result's
  /// spike counts are the learning block's.
  GraphResult present(std::span<const double> rates_hz, TimeMs duration_ms,
                      int learn_block);

  /// Presents an image: intensity → rate (encode.peak_hz at saturation).
  GraphResult present_image(const Image& image, TimeMs duration_ms,
                            int learn_block);

  /// Presents a frame sequence frame-by-frame (≤ kMaxFrames frames of
  /// `frame_ms` each): conv/pool state persists across frames within the
  /// presentation, spike counts accumulate over all frames, and the WTA
  /// blocks present once on the sequence-total counts. With temporal-diff
  /// encoding each frame is encoded as ON/OFF change planes vs its
  /// predecessor (frame 0 vs blank).
  GraphResult present_sequence(std::span<const Image> frames, TimeMs frame_ms,
                               int learn_block);

  std::uint64_t presentation_index() const { return presentation_index_; }

  /// Repositions the presentation counter — a serve replica replays request
  /// seq k by setting index k before present() (see server.cpp).
  void set_presentation_index(std::uint64_t index);

  /// Classifier-readout labels of the final block's neurons (-1 =
  /// unlabelled). Empty until labelled or restored from a model file.
  const std::vector<int>& neuron_labels() const { return labels_; }
  void set_neuron_labels(std::vector<int> labels);
  std::size_t class_count() const { return class_count_; }

 private:
  /// Runtime state of one conv/pool front-end layer.
  struct FrontLayer {
    LayerSpec spec;
    LayerShape in;
    LayerShape out;
    PopulationHandle population = 0;
    std::vector<double> filters;  ///< conv only, [f][c][ky][kx]
    double decay_factor = 0.0;    ///< conv current decay per step
    LifParameters lif;            ///< conv unit parameters
  };

  void reset_front();
  /// Runs the front-end for one encode segment (a static presentation or
  /// one frame): `steps` steps at encode presentation slot `encode_index`.
  void run_front_segment(std::span<const double> rates_hz, StepIndex steps,
                         std::uint64_t encode_index, GraphResult& result,
                         std::span<std::uint64_t> layer_ns);
  /// Recode + WTA block cascade + obs publish + index advance.
  GraphResult finish_presentation(GraphResult result, TimeMs duration_ms,
                                  int learn_block,
                                  std::span<const double> direct_rates,
                                  std::span<std::uint64_t> layer_ns,
                                  std::uint64_t present_t0);
  void encoded_rates_from_frame(const Image& frame, const Image* previous,
                                std::vector<double>& rates) const;

  GraphConfig config_;
  std::vector<LayerShape> shapes_;
  std::unique_ptr<Backend> backend_;
  std::unique_ptr<StatePool> pool_;  ///< encoder + front-end populations
  PoissonEncoder encoder_;
  std::vector<FrontLayer> front_;
  std::vector<WtaNetwork> blocks_;
  std::vector<std::size_t> block_layer_;  ///< block b → config layer index
  std::vector<int> labels_;
  std::size_t class_count_ = 0;

  // Cached obs identifiers ("graph.l<i>.<kind>" …). Trace events buffer raw
  // name pointers until the process-exit dump, so the trace tags are interned
  // in process-lifetime storage rather than owned by this graph.
  std::vector<const char*> layer_tag_;
  std::vector<std::string> layer_ns_name_;
  std::vector<std::string> layer_spikes_name_;

  std::uint64_t presentation_index_ = 0;

  // Host-side scratch reused across steps/presentations.
  SpikeEventList events_;
  std::vector<ChannelIndex> active_in_;
  std::vector<ChannelIndex> active_next_;
  std::vector<double> rates_scratch_;
  std::vector<double> block_rates_;
};

}  // namespace pss::graph
