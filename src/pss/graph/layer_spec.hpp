// Typed layer specifications for the composable network graph (DESIGN.md §6).
//
// A graph is encode → [conv → pool]* → wta+ → readout: a spike encoder over
// the input plane(s), an optional convolutional front-end (fixed DoG/Gabor
// filter banks driving integrate-and-fire units, spatial spike pooling
// between stages — the Spyker-style deep-SNN front half), one or more
// WTA/STDP blocks trained layer-wise with the existing updaters, and a
// classifier readout riding the final block's neuron labels.
//
// The `layers=` spec grammar (tools/run_options → pss_run):
//
//   layers=encode:peak=220,temporal=diff;conv:filters=8,kernel=5,bank=dog;
//          pool:window=2;wta:neurons=200;readout:inhibition=0
//
// Layers are ';'-separated, each `kind:key=value,...`. Unknown kinds and
// keys fail loudly with a "did you mean" suggestion (same tolerance policy
// as the config-key checker); numeric values are parsed strictly (trailing
// garbage rejects). parse → canonical_layers_spec roundtrips, which is what
// the versioned multi-layer checkpoint section serializes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/network/wta_network.hpp"

namespace pss::graph {

enum class LayerKind { kEncode, kConv, kPool, kWta, kReadout };

const char* layer_kind_name(LayerKind kind);

/// (channels, height, width) of the spike tensor flowing between layers.
/// WTA blocks flatten: their output shape is {1, 1, neurons}.
struct LayerShape {
  std::size_t channels = 1;
  std::size_t height = 0;
  std::size_t width = 0;

  std::size_t units() const { return channels * height * width; }
  bool operator==(const LayerShape&) const = default;
};

/// Conv filter-bank families (fixed, analytically generated — the front-end
/// is not plastic; plasticity lives in the WTA/STDP blocks).
enum class FilterBank { kDog, kGabor };

struct EncodeSpec {
  double peak_hz = 200.0;  ///< rate of a saturated input unit
  /// Temporal-difference encoding for frame sequences: each frame is encoded
  /// as ON/OFF change planes vs the previous frame (channels double). Static
  /// images use plain intensity→rate.
  bool temporal_diff = false;
};

struct ConvSpec {
  std::size_t filters = 8;
  std::size_t kernel = 5;  ///< square kernel side
  std::size_t stride = 1;
  FilterBank bank = FilterBank::kDog;
  double threshold = 1.0;   ///< conv unit spike threshold (v rides in [0,∞))
  double gain = 1.0;        ///< filter-response → current amplitude
  TimeMs decay_ms = 5.0;    ///< conv current decay time constant
};

struct PoolSpec {
  std::size_t window = 2;  ///< pooling window side == stride
};

struct WtaSpec {
  std::size_t neurons = 100;
  /// Multiplier on the spike-count→rate recode feeding this block (counts
  /// are normalized to Hz over the presentation duration first).
  double gain = 1.0;
};

struct ReadoutSpec {
  bool inhibition = true;  ///< readout_inhibition of the final block
  bool theta = true;       ///< readout_theta of the final block
};

struct LayerSpec {
  LayerKind kind = LayerKind::kWta;
  EncodeSpec encode;
  ConvSpec conv;
  PoolSpec pool;
  WtaSpec wta;
  ReadoutSpec readout;
};

/// Full graph architecture: the input frame shape, the encode front door,
/// the ordered conv/pool/wta stack, and the base WtaConfig every WTA block
/// derives from (backend, dt, STDP rule/precision, seed — block b uses
/// seed + b·0xC0FFEE so sibling blocks draw decorrelated streams, except
/// block 0 of a pure single-WTA graph which keeps the base seed verbatim
/// for bitwise equality with a standalone WtaNetwork).
struct GraphConfig {
  LayerShape input{1, kImageSide, kImageSide};  ///< raw frame shape
  EncodeSpec encode;
  std::vector<LayerSpec> layers;  ///< conv/pool/wta only, front-end order
  ReadoutSpec readout;
  WtaConfig wta_base;

  /// Input shape after encoding (temporal_diff doubles the channel planes).
  LayerShape encoded_input() const;

  /// True when the graph is exactly one WTA layer with no conv/pool
  /// front-end — the configuration that is bitwise-equivalent to a
  /// standalone WtaNetwork and serializes in the legacy v1 formats.
  bool single_wta() const;
};

/// Parses the `layers=` grammar into `base`-derived GraphConfig. Throws
/// pss::Error naming the offending layer kind/key/value, with a "did you
/// mean" suggestion where a known identifier is close.
GraphConfig graph_config_from_spec(const std::string& spec,
                                   const WtaConfig& base);

/// Canonical spec string (parse ∘ canonical == identity); the arch field of
/// the multi-layer checkpoint/snapshot section.
std::string canonical_layers_spec(const GraphConfig& config);

/// Output shape of each layer given the encoded input: shapes[0] is the
/// encoded input itself, shapes[i+1] the output of layers[i]. Validates
/// geometry (kernel fits, WTA blocks after the spatial front-end, at least
/// one WTA block) and throws pss::Error on violations.
std::vector<LayerShape> compute_shapes(const GraphConfig& config);

/// The single-WTA-layer graph equivalent of `config` — NetworkGraph built
/// from this is bitwise-equivalent to WtaNetwork(config)
/// (tests/test_graph.cpp asserts snapshots and presentation outputs equal).
GraphConfig single_wta_graph(const WtaConfig& config);

}  // namespace pss::graph
