#include "pss/graph/graph_snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/robust/checkpoint.hpp"
#include "pss/robust/crc32.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss::graph {

namespace {

constexpr char kMagic2[8] = {'P', 'S', 'S', 'S', 'N', 'A', 'P', '2'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const std::string& path) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  PSS_REQUIRE(static_cast<bool>(in), "truncated graph model file: " + path);
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::uint64_t max_size,
                           std::uint64_t file_size, const char* section,
                           const std::string& path) {
  const auto n = read_pod<std::uint64_t>(in, path);
  const auto pos = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t remaining = file_size > pos ? file_size - pos : 0;
  PSS_REQUIRE(n <= max_size, "graph model section '" + std::string(section) +
                                 "' declares an implausible element count");
  PSS_REQUIRE(n <= remaining / sizeof(T),
              "graph model section '" + std::string(section) + "' declares " +
                  std::to_string(n) + " elements but only " +
                  std::to_string(remaining) + " bytes remain in the file");
  std::vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  PSS_REQUIRE(static_cast<bool>(in), "truncated graph model file: " + path);
  return v;
}

void save_stacked(const std::string& path, const GraphModel& model) {
  // Serialize the payload first so the header can carry its CRC: unlike the
  // legacy v1 snapshot, every SNAP2 byte after the 12-byte header is
  // checksummed — a single flipped bit anywhere in the learned state fails
  // the load instead of silently perturbing a conductance (the prop
  // corruption matrix flips every byte and asserts exactly that).
  std::ostringstream body;
  std::vector<char> arch(model.arch.begin(), model.arch.end());
  write_vector(body, arch);
  write_pod(body, static_cast<std::uint32_t>(model.input.channels));
  write_pod(body, static_cast<std::uint32_t>(model.input.height));
  write_pod(body, static_cast<std::uint32_t>(model.input.width));
  write_pod(body, static_cast<std::uint64_t>(model.blocks.size()));
  for (const NetworkSnapshot& b : model.blocks) {
    write_pod(body, b.neuron_count);
    write_pod(body, b.input_channels);
    write_pod(body, b.g_min);
    write_pod(body, b.g_max);
    write_vector(body, b.conductance);
    write_vector(body, b.theta);
  }
  write_vector(body, model.labels);
  const std::string payload = body.str();
  const std::uint32_t crc = robust::crc32(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PSS_REQUIRE(out.is_open(), "cannot create graph model file: " + tmp);
    out.write(kMagic2, sizeof(kMagic2));
    write_pod(out, crc);
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    PSS_REQUIRE(static_cast<bool>(out), "graph model write failed: " + tmp);
  }
  try {
    robust::fault_point("io.snapshot.write");
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  PSS_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot rename graph model into place: " + path);
}

GraphModel load_stacked(const std::string& path) {
  robust::fault_point("io.snapshot.read");
  std::ifstream file(path, std::ios::binary);
  PSS_REQUIRE(file.is_open(), "cannot open graph model file: " + path);
  file.seekg(0, std::ios::end);
  const auto total_size = static_cast<std::uint64_t>(file.tellg());
  file.seekg(0, std::ios::beg);
  PSS_REQUIRE(total_size >= 12,
              "graph model file too short for a header: " + path);
  char magic[8];
  file.read(magic, sizeof(magic));
  PSS_REQUIRE(static_cast<bool>(file) &&
                  std::memcmp(magic, kMagic2, sizeof(kMagic2)) == 0,
              "not a pss graph model (bad magic): " + path);
  std::uint32_t declared_crc = 0;
  file.read(reinterpret_cast<char*>(&declared_crc), sizeof(declared_crc));
  PSS_REQUIRE(static_cast<bool>(file),
              "truncated graph model file: " + path);

  // Checksum the whole payload before parsing any of it: structural fields
  // (counts, geometry) and raw state bytes get the same integrity guarantee.
  std::string payload(static_cast<std::size_t>(total_size - 12), '\0');
  file.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  PSS_REQUIRE(static_cast<bool>(file),
              "truncated graph model file: " + path);
  const std::uint32_t actual_crc =
      robust::crc32(payload.data(), payload.size());
  PSS_REQUIRE(actual_crc == declared_crc,
              "graph model " + path + ": payload CRC mismatch (corrupt file)");

  std::istringstream in(payload);
  const auto file_size = static_cast<std::uint64_t>(payload.size());

  GraphModel model;
  const std::vector<char> arch =
      read_vector<char>(in, 1 << 16, file_size, "arch", path);
  model.arch.assign(arch.begin(), arch.end());
  PSS_REQUIRE(!model.arch.empty(),
              "graph model " + path + ": empty arch section");
  model.input.channels = read_pod<std::uint32_t>(in, path);
  model.input.height = read_pod<std::uint32_t>(in, path);
  model.input.width = read_pod<std::uint32_t>(in, path);
  const auto block_count = read_pod<std::uint64_t>(in, path);
  PSS_REQUIRE(block_count >= 1 && block_count <= 64,
              "graph model " + path + ": implausible block count " +
                  std::to_string(block_count));
  model.blocks.reserve(static_cast<std::size_t>(block_count));
  for (std::uint64_t i = 0; i < block_count; ++i) {
    NetworkSnapshot b;
    b.neuron_count = read_pod<std::uint32_t>(in, path);
    b.input_channels = read_pod<std::uint32_t>(in, path);
    b.g_min = read_pod<double>(in, path);
    b.g_max = read_pod<double>(in, path);
    const std::uint64_t synapses =
        static_cast<std::uint64_t>(b.neuron_count) * b.input_channels;
    b.conductance =
        read_vector<double>(in, synapses, file_size, "conductance", path);
    b.theta = read_vector<double>(in, b.neuron_count, file_size, "theta",
                                  path);
    PSS_REQUIRE(b.conductance.size() == synapses &&
                    b.theta.size() == b.neuron_count,
                "graph model " + path + ": block state sizes do not match "
                "the declared geometry");
    model.blocks.push_back(std::move(b));
  }
  const std::size_t final_neurons = model.blocks.back().neuron_count;
  model.labels = read_vector<std::int32_t>(in, final_neurons, file_size,
                                           "labels", path);
  return model;
}

char sniff_magic_byte(const std::string& path, char out[8]) {
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open model file: " + path);
  in.read(out, 8);
  PSS_REQUIRE(static_cast<bool>(in),
              "model file too short for a magic: " + path);
  return out[7];
}

}  // namespace

GraphModel GraphModel::capture(const NetworkGraph& graph) {
  GraphModel model;
  model.input = graph.config().input;
  if (!graph.config().single_wta()) {
    model.arch = canonical_layers_spec(graph.config());
  }
  model.blocks.reserve(graph.block_count());
  for (std::size_t b = 0; b < graph.block_count(); ++b) {
    const std::vector<int>* labels =
        (b + 1 == graph.block_count() && !graph.neuron_labels().empty())
            ? &graph.neuron_labels()
            : nullptr;
    model.blocks.push_back(NetworkSnapshot::capture(graph.block(b), labels));
  }
  model.labels.assign(model.blocks.back().neuron_labels.begin(),
                      model.blocks.back().neuron_labels.end());
  return model;
}

void GraphModel::restore(NetworkGraph& graph) const {
  PSS_REQUIRE(graph.block_count() == blocks.size(),
              "graph model block count does not match the graph");
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    blocks[b].restore(graph.block(b));
  }
  if (!labels.empty()) {
    graph.set_neuron_labels(std::vector<int>(labels.begin(), labels.end()));
  }
}

GraphConfig GraphModel::to_config(const WtaConfig& base) const {
  PSS_REQUIRE(!blocks.empty(), "graph model has no blocks");
  if (single_layer()) {
    WtaConfig cfg = base;
    cfg.neuron_count = blocks.front().neuron_count;
    cfg.input_channels = blocks.front().input_channels;
    return single_wta_graph(cfg);
  }
  GraphConfig config = graph_config_from_spec(arch, base);
  config.input = input;
  const std::vector<LayerShape> shapes = compute_shapes(config);
  // The stored block states must fit the architecture they claim.
  std::size_t b = 0;
  for (std::size_t i = 0; i < config.layers.size(); ++i) {
    if (config.layers[i].kind != LayerKind::kWta) continue;
    PSS_REQUIRE(b < blocks.size() &&
                    blocks[b].neuron_count == shapes[i + 1].units() &&
                    blocks[b].input_channels == shapes[i].units(),
                "graph model block geometry does not match its arch");
    ++b;
  }
  PSS_REQUIRE(b == blocks.size(),
              "graph model block count does not match its arch");
  return config;
}

void save_graph_model(const std::string& path, const GraphModel& model) {
  PSS_REQUIRE(!model.blocks.empty(), "refusing to save an empty graph model");
  if (model.single_layer()) {
    PSS_REQUIRE(model.blocks.size() == 1,
                "a single-layer model cannot carry extra blocks");
    // Legacy bytes: labels ride inside the v1 snapshot record.
    NetworkSnapshot snap = model.blocks.front();
    snap.neuron_labels = model.labels;
    save_snapshot(path, snap);
    return;
  }
  save_stacked(path, model);
}

GraphModel load_graph_model(const std::string& path) {
  char magic[8] = {};
  sniff_magic_byte(path, magic);
  if (std::memcmp(magic, "PSSSNAP1", 8) == 0) {
    GraphModel model;
    model.blocks.push_back(load_snapshot(path));
    model.input =
        LayerShape{1, 1, model.blocks.front().input_channels};
    model.labels = model.blocks.front().neuron_labels;
    return model;
  }
  if (std::memcmp(magic, "PSSSNAP2", 8) == 0) {
    return load_stacked(path);
  }
  if (std::memcmp(magic, "PSSCKPT1", 8) == 0) {
    const robust::StackedCheckpoint cp = robust::load_stacked_checkpoint(path);
    GraphModel model;
    model.arch = cp.arch;
    model.input = LayerShape{cp.input_channels, cp.input_height,
                             cp.input_width};
    NetworkSnapshot first;
    first.neuron_count = cp.base.neuron_count;
    first.input_channels = cp.base.input_channels;
    first.g_min = cp.base.g_min;
    first.g_max = cp.base.g_max;
    first.conductance = cp.base.conductance;
    first.theta = cp.base.theta;
    model.blocks.push_back(std::move(first));
    for (const robust::StackedCheckpoint::BlockState& b : cp.blocks) {
      NetworkSnapshot snap;
      snap.neuron_count = b.neuron_count;
      snap.input_channels = b.input_channels;
      snap.g_min = b.g_min;
      snap.g_max = b.g_max;
      snap.conductance = b.conductance;
      snap.theta = b.theta;
      model.blocks.push_back(std::move(snap));
    }
    model.labels = cp.labels;
    return model;
  }
  PSS_REQUIRE(false, "model file " + path +
                         " is not a pss snapshot, graph model or checkpoint");
}

}  // namespace pss::graph
