#include "pss/graph/filter_bank.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss::graph {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Zero-mean then L2-normalize one spatial kernel in place.
void normalize(std::vector<double>& w) {
  double mean = 0.0;
  for (double v : w) mean += v;
  mean /= static_cast<double>(w.size());
  double norm = 0.0;
  for (double& v : w) {
    v -= mean;
    norm += v * v;
  }
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (double& v : w) v /= norm;
  }
}

/// One DoG kernel: polarity · (G(σ_c) − G(σ_s)) with σ_s = 2σ_c.
std::vector<double> dog_kernel(std::size_t side, double sigma_c,
                               double polarity) {
  std::vector<double> w(side * side);
  const double c = (static_cast<double>(side) - 1.0) / 2.0;
  const double sigma_s = 2.0 * sigma_c;
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      const double dx = static_cast<double>(x) - c;
      const double dy = static_cast<double>(y) - c;
      const double r2 = dx * dx + dy * dy;
      const double center = std::exp(-r2 / (2.0 * sigma_c * sigma_c)) /
                            (2.0 * kPi * sigma_c * sigma_c);
      const double surround = std::exp(-r2 / (2.0 * sigma_s * sigma_s)) /
                              (2.0 * kPi * sigma_s * sigma_s);
      w[y * side + x] = polarity * (center - surround);
    }
  }
  normalize(w);
  return w;
}

/// One Gabor kernel at orientation θ: Gaussian envelope × cosine grating.
std::vector<double> gabor_kernel(std::size_t side, double theta, double phase) {
  std::vector<double> w(side * side);
  const double c = (static_cast<double>(side) - 1.0) / 2.0;
  const double sigma = 0.35 * (static_cast<double>(side) / 2.0 + 0.5);
  const double lambda = static_cast<double>(side) / 1.8;
  const double gamma = 0.6;  // envelope aspect ratio
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      const double dx = static_cast<double>(x) - c;
      const double dy = static_cast<double>(y) - c;
      const double xr = dx * std::cos(theta) + dy * std::sin(theta);
      const double yr = -dx * std::sin(theta) + dy * std::cos(theta);
      const double env =
          std::exp(-(xr * xr + gamma * gamma * yr * yr) / (2.0 * sigma * sigma));
      w[y * side + x] = env * std::cos(2.0 * kPi * xr / lambda + phase);
    }
  }
  normalize(w);
  return w;
}

}  // namespace

std::vector<double> make_filter_bank(FilterBank bank, std::size_t filters,
                                     std::size_t kernel,
                                     std::size_t in_channels) {
  PSS_REQUIRE(filters > 0 && kernel > 0 && in_channels > 0,
              "filter bank needs filters/kernel/channels > 0");
  const std::size_t plane = kernel * kernel;
  std::vector<double> out(filters * in_channels * plane, 0.0);

  for (std::size_t f = 0; f < filters; ++f) {
    std::vector<double> w;
    if (bank == FilterBank::kDog) {
      // Alternate ON/OFF polarity across geometrically spaced scales:
      // f = 0: ON σ₀, f = 1: OFF σ₀, f = 2: ON σ₁, ...
      const double polarity = (f % 2 == 0) ? 1.0 : -1.0;
      const double sigma =
          0.5 * std::pow(1.6, static_cast<double>(f / 2));
      w = dog_kernel(kernel, sigma, polarity);
    } else {
      // Evenly spaced orientations; a second sweep (if filters > 8) adds the
      // quadrature (90°-phase) pair of each orientation.
      const std::size_t orientations = filters > 8 ? (filters + 1) / 2 : filters;
      const std::size_t o = f % orientations;
      const double phase = f < orientations ? 0.0 : kPi / 2.0;
      const double theta =
          kPi * static_cast<double>(o) / static_cast<double>(orientations);
      w = gabor_kernel(kernel, theta, phase);
    }

    double* dst = out.data() + f * in_channels * plane;
    if (in_channels == 2) {
      for (std::size_t i = 0; i < plane; ++i) {
        dst[i] = w[i];           // ON plane
        dst[plane + i] = -w[i];  // OFF plane (opponent)
      }
    } else {
      const double scale = 1.0 / static_cast<double>(in_channels);
      for (std::size_t c = 0; c < in_channels; ++c) {
        for (std::size_t i = 0; i < plane; ++i) {
          dst[c * plane + i] = w[i] * scale;
        }
      }
    }
  }
  return out;
}

}  // namespace pss::graph
