// Multi-layer model serialization + the unified model reader.
//
// A GraphModel is the persistent learned state of a NetworkGraph: the
// architecture string (canonical_layers_spec), the raw input frame shape,
// one NetworkSnapshot per WTA block, and the final block's neuron labels.
//
// Formats:
//  * single-layer models (empty arch) save as the legacy "PSSSNAP1" file,
//    byte-for-byte what save_snapshot writes — pre-graph consumers and the
//    bitwise-preservation tests keep working unchanged;
//  * stacked models save as "PSSSNAP2": magic · u32 crc32(payload) ·
//    payload = vec<char> arch ·
//    u32 input {channels, height, width} · u64 block_count ·
//    per block {u32 neurons · u32 inputs · f64 g_min · f64 g_max ·
//    vec<f64> conductance · vec<f64> theta} · vec<i32> labels
//    (vec = u64 count + raw little-endian data, as in v1); the CRC covers
//    every byte after the 12-byte header, so any flipped bit fails the
//    load with a structured error;
//  * load_graph_model also accepts training checkpoints ("PSSCKPT1",
//    versions 1 and 2) so pss_serve can serve any artifact the trainer
//    writes — the one sniffing entry point for every model file kind.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pss/graph/layer_spec.hpp"
#include "pss/graph/network_graph.hpp"
#include "pss/io/snapshot.hpp"

namespace pss::graph {

struct GraphModel {
  /// canonical_layers_spec() of the source graph; "" = legacy single-layer.
  std::string arch;
  LayerShape input{1, 1, 0};  ///< raw input frame shape
  std::vector<NetworkSnapshot> blocks;  ///< one per WTA block, stack order
  std::vector<std::int32_t> labels;  ///< final block; -1 = unlabelled; may be
                                     ///< empty

  bool single_layer() const { return arch.empty(); }

  /// Captures the learned state of every block (+ labels, if set).
  static GraphModel capture(const NetworkGraph& graph);

  /// Writes the learned state back into a graph of matching architecture.
  void restore(NetworkGraph& graph) const;

  /// The GraphConfig this model instantiates over `base` (backend, dt, STDP
  /// parameters...): single-layer models map to single_wta_graph with the
  /// file's geometry, stacked models re-parse the arch string and validate
  /// the stored block geometry against it.
  GraphConfig to_config(const WtaConfig& base) const;
};

/// Saves legacy v1 bytes for single-layer models, "PSSSNAP2" otherwise.
/// Atomic (tmp + rename); honors fault point io.snapshot.write.
void save_graph_model(const std::string& path, const GraphModel& model);

/// Unified multi-layer reader: sniffs the 8-byte magic and accepts
/// "PSSSNAP1", "PSSSNAP2" and "PSSCKPT1" (both checkpoint versions).
/// Throws pss::Error on unknown magics or corrupt files; honors the fault
/// points of the underlying loaders.
GraphModel load_graph_model(const std::string& path);

}  // namespace pss::graph
