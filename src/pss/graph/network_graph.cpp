#include "pss/graph/network_graph.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <new>
#include <set>
#include <utility>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/error.hpp"
#include "pss/graph/filter_bank.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/trace.hpp"

namespace pss::graph {

namespace {

/// Sibling WTA blocks draw from decorrelated seed streams; block 0 keeps the
/// base seed verbatim so the single-WTA graph is bitwise-equal to a
/// standalone WtaNetwork.
constexpr std::uint64_t kBlockSeedStride = 0xC0FFEEull;

/// Conv units are plain leak-to-zero integrate-and-fire cells: v rides in
/// [0, threshold), no constant drive, unit current gain (the filter-bank
/// amplitude carries the conv gain), membrane leak on the conv decay scale.
LifParameters conv_lif_parameters(const ConvSpec& conv) {
  LifParameters p;
  p.v_threshold = conv.threshold;
  p.v_reset = 0.0;
  p.v_init = 0.0;
  p.a = 0.0;
  p.b = conv.decay_ms > 0.0 ? -1.0 / conv.decay_ms : -1.0;
  p.c = 1.0;
  p.refractory_ms = 0.0;
  return p;
}

/// Trace events buffer raw `const char*` names until the process-exit dump,
/// which can outlive any NetworkGraph. Layer tags are therefore interned in a
/// process-lifetime pool; the pool is tiny (one entry per distinct
/// "graph.l<i>.<kind>" tag ever constructed) and never shrinks.
const char* intern_trace_tag(const std::string& tag) {
  static std::mutex mutex;
  static std::set<std::string> pool;
  const std::lock_guard<std::mutex> lock(mutex);
  return pool.insert(tag).first->c_str();
}

}  // namespace

int GraphResult::winner() const {
  int best = -1;
  std::uint32_t best_count = 0;
  for (std::size_t i = 0; i < spike_counts.size(); ++i) {
    if (spike_counts[i] > best_count) {
      best_count = spike_counts[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

NetworkGraph::NetworkGraph(const GraphConfig& config, Engine* engine)
    : config_(config),
      shapes_(compute_shapes(config)),
      backend_(make_backend(config.wta_base.backend, engine)),
      pool_(std::make_unique<StatePool>(
          backend_.get(),
          StatePool::Geometry{1, shapes_.front().units()})),
      encoder_(*pool_, config.wta_base.seed) {
  // Front-end layers each own a population segment in the shared pool —
  // the multi-population StatePool growth the graph exercises.
  for (std::size_t i = 0; i < config_.layers.size(); ++i) {
    const LayerSpec& spec = config_.layers[i];
    if (spec.kind == LayerKind::kWta) break;
    FrontLayer layer;
    layer.spec = spec;
    layer.in = shapes_[i];
    layer.out = shapes_[i + 1];
    layer.population =
        pool_->add_population(StatePool::Geometry{layer.out.units(), 0});
    if (spec.kind == LayerKind::kConv) {
      layer.filters = make_filter_bank(spec.conv.bank, spec.conv.filters,
                                       spec.conv.kernel, layer.in.channels);
      layer.decay_factor =
          spec.conv.decay_ms > 0.0
              ? std::exp(-config_.wta_base.dt / spec.conv.decay_ms)
              : 0.0;
      layer.lif = conv_lif_parameters(spec.conv);
    }
    front_.push_back(std::move(layer));
  }

  // WTA blocks: embedded WtaNetworks deriving from the base config. The
  // final block carries the readout flags; every block's input is the
  // previous layer's unit count.
  std::size_t wta_seen = 0;
  for (std::size_t i = 0; i < config_.layers.size(); ++i) {
    if (config_.layers[i].kind == LayerKind::kWta) {
      ++wta_seen;
    }
  }
  blocks_.reserve(wta_seen);
  for (std::size_t i = 0; i < config_.layers.size(); ++i) {
    const LayerSpec& spec = config_.layers[i];
    if (spec.kind != LayerKind::kWta) continue;
    const std::size_t b = block_layer_.size();
    WtaConfig bc = config_.wta_base;
    bc.input_channels = shapes_[i].units();
    bc.neuron_count = spec.wta.neurons;
    bc.seed = config_.wta_base.seed + kBlockSeedStride * b;
    if (b + 1 == wta_seen) {
      bc.readout_inhibition = config_.readout.inhibition;
      bc.readout_theta = config_.readout.theta;
    }
    blocks_.emplace_back(bc, engine);
    block_layer_.push_back(i);
  }

  layer_tag_.reserve(config_.layers.size());
  for (std::size_t i = 0; i < config_.layers.size(); ++i) {
    std::string tag = "graph.l" + std::to_string(i) + "." +
                      layer_kind_name(config_.layers[i].kind);
    layer_ns_name_.push_back(tag + ".ns");
    layer_spikes_name_.push_back("graph.l" + std::to_string(i) + ".spikes");
    layer_tag_.push_back(intern_trace_tag(tag));
  }
}

NetworkGraph::~NetworkGraph() = default;
NetworkGraph::NetworkGraph(NetworkGraph&&) noexcept = default;

NetworkGraph& NetworkGraph::operator=(NetworkGraph&& other) noexcept {
  // Destroy-and-rebuild: member-wise move-assignment would replace backend_
  // before pool_, freeing pool buffers through a dead backend.
  if (this != &other) {
    this->~NetworkGraph();
    new (this) NetworkGraph(std::move(other));
  }
  return *this;
}

void NetworkGraph::set_presentation_index(std::uint64_t index) {
  PSS_REQUIRE(index < (std::uint64_t{1} << 32),
              "presentation index must fit the encoder counter space");
  presentation_index_ = index;
}

void NetworkGraph::set_neuron_labels(std::vector<int> labels) {
  PSS_REQUIRE(labels.size() == output_units(),
              "label vector size must match the final block");
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  labels_ = std::move(labels);
  class_count_ = static_cast<std::size_t>(max_label + 1);
}

void NetworkGraph::reset_front() {
  for (FrontLayer& layer : front_) {
    const double v0 =
        layer.spec.kind == LayerKind::kConv ? layer.lif.v_init : 0.0;
    std::ranges::fill(pool_->membrane(layer.population), v0);
    std::ranges::fill(pool_->currents(layer.population), 0.0);
    std::ranges::fill(pool_->spiked(layer.population), std::uint8_t{0});
    std::ranges::fill(pool_->last_spike(layer.population), kNeverSpiked);
    std::ranges::fill(pool_->inhibited_until(layer.population), -1.0);
    std::ranges::fill(pool_->spike_counts(layer.population), 0u);
  }
}

void NetworkGraph::encoded_rates_from_frame(const Image& frame,
                                            const Image* previous,
                                            std::vector<double>& rates) const {
  // Encoding is per-pixel, so only the unit count must match — a front-less
  // graph flattens its input shape to {1, 1, units} (single_wta_graph) yet
  // still accepts the original 2-D frames.
  PSS_REQUIRE(frame.pixel_count() == config_.input.units(),
              "frame pixel count must match the graph input units");
  const std::size_t pixels = frame.pixel_count();
  const double peak = config_.encode.peak_hz;
  if (!config_.encode.temporal_diff) {
    rates.resize(pixels);
    for (std::size_t i = 0; i < pixels; ++i) {
      rates[i] = peak * static_cast<double>(frame.pixels[i]) / 255.0;
    }
    return;
  }
  // ON/OFF change planes vs the previous frame (frame 0 diffs vs blank, so a
  // static presentation reduces to intensity→rate on the ON plane).
  rates.assign(2 * pixels, 0.0);
  for (std::size_t i = 0; i < pixels; ++i) {
    const double prev =
        previous != nullptr ? static_cast<double>(previous->pixels[i]) : 0.0;
    const double diff =
        (static_cast<double>(frame.pixels[i]) - prev) / 255.0;
    if (diff > 0.0) {
      rates[i] = peak * diff;
    } else {
      rates[pixels + i] = peak * -diff;
    }
  }
}

void NetworkGraph::run_front_segment(std::span<const double> rates_hz,
                                     StepIndex steps,
                                     std::uint64_t encode_index,
                                     GraphResult& result,
                                     std::span<std::uint64_t> layer_ns) {
  Engine& engine = backend_->engine();
  const KernelTable& kernels = backend_->kernels();
  const TimeMs dt = config_.wta_base.dt;
  const bool timed = obs::metrics_enabled() || obs::trace_enabled();

  encoder_.set_rates(rates_hz);
  encoder_.set_presentation(encode_index);
  // Event-driven backends build the segment's spike events once and slice
  // per step — sparse propagation of the inter-layer event stream.
  const bool events = encoder_.supports_events();
  if (events) {
    encoder_.build_events(steps, dt, events_);
  }

  std::uint64_t mark = timed ? obs::monotonic_ns() : 0;
  const auto charge = [&](std::size_t slot) {
    if (timed) {
      const std::uint64_t now_ns = obs::monotonic_ns();
      layer_ns[slot] += now_ns - mark;
      mark = now_ns;
    }
  };

  for (StepIndex s = 0; s < steps; ++s) {
    const TimeMs t = static_cast<TimeMs>(s + 1) * dt;
    std::span<const ChannelIndex> active;
    if (events) {
      active = events_.at_step(s);
    } else {
      encoder_.active_channels(s, dt, active_in_);
      active = active_in_;
    }
    result.input_spikes += active.size();
    charge(0);

    for (std::size_t li = 0; li < front_.size(); ++li) {
      FrontLayer& layer = front_[li];
      const auto flags = pool_->spiked(layer.population);
      const auto counts = pool_->spike_counts(layer.population);
      if (layer.spec.kind == LayerKind::kConv) {
        ConvAccumulateArgs cargs;
        cargs.filters = layer.filters;
        cargs.filter_count = layer.out.channels;
        cargs.in_channels = layer.in.channels;
        cargs.kernel = layer.spec.conv.kernel;
        cargs.stride = layer.spec.conv.stride;
        cargs.in_width = layer.in.width;
        cargs.in_height = layer.in.height;
        cargs.out_width = layer.out.width;
        cargs.out_height = layer.out.height;
        cargs.active_pre = active;
        cargs.amplitude = layer.spec.conv.gain;
        cargs.decay_factor = layer.decay_factor;
        cargs.currents = pool_->currents(layer.population);
        kernels.conv_accumulate(engine, cargs);

        LifStepArgs largs;
        largs.params = layer.lif;
        largs.step.state =
            NeuronStateView{pool_->membrane(layer.population),
                            {},
                            pool_->last_spike(layer.population),
                            pool_->inhibited_until(layer.population),
                            flags};
        largs.step.input_current = pool_->currents(layer.population);
        largs.step.now = t;
        largs.step.dt = dt;
        kernels.lif_step(engine, largs);
      } else {
        PoolForwardArgs pargs;
        pargs.spiked = pool_->spiked(front_[li - 1].population);
        pargs.channels = layer.in.channels;
        pargs.in_width = layer.in.width;
        pargs.in_height = layer.in.height;
        pargs.window = layer.spec.pool.window;
        pargs.out_width = layer.out.width;
        pargs.out_height = layer.out.height;
        pargs.pooled = flags;
        pargs.pooled_counts = counts;
        kernels.pool_forward(engine, pargs);
      }

      // Compact fired units into the next layer's ascending active list — a
      // host-side serial sweep, deterministic for any worker count. Conv
      // counts accumulate here; pool counts accumulate inside the kernel.
      active_next_.clear();
      const bool count_here = layer.spec.kind == LayerKind::kConv;
      for (std::size_t i = 0; i < flags.size(); ++i) {
        if (flags[i] != 0) {
          active_next_.push_back(static_cast<ChannelIndex>(i));
          if (count_here) {
            ++counts[i];
          }
        }
      }
      result.layer_spikes[li] += active_next_.size();
      std::swap(active_in_, active_next_);
      active = active_in_;
      charge(li + 1);
    }
  }
}

GraphResult NetworkGraph::finish_presentation(
    GraphResult result, TimeMs duration_ms, int learn_block,
    std::span<const double> direct_rates, std::span<std::uint64_t> layer_ns,
    std::uint64_t present_t0) {
  PSS_REQUIRE(learn_block >= -1 &&
                  learn_block < static_cast<int>(blocks_.size()),
              "learn_block out of range");
  const bool timed = obs::metrics_enabled() || obs::trace_enabled();

  // Recode into block 0's input rates: front-end per-presentation counts →
  // Hz over the presentation, or the caller's rates for front-less graphs
  // (gain 1.0 multiplies bitwise-identically — the single-WTA contract).
  const double gain0 =
      config_.layers[block_layer_.front()].wta.gain;
  if (front_.empty()) {
    block_rates_.resize(direct_rates.size());
    for (std::size_t i = 0; i < direct_rates.size(); ++i) {
      block_rates_[i] = direct_rates[i] * gain0;
    }
  } else {
    const auto counts = pool_->spike_counts(front_.back().population);
    const double scale = 1000.0 / duration_ms * gain0;
    block_rates_.resize(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
      block_rates_[i] = static_cast<double>(counts[i]) * scale;
    }
  }

  // Block cascade. A training pass stops at the learning block (later
  // blocks' output would be unused); inference runs the full stack.
  const std::size_t last_block =
      learn_block >= 0 ? static_cast<std::size_t>(learn_block)
                       : blocks_.size() - 1;
  std::uint64_t mark = timed ? obs::monotonic_ns() : 0;
  for (std::size_t b = 0; b <= last_block; ++b) {
    const bool learn = static_cast<int>(b) == learn_block;
    blocks_[b].set_presentation_index(presentation_index_);
    PresentationResult r =
        blocks_[b].present(block_rates_, duration_ms, learn);
    result.layer_spikes[block_layer_[b]] = r.total_spikes;
    // Front-less graphs encode inside block 0; surface its input spikes so
    // the one-layer graph reports exactly what a standalone WtaNetwork does.
    if (front_.empty() && b == 0) result.input_spikes = r.input_spikes;
    if (timed) {
      const std::uint64_t now_ns = obs::monotonic_ns();
      layer_ns[block_layer_[b] + 1] += now_ns - mark;
      mark = now_ns;
    }
    if (b < last_block) {
      const double scale = 1000.0 / duration_ms *
                           config_.layers[block_layer_[b + 1]].wta.gain;
      block_rates_.resize(r.spike_counts.size());
      for (std::size_t i = 0; i < r.spike_counts.size(); ++i) {
        block_rates_[i] = static_cast<double>(r.spike_counts[i]) * scale;
      }
    } else {
      result.spike_counts = std::move(r.spike_counts);
    }
  }
  ++presentation_index_;

  if (obs::metrics_enabled()) {
    auto& reg = obs::metrics();
    reg.counter("graph.presentations").add(1);
    reg.counter("graph.input_spikes").add(result.input_spikes);
    reg.counter("graph.encode.ns").add(layer_ns[0]);
    for (std::size_t i = 0; i < config_.layers.size(); ++i) {
      reg.counter(layer_spikes_name_[i]).add(result.layer_spikes[i]);
      reg.counter(layer_ns_name_[i]).add(layer_ns[i + 1]);
    }
  }
  if (obs::trace_enabled()) {
    const std::uint64_t present_end = obs::monotonic_ns();
    obs::emit_trace_event("graph.present",
                          learn_block >= 0 ? "train" : "readout", present_t0,
                          present_end - present_t0);
    // Per-layer spans laid out back to back from the presentation start —
    // the same synthetic layout WtaNetwork uses for its phase spans.
    std::uint64_t cursor = present_t0;
    if (layer_ns[0] != 0) {
      obs::emit_trace_event("graph.encode", "graph", cursor, layer_ns[0]);
      cursor += layer_ns[0];
    }
    for (std::size_t i = 0; i < config_.layers.size(); ++i) {
      if (layer_ns[i + 1] == 0) continue;
      obs::emit_trace_event(layer_tag_[i], "graph", cursor, layer_ns[i + 1]);
      cursor += layer_ns[i + 1];
    }
  }
  return result;
}

GraphResult NetworkGraph::present(std::span<const double> rates_hz,
                                  TimeMs duration_ms, int learn_block) {
  PSS_REQUIRE(rates_hz.size() == input_units(),
              "rate vector size must match the encoded input");
  const bool timed = obs::metrics_enabled() || obs::trace_enabled();
  const std::uint64_t present_t0 = timed ? obs::monotonic_ns() : 0;
  GraphResult result;
  result.layer_spikes.assign(config_.layers.size(), 0);
  std::vector<std::uint64_t> layer_ns(config_.layers.size() + 1, 0);

  if (front_.empty()) {
    return finish_presentation(std::move(result), duration_ms, learn_block,
                               rates_hz, layer_ns, present_t0);
  }
  PSS_REQUIRE(presentation_index_ < (std::uint64_t{1} << 32) / kMaxFrames,
              "presentation index exhausted the encoder counter space");
  reset_front();
  const TimeMs dt = config_.wta_base.dt;
  const auto steps = static_cast<StepIndex>(std::ceil(duration_ms / dt));
  run_front_segment(rates_hz, steps, presentation_index_ * kMaxFrames, result,
                    layer_ns);
  return finish_presentation(std::move(result), duration_ms, learn_block, {},
                             layer_ns, present_t0);
}

GraphResult NetworkGraph::present_image(const Image& image, TimeMs duration_ms,
                                        int learn_block) {
  encoded_rates_from_frame(image, nullptr, rates_scratch_);
  return present(rates_scratch_, duration_ms, learn_block);
}

GraphResult NetworkGraph::present_sequence(std::span<const Image> frames,
                                           TimeMs frame_ms, int learn_block) {
  PSS_REQUIRE(!frames.empty() && frames.size() <= kMaxFrames,
              "sequence length must be in [1, kMaxFrames]");
  const TimeMs total_ms = frame_ms * static_cast<double>(frames.size());
  const bool timed = obs::metrics_enabled() || obs::trace_enabled();
  const std::uint64_t present_t0 = timed ? obs::monotonic_ns() : 0;
  GraphResult result;
  result.layer_spikes.assign(config_.layers.size(), 0);
  std::vector<std::uint64_t> layer_ns(config_.layers.size() + 1, 0);

  if (!front_.empty()) {
    PSS_REQUIRE(presentation_index_ < (std::uint64_t{1} << 32) / kMaxFrames,
                "presentation index exhausted the encoder counter space");
    reset_front();
    const TimeMs dt = config_.wta_base.dt;
    const auto steps = static_cast<StepIndex>(std::ceil(frame_ms / dt));
    for (std::size_t f = 0; f < frames.size(); ++f) {
      encoded_rates_from_frame(frames[f], f > 0 ? &frames[f - 1] : nullptr,
                               rates_scratch_);
      run_front_segment(rates_scratch_, steps,
                        presentation_index_ * kMaxFrames + f, result,
                        layer_ns);
    }
    return finish_presentation(std::move(result), total_ms, learn_block, {},
                               layer_ns, present_t0);
  }

  // No spatial front-end: the sequence collapses to its mean encoded rates
  // (with temporal-diff encoding still a direction-selective ON/OFF pattern).
  std::vector<double> mean(input_units(), 0.0);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    encoded_rates_from_frame(frames[f], f > 0 ? &frames[f - 1] : nullptr,
                             rates_scratch_);
    for (std::size_t i = 0; i < mean.size(); ++i) {
      mean[i] += rates_scratch_[i];
    }
  }
  for (double& r : mean) r /= static_cast<double>(frames.size());
  return finish_presentation(std::move(result), total_ms, learn_block, mean,
                             layer_ns, present_t0);
}

}  // namespace pss::graph
