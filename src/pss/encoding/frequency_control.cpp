#include "pss/encoding/frequency_control.hpp"

#include <algorithm>

#include "pss/common/error.hpp"

namespace pss {

FrequencyControl::FrequencyControl(double base_f_min_hz, double base_f_max_hz,
                                   TimeMs base_t_learn_ms) {
  PSS_REQUIRE(base_f_min_hz >= 0.0 && base_f_max_hz >= base_f_min_hz,
              "invalid base frequency range");
  PSS_REQUIRE(base_t_learn_ms > 0.0, "presentation time must be positive");
  base_ = {base_f_min_hz, base_f_max_hz, base_t_learn_ms, 1.0};
}

FrequencyPlan FrequencyControl::plan(double boost, TimeMs min_t_learn_ms) const {
  PSS_REQUIRE(boost >= 1.0, "frequency boost must be >= 1");
  FrequencyPlan p;
  p.boost = boost;
  p.f_min_hz = base_.f_min_hz * boost;
  p.f_max_hz = base_.f_max_hz * boost;
  p.t_learn_ms = std::max(min_t_learn_ms, base_.t_learn_ms / boost);
  return p;
}

FrequencyPlan FrequencyControl::plan_for_f_max(double f_max_hz,
                                               TimeMs min_t_learn_ms) const {
  PSS_REQUIRE(f_max_hz >= base_.f_max_hz,
              "target f_max below the baseline operating point");
  return plan(f_max_hz / base_.f_max_hz, min_t_learn_ms);
}

}  // namespace pss
