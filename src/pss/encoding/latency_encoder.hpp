// Time-to-first-spike (latency) encoder — a rate-free input coding scheme
// offered alongside the paper's rate encoders: brighter pixels fire earlier
// within each repeating encoding window. Latency coding is the standard
// alternative input regime for STDP networks (e.g. Masquelier & Thorpe) and
// lets the library explore temporal-code learning beyond the paper.
//
// Channel c with intensity-derived rate r in [r_min, r_max] fires once per
// window of `window_ms`, at latency
//   t_spike = window * (1 - (r - r_min)/(r_max - r_min)) * spread
// so the maximum-intensity channel fires at the window start and the
// minimum-intensity channel late in the window (or never if its rate is at
// the floor and `silent_floor` is set).
#pragma once

#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

class LatencyEncoder {
 public:
  /// `window_ms` is the encoding frame; `spread` in (0, 1] the fraction of
  /// the window used for latencies; `silent_floor` drops channels at the
  /// minimum rate entirely (background suppression).
  LatencyEncoder(std::size_t channel_count, TimeMs window_ms,
                 double spread = 0.9, bool silent_floor = true);

  std::size_t channel_count() const { return latency_steps_.size(); }
  TimeMs window_ms() const { return window_ms_; }

  /// Derives per-channel latencies from rates (Hz); the min/max of the
  /// vector define the coding range.
  void set_rates(std::span<const double> rates_hz);

  /// Channels spiking in global step `step` of width dt (cleared first).
  void active_channels(StepIndex step, TimeMs dt,
                       std::vector<ChannelIndex>& active) const;

  bool spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const;

  /// Latency (ms within the window) of channel c; negative = silent.
  double latency_ms(ChannelIndex c) const;

 private:
  TimeMs window_ms_;
  double spread_;
  bool silent_floor_;
  std::vector<double> latency_steps_;  // in ms; < 0 means silent
};

}  // namespace pss
