// Pixel-intensity → spike-train-frequency conversion (paper Fig. 1d).
//
// "Pixel intensity of input images, which is an 8-bit value, is encoded into
// specific spiking frequency of one spike train. ... Frequency is in a range
// between f_input_max and f_input_min, and proportional to the pixel
// intensity." (Sec. III-B). Intensity 0 maps to f_min, intensity 255 to
// f_max, linear in between.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pss {

class PixelFrequencyMap {
 public:
  /// Requires f_max >= f_min >= 0 (Table I gives e.g. [1, 22] Hz baseline,
  /// [5, 78] Hz high-frequency).
  PixelFrequencyMap(double f_min_hz, double f_max_hz);

  double f_min_hz() const { return f_min_; }
  double f_max_hz() const { return f_max_; }

  /// Frequency (Hz) for one 8-bit pixel intensity.
  double frequency(std::uint8_t intensity) const;

  /// Vectorized conversion of a whole image into per-channel rates.
  void frequencies(std::span<const std::uint8_t> pixels,
                   std::vector<double>& rates_hz) const;

 private:
  double f_min_;
  double f_max_;
};

}  // namespace pss
