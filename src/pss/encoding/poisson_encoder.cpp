#include "pss/encoding/poisson_encoder.hpp"

#include "pss/common/error.hpp"
#include "pss/obs/metrics.hpp"

namespace pss {

PoissonEncoder::PoissonEncoder(std::size_t channel_count, std::uint64_t seed)
    : rates_hz_(channel_count, 0.0), rng_(seed, /*stream=*/0x705573ull) {
  PSS_REQUIRE(channel_count > 0, "encoder needs at least one channel");
}

void PoissonEncoder::set_rates(std::span<const double> rates_hz) {
  PSS_REQUIRE(rates_hz.size() == rates_hz_.size(),
              "rate vector size must equal channel count");
  for (double r : rates_hz) PSS_REQUIRE(r >= 0.0, "rates must be non-negative");
  rates_hz_.assign(rates_hz.begin(), rates_hz.end());
  nonzero_.clear();
  for (std::size_t c = 0; c < rates_hz_.size(); ++c) {
    if (rates_hz_[c] > 0.0) nonzero_.push_back(static_cast<ChannelIndex>(c));
  }
  if (obs::metrics_enabled()) {
    obs::metrics().gauge("encoder.active_channels")
        .set(static_cast<double>(nonzero_.size()));
  }
}

void PoissonEncoder::set_uniform_rate(double rate_hz) {
  PSS_REQUIRE(rate_hz >= 0.0, "rates must be non-negative");
  rates_hz_.assign(rates_hz_.size(), rate_hz);
  nonzero_.clear();
  if (rate_hz > 0.0) {
    nonzero_.reserve(rates_hz_.size());
    for (std::size_t c = 0; c < rates_hz_.size(); ++c) {
      nonzero_.push_back(static_cast<ChannelIndex>(c));
    }
  }
}

void PoissonEncoder::set_presentation(std::uint64_t presentation_index) {
  PSS_DASSERT(presentation_index < (1ull << 32));
  presentation_base_ = presentation_index << 32;
}

bool PoissonEncoder::spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const {
  PSS_DASSERT(c < rates_hz_.size());
  PSS_DASSERT(step < (1ull << 32));
  const double p = rates_hz_[c] * dt * 1e-3;
  // Draw index couples (presentation, step); fork(c) gives each channel its
  // own stream so neighbouring channels are uncorrelated.
  return rng_.fork(c).bernoulli(presentation_base_ | step, p);
}

void PoissonEncoder::active_channels(StepIndex step, TimeMs dt,
                                     std::vector<ChannelIndex>& active) const {
  active.clear();
  for (ChannelIndex c : nonzero_) {
    if (spikes_at(c, step, dt)) active.push_back(c);
  }
  if (obs::metrics_enabled()) {
    // Static refs: the registry lookup happens once, not per step.
    static obs::Counter& spikes = obs::metrics().counter("encoder.spikes");
    static obs::Counter& steps = obs::metrics().counter("encoder.steps");
    spikes.add(active.size());
    steps.add(1);
  }
}

}  // namespace pss
