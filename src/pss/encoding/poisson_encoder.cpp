#include "pss/encoding/poisson_encoder.hpp"

#include <algorithm>
#include <utility>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/error.hpp"
#include "pss/obs/metrics.hpp"

namespace pss {

PoissonEncoder::PoissonEncoder(std::size_t channel_count, std::uint64_t seed)
    : rng_(seed, /*stream=*/0x705573ull) {
  PSS_REQUIRE(channel_count > 0, "encoder needs at least one channel");
  owned_pool_ = std::make_unique<StatePool>(
      &default_backend(), StatePool::Geometry{1, channel_count});
  pool_ = owned_pool_.get();
}

PoissonEncoder::PoissonEncoder(StatePool& pool, std::uint64_t seed)
    : pool_(&pool), rng_(seed, /*stream=*/0x705573ull) {
  PSS_REQUIRE(pool.channels() > 0, "encoder needs at least one channel");
}

PoissonEncoder::~PoissonEncoder() = default;
PoissonEncoder::PoissonEncoder(PoissonEncoder&&) noexcept = default;
PoissonEncoder& PoissonEncoder::operator=(PoissonEncoder&&) noexcept = default;

std::size_t PoissonEncoder::channel_count() const { return pool_->channels(); }

std::span<const double> PoissonEncoder::rates() const {
  return std::as_const(*pool_).rates();
}

void PoissonEncoder::set_rates(std::span<const double> rates_hz) {
  PSS_REQUIRE(rates_hz.size() == channel_count(),
              "rate vector size must equal channel count");
  for (double r : rates_hz) PSS_REQUIRE(r >= 0.0, "rates must be non-negative");
  // Memo: repeated presentations of the same image skip the copy and the
  // nonzero-candidate rebuild (the dense precompute this feeds is otherwise
  // recomputed per presentation even for identical rate vectors).
  if (rates_seen_ && std::equal(rates_hz.begin(), rates_hz.end(),
                                pool_->rates().begin())) {
    if (obs::metrics_enabled()) {
      obs::metrics().counter("encoder.set_rates_memo_hits").add(1);
    }
    return;
  }
  rates_seen_ = true;
  std::copy(rates_hz.begin(), rates_hz.end(), pool_->rates().begin());
  nonzero_.clear();
  for (std::size_t c = 0; c < rates_hz.size(); ++c) {
    if (rates_hz[c] > 0.0) nonzero_.push_back(static_cast<ChannelIndex>(c));
  }
  if (obs::metrics_enabled()) {
    obs::metrics().gauge("encoder.active_channels")
        .set(static_cast<double>(nonzero_.size()));
  }
}

void PoissonEncoder::set_uniform_rate(double rate_hz) {
  PSS_REQUIRE(rate_hz >= 0.0, "rates must be non-negative");
  rates_seen_ = true;
  auto rates = pool_->rates();
  std::fill(rates.begin(), rates.end(), rate_hz);
  nonzero_.clear();
  if (rate_hz > 0.0) {
    nonzero_.reserve(rates.size());
    for (std::size_t c = 0; c < rates.size(); ++c) {
      nonzero_.push_back(static_cast<ChannelIndex>(c));
    }
  }
}

void PoissonEncoder::set_presentation(std::uint64_t presentation_index) {
  PSS_DASSERT(presentation_index < (1ull << 32));
  presentation_base_ = presentation_index << 32;
}

bool PoissonEncoder::spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const {
  PSS_DASSERT(c < channel_count());
  PSS_DASSERT(step < (1ull << 32));
  const double p = rates()[c] * dt * 1e-3;
  // Draw index couples (presentation, step); fork(c) gives each channel its
  // own stream so neighbouring channels are uncorrelated.
  return rng_.fork(c).bernoulli(presentation_base_ | step, p);
}

void PoissonEncoder::active_channels(StepIndex step, TimeMs dt,
                                     std::vector<ChannelIndex>& active) const {
  PoissonEncodeArgs args{&rng_,  rates(), nonzero_, presentation_base_,
                         step,   dt,      &active};
  Backend& backend = pool_->backend();
  backend.kernels().poisson_encode(backend.engine(), args);
  if (obs::metrics_enabled()) {
    // Static refs: the registry lookup happens once, not per step.
    static obs::Counter& spikes = obs::metrics().counter("encoder.spikes");
    static obs::Counter& steps = obs::metrics().counter("encoder.steps");
    spikes.add(active.size());
    steps.add(1);
  }
}

bool PoissonEncoder::supports_events() const {
  return pool_->backend().kernels().poisson_encode_events != nullptr;
}

void PoissonEncoder::build_events(StepIndex steps, TimeMs dt,
                                  SpikeEventList& out) const {
  PSS_DASSERT(steps < (1ull << 32));
  PoissonEncodeEventsArgs args{&rng_,  rates(), nonzero_,
                               channel_count(), presentation_base_,
                               steps,  dt,      &out};
  Backend& backend = pool_->backend();
  backend.kernels().poisson_encode_events(backend.engine(), args);
  if (obs::metrics_enabled()) {
    static obs::Counter& events =
        obs::metrics().counter("encoder.events_emitted");
    events.add(out.total());
  }
}

}  // namespace pss
