// Poisson spike-train generator: one train per input channel (paper Fig. 3,
// "input image is converted to a spike train array, one spike train per
// pixel").
//
// Each channel c fires in a step of width dt with probability rate_c·dt/1000
// — a Bernoulli thinning of a Poisson process, the standard rate encoding.
// Draws use the counter-based RNG indexed by (channel, global step) so the
// generated trains are identical regardless of thread scheduling and can be
// replayed exactly (the Fig. 6a raster bench relies on this).
#pragma once

#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"

namespace pss {

class PoissonEncoder {
 public:
  PoissonEncoder(std::size_t channel_count, std::uint64_t seed);

  std::size_t channel_count() const { return rates_hz_.size(); }

  /// Sets per-channel rates in Hz (size must equal channel_count).
  void set_rates(std::span<const double> rates_hz);

  /// Convenience: same rate everywhere.
  void set_uniform_rate(double rate_hz);

  /// Emits the channels that spike during global step `step` of width dt
  /// into `active` (cleared first). Steps may be queried in any order.
  void active_channels(StepIndex step, TimeMs dt,
                       std::vector<ChannelIndex>& active) const;

  /// True if channel `c` spikes at `step` — random-access form used by
  /// raster plotting and tests.
  bool spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const;

 private:
  std::vector<double> rates_hz_;
  CounterRng rng_;
};

}  // namespace pss
