// Poisson spike-train generator: one train per input channel (paper Fig. 3,
// "input image is converted to a spike train array, one spike train per
// pixel").
//
// Each channel c fires in a step of width dt with probability rate_c·dt/1000
// — a Bernoulli thinning of a Poisson process, the standard rate encoding.
// Draws use the counter-based RNG indexed by (channel, presentation, step) so
// the generated trains are identical regardless of thread scheduling and can
// be replayed exactly (the Fig. 6a raster bench and the batched presentation
// engine both rely on this).
//
// Per-channel rates live in a StatePool's rates section (backend-owned hot
// state); the encode step itself dispatches through the backend's registered
// poisson_encode kernel.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"

namespace pss {

class Backend;
class StatePool;
struct SpikeEventList;

class PoissonEncoder {
 public:
  /// Standalone: allocates a private pool on the default `cpu` backend.
  PoissonEncoder(std::size_t channel_count, std::uint64_t seed);

  /// Shares `pool` (non-owning); channel count = pool->channels().
  PoissonEncoder(StatePool& pool, std::uint64_t seed);

  ~PoissonEncoder();
  PoissonEncoder(PoissonEncoder&&) noexcept;
  PoissonEncoder& operator=(PoissonEncoder&&) noexcept;

  std::size_t channel_count() const;

  /// Sets per-channel rates in Hz (size must equal channel_count).
  void set_rates(std::span<const double> rates_hz);

  /// Convenience: same rate everywhere.
  void set_uniform_rate(double rate_hz);

  /// Selects which presentation subsequent draws belong to. Each presentation
  /// owns an independent 2^32-step slice of the counter space, so spike
  /// trains depend only on (seed, presentation, step) — never on how many
  /// presentations ran before on this encoder instance. Defaults to 0, which
  /// preserves the plain step-indexed behaviour for single-run callers.
  void set_presentation(std::uint64_t presentation_index);
  std::uint64_t presentation() const { return presentation_base_ >> 32; }

  /// Emits the channels that spike during step `step` of width dt into
  /// `active` (cleared first). Steps may be queried in any order. Only
  /// channels with a nonzero rate are visited.
  void active_channels(StepIndex step, TimeMs dt,
                       std::vector<ChannelIndex>& active) const;

  /// True if channel `c` spikes at `step` — random-access form used by
  /// raster plotting and tests.
  bool spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const;

  /// True if the backend registers the event-list encode kernel (the
  /// event-driven presentation loop probes this).
  bool supports_events() const;

  /// Builds the whole presentation's spike events at once via geometric
  /// inter-spike sampling — O(spikes) Philox draws instead of
  /// O(channels × steps). Same presentation-indexed streams and worker-count
  /// invariance as active_channels, but a different draw indexing: the
  /// resulting trains are equal in distribution, not bitwise (see
  /// PoissonEncodeEventsArgs). Requires supports_events().
  void build_events(StepIndex steps, TimeMs dt, SpikeEventList& out) const;

 private:
  std::span<const double> rates() const;

  std::unique_ptr<Backend> owned_backend_;  ///< standalone ctor only
  std::unique_ptr<StatePool> owned_pool_;   ///< standalone ctor only
  StatePool* pool_ = nullptr;               ///< never null after construction
  std::vector<ChannelIndex> nonzero_;  // channels with rate > 0, ascending
  bool rates_seen_ = false;  // set_rates called at least once (memo guard)
  CounterRng rng_;
  std::uint64_t presentation_base_ = 0;  // presentation_index << 32
};

}  // namespace pss
