// Regular (clock-like) spike-train generator.
//
// Channel c with rate f fires every 1000/f ms, with a per-channel phase
// offset so channels with equal rates do not fire in lockstep. Deterministic
// trains make unit tests exact and give the crisp rasters of Fig. 6a when
// jitter-free visualization is wanted; learning experiments use the Poisson
// encoder.
//
// Rates live in a StatePool's rates section; the encode step dispatches
// through the backend's registered regular_encode kernel.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"

namespace pss {

class Backend;
class StatePool;
struct SpikeEventList;

class RegularEncoder {
 public:
  /// `seed` randomizes per-channel phases; phase 0 for all channels when
  /// `randomize_phase` is false. Standalone: allocates a private pool on the
  /// default `cpu` backend.
  RegularEncoder(std::size_t channel_count, std::uint64_t seed,
                 bool randomize_phase = true);

  /// Shares `pool` (non-owning); channel count = pool->channels().
  RegularEncoder(StatePool& pool, std::uint64_t seed,
                 bool randomize_phase = true);

  ~RegularEncoder();
  RegularEncoder(RegularEncoder&&) noexcept;
  RegularEncoder& operator=(RegularEncoder&&) noexcept;

  std::size_t channel_count() const;

  void set_rates(std::span<const double> rates_hz);
  void set_uniform_rate(double rate_hz);

  /// True if channel c emits a spike in step [step·dt, (step+1)·dt).
  bool spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const;

  void active_channels(StepIndex step, TimeMs dt,
                       std::vector<ChannelIndex>& active) const;

  /// True if the backend registers the event-list encode kernel.
  bool supports_events() const;

  /// Builds the whole presentation's spike events at once via next-spike-time
  /// phase arithmetic. Per-step slices are bitwise-identical to
  /// active_channels (see RegularEncodeEventsArgs). Requires
  /// supports_events().
  void build_events(StepIndex steps, TimeMs dt, SpikeEventList& out) const;

 private:
  std::span<const double> rates() const;
  void init_phases(std::uint64_t seed, bool randomize_phase);

  std::unique_ptr<StatePool> owned_pool_;  ///< standalone ctor only
  StatePool* pool_ = nullptr;              ///< never null after construction
  std::vector<double> phase_;  // in [0, 1) fractions of a period
};

}  // namespace pss
