// Regular (clock-like) spike-train generator.
//
// Channel c with rate f fires every 1000/f ms, with a per-channel phase
// offset so channels with equal rates do not fire in lockstep. Deterministic
// trains make unit tests exact and give the crisp rasters of Fig. 6a when
// jitter-free visualization is wanted; learning experiments use the Poisson
// encoder.
#pragma once

#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"

namespace pss {

class RegularEncoder {
 public:
  /// `seed` randomizes per-channel phases; phase 0 for all channels when
  /// `randomize_phase` is false.
  RegularEncoder(std::size_t channel_count, std::uint64_t seed,
                 bool randomize_phase = true);

  std::size_t channel_count() const { return rates_hz_.size(); }

  void set_rates(std::span<const double> rates_hz);
  void set_uniform_rate(double rate_hz);

  /// True if channel c emits a spike in step [step·dt, (step+1)·dt).
  bool spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const;

  void active_channels(StepIndex step, TimeMs dt,
                       std::vector<ChannelIndex>& active) const;

 private:
  std::vector<double> rates_hz_;
  std::vector<double> phase_;  // in [0, 1) fractions of a period
};

}  // namespace pss
