// Frequency-control module (paper Fig. 2 and Sec. IV-C).
//
// "Frequency control module works in two phases: frequency boost and
// learning time reduction." Raising the input spike-train frequency delivers
// the same number of information-carrying spikes in less biological time, so
// each image can be presented for proportionally less time. The baseline
// operates at 1–22 Hz / 500 ms per image; the paper's high-frequency mode at
// 5–78 Hz / 100 ms per image — a 5x per-image reduction that yields the
// reported 542 → 131 min total learning time (≈3x end-to-end, Sec. IV-C).
#pragma once

#include "pss/common/types.hpp"

namespace pss {

/// The operating point produced by the frequency controller.
struct FrequencyPlan {
  double f_min_hz = 1.0;
  double f_max_hz = 22.0;
  TimeMs t_learn_ms = 500.0;  ///< per-image presentation time
  double boost = 1.0;         ///< applied boost factor (1 = baseline)
};

class FrequencyControl {
 public:
  /// Baseline operating point (frequencies and presentation time).
  FrequencyControl(double base_f_min_hz, double base_f_max_hz,
                   TimeMs base_t_learn_ms);

  /// Phase 1 (frequency boost) + phase 2 (learning-time reduction):
  /// multiplies both frequencies by `boost` and divides the presentation
  /// time by the same factor, clamped so that at least `min_t_learn_ms` of
  /// presentation remains. boost must be >= 1.
  FrequencyPlan plan(double boost, TimeMs min_t_learn_ms = 20.0) const;

  /// The paper's two named operating points.
  FrequencyPlan baseline() const { return plan(1.0); }

  /// Maps an arbitrary target f_max to a plan (used by the Fig. 7a sweep,
  /// which varies f_input_max directly).
  FrequencyPlan plan_for_f_max(double f_max_hz, TimeMs min_t_learn_ms = 20.0) const;

 private:
  FrequencyPlan base_;
};

}  // namespace pss
