#include "pss/encoding/pixel_frequency.hpp"

#include "pss/common/error.hpp"

namespace pss {

PixelFrequencyMap::PixelFrequencyMap(double f_min_hz, double f_max_hz)
    : f_min_(f_min_hz), f_max_(f_max_hz) {
  PSS_REQUIRE(f_min_hz >= 0.0, "frequencies must be non-negative");
  PSS_REQUIRE(f_max_hz >= f_min_hz, "f_max must not be below f_min");
}

double PixelFrequencyMap::frequency(std::uint8_t intensity) const {
  return f_min_ + (f_max_ - f_min_) * (static_cast<double>(intensity) / 255.0);
}

void PixelFrequencyMap::frequencies(std::span<const std::uint8_t> pixels,
                                    std::vector<double>& rates_hz) const {
  rates_hz.resize(pixels.size());
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    rates_hz[i] = frequency(pixels[i]);
  }
}

}  // namespace pss
