#include "pss/encoding/latency_encoder.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

LatencyEncoder::LatencyEncoder(std::size_t channel_count, TimeMs window_ms,
                               double spread, bool silent_floor)
    : window_ms_(window_ms),
      spread_(spread),
      silent_floor_(silent_floor),
      latency_steps_(channel_count, -1.0) {
  PSS_REQUIRE(channel_count > 0, "encoder needs at least one channel");
  PSS_REQUIRE(window_ms > 0.0, "window must be positive");
  PSS_REQUIRE(spread > 0.0 && spread <= 1.0, "spread must be in (0, 1]");
}

void LatencyEncoder::set_rates(std::span<const double> rates_hz) {
  PSS_REQUIRE(rates_hz.size() == latency_steps_.size(),
              "rate vector size must equal channel count");
  const auto [lo_it, hi_it] =
      std::minmax_element(rates_hz.begin(), rates_hz.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double range = hi - lo;
  for (std::size_t c = 0; c < rates_hz.size(); ++c) {
    if (range <= 0.0) {
      latency_steps_[c] = 0.0;  // uniform input: everyone at window start
      continue;
    }
    const double norm = (rates_hz[c] - lo) / range;
    if (silent_floor_ && norm <= 0.0) {
      latency_steps_[c] = -1.0;
      continue;
    }
    latency_steps_[c] = window_ms_ * spread_ * (1.0 - norm);
  }
}

bool LatencyEncoder::spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const {
  PSS_DASSERT(c < latency_steps_.size());
  const double latency = latency_steps_[c];
  if (latency < 0.0) return false;
  const double t0 = std::fmod(static_cast<double>(step) * dt, window_ms_);
  // Spike when the window-relative step interval [t0, t0+dt) covers latency.
  return latency >= t0 && latency < t0 + dt;
}

void LatencyEncoder::active_channels(StepIndex step, TimeMs dt,
                                     std::vector<ChannelIndex>& active) const {
  active.clear();
  for (std::size_t c = 0; c < latency_steps_.size(); ++c) {
    if (spikes_at(static_cast<ChannelIndex>(c), step, dt)) {
      active.push_back(static_cast<ChannelIndex>(c));
    }
  }
}

double LatencyEncoder::latency_ms(ChannelIndex c) const {
  PSS_REQUIRE(c < latency_steps_.size(), "channel out of range");
  return latency_steps_[c];
}

}  // namespace pss
