#include "pss/encoding/regular_encoder.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

RegularEncoder::RegularEncoder(std::size_t channel_count, std::uint64_t seed,
                               bool randomize_phase)
    : rates_hz_(channel_count, 0.0), phase_(channel_count, 0.0) {
  PSS_REQUIRE(channel_count > 0, "encoder needs at least one channel");
  if (randomize_phase) {
    SequentialRng rng(seed, /*stream=*/0x7265ull);
    for (auto& p : phase_) p = rng.uniform();
  }
}

void RegularEncoder::set_rates(std::span<const double> rates_hz) {
  PSS_REQUIRE(rates_hz.size() == rates_hz_.size(),
              "rate vector size must equal channel count");
  for (double r : rates_hz) PSS_REQUIRE(r >= 0.0, "rates must be non-negative");
  rates_hz_.assign(rates_hz.begin(), rates_hz.end());
}

void RegularEncoder::set_uniform_rate(double rate_hz) {
  PSS_REQUIRE(rate_hz >= 0.0, "rates must be non-negative");
  rates_hz_.assign(rates_hz_.size(), rate_hz);
}

bool RegularEncoder::spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const {
  PSS_DASSERT(c < rates_hz_.size());
  const double f = rates_hz_[c];
  if (f <= 0.0) return false;
  const double period_ms = 1000.0 / f;
  const double t0 = static_cast<double>(step) * dt;
  const double t1 = t0 + dt;
  // Spike k occurs at (k + phase)·period; count spikes in [t0, t1).
  const double k0 = std::ceil(t0 / period_ms - phase_[c]);
  const double spike_time = (k0 + phase_[c]) * period_ms;
  return spike_time >= t0 && spike_time < t1;
}

void RegularEncoder::active_channels(StepIndex step, TimeMs dt,
                                     std::vector<ChannelIndex>& active) const {
  active.clear();
  for (std::size_t c = 0; c < rates_hz_.size(); ++c) {
    if (spikes_at(static_cast<ChannelIndex>(c), step, dt)) {
      active.push_back(static_cast<ChannelIndex>(c));
    }
  }
}

}  // namespace pss
