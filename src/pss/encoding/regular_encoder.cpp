#include "pss/encoding/regular_encoder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/error.hpp"

namespace pss {

RegularEncoder::RegularEncoder(std::size_t channel_count, std::uint64_t seed,
                               bool randomize_phase) {
  PSS_REQUIRE(channel_count > 0, "encoder needs at least one channel");
  owned_pool_ = std::make_unique<StatePool>(
      &default_backend(), StatePool::Geometry{1, channel_count});
  pool_ = owned_pool_.get();
  init_phases(seed, randomize_phase);
}

RegularEncoder::RegularEncoder(StatePool& pool, std::uint64_t seed,
                               bool randomize_phase)
    : pool_(&pool) {
  PSS_REQUIRE(pool.channels() > 0, "encoder needs at least one channel");
  init_phases(seed, randomize_phase);
}

RegularEncoder::~RegularEncoder() = default;
RegularEncoder::RegularEncoder(RegularEncoder&&) noexcept = default;
RegularEncoder& RegularEncoder::operator=(RegularEncoder&&) noexcept = default;

void RegularEncoder::init_phases(std::uint64_t seed, bool randomize_phase) {
  phase_.assign(channel_count(), 0.0);
  if (randomize_phase) {
    SequentialRng rng(seed, /*stream=*/0x7265ull);
    for (auto& p : phase_) p = rng.uniform();
  }
}

std::size_t RegularEncoder::channel_count() const { return pool_->channels(); }

std::span<const double> RegularEncoder::rates() const {
  return std::as_const(*pool_).rates();
}

void RegularEncoder::set_rates(std::span<const double> rates_hz) {
  PSS_REQUIRE(rates_hz.size() == channel_count(),
              "rate vector size must equal channel count");
  for (double r : rates_hz) PSS_REQUIRE(r >= 0.0, "rates must be non-negative");
  std::copy(rates_hz.begin(), rates_hz.end(), pool_->rates().begin());
}

void RegularEncoder::set_uniform_rate(double rate_hz) {
  PSS_REQUIRE(rate_hz >= 0.0, "rates must be non-negative");
  auto rates = pool_->rates();
  std::fill(rates.begin(), rates.end(), rate_hz);
}

bool RegularEncoder::spikes_at(ChannelIndex c, StepIndex step, TimeMs dt) const {
  PSS_DASSERT(c < channel_count());
  const double f = rates()[c];
  if (f <= 0.0) return false;
  const double period_ms = 1000.0 / f;
  const double t0 = static_cast<double>(step) * dt;
  const double t1 = t0 + dt;
  // Spike k occurs at (k + phase)·period; count spikes in [t0, t1).
  const double k0 = std::ceil(t0 / period_ms - phase_[c]);
  const double spike_time = (k0 + phase_[c]) * period_ms;
  return spike_time >= t0 && spike_time < t1;
}

void RegularEncoder::active_channels(StepIndex step, TimeMs dt,
                                     std::vector<ChannelIndex>& active) const {
  RegularEncodeArgs args{rates(), phase_, step, dt, &active};
  Backend& backend = pool_->backend();
  backend.kernels().regular_encode(backend.engine(), args);
}

bool RegularEncoder::supports_events() const {
  return pool_->backend().kernels().regular_encode_events != nullptr;
}

void RegularEncoder::build_events(StepIndex steps, TimeMs dt,
                                  SpikeEventList& out) const {
  RegularEncodeEventsArgs args{rates(), phase_, steps, dt, &out};
  Backend& backend = pool_->backend();
  backend.kernels().regular_encode_events(backend.engine(), args);
}

}  // namespace pss
