// Trained-model serialization: persist a WTA network's learned state
// (conductance matrix, homeostatic offsets, neuron labels) so training and
// deployment can be separated — load a snapshot and classify without
// retraining. Binary format with magic/version so stale files fail loudly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pss/network/wta_network.hpp"

namespace pss {

struct NetworkSnapshot {
  std::uint32_t neuron_count = 0;
  std::uint32_t input_channels = 0;
  double g_min = 0.0;
  double g_max = 1.0;
  std::vector<double> conductance;  ///< post-major, size neurons*channels
  std::vector<double> theta;        ///< homeostatic offsets, size neurons
  std::vector<std::int32_t> neuron_labels;  ///< -1 = unlabelled; may be empty

  /// Captures the learned state of a network (labels optional).
  static NetworkSnapshot capture(const WtaNetwork& network,
                                 const std::vector<int>* labels = nullptr);

  /// Writes `network`'s learned state back in (sizes must match the
  /// network's geometry; theta is informational and not restored into the
  /// adaptive threshold — restore() returns it for callers that need it).
  void restore(WtaNetwork& network) const;
};

/// Binary save/load. Throws pss::Error on IO or format problems.
void save_snapshot(const std::string& path, const NetworkSnapshot& snapshot);
NetworkSnapshot load_snapshot(const std::string& path);

}  // namespace pss
