#include "pss/io/config.hpp"

#include <algorithm>
#include <fstream>

#include "pss/common/error.hpp"

namespace pss {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

void parse_line(Config& config, const std::string& raw) {
  std::string line = raw;
  const auto hash = line.find('#');
  if (hash != std::string::npos) line = line.substr(0, hash);
  line = trim(line);
  if (line.empty()) return;
  const auto eq = line.find('=');
  PSS_REQUIRE(eq != std::string::npos && eq > 0,
              "config line must be key=value: '" + raw + "'");
  const std::string key = trim(line.substr(0, eq));
  const std::string value = trim(line.substr(eq + 1));
  // Within one source (one file, one argv) both of these are almost
  // certainly typos: a bare `key=` that meant to pass a value, or the same
  // key twice where only the last would silently win. Overrides across
  // sources (file then CLI) still work — they go through set() directly.
  PSS_REQUIRE(!value.empty(),
              "config key '" + key + "' has an empty value (use key=value, "
              "or drop the key to keep its default)");
  PSS_REQUIRE(!config.has(key),
              "duplicate config key '" + key + "' (each key may appear once "
              "per file or command line; later overrides belong on the "
              "command line)");
  config.set(key, value);
}

}  // namespace

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  PSS_REQUIRE(in.is_open(), "cannot open config file: " + path);
  Config config;
  std::string line;
  while (std::getline(in, line)) parse_line(config, line);
  return config;
}

Config Config::from_args(int argc, const char* const* argv, int first) {
  Config config;
  for (int i = first; i < argc; ++i) parse_line(config, argv[i]);
  return config;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // stod alone would accept partial parses ("1e" -> 1, "4x" -> 4); checking
  // the end position rejects trailing garbage instead of silently truncating.
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    throw Error("config key '" + key + "' is not a number: '" + it->second +
                "'");
  }
  if (pos != it->second.size()) {
    throw Error("config key '" + key + "' has trailing garbage after the "
                "number: '" + it->second + "'");
  }
  return value;
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  long value = 0;
  try {
    value = std::stol(it->second, &pos);
  } catch (const std::exception&) {
    throw Error("config key '" + key + "' is not an integer: '" + it->second +
                "'");
  }
  if (pos != it->second.size()) {
    throw Error("config key '" + key + "' has trailing garbage after the "
                "integer: '" + it->second + "'");
  }
  return value;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw Error("config key '" + key + "' is not a boolean: " + it->second);
}

void Config::set(const std::string& key, const std::string& value) {
  PSS_REQUIRE(!key.empty(), "empty config key");
  values_[key] = value;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace pss
