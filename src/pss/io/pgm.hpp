// PGM (portable graymap) output for conductance-map visualizations
// (Fig. 5 / Fig. 8a). PGM is chosen because it is trivially diffable and
// viewable without dependencies.
#pragma once

#include <span>
#include <string>

#include "pss/data/image.hpp"

namespace pss {

/// Writes an 8-bit binary PGM (P5).
void write_pgm(const std::string& path, const Image& image);

/// Reads a binary PGM written by write_pgm (round-trip tests).
Image read_pgm(const std::string& path);

/// Renders one neuron's conductance row (length w*h) into an image,
/// normalizing [g_min, g_max] to [0, 255].
Image conductance_to_image(std::span<const double> row, std::size_t width,
                           std::size_t height, double g_min, double g_max);

/// Tiles per-neuron conductance maps into one sheet of `cols` x `rows`
/// cells (the Fig. 5 grid visualization). `maps` supplies up to cols*rows
/// images, all of identical size; missing cells stay black.
Image tile_images(std::span<const Image> maps, std::size_t cols,
                  std::size_t rows, std::size_t padding = 1);

}  // namespace pss
