// Aligned plain-text table printer — every bench prints its paper table /
// figure series through this, so output stays uniform and grep-friendly.
#pragma once

#include <string>
#include <vector>

namespace pss {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Numeric convenience; values formatted with `precision` decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 1);

  /// Renders with column alignment and a header rule.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals (shared helper).
std::string format_fixed(double value, int precision);

}  // namespace pss
