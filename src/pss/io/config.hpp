// Simple key=value configuration parsing ("CPU ... constructs the simulation
// environment with configuration and input data file", paper Sec. III-A).
// Used by the example binaries for command-line and file configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pss {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" lines; '#' starts a comment; blank lines skipped.
  static Config from_file(const std::string& path);

  /// Parses argv-style "key=value" tokens (unknown tokens throw).
  static Config from_args(int argc, const char* const* argv, int first = 1);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value);

  /// Keys present in the config (sorted).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pss
