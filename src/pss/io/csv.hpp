// Minimal CSV writer for experiment series (accuracy sweeps, error-vs-time
// curves) so results can be re-plotted outside the repo.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pss {

class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; the cell count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience numeric row.
  void row(const std::vector<double>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Escapes a cell per RFC 4180 (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& cell);

}  // namespace pss
