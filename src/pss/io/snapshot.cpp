#include "pss/io/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "pss/common/error.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'S', 'S', 'N', 'A', 'P', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  PSS_REQUIRE(static_cast<bool>(in), "truncated snapshot file");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Reads a length-prefixed vector, validating the declared element count
/// against both the plausible maximum and the bytes actually left in the
/// file — a corrupt or truncated count fails with a named section error
/// before any allocation (never bad_alloc or a silent short read).
template <typename T>
std::vector<T> read_vector(std::istream& in, std::uint64_t max_size,
                           std::uint64_t file_size, const char* section) {
  const auto n = read_pod<std::uint64_t>(in);
  const auto pos = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t remaining = file_size > pos ? file_size - pos : 0;
  PSS_REQUIRE(n <= max_size, "snapshot section '" + std::string(section) +
                                 "' declares an implausible element count");
  PSS_REQUIRE(n <= remaining / sizeof(T),
              "snapshot section '" + std::string(section) + "' declares " +
                  std::to_string(n) + " elements but only " +
                  std::to_string(remaining) + " bytes remain in the file");
  std::vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  PSS_REQUIRE(static_cast<bool>(in), "truncated snapshot file");
  return v;
}

}  // namespace

NetworkSnapshot NetworkSnapshot::capture(const WtaNetwork& network,
                                         const std::vector<int>* labels) {
  NetworkSnapshot snap;
  snap.neuron_count = static_cast<std::uint32_t>(network.neuron_count());
  snap.input_channels = static_cast<std::uint32_t>(network.input_channels());
  snap.g_min = network.conductance().g_min();
  snap.g_max = network.conductance().g_max();
  snap.conductance = network.conductance().to_vector();
  snap.theta.assign(network.theta().begin(), network.theta().end());
  if (labels) {
    PSS_REQUIRE(labels->size() == network.neuron_count(),
                "label vector size must equal neuron count");
    snap.neuron_labels.assign(labels->begin(), labels->end());
  }
  return snap;
}

void NetworkSnapshot::restore(WtaNetwork& network) const {
  PSS_REQUIRE(network.neuron_count() == neuron_count &&
                  network.input_channels() == input_channels,
              "snapshot geometry does not match the network");
  PSS_REQUIRE(conductance.size() ==
                  static_cast<std::size_t>(neuron_count) * input_channels,
              "snapshot conductance size is inconsistent");
  ConductanceMatrix& g = network.conductance();
  std::size_t k = 0;
  for (NeuronIndex post = 0; post < neuron_count; ++post) {
    for (ChannelIndex pre = 0; pre < input_channels; ++pre) {
      g.set(post, pre, conductance[k++]);
    }
  }
  if (!theta.empty()) network.restore_theta(theta);
}

void save_snapshot(const std::string& path, const NetworkSnapshot& snapshot) {
  PSS_REQUIRE(snapshot.neuron_count > 0 && snapshot.input_channels > 0,
              "refusing to save an empty snapshot");
  // Atomic write: serialize to a temp file and rename into place, so a crash
  // (or the io.snapshot.write injected fault) never leaves a half-written
  // snapshot at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PSS_REQUIRE(out.is_open(), "cannot create snapshot file: " + tmp);
    out.write(kMagic, sizeof(kMagic));
    write_pod(out, snapshot.neuron_count);
    write_pod(out, snapshot.input_channels);
    write_pod(out, snapshot.g_min);
    write_pod(out, snapshot.g_max);
    write_vector(out, snapshot.conductance);
    write_vector(out, snapshot.theta);
    write_vector(out, snapshot.neuron_labels);
    out.flush();
    PSS_REQUIRE(static_cast<bool>(out), "snapshot write failed: " + tmp);
  }
  try {
    robust::fault_point("io.snapshot.write");
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  PSS_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot rename snapshot into place: " + path);
}

NetworkSnapshot load_snapshot(const std::string& path) {
  robust::fault_point("io.snapshot.read");
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open snapshot file: " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  char magic[8];
  in.read(magic, sizeof(magic));
  PSS_REQUIRE(static_cast<bool>(in) &&
                  std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "not a pss snapshot (bad magic): " + path);
  NetworkSnapshot snap;
  snap.neuron_count = read_pod<std::uint32_t>(in);
  snap.input_channels = read_pod<std::uint32_t>(in);
  snap.g_min = read_pod<double>(in);
  snap.g_max = read_pod<double>(in);
  const std::uint64_t synapses =
      static_cast<std::uint64_t>(snap.neuron_count) * snap.input_channels;
  snap.conductance = read_vector<double>(in, synapses, file_size,
                                         "conductance");
  snap.theta = read_vector<double>(in, snap.neuron_count, file_size, "theta");
  snap.neuron_labels =
      read_vector<std::int32_t>(in, snap.neuron_count, file_size, "labels");
  PSS_REQUIRE(snap.conductance.size() == synapses,
              "snapshot conductance size is inconsistent");
  return snap;
}

}  // namespace pss
