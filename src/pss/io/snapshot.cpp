#include "pss/io/snapshot.hpp"

#include <cstring>
#include <fstream>

#include "pss/common/error.hpp"

namespace pss {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'S', 'S', 'N', 'A', 'P', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  PSS_REQUIRE(static_cast<bool>(in), "truncated snapshot file");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::uint64_t max_size) {
  const auto n = read_pod<std::uint64_t>(in);
  PSS_REQUIRE(n <= max_size, "implausible vector size in snapshot");
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  PSS_REQUIRE(static_cast<bool>(in), "truncated snapshot file");
  return v;
}

}  // namespace

NetworkSnapshot NetworkSnapshot::capture(const WtaNetwork& network,
                                         const std::vector<int>* labels) {
  NetworkSnapshot snap;
  snap.neuron_count = static_cast<std::uint32_t>(network.neuron_count());
  snap.input_channels = static_cast<std::uint32_t>(network.input_channels());
  snap.g_min = network.conductance().g_min();
  snap.g_max = network.conductance().g_max();
  snap.conductance = network.conductance().to_vector();
  snap.theta.assign(network.theta().begin(), network.theta().end());
  if (labels) {
    PSS_REQUIRE(labels->size() == network.neuron_count(),
                "label vector size must equal neuron count");
    snap.neuron_labels.assign(labels->begin(), labels->end());
  }
  return snap;
}

void NetworkSnapshot::restore(WtaNetwork& network) const {
  PSS_REQUIRE(network.neuron_count() == neuron_count &&
                  network.input_channels() == input_channels,
              "snapshot geometry does not match the network");
  PSS_REQUIRE(conductance.size() ==
                  static_cast<std::size_t>(neuron_count) * input_channels,
              "snapshot conductance size is inconsistent");
  ConductanceMatrix& g = network.conductance();
  std::size_t k = 0;
  for (NeuronIndex post = 0; post < neuron_count; ++post) {
    for (ChannelIndex pre = 0; pre < input_channels; ++pre) {
      g.set(post, pre, conductance[k++]);
    }
  }
  if (!theta.empty()) network.restore_theta(theta);
}

void save_snapshot(const std::string& path, const NetworkSnapshot& snapshot) {
  PSS_REQUIRE(snapshot.neuron_count > 0 && snapshot.input_channels > 0,
              "refusing to save an empty snapshot");
  std::ofstream out(path, std::ios::binary);
  PSS_REQUIRE(out.is_open(), "cannot create snapshot file: " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, snapshot.neuron_count);
  write_pod(out, snapshot.input_channels);
  write_pod(out, snapshot.g_min);
  write_pod(out, snapshot.g_max);
  write_vector(out, snapshot.conductance);
  write_vector(out, snapshot.theta);
  write_vector(out, snapshot.neuron_labels);
  PSS_REQUIRE(static_cast<bool>(out), "snapshot write failed: " + path);
}

NetworkSnapshot load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open snapshot file: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  PSS_REQUIRE(static_cast<bool>(in) &&
                  std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "not a pss snapshot (bad magic): " + path);
  NetworkSnapshot snap;
  snap.neuron_count = read_pod<std::uint32_t>(in);
  snap.input_channels = read_pod<std::uint32_t>(in);
  snap.g_min = read_pod<double>(in);
  snap.g_max = read_pod<double>(in);
  const std::uint64_t synapses =
      static_cast<std::uint64_t>(snap.neuron_count) * snap.input_channels;
  snap.conductance = read_vector<double>(in, synapses);
  snap.theta = read_vector<double>(in, snap.neuron_count);
  snap.neuron_labels = read_vector<std::int32_t>(in, snap.neuron_count);
  PSS_REQUIRE(snap.conductance.size() == synapses,
              "snapshot conductance size is inconsistent");
  return snap;
}

}  // namespace pss
