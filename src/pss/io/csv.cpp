#include "pss/io/csv.hpp"

#include <sstream>

#include "pss/common/error.hpp"

namespace pss {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  PSS_REQUIRE(out_.is_open(), "cannot create CSV file: " + path);
  PSS_REQUIRE(!header.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ",";
    out_ << csv_escape(header[i]);
  }
  out_ << "\n";
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  PSS_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ",";
    out_ << csv_escape(cells[i]);
  }
  out_ << "\n";
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << v;
    text.push_back(os.str());
  }
  row(text);
}

}  // namespace pss
