#include "pss/io/pgm.hpp"

#include <algorithm>
#include <fstream>

#include "pss/common/error.hpp"

namespace pss {

void write_pgm(const std::string& path, const Image& image) {
  std::ofstream out(path, std::ios::binary);
  PSS_REQUIRE(out.is_open(), "cannot create PGM file: " + path);
  out << "P5\n" << image.width << " " << image.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels.data()),
            static_cast<std::streamsize>(image.pixels.size()));
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open PGM file: " + path);
  std::string magic;
  in >> magic;
  PSS_REQUIRE(magic == "P5", "not a binary PGM file: " + path);
  std::size_t w = 0;
  std::size_t h = 0;
  std::size_t maxval = 0;
  in >> w >> h >> maxval;
  PSS_REQUIRE(maxval == 255, "only 8-bit PGM supported");
  in.get();  // single whitespace after the header
  Image img(static_cast<std::uint16_t>(w), static_cast<std::uint16_t>(h));
  in.read(reinterpret_cast<char*>(img.pixels.data()),
          static_cast<std::streamsize>(img.pixels.size()));
  PSS_REQUIRE(static_cast<bool>(in), "truncated PGM file: " + path);
  return img;
}

Image conductance_to_image(std::span<const double> row, std::size_t width,
                           std::size_t height, double g_min, double g_max) {
  PSS_REQUIRE(row.size() == width * height, "row size must be width*height");
  PSS_REQUIRE(g_max > g_min, "invalid conductance range");
  Image img(static_cast<std::uint16_t>(width),
            static_cast<std::uint16_t>(height));
  for (std::size_t i = 0; i < row.size(); ++i) {
    const double norm = std::clamp((row[i] - g_min) / (g_max - g_min), 0.0, 1.0);
    img.pixels[i] = static_cast<std::uint8_t>(norm * 255.0 + 0.5);
  }
  return img;
}

Image tile_images(std::span<const Image> maps, std::size_t cols,
                  std::size_t rows, std::size_t padding) {
  PSS_REQUIRE(!maps.empty(), "no images to tile");
  PSS_REQUIRE(cols > 0 && rows > 0, "grid must be non-empty");
  const std::size_t cw = maps[0].width;
  const std::size_t ch = maps[0].height;
  const std::size_t W = cols * cw + (cols - 1) * padding;
  const std::size_t H = rows * ch + (rows - 1) * padding;
  Image sheet(static_cast<std::uint16_t>(W), static_cast<std::uint16_t>(H));
  for (std::size_t k = 0; k < maps.size() && k < cols * rows; ++k) {
    PSS_REQUIRE(maps[k].width == cw && maps[k].height == ch,
                "all tiles must share dimensions");
    const std::size_t gx = (k % cols) * (cw + padding);
    const std::size_t gy = (k / cols) * (ch + padding);
    for (std::size_t y = 0; y < ch; ++y) {
      for (std::size_t x = 0; x < cw; ++x) {
        sheet.at(gx + x, gy + y) = maps[k].at(x, y);
      }
    }
  }
  return sheet;
}

}  // namespace pss
