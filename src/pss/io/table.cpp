#include "pss/io/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "pss/common/error.hpp"

namespace pss {

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PSS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  PSS_REQUIRE(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace pss
