#include "pss/backend/state_pool.hpp"

#include <algorithm>

#include "pss/common/error.hpp"

namespace pss {

StatePool::StatePool(Backend* backend, Geometry geometry)
    : backend_(backend ? backend : &default_backend()),
      geometry_(geometry),
      membrane_(backend_, geometry.neurons, 0.0),
      recovery_(backend_, geometry.neurons, 0.0),
      last_spike_(backend_, geometry.neurons, kNeverSpiked),
      inhibited_until_(backend_, geometry.neurons, -1.0),
      spiked_(backend_, geometry.neurons, std::uint8_t{0}),
      currents_(backend_, geometry.neurons, 0.0),
      rates_(backend_, geometry.channels, 0.0),
      last_pre_spike_(backend_, geometry.channels, kNeverSpiked),
      g_(backend_, geometry.neurons * geometry.channels, 0.0) {
  PSS_REQUIRE(geometry.neurons > 0, "state pool needs at least one neuron");
}

PopulationHandle StatePool::add_population(Geometry geometry) {
  PSS_REQUIRE(geometry.neurons > 0, "population needs at least one neuron");
  ExtraPopulation p;
  p.geometry = geometry;
  p.membrane = PoolBuffer<double>(backend_, geometry.neurons, 0.0);
  p.recovery = PoolBuffer<double>(backend_, geometry.neurons, 0.0);
  p.last_spike = PoolBuffer<TimeMs>(backend_, geometry.neurons, kNeverSpiked);
  p.inhibited_until = PoolBuffer<TimeMs>(backend_, geometry.neurons, -1.0);
  p.spiked = PoolBuffer<std::uint8_t>(backend_, geometry.neurons, 0);
  p.currents = PoolBuffer<double>(backend_, geometry.neurons, 0.0);
  p.spike_counts = PoolBuffer<std::uint32_t>(backend_, geometry.neurons, 0);
  extra_.push_back(std::move(p));
  return extra_.size();  // handle 0 is the primary population
}

StatePool::ExtraPopulation& StatePool::extra(PopulationHandle h) {
  PSS_REQUIRE(h >= 1 && h <= extra_.size(), "population handle out of range");
  return extra_[h - 1];
}

StatePool::Geometry StatePool::population_geometry(PopulationHandle h) const {
  if (h == 0) return geometry_;
  PSS_REQUIRE(h <= extra_.size(), "population handle out of range");
  return extra_[h - 1].geometry;
}

std::span<double> StatePool::membrane(PopulationHandle h) {
  return h == 0 ? membrane_.span() : extra(h).membrane.span();
}

std::span<double> StatePool::recovery(PopulationHandle h) {
  return h == 0 ? recovery_.span() : extra(h).recovery.span();
}

std::span<TimeMs> StatePool::last_spike(PopulationHandle h) {
  return h == 0 ? last_spike_.span() : extra(h).last_spike.span();
}

std::span<TimeMs> StatePool::inhibited_until(PopulationHandle h) {
  return h == 0 ? inhibited_until_.span() : extra(h).inhibited_until.span();
}

std::span<std::uint8_t> StatePool::spiked(PopulationHandle h) {
  return h == 0 ? spiked_.span() : extra(h).spiked.span();
}

std::span<double> StatePool::currents(PopulationHandle h) {
  return h == 0 ? currents_.span() : extra(h).currents.span();
}

std::span<std::uint32_t> StatePool::spike_counts(PopulationHandle h) {
  PSS_REQUIRE(h >= 1, "the primary population has no spike-count section");
  return extra(h).spike_counts.span();
}

void StatePool::set_g_bounds(double g_min, double g_max) {
  PSS_REQUIRE(g_max > g_min, "conductance range must be non-empty");
  g_min_ = g_min;
  g_max_ = g_max;
  learn_hi_ = g_max;
  g_.fill(g_min);
}

void StatePool::set_learn_cap(double cap) {
  learn_hi_ = std::min(g_max_, cap);
}

std::span<double> StatePool::g_row(NeuronIndex post) {
  PSS_REQUIRE(post < geometry_.neurons, "post index out of range");
  return g_.span().subspan(
      static_cast<std::size_t>(post) * geometry_.channels, geometry_.channels);
}

std::span<const double> StatePool::g_row(NeuronIndex post) const {
  PSS_REQUIRE(post < geometry_.neurons, "post index out of range");
  return g_.span().subspan(
      static_cast<std::size_t>(post) * geometry_.channels, geometry_.channels);
}

double StatePool::clamp_g(double value) const {
  return std::clamp(value, g_min_, g_max_);
}

void StatePool::load_g(std::span<const double> values, bool clamp) {
  PSS_REQUIRE(values.size() == g_.size(),
              "conductance load size must equal synapse count");
  auto dst = g_.span();
  if (clamp) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      dst[i] = clamp_g(values[i]);
    }
  } else {
    backend_->copy_to_device(dst.data(), values.data(),
                             values.size() * sizeof(double));
  }
}

void StatePool::build_sparse() {
  if (has_sparse()) return;
  const std::size_t channels = geometry_.channels;
  const std::size_t neurons = geometry_.neurons;
  PSS_REQUIRE(channels > 0, "sparse sections need an encoder/synapse section");
  csr_row_ptr_ = PoolBuffer<std::uint32_t>(backend_, channels + 1, 0);
  csr_cols_ = PoolBuffer<NeuronIndex>(backend_, channels * neurons, 0);
  stdp_progress_ = PoolBuffer<std::uint32_t>(backend_, neurons * channels, 0);
  auto row_ptr = csr_row_ptr_.span();
  auto cols = csr_cols_.span();
  for (std::size_t c = 0; c <= channels; ++c) {
    row_ptr[c] = static_cast<std::uint32_t>(c * neurons);
  }
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t j = 0; j < neurons; ++j) {
      cols[c * neurons + j] = static_cast<NeuronIndex>(j);
    }
  }
}

std::span<std::uint32_t> StatePool::stdp_progress_row(NeuronIndex post) {
  PSS_REQUIRE(post < geometry_.neurons, "post index out of range");
  PSS_REQUIRE(stdp_progress_.size() != 0,
              "stdp progress requires build_sparse()");
  return stdp_progress_.span().subspan(
      static_cast<std::size_t>(post) * geometry_.channels, geometry_.channels);
}

void StatePool::init_g_uniform(double lo, double hi, SequentialRng& rng,
                               const Quantizer* quantizer) {
  PSS_REQUIRE(hi >= lo, "invalid init range");
  for (auto& value : g_.span()) {
    double v = clamp_g(rng.uniform(lo, hi));
    if (quantizer) v = quantizer->quantize(v, rng.uniform());
    value = v;
  }
}

}  // namespace pss
