// Reference (`cpu`) kernel implementations.
//
// These are the pre-backend Engine::launch bodies moved here VERBATIM —
// identical floating-point operation order, identical launch tags — so the
// cpu backend reproduces the original code bit for bit at any worker count
// (tests/test_backend.cpp asserts this; the network/worker-invariance suites
// pass unmodified on top of it).
#include <algorithm>
#include <cmath>
#include <limits>

#include "pss/backend/kernels.hpp"

namespace pss {

namespace {

void poisson_encode_cpu(Engine&, const PoissonEncodeArgs& a) {
  // Serial append in ascending channel order (the active list is ordered);
  // each channel's draw is counter-indexed so the result is identical to a
  // parallel evaluation, but the list build itself is the natural serial
  // compaction.
  a.active->clear();
  for (ChannelIndex c : a.channels) {
    const double p = a.rates_hz[c] * a.dt * 1e-3;
    // Draw index couples (presentation, step); fork(c) gives each channel
    // its own stream so neighbouring channels are uncorrelated.
    if (a.rng->fork(c).bernoulli(a.presentation_base | a.step, p)) {
      a.active->push_back(c);
    }
  }
}

void regular_encode_cpu(Engine&, const RegularEncodeArgs& a) {
  a.active->clear();
  for (std::size_t c = 0; c < a.rates_hz.size(); ++c) {
    const double f = a.rates_hz[c];
    if (f <= 0.0) continue;
    const double period_ms = 1000.0 / f;
    const double t0 = static_cast<double>(a.step) * a.dt;
    const double t1 = t0 + a.dt;
    // Spike k occurs at (k + phase)·period; count spikes in [t0, t1).
    const double k0 = std::ceil(t0 / period_ms - a.phase[c]);
    const double spike_time = (k0 + a.phase[c]) * period_ms;
    if (spike_time >= t0 && spike_time < t1) {
      a.active->push_back(static_cast<ChannelIndex>(c));
    }
  }
}

void current_accumulate_cpu(Engine& engine, const CurrentAccumulateArgs& a) {
  if (a.active_pre.empty()) return;
  const auto g = a.conductance;
  const std::size_t pre_count = a.pre_count;
  const auto active_pre = a.active_pre;
  const double amplitude = a.amplitude;
  const auto currents = a.currents;
  engine.launch("current.accumulate", currents.size(), [&](std::size_t post) {
    const double* row = g.data() + post * pre_count;
    double acc = 0.0;
    for (ChannelIndex pre : active_pre) acc += row[pre];
    currents[post] += amplitude * acc;
  });
}

void lif_step_cpu(Engine& engine, const LifStepArgs& args) {
  const auto v = args.step.state.v;
  const auto last = args.step.state.last_spike;
  const auto inhibited = args.step.state.inhibited_until;
  const auto flag = args.step.state.spiked;
  const auto input_current = args.step.input_current;
  const auto threshold_offset = args.step.threshold_offset;
  const TimeMs now = args.step.now;
  const TimeMs dt = args.step.dt;
  const LifParameters p = args.params;

  // Neuron-update kernel: one logical thread per neuron (paper Sec. III-A).
  engine.launch("lif.step", v.size(), [&](std::size_t i) {
    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = p.v_reset;  // WTA inhibition pins the loser at reset
      return;
    }
    if (p.refractory_ms > 0.0 && last[i] != kNeverSpiked &&
        now - last[i] < p.refractory_ms) {
      v[i] = p.v_reset;
      return;
    }
    double vi = lif_integrate(p, v[i], input_current[i], dt);
    const double threshold =
        p.v_threshold + (threshold_offset.empty() ? 0.0 : threshold_offset[i]);
    if (vi > threshold) {
      vi = p.v_reset;
      flag[i] = 1;
      last[i] = now;
    }
    v[i] = vi;
  });
}

void lif_step_fused_cpu(Engine& engine, const LifFusedStepArgs& args) {
  const auto v = args.step.state.v;
  const auto last = args.step.state.last_spike;
  const auto inhibited = args.step.state.inhibited_until;
  const auto flag = args.step.state.spiked;
  const auto currents = args.step.currents;
  const double decay_factor = args.step.decay_factor;
  const auto conductance = args.step.conductance;
  const std::size_t pre_count = args.step.pre_count;
  const auto active_pre = args.step.active_pre;
  const double amplitude = args.step.amplitude;
  const auto threshold_offset = args.step.threshold_offset;
  const TimeMs now = args.step.now;
  const TimeMs dt = args.step.dt;
  const LifParameters p = args.params;

  engine.launch("lif.fused", v.size(), [&](std::size_t i) {
    // Synaptic current update (all neurons, inhibited or not — matches the
    // unfused decay + accumulate_currents sequence bit for bit).
    double ci = decay_factor == 0.0 ? 0.0 : currents[i] * decay_factor;
    if (!active_pre.empty()) {
      const double* row = conductance.data() + i * pre_count;
      double acc = 0.0;
      for (ChannelIndex pre : active_pre) acc += row[pre];
      ci += amplitude * acc;
    }
    currents[i] = ci;

    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = p.v_reset;
      return;
    }
    if (p.refractory_ms > 0.0 && last[i] != kNeverSpiked &&
        now - last[i] < p.refractory_ms) {
      v[i] = p.v_reset;
      return;
    }
    double vi = lif_integrate(p, v[i], ci, dt);
    const double threshold =
        p.v_threshold + (threshold_offset.empty() ? 0.0 : threshold_offset[i]);
    if (vi > threshold) {
      vi = p.v_reset;
      flag[i] = 1;
      last[i] = now;
    }
    v[i] = vi;
  });
}

void izhikevich_step_cpu(Engine& engine, const IzhikevichStepArgs& args) {
  const auto v = args.step.state.v;
  const auto u = args.step.state.u;
  const auto last = args.step.state.last_spike;
  const auto inhibited = args.step.state.inhibited_until;
  const auto flag = args.step.state.spiked;
  const auto input_current = args.step.input_current;
  const auto threshold_offset = args.step.threshold_offset;
  const TimeMs now = args.step.now;
  const TimeMs dt = args.step.dt;
  const IzhikevichParameters base = args.params;

  engine.launch("izhi.step", v.size(), [&](std::size_t i) {
    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = base.c;
      return;
    }
    IzhikevichParameters p = base;
    if (!threshold_offset.empty()) p.v_peak += threshold_offset[i];
    flag[i] = izhikevich_step(p, v[i], u[i], input_current[i], dt) ? 1 : 0;
    if (flag[i]) last[i] = now;
  });
}

void izhikevich_step_fused_cpu(Engine& engine,
                               const IzhikevichFusedStepArgs& args) {
  const auto v = args.step.state.v;
  const auto u = args.step.state.u;
  const auto last = args.step.state.last_spike;
  const auto inhibited = args.step.state.inhibited_until;
  const auto flag = args.step.state.spiked;
  const auto currents = args.step.currents;
  const double decay_factor = args.step.decay_factor;
  const auto conductance = args.step.conductance;
  const std::size_t pre_count = args.step.pre_count;
  const auto active_pre = args.step.active_pre;
  const double amplitude = args.step.amplitude;
  const auto threshold_offset = args.step.threshold_offset;
  const TimeMs now = args.step.now;
  const TimeMs dt = args.step.dt;
  const IzhikevichParameters base = args.params;

  engine.launch("izhi.fused", v.size(), [&](std::size_t i) {
    // Matches the unfused decay + accumulate_currents sequence bit for bit.
    double ci = decay_factor == 0.0 ? 0.0 : currents[i] * decay_factor;
    if (!active_pre.empty()) {
      const double* row = conductance.data() + i * pre_count;
      double acc = 0.0;
      for (ChannelIndex pre : active_pre) acc += row[pre];
      ci += amplitude * acc;
    }
    currents[i] = ci;

    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = base.c;
      return;
    }
    IzhikevichParameters p = base;
    if (!threshold_offset.empty()) p.v_peak += threshold_offset[i];
    flag[i] = izhikevich_step(p, v[i], u[i], ci, dt) ? 1 : 0;
    if (flag[i]) last[i] = now;
  });
}

void inhibit_scan_cpu(Engine& engine, const InhibitScanArgs& a) {
  const auto inhibited = a.inhibited_until;
  const NeuronIndex winner = a.winner;
  const TimeMs until = a.until;
  engine.launch("wta.inhibit", inhibited.size(), [&](std::size_t i) {
    if (i != winner && until > inhibited[i]) inhibited[i] = until;
  });
}

void stdp_row_cpu(Engine& engine, const StdpRowArgs& a) {
  const auto row = a.row;
  const auto last_pre = a.last_pre_spike;
  const StdpUpdater& updater = *a.updater;
  const CounterRng& rng = *a.rng;
  const std::uint64_t base = a.counter_base;
  const TimeMs t_post = a.t_post;

  // STDP kernel: one logical thread per afferent synapse. Draw indices are
  // derived from the event base so results are schedule-independent.
  engine.launch("stdp.row", row.size(), [&](std::size_t pre) {
    const TimeMs t_pre = last_pre[pre];
    const double gap =
        t_pre == kNeverSpiked ? std::numeric_limits<double>::infinity()
                              : t_post - t_pre;
    const std::uint64_t c = base + pre * StdpUpdater::kDrawsPerEvent;
    row[pre] = updater.update_at_post_spike(row[pre], gap, rng.uniform(c),
                                            rng.uniform(c + 1),
                                            rng.uniform(c + 2));
  });
}

void conv_accumulate_cpu(Engine& engine, const ConvAccumulateArgs& a) {
  const auto currents = a.currents;
  const auto active = a.active_pre;
  const auto filters = a.filters;
  const std::size_t kernel = a.kernel;
  const std::size_t stride = a.stride;
  const std::size_t in_w = a.in_width;
  const std::size_t in_plane = a.in_width * a.in_height;
  const std::size_t out_plane = a.out_width * a.out_height;
  const std::size_t taps = a.in_channels * kernel * kernel;
  const double amplitude = a.amplitude;
  const double decay = a.decay_factor;

  // Reference gather: one logical thread per conv unit, scanning the step's
  // active list in ascending order and accumulating the taps that fall in
  // the unit's window. The fixed per-unit association (active order) is the
  // cross-backend bitwise contract.
  engine.launch("graph.conv", a.filter_count * out_plane, [&](std::size_t u) {
    const std::size_t f = u / out_plane;
    const std::size_t rem = u % out_plane;
    const std::size_t y0 = (rem / a.out_width) * stride;
    const std::size_t x0 = (rem % a.out_width) * stride;
    const double* w = filters.data() + f * taps;
    double acc = 0.0;
    for (const ChannelIndex p : active) {
      const std::size_t c = p / in_plane;
      const std::size_t q = p % in_plane;
      const std::size_t y = q / in_w;
      const std::size_t x = q % in_w;
      if (y < y0 || y >= y0 + kernel || x < x0 || x >= x0 + kernel) continue;
      acc += w[(c * kernel + (y - y0)) * kernel + (x - x0)];
    }
    currents[u] = currents[u] * decay + amplitude * acc;
  });
}

void pool_forward_cpu(Engine& engine, const PoolForwardArgs& a) {
  const auto spiked = a.spiked;
  const auto pooled = a.pooled;
  const auto counts = a.pooled_counts;
  const std::size_t window = a.window;
  const std::size_t in_w = a.in_width;
  const std::size_t in_h = a.in_height;
  const std::size_t in_plane = in_w * in_h;
  const std::size_t out_plane = a.out_width * a.out_height;

  engine.launch("graph.pool", a.channels * out_plane, [&](std::size_t u) {
    const std::size_t c = u / out_plane;
    const std::size_t rem = u % out_plane;
    const std::size_t y0 = (rem / a.out_width) * window;
    const std::size_t x0 = (rem % a.out_width) * window;
    const std::size_t y1 = std::min(y0 + window, in_h);
    const std::size_t x1 = std::min(x0 + window, in_w);
    std::uint8_t any = 0;
    for (std::size_t y = y0; y < y1; ++y) {
      const std::uint8_t* row = spiked.data() + c * in_plane + y * in_w;
      for (std::size_t x = x0; x < x1; ++x) any |= row[x];
    }
    pooled[u] = any ? 1 : 0;
    if (!counts.empty() && any) ++counts[u];
  });
}

}  // namespace

const KernelTable& cpu_kernel_table() {
  static const KernelTable table = {
      /*poisson_encode=*/poisson_encode_cpu,
      /*regular_encode=*/regular_encode_cpu,
      /*current_accumulate=*/current_accumulate_cpu,
      /*lif_step=*/lif_step_cpu,
      /*lif_step_fused=*/lif_step_fused_cpu,
      /*izhikevich_step=*/izhikevich_step_cpu,
      /*izhikevich_step_fused=*/izhikevich_step_fused_cpu,
      /*inhibit_scan=*/inhibit_scan_cpu,
      /*stdp_row=*/stdp_row_cpu,
      /*conv_accumulate=*/conv_accumulate_cpu,
      /*pool_forward=*/pool_forward_cpu,
  };
  return table;
}

}  // namespace pss
