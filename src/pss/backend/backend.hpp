// Pluggable compute backend — the device seam of the paper's architecture.
//
// ParallelSpikeSim maps every hot loop (encode, current accumulation, neuron
// update, STDP row update) onto GPU kernels. Our Engine emulates the CUDA
// launch model on a thread pool; this layer makes the *dispatch* pluggable so
// alternative implementations of the same kernels (vectorized CPU today, a
// real CUDA backend later) can be swapped behind one interface:
//
//   Backend  — buffer alloc/copy (the cudaMalloc/cudaMemcpy seam),
//              stream-ordered kernel enqueue via a KernelTable, synchronize.
//   Registry — backends are constructed by name ("cpu", "cpu_simd",
//              "cpu_sparse"; "cuda" is a stub gated behind the
//              PSS_ENABLE_CUDA CMake option).
//
// Rule: new hot-path kernels must be *registered* — added to the KernelTable
// and implemented per backend — never inlined as ad-hoc Engine::launch
// lambdas at call sites. The table is the single place compute is dispatched
// from (see DESIGN.md "Compute backends").
//
// Contract: the `cpu` backend wraps the existing Engine/ThreadPool kernels
// unchanged and is bitwise-identical to the pre-backend code at any worker
// count. `cpu_simd` replaces the fused-step and STDP-row kernels with
// vectorized variants; the STDP row is still bitwise-identical (batched
// Philox produces the same draws), while the fused step reassociates the
// row-gather sum (documented ULP-level differences; see kernels_simd.cpp).
// `cpu_sparse` adds the event-driven sparse-path kernels (event-list
// encoders, CSR propagation, lazy STDP flush; see kernels_sparse.cpp) on top
// of the reference dense slots — WtaNetwork probes the table and switches to
// the event-driven presentation loop when they are present.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "pss/engine/launch.hpp"

namespace pss {

struct KernelTable;

/// Abstract compute device. On CPU backends, "device" buffers live in host
/// memory and kernel enqueues run synchronously on the wrapped Engine (the
/// stream is the Engine itself); a GPU backend would return device pointers
/// and enqueue asynchronously, with synchronize() as the stream barrier.
class Backend {
 public:
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  virtual const char* name() const = 0;

  /// The launch engine this backend enqueues kernels on.
  virtual Engine& engine() const = 0;

  /// Device buffer management (the cudaMalloc/cudaFree seam). Returned
  /// memory is zero-filled. CPU backends hand out host pointers.
  virtual void* alloc_bytes(std::size_t bytes) = 0;
  virtual void free_bytes(void* ptr, std::size_t bytes) noexcept = 0;

  /// Host<->device transfer (the cudaMemcpy seam; plain memcpy on CPU).
  virtual void copy_to_device(void* dst, const void* src,
                              std::size_t bytes) = 0;
  virtual void copy_to_host(void* dst, const void* src, std::size_t bytes) = 0;

  /// Blocks until all enqueued kernels have completed. No-op on CPU backends
  /// (Engine::launch returns only after the grid finishes).
  virtual void synchronize() = 0;

  /// The registered kernel implementations this backend dispatches.
  virtual const KernelTable& kernels() const = 0;

 protected:
  Backend() = default;
};

/// One registry entry. `available` is false for stubs that are registered by
/// name (so error messages can say how to enable them) but cannot be built —
/// currently the `cuda` entry, gated behind -DPSS_ENABLE_CUDA.
struct BackendInfo {
  std::string name;
  std::string description;
  bool available = true;
};

/// All registered backends, in registration order (cpu first — the default).
const std::vector<BackendInfo>& backend_registry();

/// Names of all registered backends (including unavailable stubs).
std::vector<std::string> backend_names();

/// True if `name` is registered and constructible.
bool backend_available(const std::string& name);

/// Constructs a backend by name, bound to `engine` (nullptr = the process
/// default engine). Throws pss::Error for unknown names (listing the valid
/// ones) and for registered-but-unavailable stubs ("cuda" explains the
/// PSS_ENABLE_CUDA gate).
std::unique_ptr<Backend> make_backend(const std::string& name,
                                      Engine* engine = nullptr);

/// Process-wide `cpu` backend over default_engine(), for components
/// constructed without an explicit backend (tests, benches, standalone use).
Backend& default_backend();

}  // namespace pss
