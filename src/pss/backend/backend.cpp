#include "pss/backend/backend.hpp"

#include <cstring>
#include <functional>
#include <new>

#include "pss/backend/kernels.hpp"
#include "pss/common/error.hpp"

namespace pss {

namespace {

/// CPU backend: host memory, synchronous launches on the wrapped Engine.
/// Every registered CPU backend is an instance of this class — they differ
/// only in which kernel table they dispatch.
class CpuBackend final : public Backend {
 public:
  CpuBackend(const char* name, Engine* engine, const KernelTable& table)
      : name_(name), engine_(engine ? engine : &default_engine()),
        table_(&table) {}

  const char* name() const override { return name_; }
  Engine& engine() const override { return *engine_; }

  // This IS the allocation seam (the cudaMalloc/cudaFree stand-in): it runs
  // at StatePool construction, never per launch, so the raw-alloc lint rule
  // is suppressed here — the one place in the hot-path tree allowed to
  // allocate.
  void* alloc_bytes(std::size_t bytes) override {
    void* p = ::operator new(bytes);  // pss-lint: allow(raw-alloc)
    std::memset(p, 0, bytes);
    return p;
  }
  void free_bytes(void* ptr, std::size_t) noexcept override {
    ::operator delete(ptr);  // pss-lint: allow(raw-alloc)
  }
  void copy_to_device(void* dst, const void* src,
                      std::size_t bytes) override {
    std::memcpy(dst, src, bytes);
  }
  void copy_to_host(void* dst, const void* src, std::size_t bytes) override {
    std::memcpy(dst, src, bytes);
  }

  /// Engine::launch blocks until the grid completes, so there is never
  /// outstanding work to wait for.
  void synchronize() override {}

  const KernelTable& kernels() const override { return *table_; }

 private:
  const char* name_;
  Engine* engine_;
  const KernelTable* table_;
};

struct BackendEntry {
  BackendInfo info;
  std::function<std::unique_ptr<Backend>(Engine*)> factory;  ///< may throw
};

// Thread-safety contract of the registry: both tables below are function-
// local `static const` values — C++ magic statics make the one-time build
// thread-safe, and everything afterwards is immutable, so concurrent
// backend_registry()/make_backend() calls need no lock. Keeping the
// registry append-only-at-init is what lets the dispatch hot path stay
// annotation- and lock-free; a runtime-mutable registry would need a mutex
// and PSS_GUARDED_BY like the fault/metrics registries.
const std::vector<BackendEntry>& entries() {
  static const std::vector<BackendEntry> table = [] {
    std::vector<BackendEntry> e;
    e.push_back({{"cpu",
                  "reference Engine/ThreadPool kernels (bitwise-identical "
                  "to the pre-backend code)",
                  true},
                 [](Engine* engine) -> std::unique_ptr<Backend> {
                   return std::make_unique<CpuBackend>("cpu", engine,
                                                       cpu_kernel_table());
                 }});
    e.push_back({{"cpu_simd",
                  "cpu + vectorized fused-step and STDP-row kernels "
                  "(STDP draws bitwise-identical; fused step reassociates "
                  "the row sum, ULP-level differences)",
                  true},
                 [](Engine* engine) -> std::unique_ptr<Backend> {
                   return std::make_unique<CpuBackend>(
                       "cpu_simd", engine, cpu_simd_kernel_table());
                 }});
    e.push_back({{"cpu_sparse",
                  "cpu + event-driven sparse path: event-list encoders, CSR "
                  "spike propagation, lazy STDP (network-level trajectories "
                  "statistically match cpu; Poisson draw indexing differs)",
                  true},
                 [](Engine* engine) -> std::unique_ptr<Backend> {
                   return std::make_unique<CpuBackend>(
                       "cpu_sparse", engine, cpu_sparse_kernel_table());
                 }});
    e.push_back({{"cuda", "CUDA device backend (stub, not yet implemented)",
                  false},
                 [](Engine*) -> std::unique_ptr<Backend> {
                   throw Error(
                       "backend 'cuda' is a stub: CUDA support is not built "
                       "into this binary. Reconfigure with "
                       "-DPSS_ENABLE_CUDA=ON to opt in (currently fails at "
                       "configure time with a clear message — the kernels "
                       "are not implemented yet); use backend=cpu or "
                       "backend=cpu_simd meanwhile.");
                 }});
    return e;
  }();
  return table;
}

}  // namespace

const std::vector<BackendInfo>& backend_registry() {
  static const std::vector<BackendInfo> infos = [] {
    std::vector<BackendInfo> v;
    for (const auto& e : entries()) v.push_back(e.info);
    return v;
  }();
  return infos;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const auto& e : entries()) names.push_back(e.info.name);
  return names;
}

bool backend_available(const std::string& name) {
  for (const auto& e : entries()) {
    if (e.info.name == name) return e.info.available;
  }
  return false;
}

std::unique_ptr<Backend> make_backend(const std::string& name,
                                      Engine* engine) {
  for (const auto& e : entries()) {
    if (e.info.name == name) return e.factory(engine);
  }
  std::string known;
  for (const auto& e : entries()) {
    if (!known.empty()) known += "|";
    known += e.info.name;
  }
  throw Error("unknown backend '" + name + "' (known: " + known + ")");
}

Backend& default_backend() {
  static CpuBackend backend("cpu", &default_engine(), cpu_kernel_table());
  return backend;
}

}  // namespace pss
