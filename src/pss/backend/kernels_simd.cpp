// `cpu_simd` kernel implementations: vectorized fused-step and STDP-row
// kernels. Every other table slot reuses the reference cpu kernel.
//
// Numerical contract (documented in README/DESIGN and asserted by
// tests/test_backend.cpp):
//  * stdp.row.simd is BITWISE-identical to stdp.row — the blocked Philox
//    draws equal the per-call draws bit for bit, skipped draw slots are ones
//    this updater config provably never reads, and the hoisted/lazy gate
//    probabilities equal the recomputed ones exactly (see the kernel body).
//  * lif/izhi.fused.simd reassociates the per-row conductance sum into four
//    accumulators, so currents (and everything downstream) may differ from
//    the cpu backend at the ULP level. End-to-end trajectories can therefore
//    diverge once a borderline spike flips; equivalence is a per-kernel
//    property, not a whole-run one.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>

#include "pss/backend/kernels.hpp"

namespace pss {

namespace {

/// Row gather with four independent accumulators: breaks the serial add
/// chain so the loop pipelines/vectorizes. Reassociated relative to the
/// reference kernel (ULP-level differences).
inline double row_gather4(const double* row,
                          std::span<const ChannelIndex> active_pre) {
  const std::size_t m = active_pre.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    a0 += row[active_pre[k]];
    a1 += row[active_pre[k + 1]];
    a2 += row[active_pre[k + 2]];
    a3 += row[active_pre[k + 3]];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; k < m; ++k) acc += row[active_pre[k]];
  return acc;
}

void lif_step_fused_simd(Engine& engine, const LifFusedStepArgs& args) {
  const auto v = args.step.state.v;
  const auto last = args.step.state.last_spike;
  const auto inhibited = args.step.state.inhibited_until;
  const auto flag = args.step.state.spiked;
  const auto currents = args.step.currents;
  const double decay_factor = args.step.decay_factor;
  const auto conductance = args.step.conductance;
  const std::size_t pre_count = args.step.pre_count;
  const auto active_pre = args.step.active_pre;
  const double amplitude = args.step.amplitude;
  const auto threshold_offset = args.step.threshold_offset;
  const TimeMs now = args.step.now;
  const TimeMs dt = args.step.dt;
  const LifParameters p = args.params;

  engine.launch("lif.fused.simd", v.size(), [&](std::size_t i) {
    double ci = decay_factor == 0.0 ? 0.0 : currents[i] * decay_factor;
    if (!active_pre.empty()) {
      ci += amplitude * row_gather4(conductance.data() + i * pre_count,
                                    active_pre);
    }
    currents[i] = ci;

    // Neuron update: identical operation order to the reference kernel.
    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = p.v_reset;
      return;
    }
    if (p.refractory_ms > 0.0 && last[i] != kNeverSpiked &&
        now - last[i] < p.refractory_ms) {
      v[i] = p.v_reset;
      return;
    }
    double vi = lif_integrate(p, v[i], ci, dt);
    const double threshold =
        p.v_threshold + (threshold_offset.empty() ? 0.0 : threshold_offset[i]);
    if (vi > threshold) {
      vi = p.v_reset;
      flag[i] = 1;
      last[i] = now;
    }
    v[i] = vi;
  });
}

void izhikevich_step_fused_simd(Engine& engine,
                                const IzhikevichFusedStepArgs& args) {
  const auto v = args.step.state.v;
  const auto u = args.step.state.u;
  const auto last = args.step.state.last_spike;
  const auto inhibited = args.step.state.inhibited_until;
  const auto flag = args.step.state.spiked;
  const auto currents = args.step.currents;
  const double decay_factor = args.step.decay_factor;
  const auto conductance = args.step.conductance;
  const std::size_t pre_count = args.step.pre_count;
  const auto active_pre = args.step.active_pre;
  const double amplitude = args.step.amplitude;
  const auto threshold_offset = args.step.threshold_offset;
  const TimeMs now = args.step.now;
  const TimeMs dt = args.step.dt;
  const IzhikevichParameters base = args.params;

  engine.launch("izhi.fused.simd", v.size(), [&](std::size_t i) {
    double ci = decay_factor == 0.0 ? 0.0 : currents[i] * decay_factor;
    if (!active_pre.empty()) {
      ci += amplitude * row_gather4(conductance.data() + i * pre_count,
                                    active_pre);
    }
    currents[i] = ci;

    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = base.c;
      return;
    }
    IzhikevichParameters p = base;
    if (!threshold_offset.empty()) p.v_peak += threshold_offset[i];
    flag[i] = izhikevich_step(p, v[i], u[i], ci, dt) ? 1 : 0;
    if (flag[i]) last[i] = now;
  });
}

/// Memo for the eq. 6 / stale-depression gate probabilities, keyed by the
/// exact gap bits *and* the gate parameters. Spike times sit on the dt grid,
/// so an STDP row sees only a handful of distinct gaps per event — caching
/// p_pot/p_dep_stale turns two exp() calls per synapse into two compares.
/// Exact by construction: a hit replays values the gate computed for the
/// same gap under the same parameters; the parameter check also makes stale
/// entries from another updater config impossible, and per-thread storage
/// (never cleared, verified on every probe) keeps partitioned dispatch safe.
struct GateMemoSlot {
  double gap = -1.0;  // gaps are >= 0, so -1 never matches
  double gamma_pot = 0.0;
  double tau_pot = 0.0;
  double gamma_dep = 0.0;
  double tau_stale = 0.0;
  double p_pot = 0.0;
  double p_dep_stale = 0.0;
};
constexpr std::size_t kGateMemoSlots = 256;  // power of two
thread_local GateMemoSlot g_gate_memo[kGateMemoSlots];

void stdp_row_simd(Engine& engine, const StdpRowArgs& a) {
  const auto row = a.row;
  const auto last_pre = a.last_pre_spike;
  const StdpUpdater& updater = *a.updater;
  const CounterRng& rng = *a.rng;
  const StdpUpdaterConfig& cfg = updater.config();
  const bool stochastic = cfg.kind == StdpKind::kStochastic;
  const bool need_dep = updater.consumes_dep_draw();
  const bool need_round = updater.consumes_round_draw();
  const double gamma_pot = cfg.gate.gamma_pot;
  const double tau_pot = cfg.gate.tau_pot;
  const double gamma_dep = cfg.gate.gamma_dep;
  const double tau_stale = cfg.gate.tau_stale;
  const TimeMs t_post = a.t_post;
  const std::uint64_t base = a.counter_base;
  constexpr std::uint64_t kDraws = StdpUpdater::kDrawsPerEvent;
  constexpr std::size_t kBlock = 64;  // eight interleaved Philox batches

  const StochasticGate& gate = updater.gate();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Exact gate probabilities for a never-fired pre: e^(−∞) = +0, so
  // p_pot(∞) = +0 (u_pot ≥ 0 never potentiates) and p_dep_stale(∞) = γ_dep.
  // Hoisting them removes both exp() calls from the stale half of the row.
  const double p_pot_inf = gate.p_pot(kInf);
  const double p_dep_inf = gate.p_dep_stale(kInf);

  const std::size_t n = row.size();
  const std::size_t blocks = (n + kBlock - 1) / kBlock;

  // One logical thread per kBlock synapses: draw the block's uniforms as
  // strided 8-lane Philox batches, then run the block's updates. Keeping
  // draws and updates in one instruction stream lets the core overlap the
  // next block's Philox rounds with this block's exp()-heavy gate/magnitude
  // math — a phase-split layout (whole-row draws, then whole-row updates)
  // serializes the two and loses to the scalar kernel, whose out-of-order
  // window gets that overlap for free. Skipping draw slots this updater
  // config never reads is exact (counter-indexed draws are independent), and
  // blocks touch disjoint counters/synapses, so partitioned dispatch is safe.
  engine.launch("stdp.row.simd", blocks, [&](std::size_t b) {
    const std::size_t begin = b * kBlock;
    const std::size_t count = std::min(kBlock, n - begin);
    const std::uint64_t cbase = base + begin * kDraws;
    double u_pot[kBlock], u_dep[kBlock], u_round[kBlock];
    if (stochastic) {
      rng.uniform_many(cbase + 0, kDraws, std::span<double>(u_pot, count));
      if (need_dep) {
        rng.uniform_many(cbase + 1, kDraws, std::span<double>(u_dep, count));
      }
    }
    if (need_round) {
      rng.uniform_many(cbase + 2, kDraws, std::span<double>(u_round, count));
    }

    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t pre = begin + j;
      const TimeMs t_pre = last_pre[pre];
      const double ur = need_round ? u_round[j] : 0.0;
      if (!stochastic) {
        // The deterministic rule reads only the rounding draw; the gate
        // draws it ignores may be anything.
        const double gap = t_pre == kNeverSpiked ? kInf : t_post - t_pre;
        row[pre] = updater.update_at_post_spike(row[pre], gap, 0.0, 0.0, ur);
        continue;
      }
      const double ud = need_dep ? u_dep[j] : 0.0;
      if (t_pre == kNeverSpiked) {
        row[pre] = updater.update_at_post_spike_gated(
            row[pre], p_pot_inf, p_dep_inf, u_pot[j], ud, ur);
        continue;
      }
      const double gap = t_post - t_pre;
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(gap);
      const std::size_t s =
          static_cast<std::size_t>((bits * 0x9E3779B97F4A7C15ull) >> 56) &
          (kGateMemoSlots - 1);
      GateMemoSlot& slot = g_gate_memo[s];
      if (slot.gap != gap || slot.gamma_pot != gamma_pot ||
          slot.tau_pot != tau_pot || slot.gamma_dep != gamma_dep ||
          slot.tau_stale != tau_stale) {
        slot.gap = gap;
        slot.gamma_pot = gamma_pot;
        slot.tau_pot = tau_pot;
        slot.gamma_dep = gamma_dep;
        slot.tau_stale = tau_stale;
        // Fill both probabilities regardless of this config's depression
        // mode so a hit from a config that does read p_dep_stale stays exact.
        slot.p_pot = gate.p_pot(gap);
        slot.p_dep_stale = gate.p_dep_stale(gap);
      }
      row[pre] = updater.update_at_post_spike_gated(
          row[pre], slot.p_pot, slot.p_dep_stale, u_pot[j], ud, ur);
    }
  });
}

/// Spatially-hoisted conv accumulate: one logical thread per OUTPUT POSITION
/// (not per unit). The window-membership test and tap offset of each active
/// input are computed once and reused across the whole filter bank (the
/// reference gather redoes them per filter), with the bank processed in
/// fixed-size register blocks. Per (filter, position) unit the taps still
/// accumulate in ascending active order — the same association as the
/// reference kernel, so results are bitwise equal (tests/test_backend.cpp).
void conv_accumulate_simd(Engine& engine, const ConvAccumulateArgs& a) {
  const auto currents = a.currents;
  const auto active = a.active_pre;
  const auto filters = a.filters;
  const std::size_t kernel = a.kernel;
  const std::size_t stride = a.stride;
  const std::size_t in_w = a.in_width;
  const std::size_t in_plane = a.in_width * a.in_height;
  const std::size_t out_plane = a.out_width * a.out_height;
  const std::size_t taps = a.in_channels * kernel * kernel;
  const std::size_t filter_count = a.filter_count;
  const double amplitude = a.amplitude;
  const double decay = a.decay_factor;

  constexpr std::size_t kFilterBlock = 16;  // accumulators held on the stack

  engine.launch("graph.conv", out_plane, [&](std::size_t s) {
    const std::size_t y0 = (s / a.out_width) * stride;
    const std::size_t x0 = (s % a.out_width) * stride;
    // Hoisted geometry: tap index of every in-window active input, computed
    // once for all filters (the reference gather redoes this per filter).
    // Stack slots, no heap; overflow falls back to the reference gather.
    std::size_t hit_tap[64];
    std::size_t hits = 0;
    bool overflow = false;
    for (const ChannelIndex p : active) {
      const std::size_t c = p / in_plane;
      const std::size_t q = p % in_plane;
      const std::size_t y = q / in_w;
      const std::size_t x = q % in_w;
      if (y < y0 || y >= y0 + kernel || x < x0 || x >= x0 + kernel) continue;
      if (hits == 64) {
        overflow = true;
        break;
      }
      hit_tap[hits++] = (c * kernel + (y - y0)) * kernel + (x - x0);
    }

    if (overflow) {
      // Slow path (more than 64 in-window active inputs in one step): the
      // reference per-filter gather, same association.
      for (std::size_t f = 0; f < filter_count; ++f) {
        const double* w = filters.data() + f * taps;
        double acc = 0.0;
        for (const ChannelIndex p : active) {
          const std::size_t c = p / in_plane;
          const std::size_t q = p % in_plane;
          const std::size_t y = q / in_w;
          const std::size_t x = q % in_w;
          if (y < y0 || y >= y0 + kernel || x < x0 || x >= x0 + kernel) {
            continue;
          }
          acc += w[(c * kernel + (y - y0)) * kernel + (x - x0)];
        }
        const std::size_t u = f * out_plane + s;
        currents[u] = currents[u] * decay + amplitude * acc;
      }
      return;
    }

    for (std::size_t f0 = 0; f0 < filter_count; f0 += kFilterBlock) {
      const std::size_t fn = std::min(kFilterBlock, filter_count - f0);
      double acc[kFilterBlock] = {};
      for (std::size_t h = 0; h < hits; ++h) {
        const std::size_t tap = hit_tap[h];
        const double* w = filters.data() + f0 * taps + tap;
        for (std::size_t j = 0; j < fn; ++j) acc[j] += w[j * taps];
      }
      for (std::size_t j = 0; j < fn; ++j) {
        const std::size_t u = (f0 + j) * out_plane + s;
        currents[u] = currents[u] * decay + amplitude * acc[j];
      }
    }
  });
}

}  // namespace

const KernelTable& cpu_simd_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t = cpu_kernel_table();  // start from the reference kernels
    t.lif_step_fused = lif_step_fused_simd;
    t.izhikevich_step_fused = izhikevich_step_fused_simd;
    t.stdp_row = stdp_row_simd;
    t.conv_accumulate = conv_accumulate_simd;
    return t;
  }();
  return table;
}

}  // namespace pss
