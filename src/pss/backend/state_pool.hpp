// StatePool — the per-presentation hot state as structure-of-arrays buffers
// owned by a Backend.
//
// Everything the five hot kernels touch lives here, allocated through the
// backend's buffer seam (host memory on CPU backends; device memory on a
// future CUDA backend):
//
//   per neuron   membrane v, recovery u (Izhikevich), last-spike time,
//                inhibition deadline, spike flag, synaptic current
//   per channel  encoder rate, last pre-spike time
//   per synapse  conductance G (post-major: row(post) is contiguous)
//
// One pool is shared by a WtaNetwork and all its components; standalone
// components (tests, benches) create their own. A layer graph shares one
// pool across its front-end layers: the primary population (handle 0) hosts
// the encoder sections and every conv/pool layer adds a population segment
// via add_population() — per-layer neuron/current/spike sections behind
// stable handles, all allocated through the same backend seam.
// The pool also owns the ONE
// bounds-checked conductance-row accessor (g_row) and the single clamp /
// bulk-load path — the STDP updaters, checkpoint restore and trainer merge
// all route through it instead of keeping private copies of the bounds
// logic.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "pss/backend/backend.hpp"
#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/fixedpoint/quantizer.hpp"

namespace pss {

/// A typed device buffer allocated through a Backend (the device_vector
/// analogue for pool sections). Move-only; frees on destruction.
template <typename T>
class PoolBuffer {
 public:
  PoolBuffer() = default;
  PoolBuffer(Backend* backend, std::size_t count, T fill)
      : backend_(backend), size_(count) {
    if (count == 0) return;
    data_ = static_cast<T*>(backend_->alloc_bytes(count * sizeof(T)));
    for (std::size_t i = 0; i < count; ++i) data_[i] = fill;
  }
  ~PoolBuffer() { release(); }

  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;
  PoolBuffer(PoolBuffer&& other) noexcept { swap(other); }
  PoolBuffer& operator=(PoolBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }

  void fill(T value) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
  }

 private:
  void release() noexcept {
    if (data_) backend_->free_bytes(data_, size_ * sizeof(T));
    data_ = nullptr;
    size_ = 0;
  }
  void swap(PoolBuffer& other) noexcept {
    std::swap(backend_, other.backend_);
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  Backend* backend_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Stable identifier of one population segment inside a StatePool. Handle 0
/// is the primary population (the one the no-handle accessors address, and
/// the only one carrying conductance/sparse sections); handles from
/// add_population() stay valid for the pool's lifetime.
using PopulationHandle = std::size_t;

class StatePool {
 public:
  struct Geometry {
    std::size_t neurons = 1;
    std::size_t channels = 0;  ///< 0 = no encoder/synapse sections
  };

  StatePool(Backend* backend, Geometry geometry);

  StatePool(const StatePool&) = delete;
  StatePool& operator=(const StatePool&) = delete;

  Backend& backend() const { return *backend_; }
  Engine& engine() const { return backend_->engine(); }
  std::size_t neurons() const { return geometry_.neurons; }
  std::size_t channels() const { return geometry_.channels; }

  // --- multi-population segments (layer graphs) ---------------------------
  /// Appends a population segment (own membrane/current/spike sections plus a
  /// per-unit spike-count accumulator) and returns its stable handle. The
  /// primary population (handle 0, created by the constructor) is untouched —
  /// single-population consumers keep their exact seed behaviour. Extra
  /// populations carry no conductance/encoder sections; synapses between
  /// graph layers live with the layer that owns them.
  PopulationHandle add_population(Geometry geometry);
  std::size_t population_count() const { return 1 + extra_.size(); }
  Geometry population_geometry(PopulationHandle h) const;

  /// Handle-taking section accessors. Handle 0 aliases the primary sections.
  std::span<double> membrane(PopulationHandle h);
  std::span<double> recovery(PopulationHandle h);
  std::span<TimeMs> last_spike(PopulationHandle h);
  std::span<TimeMs> inhibited_until(PopulationHandle h);
  std::span<std::uint8_t> spiked(PopulationHandle h);
  std::span<double> currents(PopulationHandle h);

  /// Per-unit spike-count accumulator (extra populations only — the primary
  /// population's counts are presentation-local host state in WtaNetwork).
  std::span<std::uint32_t> spike_counts(PopulationHandle h);

  // --- per-neuron sections -------------------------------------------------
  std::span<double> membrane() { return membrane_.span(); }
  std::span<const double> membrane() const { return membrane_.span(); }
  std::span<double> recovery() { return recovery_.span(); }
  std::span<const double> recovery() const { return recovery_.span(); }
  std::span<TimeMs> last_spike() { return last_spike_.span(); }
  std::span<const TimeMs> last_spike() const { return last_spike_.span(); }
  std::span<TimeMs> inhibited_until() { return inhibited_until_.span(); }
  std::span<const TimeMs> inhibited_until() const {
    return inhibited_until_.span();
  }
  std::span<std::uint8_t> spiked() { return spiked_.span(); }
  std::span<double> currents() { return currents_.span(); }
  std::span<const double> currents() const { return currents_.span(); }

  // --- per-channel sections ------------------------------------------------
  std::span<double> rates() { return rates_.span(); }
  std::span<const double> rates() const { return rates_.span(); }
  std::span<TimeMs> last_pre_spike() { return last_pre_spike_.span(); }
  std::span<const TimeMs> last_pre_spike() const {
    return last_pre_spike_.span();
  }

  // --- conductance section (neurons × channels, post-major) ---------------
  /// Sets the representable range [g_min, g_max] and resets the learning cap
  /// to g_max. Must be called before any conductance access.
  void set_g_bounds(double g_min, double g_max);

  /// Caps the range learning may reach (min(g_max, cap)) — the quantizer's
  /// max representable value when a fixed-point format is active.
  void set_learn_cap(double cap);

  double g_min() const { return g_min_; }
  double g_max() const { return g_max_; }
  /// The range STDP-learned values are clamped to: [g_min, min(g_max, cap)].
  double learn_lo() const { return g_min_; }
  double learn_hi() const { return learn_hi_; }

  std::span<double> g() { return g_.span(); }
  std::span<const double> g() const { return g_.span(); }

  /// THE conductance-row accessor: bounds-checked contiguous row of one
  /// post-neuron. Every consumer (STDP kernels, checkpoint restore, fused
  /// step, map export) goes through here — do not hand-compute offsets.
  std::span<double> g_row(NeuronIndex post);
  std::span<const double> g_row(NeuronIndex post) const;

  /// Clamps a value to the representable range [g_min, g_max].
  double clamp_g(double value) const;

  /// Bulk conductance load (checkpoint restore / replica sync / snapshot).
  /// `clamp` routes every element through clamp_g — the one place restore
  /// bounds handling lives.
  void load_g(std::span<const double> values, bool clamp);

  /// Uniform-random conductance init, clamped to the range and optionally
  /// snapped to a quantizer grid (low-precision learning starts from
  /// representable state). The single init/quantize site.
  void init_g_uniform(double lo, double hi, SequentialRng& rng,
                      const Quantizer* quantizer);

  // --- sparse-path sections (allocated on demand by build_sparse) ----------
  /// Allocates the CSR channel→neuron connectivity view and the per-synapse
  /// lazy-STDP progress counters. The network is all-to-all (every channel
  /// feeds every neuron, paper Fig. 3), so row c is simply [0, neurons) —
  /// the CSR form is the contract sparse_accumulate propagates along, and
  /// the layout a pruned or topographic connectivity would slot into.
  /// Idempotent; only the event-driven path calls it, so dense pools carry
  /// no extra footprint.
  void build_sparse();
  bool has_sparse() const { return csr_row_ptr_.size() != 0; }

  std::span<const std::uint32_t> csr_row_ptr() const {
    return csr_row_ptr_.span();
  }
  std::span<const NeuronIndex> csr_cols() const { return csr_cols_.span(); }

  /// Per-synapse applied-event counters for the lazy-STDP flush, post-major
  /// like g(): row(post) counts how many of post's pending events each
  /// afferent synapse has absorbed. Presentation scratch (reset each
  /// presentation), pool-resident so the flush kernel reads device memory.
  std::span<std::uint32_t> stdp_progress_row(NeuronIndex post);

 private:
  /// One extra population's SoA sections (see add_population).
  struct ExtraPopulation {
    Geometry geometry;
    PoolBuffer<double> membrane;
    PoolBuffer<double> recovery;
    PoolBuffer<TimeMs> last_spike;
    PoolBuffer<TimeMs> inhibited_until;
    PoolBuffer<std::uint8_t> spiked;
    PoolBuffer<double> currents;
    PoolBuffer<std::uint32_t> spike_counts;
  };

  ExtraPopulation& extra(PopulationHandle h);

  Backend* backend_;
  Geometry geometry_;

  PoolBuffer<double> membrane_;
  PoolBuffer<double> recovery_;
  PoolBuffer<TimeMs> last_spike_;
  PoolBuffer<TimeMs> inhibited_until_;
  PoolBuffer<std::uint8_t> spiked_;
  PoolBuffer<double> currents_;

  PoolBuffer<double> rates_;
  PoolBuffer<TimeMs> last_pre_spike_;

  PoolBuffer<double> g_;
  double g_min_ = 0.0;
  double g_max_ = 1.0;
  double learn_hi_ = 1.0;

  PoolBuffer<std::uint32_t> csr_row_ptr_;
  PoolBuffer<NeuronIndex> csr_cols_;
  PoolBuffer<std::uint32_t> stdp_progress_;

  std::vector<ExtraPopulation> extra_;
};

}  // namespace pss
