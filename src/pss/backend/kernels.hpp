// Registered kernel descriptors — the five hot loops of the simulator
// (paper Sec. III-A) expressed as backend-dispatchable entry points:
//
//   1. poisson/regular encode      — input spike-train generation
//   2. current decay + accumulate  — eq. 3 (the standalone, unfused form)
//   3. LIF / Izhikevich step       — neuron update, plain and fused variants
//   4. WTA inhibition scan         — Fig. 3's second-layer reflex
//   5. STDP row update             — deterministic/stochastic learning rule
//
// Each kernel is a plain function pointer taking the Engine to launch on and
// an argument struct of spans into StatePool buffers. Argument structs are
// views: they own nothing and must not outlive the pool.
//
// Rule: new hot-path kernels are added HERE (a new table slot + per-backend
// implementations), never as inline Engine::launch lambdas at call sites.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/engine/launch.hpp"
#include "pss/engine/spike_events.hpp"
#include "pss/neuron/izhikevich.hpp"
#include "pss/neuron/lif.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {

/// SoA views of one population's per-neuron state (StatePool sections).
struct NeuronStateView {
  std::span<double> v;                ///< membrane potential
  std::span<double> u;                ///< Izhikevich recovery (empty for LIF)
  std::span<TimeMs> last_spike;
  std::span<TimeMs> inhibited_until;
  std::span<std::uint8_t> spiked;     ///< per-neuron spike flag (out)
};

/// Plain neuron step: externally computed input currents, state update only.
struct NeuronStepArgs {
  NeuronStateView state;
  std::span<const double> input_current;
  std::span<const double> threshold_offset;  ///< empty = no homeostasis
  TimeMs now = 0.0;
  TimeMs dt = 0.0;
};

/// Fused presentation step: current decay + synaptic accumulation (eq. 3) +
/// neuron update in one launch. `currents` is updated in place:
///   I[i] = I[i]·decay + amplitude·Σ_{pre ∈ active} G[i·pre_count + pre]
/// (decay_factor == 0 clears instead).
struct FusedStepArgs {
  NeuronStateView state;
  std::span<double> currents;
  double decay_factor = 0.0;
  std::span<const double> conductance;  ///< post-major, size n·pre_count
  std::size_t pre_count = 0;
  std::span<const ChannelIndex> active_pre;
  double amplitude = 0.0;
  std::span<const double> threshold_offset;
  TimeMs now = 0.0;
  TimeMs dt = 0.0;
};

struct LifStepArgs {
  LifParameters params;
  NeuronStepArgs step;
};

struct LifFusedStepArgs {
  LifParameters params;
  FusedStepArgs step;
};

struct IzhikevichStepArgs {
  IzhikevichParameters params;
  NeuronStepArgs step;
};

struct IzhikevichFusedStepArgs {
  IzhikevichParameters params;
  FusedStepArgs step;
};

/// Standalone current-accumulation kernel (eq. 3), used by the unfused path:
///   I[post] += amplitude · Σ_{pre ∈ active} G[post·pre_count + pre].
struct CurrentAccumulateArgs {
  std::span<const double> conductance;
  std::size_t pre_count = 0;
  std::span<const ChannelIndex> active_pre;
  double amplitude = 0.0;
  std::span<double> currents;
};

/// WTA inhibition scan: extend every neuron's inhibition window to `until`,
/// except the winner's (never shortens an existing window).
struct InhibitScanArgs {
  std::span<TimeMs> inhibited_until;
  NeuronIndex winner = 0;
  TimeMs until = 0.0;
};

/// Poisson encode: emit the channels (from the nonzero-rate candidate list)
/// that spike at `step` into *active, cleared first and in ascending channel
/// order. Channel c spikes with p = rates_hz[c]·dt·1e-3, drawn from
/// rng->fork(c) at counter (presentation_base | step).
struct PoissonEncodeArgs {
  const CounterRng* rng = nullptr;
  std::span<const double> rates_hz;
  std::span<const ChannelIndex> channels;  ///< candidates (rate > 0)
  std::uint64_t presentation_base = 0;     ///< presentation_index << 32
  StepIndex step = 0;
  TimeMs dt = 0.0;
  std::vector<ChannelIndex>* active = nullptr;
};

/// Regular (clock-like) encode over all channels; see RegularEncoder.
struct RegularEncodeArgs {
  std::span<const double> rates_hz;
  std::span<const double> phase;  ///< per-channel phase in [0, 1)
  StepIndex step = 0;
  TimeMs dt = 0.0;
  std::vector<ChannelIndex>* active = nullptr;
};

/// STDP row update at a post spike: one logical thread per afferent synapse
/// of the winner's conductance row. Draw indices derive from counter_base so
/// results are schedule-independent (3 draws per synapse).
struct StdpRowArgs {
  const StdpUpdater* updater = nullptr;
  std::span<double> row;                 ///< winner's conductance row
  std::span<const TimeMs> last_pre_spike;
  TimeMs t_post = 0.0;
  const CounterRng* rng = nullptr;
  std::uint64_t counter_base = 0;
};

/// Event-driven Poisson encode: build the whole presentation's spike event
/// list at once via geometric inter-spike sampling. Channel c's gaps between
/// successive spikes are Geometric(p = rates_hz[c]·dt·1e-3) — the exact
/// inter-spike law of the dense per-step Bernoulli process — so the list is
/// statistically identical to the dense encoder's output while costing
/// O(spikes) Philox draws instead of O(channels × steps). Draw k of channel
/// c comes from rng->fork(c) at counter (presentation_base | k): a pure
/// function of (seed, presentation, channel), worker-count invariant, and
/// independent of presentation order — the same determinism contract as the
/// dense path (the *draw indexing* differs, so the two paths produce
/// different, equally-distributed trains; see DESIGN.md "Sparse event path").
struct PoissonEncodeEventsArgs {
  const CounterRng* rng = nullptr;
  std::span<const double> rates_hz;
  std::span<const ChannelIndex> channels;  ///< candidates (rate > 0)
  std::size_t channel_count = 0;           ///< total channels (list geometry)
  std::uint64_t presentation_base = 0;     ///< presentation_index << 32
  StepIndex steps = 0;                     ///< presentation length
  TimeMs dt = 0.0;
  SpikeEventList* out = nullptr;
};

/// Event-driven Regular encode: next-spike-time phase arithmetic. Spike k of
/// channel c lands at (k + phase[c])·period; the builder walks k instead of
/// scanning steps. Bitwise-identical per-step slices to the dense
/// regular_encode kernel (asserted by tests/test_properties.cpp).
struct RegularEncodeEventsArgs {
  std::span<const double> rates_hz;
  std::span<const double> phase;  ///< per-channel phase in [0, 1)
  StepIndex steps = 0;
  TimeMs dt = 0.0;
  SpikeEventList* out = nullptr;
};

/// CSR spike propagation (eq. 3 along fired rows only): for each active
/// channel c, currents[cols[i]] += amplitude · G[cols[i]·pre_count + c] over
/// c's CSR row. One launch per active channel (distinct targets within a row,
/// so partitioned dispatch is race-free); channels accumulate in ascending
/// order. Per-neuron currents sum per-channel contributions one add at a
/// time, a different association than the dense gather's row sum — ULP-level
/// divergence from the cpu backend, identical across worker counts.
struct SparseAccumulateArgs {
  std::span<const std::uint32_t> row_ptr;  ///< channels + 1
  std::span<const NeuronIndex> cols;
  std::span<const double> conductance;  ///< post-major, size n·pre_count
  std::size_t pre_count = 0;
  std::span<const ChannelIndex> active_pre;
  double amplitude = 0.0;
  std::span<double> currents;
};

/// One deferred post-spike row update (lazy STDP): recorded when the post
/// neuron fired, applied when the synapse's pre fires or at presentation end.
/// counter_base is reserved at record time exactly as the eager path would
/// have (row_size · kDrawsPerEvent counters), so deferred application
/// consumes bit-identical draws.
struct PendingPostEvent {
  TimeMs t_post = 0.0;
  std::uint32_t step = 0;  ///< step index of the post spike
  std::uint64_t counter_base = 0;
};

/// Lazy-STDP row flush: apply every not-yet-applied pending post-spike event
/// of one conductance row, per synapse, in event order. progress[pre] counts
/// the events already applied to synapse `pre` (catch-up on pre-spike
/// arrival advances it mid-presentation); the flush completes all rows'
/// chains. Historical pre-spike times are reconstructed from the event
/// list's channel_history — for event at step s, the last pre spike is the
/// latest history step s' ≤ s, giving gap = t_post − (s'+1)·dt, the exact
/// value the eager path read from last_pre_spike[] at the time (spike times
/// are (step+1)·dt in both, so the doubles match bit for bit).
struct StdpFlushArgs {
  const StdpUpdater* updater = nullptr;
  std::span<double> row;                 ///< one post neuron's conductance row
  std::span<std::uint32_t> progress;     ///< per-synapse applied-event count
  std::span<const PendingPostEvent> events;  ///< ascending t_post
  const SpikeEventList* history = nullptr;   ///< channel_history source
  TimeMs dt = 0.0;
  const CounterRng* rng = nullptr;
  /// Optional: incremented by the number of event applications actually
  /// performed (whole-chain and per-event skips excluded). Atomic because
  /// blocks may run on different pool workers; the total is deterministic.
  std::atomic<std::uint64_t>* applied = nullptr;
};

/// Conv-accumulate (layer-graph front-end): gather one step's active input
/// spikes through a fixed filter bank into per-conv-unit synaptic currents.
/// One logical thread per output unit (filter f, output row oy, column ox);
/// unit u covers the input window [oy·stride, oy·stride+kernel) ×
/// [ox·stride, ox·stride+kernel) in every input channel plane:
///
///   I[u] = I[u]·decay + amplitude · Σ_{p ∈ active ∩ window(u)} W_f[tap(p)]
///
/// (decay_factor == 0 clears first). `active_pre` is ascending and each
/// unit's taps accumulate in that order on EVERY backend — a fixed
/// association, so cpu / cpu_simd / cpu_sparse results are bitwise equal
/// (asserted by tests/test_backend.cpp), and worker-count invariant (thread
/// u writes only currents[u]).
struct ConvAccumulateArgs {
  std::span<const double> filters;  ///< [f][c][ky][kx], f-major
  std::size_t filter_count = 0;
  std::size_t in_channels = 1;
  std::size_t kernel = 0;  ///< square kernel side
  std::size_t stride = 1;
  std::size_t in_width = 0;
  std::size_t in_height = 0;
  std::size_t out_width = 0;
  std::size_t out_height = 0;
  /// Active input units this step, flattened (c·in_height + y)·in_width + x,
  /// ascending — a per-step slice of the inter-layer spike event stream.
  std::span<const ChannelIndex> active_pre;
  double amplitude = 0.0;
  double decay_factor = 0.0;  ///< current decay applied before accumulation
  std::span<double> currents;  ///< conv unit currents, (f, oy, ox)
};

/// Spatial spike pooling (layer-graph front-end): OR-reduce each
/// non-overlapping `window`×`window` block of a spike-flag plane, per
/// channel. One logical thread per pooled unit; edge blocks clip. When
/// `pooled_counts` is non-empty it accumulates fired pooled units
/// (+1 per step a unit's window contained a spike) — the per-presentation
/// activity the next layer's rate recoding reads. Pure integer/flag work:
/// bitwise-identical on every backend and worker count.
struct PoolForwardArgs {
  std::span<const std::uint8_t> spiked;  ///< input flags, (c, y, x)
  std::size_t channels = 0;
  std::size_t in_width = 0;
  std::size_t in_height = 0;
  std::size_t window = 2;  ///< pooling window side == stride
  std::size_t out_width = 0;
  std::size_t out_height = 0;
  std::span<std::uint8_t> pooled;          ///< out flags, (c, py, px)
  std::span<std::uint32_t> pooled_counts;  ///< optional accumulator, same size
};

/// Shared scalar chain applier behind the lazy-STDP path: everything
/// stdp_apply_chain needs hoisted out of the per-synapse loop. Build once
/// per batch with make_stdp_chain_context.
struct StdpChainContext {
  const StdpUpdater* updater = nullptr;
  const StochasticGate* gate = nullptr;
  bool stochastic = false;
  bool need_dep = false;    ///< updater consumes the stale-depression draw
  bool need_round = false;  ///< updater consumes the rounding draw
  /// Whole-chain skip is sound: α_p, α_d ≥ 0 (the apply() saturation fast
  /// path is exact) and, for the stochastic rule, p_pot(∞) is exactly +0.
  bool can_park = false;
  double p_pot_inf = 0.0;
  double p_dep_inf = 0.0;
  double g_floor = 0.0;  ///< G_min — the absorbing bound for silent synapses
  TimeMs dt = 0.0;
};

StdpChainContext make_stdp_chain_context(const StdpUpdater& updater, TimeMs dt);

/// Distance between consecutive events' counter_base when it is the same for
/// every adjacent pair (the common case: nothing else consumed draw counters
/// between the deferred post spikes), 0 otherwise. A uniform stride lets
/// stdp_apply_chain pull a whole chain's draws for one slot with the strided
/// bulk generator instead of scalar calls — bitwise-identical either way.
/// Compute once per row; the stride is a property of the shared event list,
/// not of the synapse.
std::uint64_t stdp_chain_counter_stride(
    std::span<const PendingPostEvent> events);

/// Applies events[from..) of one row's pending chain to the single synapse
/// `pre` holding conductance `g`, reading pre-spike times from the
/// channel's presentation spike history. Bitwise-identical to applying the
/// same events eagerly with update_at_post_spike: draws are counter-indexed
/// off each event's reserved base (so the slots a configuration never reads
/// are simply not generated), gate probabilities are memoized by exact gap
/// bits, and chains pinned at G_min with no pre spikes are skipped whole.
/// `counter_stride` is stdp_chain_counter_stride(events) (0 always works; a
/// nonzero value enables bulk draw generation). Both the stdp.flush kernel
/// and WtaNetwork's catch-up path funnel here. When `applied` is non-null it
/// is incremented by the number of events that reached the updater (skips
/// excluded).
double stdp_apply_chain(const StdpChainContext& ctx, double g,
                        ChannelIndex pre,
                        std::span<const PendingPostEvent> events,
                        std::size_t from,
                        std::span<const std::uint32_t> hist,
                        const CounterRng& rng, std::uint64_t counter_stride,
                        std::uint64_t* applied);

/// The dispatch table: one entry per registered kernel, filled per backend.
struct KernelTable {
  void (*poisson_encode)(Engine&, const PoissonEncodeArgs&) = nullptr;
  void (*regular_encode)(Engine&, const RegularEncodeArgs&) = nullptr;
  void (*current_accumulate)(Engine&, const CurrentAccumulateArgs&) = nullptr;
  void (*lif_step)(Engine&, const LifStepArgs&) = nullptr;
  void (*lif_step_fused)(Engine&, const LifFusedStepArgs&) = nullptr;
  void (*izhikevich_step)(Engine&, const IzhikevichStepArgs&) = nullptr;
  void (*izhikevich_step_fused)(Engine&,
                                const IzhikevichFusedStepArgs&) = nullptr;
  void (*inhibit_scan)(Engine&, const InhibitScanArgs&) = nullptr;
  void (*stdp_row)(Engine&, const StdpRowArgs&) = nullptr;

  // Layer-graph front-end kernels (conv filter-bank accumulate + spatial
  // spike pooling). Registered on every backend; cpu_simd overrides
  // conv_accumulate with a spatially-hoisted variant (same association —
  // bitwise-equal results).
  void (*conv_accumulate)(Engine&, const ConvAccumulateArgs&) = nullptr;
  void (*pool_forward)(Engine&, const PoolForwardArgs&) = nullptr;

  // Event-driven sparse path (kernels_sparse.cpp). Null on backends without
  // a sparse path — WtaNetwork selects the event-driven presentation loop by
  // probing poisson_encode_events, so dense backends need no stubs.
  void (*poisson_encode_events)(Engine&,
                                const PoissonEncodeEventsArgs&) = nullptr;
  void (*regular_encode_events)(Engine&,
                                const RegularEncodeEventsArgs&) = nullptr;
  void (*sparse_accumulate)(Engine&, const SparseAccumulateArgs&) = nullptr;
  void (*stdp_flush)(Engine&, const StdpFlushArgs&) = nullptr;
};

/// Reference table: the pre-backend Engine::launch kernel bodies, moved
/// verbatim (same launch tags, same floating-point operation order —
/// bitwise-identical results, asserted by tests/test_backend.cpp).
const KernelTable& cpu_kernel_table();

/// cpu + vectorized fused-step and STDP-row kernels (see kernels_simd.cpp).
const KernelTable& cpu_simd_kernel_table();

/// cpu + the event-driven sparse path: event-list encoders (geometric
/// inter-spike sampling / phase arithmetic), CSR spike propagation, and the
/// lazy-STDP row flush (see kernels_sparse.cpp). All dense slots are the
/// reference cpu kernels, so per-kernel equivalence vs `cpu` is inherited.
const KernelTable& cpu_sparse_kernel_table();

}  // namespace pss
