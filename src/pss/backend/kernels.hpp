// Registered kernel descriptors — the five hot loops of the simulator
// (paper Sec. III-A) expressed as backend-dispatchable entry points:
//
//   1. poisson/regular encode      — input spike-train generation
//   2. current decay + accumulate  — eq. 3 (the standalone, unfused form)
//   3. LIF / Izhikevich step       — neuron update, plain and fused variants
//   4. WTA inhibition scan         — Fig. 3's second-layer reflex
//   5. STDP row update             — deterministic/stochastic learning rule
//
// Each kernel is a plain function pointer taking the Engine to launch on and
// an argument struct of spans into StatePool buffers. Argument structs are
// views: they own nothing and must not outlive the pool.
//
// Rule: new hot-path kernels are added HERE (a new table slot + per-backend
// implementations), never as inline Engine::launch lambdas at call sites.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/engine/launch.hpp"
#include "pss/neuron/izhikevich.hpp"
#include "pss/neuron/lif.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {

/// SoA views of one population's per-neuron state (StatePool sections).
struct NeuronStateView {
  std::span<double> v;                ///< membrane potential
  std::span<double> u;                ///< Izhikevich recovery (empty for LIF)
  std::span<TimeMs> last_spike;
  std::span<TimeMs> inhibited_until;
  std::span<std::uint8_t> spiked;     ///< per-neuron spike flag (out)
};

/// Plain neuron step: externally computed input currents, state update only.
struct NeuronStepArgs {
  NeuronStateView state;
  std::span<const double> input_current;
  std::span<const double> threshold_offset;  ///< empty = no homeostasis
  TimeMs now = 0.0;
  TimeMs dt = 0.0;
};

/// Fused presentation step: current decay + synaptic accumulation (eq. 3) +
/// neuron update in one launch. `currents` is updated in place:
///   I[i] = I[i]·decay + amplitude·Σ_{pre ∈ active} G[i·pre_count + pre]
/// (decay_factor == 0 clears instead).
struct FusedStepArgs {
  NeuronStateView state;
  std::span<double> currents;
  double decay_factor = 0.0;
  std::span<const double> conductance;  ///< post-major, size n·pre_count
  std::size_t pre_count = 0;
  std::span<const ChannelIndex> active_pre;
  double amplitude = 0.0;
  std::span<const double> threshold_offset;
  TimeMs now = 0.0;
  TimeMs dt = 0.0;
};

struct LifStepArgs {
  LifParameters params;
  NeuronStepArgs step;
};

struct LifFusedStepArgs {
  LifParameters params;
  FusedStepArgs step;
};

struct IzhikevichStepArgs {
  IzhikevichParameters params;
  NeuronStepArgs step;
};

struct IzhikevichFusedStepArgs {
  IzhikevichParameters params;
  FusedStepArgs step;
};

/// Standalone current-accumulation kernel (eq. 3), used by the unfused path:
///   I[post] += amplitude · Σ_{pre ∈ active} G[post·pre_count + pre].
struct CurrentAccumulateArgs {
  std::span<const double> conductance;
  std::size_t pre_count = 0;
  std::span<const ChannelIndex> active_pre;
  double amplitude = 0.0;
  std::span<double> currents;
};

/// WTA inhibition scan: extend every neuron's inhibition window to `until`,
/// except the winner's (never shortens an existing window).
struct InhibitScanArgs {
  std::span<TimeMs> inhibited_until;
  NeuronIndex winner = 0;
  TimeMs until = 0.0;
};

/// Poisson encode: emit the channels (from the nonzero-rate candidate list)
/// that spike at `step` into *active, cleared first and in ascending channel
/// order. Channel c spikes with p = rates_hz[c]·dt·1e-3, drawn from
/// rng->fork(c) at counter (presentation_base | step).
struct PoissonEncodeArgs {
  const CounterRng* rng = nullptr;
  std::span<const double> rates_hz;
  std::span<const ChannelIndex> channels;  ///< candidates (rate > 0)
  std::uint64_t presentation_base = 0;     ///< presentation_index << 32
  StepIndex step = 0;
  TimeMs dt = 0.0;
  std::vector<ChannelIndex>* active = nullptr;
};

/// Regular (clock-like) encode over all channels; see RegularEncoder.
struct RegularEncodeArgs {
  std::span<const double> rates_hz;
  std::span<const double> phase;  ///< per-channel phase in [0, 1)
  StepIndex step = 0;
  TimeMs dt = 0.0;
  std::vector<ChannelIndex>* active = nullptr;
};

/// STDP row update at a post spike: one logical thread per afferent synapse
/// of the winner's conductance row. Draw indices derive from counter_base so
/// results are schedule-independent (3 draws per synapse).
struct StdpRowArgs {
  const StdpUpdater* updater = nullptr;
  std::span<double> row;                 ///< winner's conductance row
  std::span<const TimeMs> last_pre_spike;
  TimeMs t_post = 0.0;
  const CounterRng* rng = nullptr;
  std::uint64_t counter_base = 0;
};

/// The dispatch table: one entry per registered kernel, filled per backend.
struct KernelTable {
  void (*poisson_encode)(Engine&, const PoissonEncodeArgs&) = nullptr;
  void (*regular_encode)(Engine&, const RegularEncodeArgs&) = nullptr;
  void (*current_accumulate)(Engine&, const CurrentAccumulateArgs&) = nullptr;
  void (*lif_step)(Engine&, const LifStepArgs&) = nullptr;
  void (*lif_step_fused)(Engine&, const LifFusedStepArgs&) = nullptr;
  void (*izhikevich_step)(Engine&, const IzhikevichStepArgs&) = nullptr;
  void (*izhikevich_step_fused)(Engine&,
                                const IzhikevichFusedStepArgs&) = nullptr;
  void (*inhibit_scan)(Engine&, const InhibitScanArgs&) = nullptr;
  void (*stdp_row)(Engine&, const StdpRowArgs&) = nullptr;
};

/// Reference table: the pre-backend Engine::launch kernel bodies, moved
/// verbatim (same launch tags, same floating-point operation order —
/// bitwise-identical results, asserted by tests/test_backend.cpp).
const KernelTable& cpu_kernel_table();

/// cpu + vectorized fused-step and STDP-row kernels (see kernels_simd.cpp).
const KernelTable& cpu_simd_kernel_table();

}  // namespace pss
