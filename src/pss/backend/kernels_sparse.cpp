// `cpu_sparse` kernel implementations: the event-driven sparse path.
//
//  * poisson/regular event-list encoders — build the whole presentation's
//    spike events up front (geometric inter-spike sampling / next-spike-time
//    phase arithmetic) instead of scanning every channel every step;
//  * sparse.accumulate — CSR spike propagation, touching only fired rows;
//  * stdp.flush — the lazy-STDP row flush, applying a row's deferred
//    post-spike updates lane-major: each synapse walks its whole event chain
//    with registers hot, fetching only the counter-indexed draw slots its
//    chain actually consumes (silent channels never need a potentiation
//    draw), with memoized gate probabilities and whole-chain skips for
//    synapses parked at g_min.
//
// Every dense table slot reuses the reference cpu kernel, so the sparse
// backend inherits the per-kernel cpu equivalences; the sparse-only kernels
// have their own contracts (see DESIGN.md "Sparse event path"):
//  * regular event lists are BITWISE step-identical to the dense
//    regular_encode kernel (each candidate spike is confirmed against the
//    dense kernel's own comparisons before it is emitted);
//  * poisson event lists follow the same Bernoulli-per-step law as the dense
//    encoder but index their draws by spike ordinal instead of step — the
//    trains are equally distributed, not equal, and remain pure functions of
//    (seed, presentation, channel) at any worker count;
//  * stdp.flush is bitwise-identical to applying the same pending events
//    eagerly with stdp.row: draws are counter-indexed off each event's
//    reserved base, skipped slots are ones the updater config never reads,
//    and the memoized gate probabilities equal the recomputed ones exactly.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "pss/backend/kernels.hpp"

namespace pss {

namespace {

void poisson_encode_events_cpu(Engine&, const PoissonEncodeEventsArgs& a) {
  SpikeEventList& out = *a.out;
  out.clear();
  out.channel_offsets.assign(a.channel_count + 1, 0);
  const double steps_d = static_cast<double>(a.steps);
  for (ChannelIndex c : a.channels) {
    const double p = a.rates_hz[c] * a.dt * 1e-3;
    const auto before = static_cast<std::uint32_t>(out.channel_steps.size());
    if (p >= 1.0) {
      // Certain spike every step (the dense bernoulli clamps p the same way).
      for (StepIndex s = 0; s < a.steps; ++s) {
        out.channel_steps.push_back(static_cast<std::uint32_t>(s));
      }
    } else if (p > 0.0) {
      // Geometric inter-spike sampling: the gap (failure count) before the
      // next success of a Bernoulli(p) per-step process is Geometric(p), so
      // sampling gaps directly reproduces the dense process's law with one
      // Philox draw per spike instead of one per step. Each draw advances
      // the step cursor by at least one, so the per-channel ordinal k is
      // bounded by steps + 1 and never overflows the 32-bit counter slice.
      const CounterRng ch = a.rng->fork(c);
      const double lp = std::log1p(-p);  // log(1-p) < 0
      double s = -1.0;                   // last spike step
      std::uint64_t k = 0;               // draw ordinal within presentation
      while (true) {
        const double u = ch.uniform(a.presentation_base | k);
        ++k;
        s += 1.0 + std::floor(std::log1p(-u) / lp);
        if (!(s < steps_d)) break;
        out.channel_steps.push_back(static_cast<std::uint32_t>(s));
      }
    }
    out.channel_offsets[c + 1] =
        static_cast<std::uint32_t>(out.channel_steps.size()) - before;
  }
  for (std::size_t c = 0; c < a.channel_count; ++c) {
    out.channel_offsets[c + 1] += out.channel_offsets[c];
  }
  out.index_by_step(a.steps);
}

/// The dense regular_encode predicate, verbatim: does channel (f, phase)
/// fire in step s? Evaluated with the identical operations so the event
/// builder's emissions match the dense kernel bit for bit.
inline bool regular_fires_at(double f, double phase, StepIndex s, TimeMs dt) {
  const double period_ms = 1000.0 / f;
  const double t0 = static_cast<double>(s) * dt;
  const double t1 = t0 + dt;
  const double k0 = std::ceil(t0 / period_ms - phase);
  const double spike_time = (k0 + phase) * period_ms;
  return spike_time >= t0 && spike_time < t1;
}

void regular_encode_events_cpu(Engine&, const RegularEncodeEventsArgs& a) {
  SpikeEventList& out = *a.out;
  out.clear();
  const std::size_t channels = a.rates_hz.size();
  out.channel_offsets.assign(channels + 1, 0);
  const double steps_d = static_cast<double>(a.steps);
  for (std::size_t c = 0; c < channels; ++c) {
    const double f = a.rates_hz[c];
    const auto before = static_cast<std::uint32_t>(out.channel_steps.size());
    if (f > 0.0) {
      const double period_ms = 1000.0 / f;
      // Walk spike ordinals k (spike k at (k + phase)·period). Floating
      // point can land a boundary spike one step off the mathematical
      // bucket, so each candidate step near the spike is confirmed against
      // the dense predicate itself — emissions match the dense kernel
      // exactly, including its boundary rounding.
      double last_emitted = -1.0;
      for (std::uint64_t k = 0;; ++k) {
        const double t = (static_cast<double>(k) + a.phase[c]) * period_ms;
        if (t >= (steps_d + 1.0) * a.dt) break;
        const double sd = std::floor(t / a.dt);
        for (double s = std::max(sd - 1.0, 0.0); s <= sd + 1.0; s += 1.0) {
          if (s >= steps_d || s <= last_emitted) continue;
          if (regular_fires_at(f, a.phase[c], static_cast<StepIndex>(s),
                               a.dt)) {
            out.channel_steps.push_back(static_cast<std::uint32_t>(s));
            last_emitted = s;
          }
        }
      }
    }
    out.channel_offsets[c + 1] =
        static_cast<std::uint32_t>(out.channel_steps.size()) - before;
  }
  for (std::size_t c = 0; c < channels; ++c) {
    out.channel_offsets[c + 1] += out.channel_offsets[c];
  }
  out.index_by_step(a.steps);
}

void sparse_accumulate_cpu(Engine& engine, const SparseAccumulateArgs& a) {
  const auto g = a.conductance;
  const std::size_t pre_count = a.pre_count;
  const double amplitude = a.amplitude;
  const auto currents = a.currents;
  // One launch per fired channel, in ascending channel order: targets within
  // a CSR row are distinct neurons, so partitioned dispatch is race-free,
  // and each neuron's current accumulates per-channel contributions in the
  // same (channel-ascending) order at every worker count.
  for (ChannelIndex c : a.active_pre) {
    const std::uint32_t lo = a.row_ptr[c];
    const auto cols = a.cols.subspan(lo, a.row_ptr[c + 1] - lo);
    engine.launch("sparse.accumulate", cols.size(), [&](std::size_t i) {
      const NeuronIndex post = cols[i];
      currents[post] += amplitude * g[post * pre_count + c];
    });
  }
}

/// Gate-probability memo, same scheme as kernels_simd.cpp: keyed by the
/// exact gap bits and the gate parameters, so a hit replays bit-identical
/// p_pot/p_dep_stale values. Spike times sit on the dt grid — a flushed
/// event chain sees few distinct gaps, so the two exp() calls per
/// synapse-event mostly become two compares. Thread-local storage keeps
/// partitioned dispatch safe.
struct FlushGateMemoSlot {
  double gap = -1.0;  // gaps are >= 0, so -1 never matches
  double gamma_pot = 0.0;
  double tau_pot = 0.0;
  double gamma_dep = 0.0;
  double tau_stale = 0.0;
  double p_pot = 0.0;
  double p_dep_stale = 0.0;
};
constexpr std::size_t kFlushMemoSlots = 256;  // power of two
thread_local FlushGateMemoSlot g_flush_memo[kFlushMemoSlots];

/// Finite-gap stochastic update with memoized gate probabilities. A hit
/// feeds update_at_post_spike_gated the exact values a recompute would, so
/// the result is bitwise-identical to the unmemoized path.
inline double flush_gated_memo(const StdpUpdater& updater,
                               const StochasticGate& gate,
                               const StdpUpdaterConfig& cfg, double g,
                               double gap, double u_pot, double u_dep,
                               double u_round) {
  const double gamma_pot = cfg.gate.gamma_pot;
  const double tau_pot = cfg.gate.tau_pot;
  const double gamma_dep = cfg.gate.gamma_dep;
  const double tau_stale = cfg.gate.tau_stale;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(gap);
  const std::size_t slot_index =
      static_cast<std::size_t>((bits * 0x9E3779B97F4A7C15ull) >> 56) &
      (kFlushMemoSlots - 1);
  FlushGateMemoSlot& slot = g_flush_memo[slot_index];
  if (slot.gap != gap || slot.gamma_pot != gamma_pot ||
      slot.tau_pot != tau_pot || slot.gamma_dep != gamma_dep ||
      slot.tau_stale != tau_stale) {
    slot.gap = gap;
    slot.gamma_pot = gamma_pot;
    slot.tau_pot = tau_pot;
    slot.gamma_dep = gamma_dep;
    slot.tau_stale = tau_stale;
    slot.p_pot = gate.p_pot(gap);
    slot.p_dep_stale = gate.p_dep_stale(gap);
  }
  return updater.update_at_post_spike_gated(g, slot.p_pot, slot.p_dep_stale,
                                            u_pot, u_dep, u_round);
}

}  // namespace

StdpChainContext make_stdp_chain_context(const StdpUpdater& updater,
                                         TimeMs dt) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  StdpChainContext ctx;
  ctx.updater = &updater;
  ctx.gate = &updater.gate();
  const StdpUpdaterConfig& cfg = updater.config();
  ctx.stochastic = cfg.kind == StdpKind::kStochastic;
  ctx.need_dep = updater.consumes_dep_draw();
  ctx.need_round = updater.consumes_round_draw();
  ctx.p_pot_inf = ctx.gate->p_pot(kInf);
  ctx.p_dep_inf = ctx.gate->p_dep_stale(kInf);
  // Parked-synapse chain skip. A synapse whose channel never fired this
  // presentation sees gap = ∞ at every pending event: potentiation is
  // impossible (stochastic: p_pot(∞) is exactly +0 so `u < p` never fires;
  // deterministic: ∞ exceeds any causal window) and the only possible move
  // is depression, which apply()'s saturation fast path pins at g_min when
  // α_p, α_d ≥ 0. So a silent synapse sitting exactly at g_min returns
  // g_min from every event in the chain, for every draw value — the whole
  // chain is a bitwise no-op and is skipped without generating its draws
  // (draws are counter-indexed, so unconsumed slots cost nothing and shift
  // nothing). After training most background synapses are parked (the
  // paper's bimodal conductance maps), which is where lazy plasticity beats
  // the eager sweep asymptotically instead of just deferring it.
  ctx.can_park =
      updater.nonneg_deltas() && (!ctx.stochastic || ctx.p_pot_inf == 0.0);
  ctx.g_floor = cfg.magnitude.g_min;
  ctx.dt = dt;
  return ctx;
}

std::uint64_t stdp_chain_counter_stride(
    std::span<const PendingPostEvent> events) {
  if (events.size() < 2) return 0;
  const std::uint64_t stride = events[1].counter_base - events[0].counter_base;
  for (std::size_t e = 2; e < events.size(); ++e) {
    if (events[e].counter_base - events[e - 1].counter_base != stride)
      return 0;
  }
  return stride;
}

double stdp_apply_chain(const StdpChainContext& ctx, double g,
                        ChannelIndex pre,
                        std::span<const PendingPostEvent> events,
                        std::size_t from,
                        std::span<const std::uint32_t> hist,
                        const CounterRng& rng, std::uint64_t counter_stride,
                        std::uint64_t* applied) {
  constexpr std::uint64_t kDraws = StdpUpdater::kDrawsPerEvent;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Draw-buffer chunk: a whole chunk's worth of one draw slot is generated
  // with the strided bulk generator (~2x cheaper per draw than scalar calls,
  // bitwise-identical by contract) whenever the chain's counter stride is
  // uniform. Chains that end early simply leave generated values unread —
  // indexed draws are independent, so nothing shifts. The bulk generator's
  // setup only amortizes over several draws, so chunks below kBulkMin fall
  // back to scalar calls — the common mid-training case, where rows flush
  // every few post spikes and chains are one or two events long.
  constexpr std::size_t kChunk = 64;
  constexpr std::size_t kBulkMin = 8;
  // Copy every context field into never-escaping locals. The updater/rng
  // calls below are opaque to the optimizer, and `ctx` is a reference it
  // cannot prove unaliased — left as member reads, each field would be
  // reloaded from memory after every call. Locals stay in registers.
  const StdpUpdater& updater = *ctx.updater;
  const StochasticGate& gate = *ctx.gate;
  const bool stochastic = ctx.stochastic;
  const bool need_dep = ctx.need_dep;
  const bool need_round = ctx.need_round;
  const bool can_park = ctx.can_park;
  const double p_pot_inf = ctx.p_pot_inf;
  const double p_dep_inf = ctx.p_dep_inf;
  const double g_floor = ctx.g_floor;
  const TimeMs dt = ctx.dt;
  const std::size_t n_events = events.size();
  std::uint64_t napp = 0;
  if (hist.empty()) {
    // Silent channel: every gap is ∞.
    if (can_park && g == g_floor) return g;  // whole chain no-op
    if (!stochastic) {
      // Deterministic rule: ∞ exceeds the causal window, depress every
      // event; once the floor absorbs the synapse the tail is a no-op.
      for (std::size_t e = from; e < n_events; ++e) {
        const std::uint64_t cl = events[e].counter_base + pre * kDraws;
        const double ur = need_round ? rng.uniform(cl + 2) : 0.0;
        g = updater.update_at_post_spike(g, kInf, 0.0, 0.0, ur);
        ++napp;
        if (can_park && g == g_floor) break;
      }
    } else if (p_pot_inf == 0.0) {
      // Potentiation draws are compared against +0 and can never pass, so
      // their generation is skipped and 0.0 passed in their place —
      // bitwise-identical by the gated contract. The synapse only changes
      // when its depression draw fires, so the updater call is skipped
      // otherwise and the rounding draw fetched lazily.
      if (need_dep) {
        double udbuf[kChunk];
        bool parked = false;
        for (std::size_t e = from; e < n_events && !parked;) {
          const std::size_t m = std::min(kChunk, n_events - e);
          const bool bulk = counter_stride != 0 && m >= kBulkMin;
          if (bulk)
            rng.uniform_many(events[e].counter_base + pre * kDraws + 1,
                             counter_stride, std::span<double>(udbuf, m));
          for (std::size_t i = 0; i < m; ++i) {
            const std::uint64_t cl = events[e + i].counter_base + pre * kDraws;
            const double ud = bulk ? udbuf[i] : rng.uniform(cl + 1);
            if (!(ud < p_dep_inf)) continue;
            const double ur = need_round ? rng.uniform(cl + 2) : 0.0;
            g = updater.update_at_post_spike_gated(g, p_pot_inf, p_dep_inf,
                                                   0.0, ud, ur);
            ++napp;
            if (can_park && g == g_floor) {
              parked = true;
              break;
            }
          }
          e += m;
        }
      }
      // No potentiation and no stale depression: the chain is inert.
    } else {
      for (std::size_t e = from; e < n_events; ++e) {
        const std::uint64_t cl = events[e].counter_base + pre * kDraws;
        const double up = rng.uniform(cl + 0);
        const double ud = need_dep ? rng.uniform(cl + 1) : 0.0;
        const double ur = need_round ? rng.uniform(cl + 2) : 0.0;
        g = updater.update_at_post_spike_gated(g, p_pot_inf, p_dep_inf, up,
                                               ud, ur);
        ++napp;
      }
    }
    if (applied) *applied += napp;
    return g;
  }
  // Channel fired this presentation: walk the chain with a history cursor
  // (index of the first history step beyond the current event's step).
  // Events ascend in step, so one upper_bound seeds the cursor and linear
  // advances keep it current.
  if (from >= n_events) return g;
  const std::uint32_t* const hist_data = hist.data();
  const std::uint32_t hist_size = static_cast<std::uint32_t>(hist.size());
  std::uint32_t hp = static_cast<std::uint32_t>(
      std::upper_bound(hist_data, hist_data + hist_size, events[from].step) -
      hist_data);
  if (!stochastic) {
    for (std::size_t e = from; e < n_events; ++e) {
      const PendingPostEvent& ev = events[e];
      while (hp < hist_size && hist_data[hp] <= ev.step) ++hp;
      const double gap =
          hp == 0
              ? kInf
              : ev.t_post - static_cast<TimeMs>(hist_data[hp - 1] + 1u) * dt;
      const std::uint64_t cl = ev.counter_base + pre * kDraws;
      const double ur = need_round ? rng.uniform(cl + 2) : 0.0;
      g = updater.update_at_post_spike(g, gap, 0.0, 0.0, ur);
      ++napp;
    }
    if (applied) *applied += napp;
    return g;
  }
  const StdpUpdaterConfig& cfg = updater.config();
  double upbuf[kChunk];
  double udbuf[kChunk];
  for (std::size_t e = from; e < n_events;) {
    const std::size_t m = std::min(kChunk, n_events - e);
    // Long chunks bulk-generate both gate slots (p_pot(∞) = +0 means the
    // ∞-gap comparison is decided regardless of the drawn value, so
    // generating it is harmless); short chunks keep the scalar path's lazy
    // per-event draws, which elide the potentiation slot entirely for
    // ∞-gap events when potentiation is dead.
    const bool bulk = counter_stride != 0 && m >= kBulkMin;
    if (bulk) {
      const std::uint64_t cl0 = events[e].counter_base + pre * kDraws;
      rng.uniform_many(cl0 + 0, counter_stride, std::span<double>(upbuf, m));
      if (need_dep)
        rng.uniform_many(cl0 + 1, counter_stride,
                         std::span<double>(udbuf, m));
    }
    for (std::size_t i = 0; i < m; ++i) {
      const PendingPostEvent& ev = events[e + i];
      while (hp < hist_size && hist_data[hp] <= ev.step) ++hp;
      // Reconstructed pre-spike time: the eager path read
      // last_pre_spike[pre] = (s'+1)·dt for the latest pre spike s' ≤ the
      // post step (same-step pre spikes included — the dense loop refreshes
      // timers before post-spike processing). Identical arithmetic,
      // identical doubles.
      const double gap =
          hp == 0
              ? kInf
              : ev.t_post - static_cast<TimeMs>(hist_data[hp - 1] + 1u) * dt;
      const std::uint64_t cl = ev.counter_base + pre * kDraws;
      if (gap == kInf) {
        // Same p_pot(∞) = +0 shortcuts as the silent-channel chain above.
        // The gated compare against +0 ignores the drawn u_pot, so a
        // bulk-generated value substitutes for the scalar path's 0.0
        // placeholder bit-for-bit.
        const bool pot_dead = p_pot_inf == 0.0;
        const double ud =
            need_dep ? (bulk ? udbuf[i] : rng.uniform(cl + 1)) : 0.0;
        if (pot_dead && !(need_dep && ud < p_dep_inf)) continue;
        const double up =
            bulk ? upbuf[i] : (pot_dead ? 0.0 : rng.uniform(cl + 0));
        const double ur = need_round ? rng.uniform(cl + 2) : 0.0;
        g = updater.update_at_post_spike_gated(g, p_pot_inf, p_dep_inf, up,
                                               ud, ur);
        ++napp;
      } else {
        const double up = bulk ? upbuf[i] : rng.uniform(cl + 0);
        const double ud =
            need_dep ? (bulk ? udbuf[i] : rng.uniform(cl + 1)) : 0.0;
        const double ur = need_round ? rng.uniform(cl + 2) : 0.0;
        g = flush_gated_memo(updater, gate, cfg, g, gap, up, ud, ur);
        ++napp;
      }
    }
    e += m;
  }
  if (applied) *applied += napp;
  return g;
}

namespace {

void stdp_flush_cpu(Engine& engine, const StdpFlushArgs& a) {
  const auto row = a.row;
  const auto progress = a.progress;
  const auto events = a.events;
  if (events.empty()) return;
  const CounterRng& rng = *a.rng;
  const SpikeEventList& history = *a.history;
  const StdpChainContext ctx = make_stdp_chain_context(*a.updater, a.dt);
  const std::uint64_t stride = stdp_chain_counter_stride(events);
  constexpr std::size_t kBlock = 64;

  const std::size_t n = row.size();
  const std::size_t n_events = events.size();
  const std::size_t blocks = (n + kBlock - 1) / kBlock;

  // One logical thread per kBlock synapses, iterated LANE-major: each lane
  // walks its whole event chain with its conductance in a register, its
  // history span built once, and its progress mark read once — the
  // event-major layout paid those per (event, lane). The chain walk itself
  // (gap reconstruction, draw-slot elision, parked-chain skip) lives in
  // stdp_apply_chain, shared with the host-side mid-presentation catch-up.
  // Blocks touch disjoint synapses, so partitioned dispatch is
  // deterministic; applied counts are integer sums, so the atomic total is
  // too.
  engine.launch("stdp.flush", blocks, [&](std::size_t b) {
    const std::size_t begin = b * kBlock;
    const std::size_t end = std::min(begin + kBlock, n);
    std::uint64_t napp = 0;
    for (std::size_t pre = begin; pre < end; ++pre) {
      // progress[] lets synapses that were caught up when their pre fired
      // mid-presentation skip the already-applied prefix.
      const std::size_t done = progress[pre];
      progress[pre] = static_cast<std::uint32_t>(n_events);
      if (done >= n_events) continue;
      row[pre] = stdp_apply_chain(
          ctx, row[pre], static_cast<ChannelIndex>(pre), events, done,
          history.channel_history(static_cast<ChannelIndex>(pre)), rng,
          stride, &napp);
    }
    if (a.applied && napp != 0)
      a.applied->fetch_add(napp, std::memory_order_relaxed);
  });
}

}  // namespace

const KernelTable& cpu_sparse_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t = cpu_kernel_table();  // dense slots: reference kernels
    // conv_accumulate / pool_forward also inherit the reference gather: on
    // this backend the layer graph feeds them per-step SLICES of the
    // presentation's SpikeEventList (inter-layer propagation is event-driven,
    // O(spikes) instead of O(channels×steps)); the per-unit tap association
    // is unchanged, so conv output is bitwise-equal across backends.
    t.poisson_encode_events = poisson_encode_events_cpu;
    t.regular_encode_events = regular_encode_events_cpu;
    t.sparse_accumulate = sparse_accumulate_cpu;
    t.stdp_flush = stdp_flush_cpu;
    return t;
  }();
  return table;
}

}  // namespace pss
