#include "pss/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/common/thread_annotations.hpp"
#include "pss/obs/json_writer.hpp"

namespace pss::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::size_t this_thread_shard() {
  thread_local const std::size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- Gauge ----------------------------------------------------------------

std::uint64_t Gauge::to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::from_bits(std::uint64_t bits) { return std::bit_cast<double>(bits); }

// ---- FixedHistogram -------------------------------------------------------

FixedHistogram::FixedHistogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)) {
  PSS_REQUIRE(!edges_.empty(), "histogram needs at least one bucket edge");
  PSS_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()) &&
                  std::adjacent_find(edges_.begin(), edges_.end()) ==
                      edges_.end(),
              "histogram bucket edges must be strictly increasing");
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::uint64_t>[]>(bucket_count());
    for (std::size_t i = 0; i < bucket_count(); ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void FixedHistogram::observe(double value) {
  // First bucket whose upper edge is >= value; above the last edge ->
  // overflow bucket.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - edges_.begin());
  Shard& s = shards_[this_thread_shard()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = s.sum_bits.load(std::memory_order_relaxed);
  while (!s.sum_bits.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(
                    std::bit_cast<double>(expected) + value),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> FixedHistogram::counts() const {
  std::vector<std::uint64_t> merged(bucket_count(), 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < bucket_count(); ++i) {
      merged[i] += s.counts[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t FixedHistogram::total() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts()) total += c;
  return total;
}

double FixedHistogram::sum() const {
  double sum = 0.0;
  for (const Shard& s : shards_) {
    sum += std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed));
  }
  return sum;
}

void FixedHistogram::reset() {
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < bucket_count(); ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
    s.sum_bits.store(0, std::memory_order_relaxed);
  }
}

// ---- MetricsRegistry ------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // Node-based maps: references stay valid across later registrations, so a
  // hot path looks its metric up once and then writes lock-free through the
  // sharded atomics. The maps themselves (registration, snapshot, reset)
  // are only touched under `mutex` — enforced by the annotations.
  std::map<std::string, std::unique_ptr<Counter>> counters
      PSS_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges PSS_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms
      PSS_GUARDED_BY(mutex);
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Impl& MetricsRegistry::impl() const { return *impl_; }

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  auto& slot = impl().counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  auto& slot = impl().gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> upper_edges) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  auto& slot = impl().histograms[name];
  if (!slot) slot = std::make_unique<FixedHistogram>(std::move(upper_edges));
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl().mutex);
  for (auto& [name, c] : impl().counters) c->reset();
  for (auto& [name, g] : impl().gauges) g->reset();
  for (auto& [name, h] : impl().histograms) h->reset();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl().mutex);
  std::vector<MetricSnapshot> rows;
  rows.reserve(impl().counters.size() + impl().gauges.size() +
               impl().histograms.size());
  for (const auto& [name, c] : impl().counters) {
    MetricSnapshot row;
    row.kind = MetricSnapshot::Kind::kCounter;
    row.name = name;
    row.count = c->value();
    rows.push_back(std::move(row));
  }
  for (const auto& [name, g] : impl().gauges) {
    MetricSnapshot row;
    row.kind = MetricSnapshot::Kind::kGauge;
    row.name = name;
    row.value = g->value();
    rows.push_back(std::move(row));
  }
  for (const auto& [name, h] : impl().histograms) {
    MetricSnapshot row;
    row.kind = MetricSnapshot::Kind::kHistogram;
    row.name = name;
    row.edges = h->upper_edges();
    row.buckets = h->counts();
    row.count = h->total();
    row.value = h->sum();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return rows;
}

std::string MetricsRegistry::to_text() const {
  std::ostringstream os;
  for (const MetricSnapshot& row : snapshot()) {
    switch (row.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << "counter " << row.name << ' ' << row.count << '\n';
        break;
      case MetricSnapshot::Kind::kGauge:
        os << "gauge " << row.name << ' ' << row.value << '\n';
        break;
      case MetricSnapshot::Kind::kHistogram: {
        os << "histogram " << row.name << " total " << row.count << " sum "
           << row.value;
        for (std::size_t i = 0; i < row.buckets.size(); ++i) {
          if (i < row.edges.size()) {
            os << " le" << row.edges[i] << '=' << row.buckets[i];
          } else {
            os << " inf=" << row.buckets[i];
          }
        }
        os << '\n';
        break;
      }
    }
  }
  return os.str();
}

void MetricsRegistry::write_json(std::ostream& os,
                                 const std::string& label) const {
  JsonWriter w(os);
  w.begin_object();
  w.member("schema", "pss.metrics.v1");
  if (!label.empty()) w.member("label", label);
  w.key("metrics");
  write_json_object(w);
  w.end_object();
  os << '\n';
}

void MetricsRegistry::write_json_object(JsonWriter& w) const {
  const std::vector<MetricSnapshot> rows = snapshot();
  w.begin_object();

  w.key("counters").begin_object();
  for (const MetricSnapshot& row : rows) {
    if (row.kind == MetricSnapshot::Kind::kCounter) {
      w.member(row.name, row.count);
    }
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const MetricSnapshot& row : rows) {
    if (row.kind == MetricSnapshot::Kind::kGauge) w.member(row.name, row.value);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const MetricSnapshot& row : rows) {
    if (row.kind != MetricSnapshot::Kind::kHistogram) continue;
    w.key(row.name).begin_object();
    w.key("upper_edges").begin_array();
    for (double e : row.edges) w.value(e);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : row.buckets) w.value(c);
    w.end_array();
    w.member("total", row.count);
    w.member("sum", row.value);
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void write_metrics_json(const std::string& path, const std::string& label) {
  std::ofstream os(path);
  PSS_REQUIRE(os.good(), "cannot open metrics output file: " + path);
  metrics().write_json(os, label);
}

}  // namespace pss::obs
