#include "pss/obs/trace.hpp"

#include <atomic>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "pss/common/error.hpp"
#include "pss/obs/json_writer.hpp"
#include "pss/obs/metrics.hpp"

namespace pss::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::uint64_t> g_epoch_ns{0};

/// Per-thread event buffer. Appends lock the buffer's own mutex (uncontended
/// in steady state — only the owning thread writes, collectors read rarely),
/// which keeps concurrent collection tsan-clean without a global lock on the
/// hot path.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // never freed: thread
                                                       // exit keeps events
};

Collector& collector() {
  static Collector* c = new Collector();
  return *c;
}

ThreadBuffer& this_thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    raw->tid = static_cast<std::uint32_t>(c.buffers.size());
    c.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

std::uint64_t epoch_ns() {
  std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) {
    // First use: pin the epoch once (harmless race — first store wins).
    std::uint64_t expected = 0;
    g_epoch_ns.compare_exchange_strong(expected, monotonic_ns(),
                                       std::memory_order_relaxed);
    epoch = g_epoch_ns.load(std::memory_order_relaxed);
  }
  return epoch;
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) {
  if (enabled) epoch_ns();  // pin the epoch before the first span
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void reset_trace() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  for (auto& buffer : c.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  g_epoch_ns.store(monotonic_ns(), std::memory_order_relaxed);
}

void emit_trace_event(const char* name, const char* category,
                      std::uint64_t begin_abs_ns, std::uint64_t dur_ns,
                      std::int64_t arg) {
  if (!trace_enabled()) return;
  const std::uint64_t epoch = epoch_ns();
  ThreadBuffer& buffer = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(TraceEvent{
      name, category, begin_abs_ns > epoch ? begin_abs_ns - epoch : 0, dur_ns,
      buffer.tid, arg});
}

std::vector<TraceEvent> collect_trace() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  std::vector<TraceEvent> merged;
  for (auto& buffer : c.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  return merged;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream os(path);
  PSS_REQUIRE(os.good(), "cannot open trace output file: " + path);
  JsonWriter w(os);
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : collect_trace()) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.category);
    w.member("ph", "X");
    w.member("ts", static_cast<double>(e.begin_ns) * 1e-3);   // microseconds
    w.member("dur", static_cast<double>(e.dur_ns) * 1e-3);
    w.member("pid", 1);
    w.member("tid", static_cast<std::uint64_t>(e.tid));
    if (e.arg >= 0) {
      w.key("args").begin_object();
      w.member("i", e.arg);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::vector<SpanTotal> span_totals() {
  std::map<std::string, SpanTotal> by_name;
  for (const TraceEvent& e : collect_trace()) {
    SpanTotal& t = by_name[e.name];
    if (t.name.empty()) t.name = e.name;
    t.total_ns += e.dur_ns;
    ++t.count;
  }
  std::vector<SpanTotal> totals;
  totals.reserve(by_name.size());
  for (auto& [name, t] : by_name) totals.push_back(std::move(t));
  return totals;
}

std::uint64_t TraceSpan::begin_now() { return monotonic_ns(); }

void TraceSpan::finish() {
  const std::uint64_t end = monotonic_ns();
  emit_trace_event(name_, category_, begin_ns_,
                   end > begin_ns_ ? end - begin_ns_ : 0, arg_);
}

}  // namespace pss::obs
