// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, cheap enough to live inside kernels.
//
// Hot-path writes are thread-sharded: each thread increments its own
// cache-line-padded shard (relaxed atomics, no contention), and readers merge
// the shards on demand. That keeps an enabled counter add at roughly the
// cost of one uncontended atomic increment, and — combined with the global
// pss::obs::metrics_enabled() gate — the disabled path at a single relaxed
// load + branch (bench_kernels measures both).
//
// Instrumentation is observational only: no metric read or write feeds back
// into simulation state or RNG draws, so enabling observability cannot
// perturb the bitwise-reproducibility contracts (tests assert this).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pss::obs {

class JsonWriter;

/// Global collection gate for the hot-path instrumentation (engine launches,
/// per-step phase timing, encoder counters...). Off by default: the
/// instrumented code then costs one relaxed atomic load + branch per probe.
/// Explicit registry writes (benches, manifests) work regardless of the gate.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Shards per sharded metric. Threads hash onto shards round-robin; more
/// simultaneous writers than shards only costs contention, never correctness.
inline constexpr std::size_t kMetricShards = 16;

/// Index of the calling thread's shard (assigned once per thread).
std::size_t this_thread_shard();

/// Monotonically increasing counter (thread-sharded, merged on read).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    shards_[this_thread_shard()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins scalar, plus an accumulate form for floating-point sums.
class Gauge {
 public:
  void set(double v) { bits_.store(to_bits(v), std::memory_order_relaxed); }

  /// Atomic accumulate (CAS loop; gauges are not hot-path metrics).
  void add(double delta) {
    std::uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        expected, to_bits(from_bits(expected) + delta),
        std::memory_order_relaxed, std::memory_order_relaxed)) {
    }
  }

  double value() const {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }

  void reset() { set(0.0); }

 private:
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram: bucket i counts observations with
/// value <= upper_edges[i] (first matching bucket); values above the last
/// edge land in the overflow bucket. Counts are thread-sharded like Counter.
class FixedHistogram {
 public:
  /// `upper_edges` must be non-empty and strictly increasing (checked).
  explicit FixedHistogram(std::vector<double> upper_edges);

  const std::vector<double>& upper_edges() const { return edges_; }
  std::size_t bucket_count() const { return edges_.size() + 1; }  // + overflow

  void observe(double value);

  /// Merged per-bucket counts (last entry = overflow bucket).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total() const;
  /// Sum of observed values (for means).
  double sum() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<std::uint64_t> sum_bits{0};
  };

  std::vector<double> edges_;
  std::array<Shard, kMetricShards> shards_;
};

/// Snapshot row used by the exporters.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind;
  std::string name;
  std::uint64_t count = 0;              // counter value / histogram total
  double value = 0.0;                   // gauge value / histogram sum
  std::vector<double> edges;            // histogram only
  std::vector<std::uint64_t> buckets;   // histogram only (incl. overflow)
};

/// Name-keyed registry. Registration takes a lock; returned references are
/// stable for the process lifetime, so hot paths look a metric up once
/// (e.g. in a function-local static) and then write lock-free.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-requesting an existing histogram ignores `upper_edges`.
  FixedHistogram& histogram(const std::string& name,
                            std::vector<double> upper_edges);

  /// Zeroes every metric's value; registrations (and references) survive.
  void reset();

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> snapshot() const;

  /// One line per metric: "counter <name> <value>" etc.
  std::string to_text() const;

  /// Serializes the registry as the "pss.metrics.v1" JSON schema into `os`.
  /// `label` (optional) names the producing run/bench in the record.
  void write_json(std::ostream& os, const std::string& label = "") const;

  /// Writes the registry as one JSON object value ({"counters": ...,
  /// "gauges": ..., "histograms": ...}) into an in-progress document — used
  /// by the run manifest to embed the final metrics.
  void write_json_object(JsonWriter& w) const;

 private:
  struct Impl;
  Impl& impl() const;
  mutable std::unique_ptr<Impl> impl_;

 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
};

/// The process-wide registry (lazily constructed, never destroyed before
/// exit-time flushes).
MetricsRegistry& metrics();

/// Writes the global registry to `path` (pss.metrics.v1 schema).
void write_metrics_json(const std::string& path, const std::string& label = "");

/// Monotonic nanosecond clock shared by all timing instrumentation.
std::uint64_t monotonic_ns();

}  // namespace pss::obs
