// Live metrics exposition: renders the registry in Prometheus text format
// and serves it over a loopback TCP socket — the substrate the upcoming
// pss_serve daemon mounts. Two consumption paths:
//
//   * MetricsExporter — background acceptor thread, one scrape per
//     connection, minimal HTTP/1.1 framing (Prometheus only needs the body).
//     `metrics_port=` in pss_run starts one; port 0 binds an ephemeral port
//     (reported via port(), logged at startup).
//   * write_prometheus_text — textfile-collector dump (`prom=` flag), the
//     same rendering without a socket; run_obs_check validates it.
//
// Rendering snapshots the registry (no locks held while serving), so a
// scrape can never block a hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace pss::obs {

class MetricsRegistry;

/// Renders a registry snapshot in Prometheus text exposition format
/// (version 0.0.4): `# TYPE` headers, `pss_`-prefixed sanitized names,
/// cumulative histogram buckets with `+Inf`, `_sum` and `_count` series.
std::string render_prometheus(const MetricsRegistry& registry);

/// Sanitizes a metric name for Prometheus: prefixes `pss_` and maps every
/// character outside [a-zA-Z0-9_] (dots in our names) to '_'.
std::string prometheus_name(const std::string& name);

/// Dumps render_prometheus(metrics()) to `path` (textfile-collector layout).
void write_prometheus_text(const std::string& path);

/// Loopback TCP server exposing the global registry. Lifetime-managed: the
/// constructor binds + listens + starts the acceptor thread, the destructor
/// stops it. Throws on bind failure (bad port); serving errors on individual
/// connections are swallowed — a broken scraper must not kill a run.
class MetricsExporter {
 public:
  /// `port` 0 requests an ephemeral port; the bound port is in port().
  explicit MetricsExporter(std::uint16_t port);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  std::uint16_t port() const { return port_; }

  /// Idempotent; also called by the destructor. Joins the acceptor thread.
  void stop();

 private:
  void serve();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
};

}  // namespace pss::obs
