// Phase-scoped tracing: RAII spans recorded per thread, exported as Chrome
// trace_event JSON ("traceEvents" complete events) loadable in Perfetto or
// chrome://tracing.
//
// Cost model: when tracing is disabled (the default) constructing a TraceSpan
// is one relaxed atomic load + branch — bench_kernels verifies the disabled
// path stays in the nanosecond range. When enabled, each span costs two
// steady_clock reads plus an append to the calling thread's own buffer
// (guarded by that buffer's uncontended mutex, so collection from another
// thread is race-free under tsan).
//
// Span names/categories must be string literals (pointers are stored, not
// copied) — the same rule Chrome's own macros impose.
//
// Tracing is observational only: no span interacts with simulation state or
// RNG streams, so results are bitwise identical with tracing on or off (the
// obs tests assert this, and the worker-count-invariance tests pass with
// tracing enabled).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pss::obs {

bool trace_enabled();
void set_trace_enabled(bool enabled);

/// One completed span ("ph": "X"). Timestamps are nanoseconds on the
/// monotonic_ns() clock, relative to the trace epoch.
struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t begin_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;       ///< small per-thread id (registration order)
  std::int64_t arg;        ///< rendered as args:{"i": arg}; < 0 = omitted
};

/// Clears all buffered events and restarts the trace epoch at now.
void reset_trace();

/// Records a complete event. `begin_abs_ns` is an absolute monotonic_ns()
/// timestamp (converted to the trace epoch internally). Used directly for
/// synthesized spans (e.g. per-phase accumulated times laid out sequentially
/// inside a presentation); RAII callers use TraceSpan instead. No-op when
/// tracing is disabled.
void emit_trace_event(const char* name, const char* category,
                      std::uint64_t begin_abs_ns, std::uint64_t dur_ns,
                      std::int64_t arg = -1);

/// Snapshot of every buffered event (all threads), in per-thread order.
std::vector<TraceEvent> collect_trace();

/// Writes the buffered events as Chrome trace JSON:
///   {"traceEvents": [{"name": ..., "ph": "X", "ts": <us>, "dur": <us>,
///                     "pid": 1, "tid": ...}, ...]}
void write_chrome_trace(const std::string& path);

/// Total recorded time and span count per distinct span name — the
/// phase-time breakdown the run manifest embeds.
struct SpanTotal {
  std::string name;
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};
std::vector<SpanTotal> span_totals();

/// RAII span: records [construction, destruction) on the calling thread.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "phase",
                     std::int64_t arg = -1)
      : active_(trace_enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      arg_ = arg;
      begin_ns_ = begin_now();
    }
  }

  ~TraceSpan() {
    if (active_) finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static std::uint64_t begin_now();
  void finish();

  bool active_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::int64_t arg_ = -1;
  std::uint64_t begin_ns_ = 0;
};

}  // namespace pss::obs
