#include "pss/obs/exporter.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/serve/net.hpp"

namespace pss::obs {

namespace {

/// Per-connection budgets — a slow or stalled scraper can hold the single
/// acceptor thread for at most read + write budget, never forever (the
/// slow-loris regression test pins this).
constexpr int kReadDeadlineMs = 1000;
constexpr int kWriteDeadlineMs = 2000;
/// Bound on the buffered request bytes; a scrape request line fits in a
/// fraction of this, so anything larger is garbage we refuse to accumulate.
constexpr std::size_t kMaxRequestBytes = 4096;

void append_double(std::string& out, double v) {
  char buf[64];
  // %g keeps integers short and Prometheus accepts scientific notation;
  // non-finite values render as the spec's NaN/+Inf/-Inf spellings via %g's
  // nan/inf, which Prometheus parses case-insensitively.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "pss_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricSnapshot& row : registry.snapshot()) {
    const std::string name = prometheus_name(row.name);
    switch (row.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + ' ' + std::to_string(row.count) + '\n';
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ';
        append_double(out, row.value);
        out += '\n';
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        // Prometheus buckets are cumulative; ours are per-bucket counts.
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < row.buckets.size(); ++i) {
          cumulative += row.buckets[i];
          out += name + "_bucket{le=\"";
          if (i < row.edges.size()) {
            append_double(out, row.edges[i]);
          } else {
            out += "+Inf";
          }
          out += "\"} " + std::to_string(cumulative) + '\n';
        }
        out += name + "_sum ";
        append_double(out, row.value);
        out += '\n';
        out += name + "_count " + std::to_string(row.count) + '\n';
        break;
      }
    }
  }
  return out;
}

void write_prometheus_text(const std::string& path) {
  std::ofstream os(path);
  PSS_REQUIRE(os.good(), "cannot open prometheus output file: " + path);
  os << render_prometheus(metrics());
}

MetricsExporter::MetricsExporter(std::uint16_t port) {
  // All raw socket work lives in pss/serve/net.cpp (the one TU allowed to
  // issue socket syscalls — lint rule `raw-socket-syscall`); throwing on
  // platforms without sockets preserves the old behaviour.
  PSS_REQUIRE(serve::net::available(),
              "metrics exporter: no socket support on this platform");
  try {
    listen_fd_ = serve::net::listen_loopback(port, 16, port_);
  } catch (const Error&) {
    listen_fd_ = -1;
    PSS_REQUIRE(false, "metrics exporter: cannot bind 127.0.0.1:" +
                           std::to_string(port));
  }
  acceptor_ = std::thread([this] { serve(); });
}

void MetricsExporter::serve() {
  std::string request;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int conn =
        serve::net::accept_connection(listen_fd_, 200);  // stop-flag cadence
    if (conn < 0) continue;

    // Read the request under a deadline and a size bound: a scraper that
    // trickles bytes (slow loris) or never finishes its header gets cut off
    // at kReadDeadlineMs instead of wedging the acceptor forever, and the
    // buffer never grows past kMaxRequestBytes. We serve one document
    // regardless of path, so the read only needs to reach the header
    // terminator — or the deadline.
    request.clear();
    const std::uint64_t deadline =
        monotonic_ns() + static_cast<std::uint64_t>(kReadDeadlineMs) * 1000000ull;
    bool complete = false;
    char chunk[512];
    while (request.size() < kMaxRequestBytes) {
      const std::uint64_t now = monotonic_ns();
      if (now >= deadline) break;
      const int budget =
          static_cast<int>((deadline - now) / 1000000ull) + 1;
      const std::ptrdiff_t n =
          serve::net::read_some(conn, chunk, sizeof chunk, budget);
      if (n <= 0) break;  // EOF, deadline, or error
      request.append(chunk, static_cast<std::size_t>(n));
      if (request.find("\r\n\r\n") != std::string::npos ||
          request.find("\n\n") != std::string::npos) {
        complete = true;
        break;
      }
    }
    if (!complete) {  // slow, oversized, or vanished client: drop it
      serve::net::close_fd(conn);
      continue;
    }

    const std::string body = render_prometheus(metrics());
    const std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    // Deadline-bounded write: a scraper that stops reading can stall us for
    // at most kWriteDeadlineMs ("scraper went away" is not our problem).
    (void)serve::net::write_all(conn, response.data(), response.size(),
                                kWriteDeadlineMs);
    serve::net::close_fd(conn);
  }
}

void MetricsExporter::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  serve::net::close_fd(listen_fd_);
  listen_fd_ = -1;
}

MetricsExporter::~MetricsExporter() { stop(); }

}  // namespace pss::obs
