#include "pss/obs/exporter.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/obs/metrics.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define PSS_HAVE_SOCKETS 1
#endif

namespace pss::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  // %g keeps integers short and Prometheus accepts scientific notation;
  // non-finite values render as the spec's NaN/+Inf/-Inf spellings via %g's
  // nan/inf, which Prometheus parses case-insensitively.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "pss_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricSnapshot& row : registry.snapshot()) {
    const std::string name = prometheus_name(row.name);
    switch (row.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + ' ' + std::to_string(row.count) + '\n';
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ';
        append_double(out, row.value);
        out += '\n';
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        // Prometheus buckets are cumulative; ours are per-bucket counts.
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < row.buckets.size(); ++i) {
          cumulative += row.buckets[i];
          out += name + "_bucket{le=\"";
          if (i < row.edges.size()) {
            append_double(out, row.edges[i]);
          } else {
            out += "+Inf";
          }
          out += "\"} " + std::to_string(cumulative) + '\n';
        }
        out += name + "_sum ";
        append_double(out, row.value);
        out += '\n';
        out += name + "_count " + std::to_string(row.count) + '\n';
        break;
      }
    }
  }
  return out;
}

void write_prometheus_text(const std::string& path) {
  std::ofstream os(path);
  PSS_REQUIRE(os.good(), "cannot open prometheus output file: " + path);
  os << render_prometheus(metrics());
}

#if defined(PSS_HAVE_SOCKETS)

MetricsExporter::MetricsExporter(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PSS_REQUIRE(listen_fd_ >= 0, "metrics exporter: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    PSS_REQUIRE(false, "metrics exporter: cannot bind 127.0.0.1:" +
                           std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { serve(); });
}

void MetricsExporter::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // stop-flag check cadence
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // Drain whatever request line arrived (we serve one document regardless
    // of path), then write a complete HTTP/1.1 response and close.
    char sink[1024];
    (void)::recv(conn, sink, sizeof sink, 0);

    const std::string body = render_prometheus(metrics());
    std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(conn, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;  // scraper went away; not our problem
      sent += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

void MetricsExporter::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

#else  // !PSS_HAVE_SOCKETS

MetricsExporter::MetricsExporter(std::uint16_t) {
  PSS_REQUIRE(false, "metrics exporter: no socket support on this platform");
}

void MetricsExporter::serve() {}

void MetricsExporter::stop() {}

#endif  // PSS_HAVE_SOCKETS

MetricsExporter::~MetricsExporter() { stop(); }

}  // namespace pss::obs
