// Minimal streaming JSON writer shared by every observability export
// (metrics registry dump, Chrome trace, run manifest, bench records).
//
// The simulator previously hand-assembled JSON with printf-style code in each
// bench; this writer centralizes escaping, comma placement and non-finite
// handling so every emitted file is syntactically valid by construction
// (tools/validate_manifest.py re-checks the output in the test preset).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pss::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Writes the key of the next object member.
  JsonWriter& key(std::string_view name) {
    separate();
    write_string(name);
    os_ << ": ";
    just_wrote_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    separate();
    // JSON has no NaN/Inf literals; map them to null so files always parse.
    if (!std::isfinite(v)) {
      os_ << "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// key + scalar in one call.
  template <typename T>
  JsonWriter& member(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  JsonWriter& open(char c) {
    separate();
    os_ << c;
    need_comma_.push_back(false);
    return *this;
  }

  JsonWriter& close(char c) {
    need_comma_.pop_back();
    os_ << c;
    if (!need_comma_.empty()) need_comma_.back() = true;
    return *this;
  }

  /// Emits the comma before a sibling value and marks the container dirty.
  void separate() {
    if (just_wrote_key_) {
      just_wrote_key_ = false;
      return;  // value belongs to the key just written — no comma
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) os_ << ", ";
      need_comma_.back() = true;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> need_comma_;  // one flag per open container
  bool just_wrote_key_ = false;
};

}  // namespace pss::obs
