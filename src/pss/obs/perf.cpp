// perf_event_open wrapper. This is the only translation unit allowed to make
// the raw syscall — pss_lint's raw-perf-syscall rule rejects it anywhere
// else, so the availability latch, the forced-unavailable test hook and the
// graceful-degradation contract cannot be bypassed.

#include "pss/obs/perf.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>

#include "pss/common/error.hpp"
#include "pss/common/thread_annotations.hpp"
#include "pss/obs/json_writer.hpp"
#include "pss/obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#define PSS_HAVE_PERF_EVENT 1
#endif

namespace pss::obs {

namespace {

std::atomic<bool> g_profile_enabled{false};
std::atomic<bool> g_forced_unavailable{false};
/// Latched true by the first successful group open anywhere in the process.
std::atomic<bool> g_any_group_open{false};

#if defined(PSS_HAVE_PERF_EVENT)

/// Per-thread counter group. Counters free-run from open (leader starts
/// disabled, members inherit, one group ioctl enables the set); sampled
/// scopes are deltas of two read(2) calls, so a scope never perturbs another
/// thread's measurements.
struct ThreadGroup {
  bool attempted = false;
  int leader_fd = -1;
  // Position of each event's value in the PERF_FORMAT_GROUP read buffer;
  // -1 when that event failed to open (PMUs differ in what they expose).
  int slot_cycles = -1;
  int slot_instructions = -1;
  int slot_cache_misses = -1;
  int slot_branch_misses = -1;
  int nr = 0;

  ~ThreadGroup();
};

long perf_event_open_raw(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  // The one sanctioned call site (see file comment).
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,  // pss-lint: allow(raw-perf-syscall)
                 flags);
}

perf_event_attr make_attr(std::uint64_t config, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  // The leader opens disabled and the whole group is enabled with one ioctl
  // after every member joined, so all counters start at the same instant.
  attr.disabled = leader ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

/// Opens this thread's group (pid=0, cpu=-1: this thread, any CPU). Leader
/// failure means no profiling for the thread; a member failure only drops
/// that event from the slot map.
void open_group(ThreadGroup& g) {
  g.attempted = true;
  perf_event_attr leader = make_attr(PERF_COUNT_HW_CPU_CYCLES, true);
  const long fd = perf_event_open_raw(&leader, 0, -1, -1, 0);
  if (fd < 0) return;  // EPERM/ENOSYS/ENOENT: stay unavailable, never throw
  g.leader_fd = static_cast<int>(fd);
  g.slot_cycles = g.nr++;

  const auto join = [&](std::uint64_t config, int& slot) {
    perf_event_attr attr = make_attr(config, false);
    if (perf_event_open_raw(&attr, 0, -1, g.leader_fd, 0) >= 0) {
      slot = g.nr++;
    }
  };
  join(PERF_COUNT_HW_INSTRUCTIONS, g.slot_instructions);
  join(PERF_COUNT_HW_CACHE_MISSES, g.slot_cache_misses);
  join(PERF_COUNT_HW_BRANCH_MISSES, g.slot_branch_misses);

  ioctl(g.leader_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(g.leader_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  g_any_group_open.store(true, std::memory_order_relaxed);
}

ThreadGroup::~ThreadGroup() {
  // Closing the leader tears the whole group down (members were opened with
  // the leader as group_fd and are reaped by the kernel with it). Member fds
  // are still real descriptors, but we never stored them: close-on-leader is
  // the documented group semantic only for PERF_FLAG_FD_CLOEXEC groups on
  // some kernels, so be conservative and let process exit reap members —
  // groups are per long-lived thread, not per scope, so the fd count is
  // bounded by the thread count.
  if (leader_fd >= 0) close(leader_fd);
}

ThreadGroup& this_thread_group() {
  thread_local ThreadGroup group;
  if (!group.attempted) open_group(group);
  return group;
}

#endif  // PSS_HAVE_PERF_EVENT

}  // namespace

bool profile_enabled() {
  return g_profile_enabled.load(std::memory_order_relaxed);
}

void set_profile_enabled(bool enabled) {
  g_profile_enabled.store(enabled, std::memory_order_relaxed);
}

void set_profile_forced_unavailable(bool forced) {
  g_forced_unavailable.store(forced, std::memory_order_relaxed);
}

bool profile_available() {
  if (g_forced_unavailable.load(std::memory_order_relaxed)) return false;
#if defined(PSS_HAVE_PERF_EVENT)
  this_thread_group();  // probe so a fresh process answers honestly
#endif
  return g_any_group_open.load(std::memory_order_relaxed);
}

PerfReading perf_read_now() {
  PerfReading r;
  if (g_forced_unavailable.load(std::memory_order_relaxed)) return r;
#if defined(PSS_HAVE_PERF_EVENT)
  ThreadGroup& g = this_thread_group();
  if (g.leader_fd < 0) return r;

  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + 8] = {};
  const std::size_t want = (3 + static_cast<std::size_t>(g.nr)) * sizeof buf[0];
  const ssize_t got = read(g.leader_fd, buf, want);
  if (got < 0 || static_cast<std::size_t>(got) < want) return r;

  r.time_enabled = buf[1];
  r.time_running = buf[2];
  const auto value = [&](int slot) -> std::uint64_t {
    return slot >= 0 ? buf[3 + slot] : 0;
  };
  r.cycles = value(g.slot_cycles);
  r.instructions = value(g.slot_instructions);
  r.cache_misses = value(g.slot_cache_misses);
  r.branch_misses = value(g.slot_branch_misses);
  r.valid = true;
#endif
  return r;
}

// ---- ProfileAccum ---------------------------------------------------------

void ProfileAccum::add(const PerfReading& begin, const PerfReading& end) {
  if (!begin.valid || !end.valid) return;
  // A leader counter running backwards means the reading pair is garbage
  // (counter reset between the two reads); drop the whole sample rather
  // than skew the ratios with partial zeros.
  if (end.cycles < begin.cycles || end.time_enabled < begin.time_enabled) {
    return;
  }
  const auto delta = [](std::uint64_t a, std::uint64_t b) -> std::uint64_t {
    return b >= a ? b - a : 0;
  };
  samples_.fetch_add(1, std::memory_order_relaxed);
  enabled_ns_.fetch_add(delta(begin.time_enabled, end.time_enabled),
                        std::memory_order_relaxed);
  running_ns_.fetch_add(delta(begin.time_running, end.time_running),
                        std::memory_order_relaxed);
  cycles_.fetch_add(delta(begin.cycles, end.cycles),
                    std::memory_order_relaxed);
  instructions_.fetch_add(delta(begin.instructions, end.instructions),
                          std::memory_order_relaxed);
  cache_misses_.fetch_add(delta(begin.cache_misses, end.cache_misses),
                          std::memory_order_relaxed);
  branch_misses_.fetch_add(delta(begin.branch_misses, end.branch_misses),
                           std::memory_order_relaxed);
}

void ProfileAccum::reset() {
  samples_.store(0, std::memory_order_relaxed);
  enabled_ns_.store(0, std::memory_order_relaxed);
  running_ns_.store(0, std::memory_order_relaxed);
  cycles_.store(0, std::memory_order_relaxed);
  instructions_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  branch_misses_.store(0, std::memory_order_relaxed);
}

// ---- KernelProfiler -------------------------------------------------------

struct KernelProfiler::Impl {
  mutable std::mutex mutex;
  // Node-based map: row references stay valid across later registrations
  // (same contract as MetricsRegistry::Impl).
  std::map<std::string, std::unique_ptr<ProfileAccum>> rows
      PSS_GUARDED_BY(mutex);
};

KernelProfiler::KernelProfiler() : impl_(std::make_unique<Impl>()) {}
KernelProfiler::~KernelProfiler() = default;

KernelProfiler::Impl& KernelProfiler::impl() const { return *impl_; }

ProfileAccum& KernelProfiler::row(const std::string& key) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  auto& slot = impl().rows[key];
  if (!slot) slot = std::make_unique<ProfileAccum>();
  return *slot;
}

std::vector<ProfileSnapshot> KernelProfiler::snapshot() const {
  std::lock_guard<std::mutex> lock(impl().mutex);
  std::vector<ProfileSnapshot> out;
  out.reserve(impl().rows.size());
  for (const auto& [key, accum] : impl().rows) {
    ProfileSnapshot s;
    s.key = key;
    s.samples = accum->samples();
    if (s.samples == 0) continue;  // never sampled (or perf unavailable)
    s.enabled_ns = accum->enabled_ns();
    s.running_ns = accum->running_ns();
    s.cycles = accum->cycles();
    s.instructions = accum->instructions();
    s.cache_misses = accum->cache_misses();
    s.branch_misses = accum->branch_misses();
    if (s.cycles > 0) {
      s.ipc = static_cast<double>(s.instructions) /
              static_cast<double>(s.cycles);
    }
    if (s.instructions > 0) {
      s.cache_miss_per_kinst = 1000.0 * static_cast<double>(s.cache_misses) /
                               static_cast<double>(s.instructions);
      s.branch_miss_per_kinst = 1000.0 * static_cast<double>(s.branch_misses) /
                                static_cast<double>(s.instructions);
    }
    if (s.enabled_ns > 0) {
      s.multiplex_fraction = static_cast<double>(s.running_ns) /
                             static_cast<double>(s.enabled_ns);
    }
    out.push_back(std::move(s));
  }
  // std::map iterates in key order already; keep the sort explicit anyway so
  // the contract survives a container change.
  std::sort(out.begin(), out.end(),
            [](const ProfileSnapshot& a, const ProfileSnapshot& b) {
              return a.key < b.key;
            });
  return out;
}

void KernelProfiler::reset() {
  std::lock_guard<std::mutex> lock(impl().mutex);
  for (auto& [key, accum] : impl().rows) accum->reset();
}

KernelProfiler& profiler() {
  static KernelProfiler* instance = new KernelProfiler();
  return *instance;
}

// ---- Export ---------------------------------------------------------------

void publish_profile_stats() {
  MetricsRegistry& reg = metrics();
  reg.gauge("profile.available").set(profile_available() ? 1.0 : 0.0);
  for (const ProfileSnapshot& s : profiler().snapshot()) {
    const std::string base = "profile." + s.key;
    reg.gauge(base + ".samples").set(static_cast<double>(s.samples));
    reg.gauge(base + ".cycles").set(static_cast<double>(s.cycles));
    reg.gauge(base + ".instructions").set(static_cast<double>(s.instructions));
    reg.gauge(base + ".cache_misses").set(static_cast<double>(s.cache_misses));
    reg.gauge(base + ".branch_misses").set(static_cast<double>(s.branch_misses));
    reg.gauge(base + ".ipc").set(s.ipc);
  }
}

void write_profile_json(const std::string& path, const std::string& label) {
  std::ofstream os(path);
  PSS_REQUIRE(os.good(), "cannot open profile output file: " + path);

  JsonWriter w(os);
  w.begin_object();
  w.member("schema", "pss.profile.v1");
  if (!label.empty()) w.member("label", label);
  const bool available = profile_available();
  w.member("available", available ? 1 : 0);
  w.key("events").begin_array();
  w.value("cycles");
  w.value("instructions");
  w.value("cache_misses");
  w.value("branch_misses");
  w.end_array();
  w.key("kernels").begin_object();
  for (const ProfileSnapshot& s : profiler().snapshot()) {
    w.key(s.key).begin_object();
    w.member("samples", s.samples);
    w.member("enabled_ns", s.enabled_ns);
    w.member("running_ns", s.running_ns);
    w.member("cycles", s.cycles);
    w.member("instructions", s.instructions);
    w.member("cache_misses", s.cache_misses);
    w.member("branch_misses", s.branch_misses);
    w.member("ipc", s.ipc);
    w.member("cache_miss_per_kinst", s.cache_miss_per_kinst);
    w.member("branch_miss_per_kinst", s.branch_miss_per_kinst);
    w.member("multiplex_fraction", s.multiplex_fraction);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace pss::obs
