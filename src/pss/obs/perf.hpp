// Hardware-counter kernel profiler: the second observability rung.
//
// Samples cycles / instructions / cache-misses / branch-misses around kernel
// launches and presentation phases via one perf_event_open(2) counter group
// per thread (leader = cycles, counters free-running, two group reads per
// sampled scope). Aggregation is name-keyed like the metrics registry:
// `profiler().row("kernel.lif.fused")` returns a stable ProfileAccum that hot
// paths cache and then update lock-free.
//
// Gating mirrors obs::metrics_enabled(): with profiling off the instrumented
// sites cost one relaxed atomic load + branch (bench_kernels measures it
// against the PR 2 budget). The syscall surface lives entirely in perf.cpp —
// pss_lint's raw-perf-syscall rule keeps it there.
//
// Containers and locked-down kernels routinely refuse perf_event_open
// (EPERM/ENOSYS, perf_event_paranoid). That is not an error: the first open
// attempt latches availability per thread, perf_read_now() returns an invalid
// reading, nothing accumulates, and the pss.profile.v1 sidecar reports
// "available": 0 with empty tables. Tests force this path via
// set_profile_forced_unavailable().
//
// Like every obs facility, profiling is observational only: it never touches
// RNG or simulation state, so training results are bitwise identical with
// profiling on or off (tests assert this).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pss::obs {

/// Global profiling gate, separate from metrics_enabled(): counter-group
/// reads are ~1 µs syscalls, far too heavy to ride along with the cheap
/// wall-clock metrics. Off by default.
bool profile_enabled();
void set_profile_enabled(bool enabled);

/// True once any thread successfully opened its counter group (latched).
/// Probes the calling thread's group first, so a fresh process gets an
/// honest answer instead of "nobody tried yet".
bool profile_available();

/// Test hook: pretend perf_event_open is unavailable (as in containers) so
/// the graceful-degradation path is exercisable on perf-capable hosts too.
/// Checked per read, so it also masks groups that are already open.
void set_profile_forced_unavailable(bool forced);

/// One snapshot of the calling thread's counter group. Counters free-run, so
/// a sampled scope is the difference of two readings. time_enabled vs
/// time_running exposes kernel-side multiplexing; derived ratios (IPC, miss
/// rates) are unaffected by it.
struct PerfReading {
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;
};

/// Reads the calling thread's counter group, opening it on first use.
/// Returns valid=false when the group cannot be opened (or the forced-
/// unavailable hook is set) — callers then skip accumulation entirely.
PerfReading perf_read_now();

/// Aggregated counter deltas for one profiled key. Plain relaxed atomics
/// (not sharded): writes arrive at sampled-scope frequency, orders of
/// magnitude below the metrics counters' per-synapse rates.
class ProfileAccum {
 public:
  /// Accumulates end − begin. Ignores invalid readings and (paranoia against
  /// counter resets) negative deltas.
  void add(const PerfReading& begin, const PerfReading& end);

  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }
  std::uint64_t enabled_ns() const { return enabled_ns_.load(std::memory_order_relaxed); }
  std::uint64_t running_ns() const { return running_ns_.load(std::memory_order_relaxed); }
  std::uint64_t cycles() const { return cycles_.load(std::memory_order_relaxed); }
  std::uint64_t instructions() const { return instructions_.load(std::memory_order_relaxed); }
  std::uint64_t cache_misses() const { return cache_misses_.load(std::memory_order_relaxed); }
  std::uint64_t branch_misses() const { return branch_misses_.load(std::memory_order_relaxed); }

  void reset();

 private:
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> enabled_ns_{0};
  std::atomic<std::uint64_t> running_ns_{0};
  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> instructions_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> branch_misses_{0};
};

/// Snapshot row with the derived per-kernel table the sidecar publishes.
struct ProfileSnapshot {
  std::string key;
  std::uint64_t samples = 0;
  std::uint64_t enabled_ns = 0;
  std::uint64_t running_ns = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  double ipc = 0.0;                      ///< instructions / cycles
  double cache_miss_per_kinst = 0.0;     ///< misses per 1000 instructions
  double branch_miss_per_kinst = 0.0;    ///< misses per 1000 instructions
  double multiplex_fraction = 1.0;       ///< running / enabled time
};

/// Name-keyed profile registry; same stable-reference contract as
/// MetricsRegistry (look the row up once, then write lock-free).
class KernelProfiler {
 public:
  ProfileAccum& row(const std::string& key);

  /// All rows with at least one sample, sorted by key, ratios derived.
  std::vector<ProfileSnapshot> snapshot() const;

  /// Zeroes every row's accumulators; registrations survive.
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
  mutable std::unique_ptr<Impl> impl_;

 public:
  KernelProfiler();
  ~KernelProfiler();
  KernelProfiler(const KernelProfiler&) = delete;
  KernelProfiler& operator=(const KernelProfiler&) = delete;
};

/// The process-wide profiler (lazily constructed, never destroyed before
/// exit-time flushes).
KernelProfiler& profiler();

/// RAII sampled scope: reads the group on construction and again on
/// destruction, accumulating the delta into `row`. A null row (profiling
/// disabled) makes both ends a branch on a null pointer.
class PerfScope {
 public:
  explicit PerfScope(ProfileAccum* row) : row_(row) {
    if (row_ != nullptr) begin_ = perf_read_now();
  }
  ~PerfScope() {
    if (row_ != nullptr && begin_.valid) row_->add(begin_, perf_read_now());
  }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  ProfileAccum* row_;
  PerfReading begin_;
};

/// Mirrors the profiler into the metrics registry as gauges
/// (`profile.available` plus `profile.<key>.{samples,cycles,instructions,
/// cache_misses,branch_misses,ipc}`) so profile rows ride along in
/// pss.metrics.v1 dumps and the Prometheus exposition.
void publish_profile_stats();

/// Writes the `pss.profile.v1` sidecar: availability flag, the event list,
/// and the per-kernel counter + derived-ratio tables. With perf unavailable
/// the file still writes cleanly with "available": 0 and an empty table.
void write_profile_json(const std::string& path, const std::string& label = "");

}  // namespace pss::obs
