#include "pss/obs/manifest.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/obs/json_writer.hpp"
#include "pss/obs/metrics.hpp"

namespace pss::obs {

namespace {

std::string hex_id(std::uint64_t id) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setfill('0') << std::setw(16) << id;
  return os.str();
}

}  // namespace

std::vector<std::pair<std::string, double>> phase_seconds() {
  const std::string prefix = "phase.";
  const std::string suffix = ".ns";
  std::vector<std::pair<std::string, double>> phases;
  for (const MetricSnapshot& row : metrics().snapshot()) {
    if (row.kind != MetricSnapshot::Kind::kCounter) continue;
    if (row.name.size() <= prefix.size() + suffix.size() ||
        row.name.compare(0, prefix.size(), prefix) != 0 ||
        row.name.compare(row.name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
      continue;
    }
    const std::string phase = row.name.substr(
        prefix.size(), row.name.size() - prefix.size() - suffix.size());
    phases.emplace_back(phase, static_cast<double>(row.count) * 1e-9);
  }
  return phases;  // snapshot() is name-sorted already
}

void write_manifest(const std::string& path, const RunManifest& manifest) {
  std::ofstream os(path);
  PSS_REQUIRE(os.good(), "cannot open manifest output file: " + path);

  JsonWriter w(os);
  w.begin_object();
  w.member("schema", "pss.manifest.v1");
  w.member("tool", manifest.tool);
  w.member("dataset", manifest.dataset);
  w.member("seed", manifest.seed);
  w.member("workers", manifest.workers);
  w.member("batch_size", manifest.batch_size);
  w.member("wall_seconds", manifest.wall_seconds);

  w.key("config").begin_object();
  for (const auto& [key, value] : manifest.config) w.member(key, value);
  w.end_object();

  const auto phases = phase_seconds();
  double phase_total = 0.0;
  w.key("phases").begin_object();
  for (const auto& [name, seconds] : phases) {
    phase_total += seconds;
    w.key(name).begin_object();
    w.member("seconds", seconds);
    w.member("fraction", manifest.wall_seconds > 0.0
                             ? seconds / manifest.wall_seconds
                             : 0.0);
    w.end_object();
  }
  w.end_object();
  w.member("phase_seconds_total", phase_total);
  // How much of the measured wall time the phase instrumentation explains
  // (the acceptance bar: within 10% for an instrumented run).
  w.member("phase_coverage", manifest.wall_seconds > 0.0
                                 ? phase_total / manifest.wall_seconds
                                 : 0.0);

  w.key("results").begin_object();
  for (const auto& [key, value] : manifest.results) w.member(key, value);
  w.end_object();

  if (manifest.has_checkpoint) {
    w.key("checkpoint").begin_object();
    w.member("resumed", manifest.resumed);
    w.member("run_id", hex_id(manifest.checkpoint_run_id));
    w.member("parent_run_id", hex_id(manifest.checkpoint_parent_run_id));
    w.member("checkpoint_count", manifest.checkpoint_count);
    w.member("presentation_cursor", manifest.presentation_cursor);
    w.end_object();
  }

  w.key("metrics");
  metrics().write_json_object(w);

  w.end_object();
  os << '\n';
}

}  // namespace pss::obs
