// Run manifest: a JSON sidecar every pss_run / example / bench invocation
// can emit, recording what ran (config, seed, worker count), how long each
// simulation phase took, and the final metrics — the before/after record
// the ROADMAP requires for every performance PR.
//
// Phase times come from the "phase.<name>.ns" counters the instrumented
// presentation loop maintains (see wta_network.cpp); the full metrics
// registry is embedded verbatim so one file carries the whole run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pss::obs {

struct RunManifest {
  std::string tool;      ///< producing binary, e.g. "pss_run"
  std::string dataset;   ///< dataset name as reported by the loader
  std::uint64_t seed = 0;
  std::size_t workers = 1;
  std::size_t batch_size = 1;

  /// Wall-clock seconds of the measured pipeline (train + label + eval for a
  /// training run). The phase breakdown is validated against this total.
  double wall_seconds = 0.0;

  /// Raw key=value configuration, in the order supplied.
  std::vector<std::pair<std::string, std::string>> config;

  /// Headline results (accuracy, labelled_neurons, ...).
  std::vector<std::pair<std::string, double>> results;

  /// Checkpoint/resume lineage (pss/robust/checkpoint.hpp). Emitted as a
  /// "checkpoint" object when has_checkpoint is true; run ids serialize as
  /// hex strings so 64-bit values survive JSON number precision.
  bool has_checkpoint = false;
  bool resumed = false;
  std::uint64_t checkpoint_run_id = 0;
  std::uint64_t checkpoint_parent_run_id = 0;
  std::uint64_t checkpoint_count = 0;
  std::uint64_t presentation_cursor = 0;
};

/// Simulation-phase breakdown read back from the metrics registry
/// ("phase.<name>.ns" counters). Seconds per phase, sorted by name.
std::vector<std::pair<std::string, double>> phase_seconds();

/// Writes `manifest` (plus the phase breakdown and the full registry dump)
/// to `path` as the "pss.manifest.v1" schema.
void write_manifest(const std::string& path, const RunManifest& manifest);

}  // namespace pss::obs
