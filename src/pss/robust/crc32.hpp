// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the checksum guarding
// checkpoint payloads against silent corruption. Matches zlib's crc32(), so
// Python-side tooling (tools/validate_manifest.py and friends) can verify
// artifacts with the standard library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pss::robust {

/// CRC of `size` bytes at `data`, chained onto `crc` (pass the previous
/// return value to checksum a buffer in pieces; start with 0).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

}  // namespace pss::robust
