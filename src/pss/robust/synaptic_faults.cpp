#include "pss/robust/synaptic_faults.hpp"

#include "pss/common/rng.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/synapse/conductance_matrix.hpp"

namespace pss::robust {

SynapticFaultSummary apply_synaptic_faults(ConductanceMatrix& g,
                                           const SynapticFaultPlan& plan) {
  SynapticFaultSummary summary;
  if (!plan.any()) return summary;

  const CounterRng root(plan.seed);
  const CounterRng lo_rng = root.fork(1);
  const CounterRng hi_rng = root.fork(2);
  const CounterRng gate_rng = root.fork(3);
  const CounterRng noise_rng = root.fork(4);
  const double range = g.g_max() - g.g_min();
  const double sigma = plan.perturb_sigma * range;

  const std::size_t posts = g.post_count();
  const std::size_t pres = g.pre_count();
  for (std::size_t post = 0; post < posts; ++post) {
    for (std::size_t pre = 0; pre < pres; ++pre) {
      const std::uint64_t synapse = post * pres + pre;
      if (lo_rng.bernoulli(synapse, plan.stuck_lo_rate)) {
        g.set(static_cast<NeuronIndex>(post), static_cast<ChannelIndex>(pre),
              g.g_min());
        ++summary.stuck_lo;
      } else if (hi_rng.bernoulli(synapse, plan.stuck_hi_rate)) {
        g.set(static_cast<NeuronIndex>(post), static_cast<ChannelIndex>(pre),
              g.g_max());
        ++summary.stuck_hi;
      } else if (gate_rng.bernoulli(synapse, plan.perturb_rate)) {
        const double value =
            g.get(static_cast<NeuronIndex>(post),
                  static_cast<ChannelIndex>(pre)) +
            sigma * noise_rng.normal(synapse);
        // set() clamps to [g_min, g_max].
        g.set(static_cast<NeuronIndex>(post), static_cast<ChannelIndex>(pre),
              value);
        ++summary.perturbed;
      }
    }
  }
  return summary;
}

SynapticFaultPlan synaptic_plan_from_injector() {
  SynapticFaultPlan plan;
  FaultInjector& inj = faults();
  plan.stuck_lo_rate = inj.rate("synapse.stuck_lo", 0.0);
  plan.stuck_hi_rate = inj.rate("synapse.stuck_hi", 0.0);
  plan.perturb_rate = inj.rate("synapse.perturb", 0.0);
  if (inj.armed("synapse.perturb")) {
    const double sigma = inj.param("synapse.perturb", 0.0);
    if (sigma > 0.0) plan.perturb_sigma = sigma;
  }
  return plan;
}

}  // namespace pss::robust
