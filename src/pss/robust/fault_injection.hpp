// Deterministic fault injection: a process-wide registry of named fault
// points that production code evaluates at failure-prone boundaries (IO
// writes/reads, shard workers, the training loop) and tests/operators arm via
// a spec string or the PSS_FAULTS environment variable.
//
// Determinism contract: every fire decision is a Philox draw indexed by the
// point's hit ordinal — bit-for-bit reproducible for a fixed (seed, spec,
// hit sequence), mirroring the simulator's counter-based RNG discipline. An
// unarmed registry costs one relaxed atomic load per probe, so fault points
// are safe to leave in hot-ish paths (one probe per work item, not per step).
//
// Spec grammar (config key `faults=` or env `PSS_FAULTS`):
//   point[:key=value[,key=value...]][;point2...]
// Keys: rate (fire probability per hit, default 1), after (hits to skip
// before becoming eligible, default 0), count (max fires, default unlimited),
// param (free point-specific number), kind (transient|fatal, default
// transient — decides what fault_point() throws).
//
// Known points (producers in parentheses):
//   io.snapshot.write   save_snapshot / save_checkpoint, before the rename
//   io.snapshot.read    load_snapshot / load_checkpoint, at open
//   snapshot.corrupt    save_checkpoint: flips a payload byte after the CRC
//                       is computed (writes a corrupted-on-disk file)
//   shard.worker        BatchRunner::run, before each work item
//   serve.worker        pss_serve worker, before each presentation
//                       (transient = requeue with backoff; fatal = the
//                       worker dies and the heartbeat monitor recovers it)
//   train.interrupt     UnsupervisedTrainer, at each image/batch boundary
//   synapse.stuck_lo / synapse.stuck_hi / synapse.perturb
//                       rate-only arms read by synaptic_plan_from_injector()
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "pss/common/thread_annotations.hpp"

namespace pss::robust {

struct FaultArm {
  double rate = 1.0;          ///< fire probability per eligible hit
  std::uint64_t after = 0;    ///< hit ordinals [0, after) never fire
  std::uint64_t count = ~0ull;  ///< stop firing after this many fires
  double param = 0.0;         ///< point-specific extra (e.g. perturb sigma)
  bool transient = true;      ///< fault_point() throws TransientError vs Error
};

class FaultInjector {
 public:
  /// Arms (or re-arms) a point; resets its hit/fire counters.
  void arm(const std::string& point, FaultArm arm);

  /// Parses and arms a spec string (see grammar above). Throws pss::Error on
  /// malformed specs, naming the offending clause.
  void arm_from_spec(const std::string& spec);

  void disarm(const std::string& point);

  /// Disarms everything and resets all counters (tests call this).
  void clear();

  /// Seed for the fire-decision Philox stream (default fixed).
  void set_seed(std::uint64_t seed);

  bool armed(const std::string& point) const;

  /// One evaluation of `point`: advances its hit counter and returns whether
  /// the fault fires this time. Always false for unarmed points. Thread-safe;
  /// the unarmed fast path is a single relaxed atomic load.
  bool should_fire(const std::string& point);

  /// The armed `param` for a point (fallback when unarmed).
  double param(const std::string& point, double fallback = 0.0) const;

  /// The armed `rate` for a point (fallback when unarmed).
  double rate(const std::string& point, double fallback = 0.0) const;

  /// Whether the armed point is transient (true when unarmed).
  bool transient(const std::string& point) const;

  /// Total fires of a point since it was armed.
  std::uint64_t fired(const std::string& point) const;

  bool any_armed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

  /// Names of all armed points (sorted).
  std::vector<std::string> armed_points() const;

 private:
  struct PointState {
    FaultArm arm;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  /// Armed points plus their hit/fire counters — arm/probe/query all mutate
  /// or read this map, so every access path must hold mutex_. The ordered
  /// map also keeps armed_points() deterministic.
  std::map<std::string, PointState> points_ PSS_GUARDED_BY(mutex_);
  std::uint64_t seed_ PSS_GUARDED_BY(mutex_) = 0xfa017u;
  /// Lock-free fast-path gate: lets should_fire() skip the lock entirely
  /// while nothing is armed (one relaxed load per probe).
  std::atomic<bool> any_armed_{false};
};

/// The process-wide injector. On first use, arms itself from the PSS_FAULTS
/// environment variable if set.
FaultInjector& faults();

/// Probe helper: evaluates `point` and, if it fires, bumps the
/// `fault.<point>.fired` metrics counter and throws TransientError or
/// pss::Error (per the arm's `kind`) with an "injected fault" message.
/// No-op (one relaxed load) while nothing is armed.
void fault_point(const char* point);

}  // namespace pss::robust
