// Training checkpoints: everything needed to resume an interrupted training
// run bitwise-identically — learned state (conductances, homeostatic theta),
// the presentation cursor (index + biological clock), the seed, accumulated
// stats, and resume lineage (run id / parent run id / checkpoint ordinal).
//
// Why this is sufficient for bitwise resume: a presentation's outcome is a
// pure function of (config, conductances, theta, presentation_index, rates)
// — all RNG draws are counter-indexed from the presentation index, and
// dynamic neuron state resets at each presentation boundary (see
// WtaNetwork::present). Restoring the fields above therefore puts the
// network in exactly the state the uninterrupted run had at the same image.
//
// On-disk format (little-endian, host layout):
//   magic "PSSCKPT1" (8 B) · u32 version · u64 payload_size · u32 crc32
//   then `payload_size` bytes of payload, CRC-guarded:
//     u64 run_id · u64 parent_run_id · u64 checkpoint_count · u64 seed ·
//     u64 images_done · u64 presentation_cursor · f64 now_ms ·
//     f64 simulated_ms · f64 wall_seconds · u64 images_presented ·
//     u64 total_post_spikes · u64 total_input_spikes ·
//     u32 neuron_count · u32 input_channels · f64 g_min · f64 g_max ·
//     vec<f64> conductance · vec<f64> theta   (vec = u64 count + raw data)
//
// Version 2 (multi-layer graphs) appends, after the v1 fields:
//     vec<char> arch (canonical layers spec) ·
//     u32 input_channels · u32 input_height · u32 input_width (frame shape) ·
//     u64 extra_block_count · per extra block
//       { u32 neurons · u32 inputs · f64 g_min · f64 g_max ·
//         vec<f64> conductance · vec<f64> theta } ·
//     vec<i32> final-block neuron labels
// A single-layer stacked checkpoint (empty arch) is written as version 1 —
// byte-for-byte the pre-graph format — and the stacked loader accepts both,
// so pre-graph checkpoint blobs roundtrip bitwise through the new reader
// (tests/test_graph.cpp regression-checks a committed v1 fixture).
//
// Writes are atomic (temp file + rename), so a crash mid-write — injected or
// real — leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pss {
class WtaNetwork;
}

namespace pss::robust {

struct TrainingCheckpoint {
  // Resume lineage.
  std::uint64_t run_id = 0;         ///< id of the run that wrote this
  std::uint64_t parent_run_id = 0;  ///< 0 = original (not itself a resume)
  std::uint64_t checkpoint_count = 0;  ///< ordinal across the whole lineage

  // Training-progress cursor.
  std::uint64_t seed = 0;
  std::uint64_t images_done = 0;          ///< images fully trained
  std::uint64_t presentation_cursor = 0;  ///< network presentation index
  double now_ms = 0.0;                    ///< network biological clock

  // Accumulated TrainingStats (plain fields; trainer.hpp includes this
  // header, not the other way round).
  double simulated_ms = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t images_presented = 0;
  std::uint64_t total_post_spikes = 0;
  std::uint64_t total_input_spikes = 0;

  // Learned state.
  std::uint32_t neuron_count = 0;
  std::uint32_t input_channels = 0;
  double g_min = 0.0;
  double g_max = 1.0;
  std::vector<double> conductance;  ///< post-major, neurons * channels
  std::vector<double> theta;        ///< homeostatic offsets, size neurons

  /// Captures the learned state + cursor of `network` (lineage and stats
  /// fields are the caller's to fill).
  static TrainingCheckpoint capture(const WtaNetwork& network);

  /// Writes conductances, theta and the presentation cursor back into
  /// `network`. Geometry must match; throws pss::Error otherwise.
  void restore(WtaNetwork& network) const;
};

/// Atomic checkpoint write: serializes to `path`.tmp, fsyncs the stream, and
/// renames over `path`. Honors fault points `io.snapshot.write` (fails before
/// the rename — the previous file survives) and `snapshot.corrupt` (flips a
/// payload byte after the CRC is computed, producing a file load rejects).
/// Throws pss::Error / pss::TransientError on failure.
void save_checkpoint(const std::string& path, const TrainingCheckpoint& cp);

/// Validates magic, version, payload size against the file length, and the
/// payload CRC before parsing; every section is bounds-checked against the
/// bytes actually present, so corrupt or truncated files throw pss::Error
/// (never bad_alloc or short reads). Honors fault point `io.snapshot.read`.
TrainingCheckpoint load_checkpoint(const std::string& path);

/// Multi-layer (graph) training checkpoint: the v1 single-network state in
/// `base` (block 0 of the WTA stack — its cursor doubles as the graph
/// presentation cursor) plus the architecture string and the learned state
/// of the remaining blocks. `arch` empty means single-layer: save writes
/// exact v1 bytes and load accepts pre-graph files.
struct StackedCheckpoint {
  TrainingCheckpoint base;  ///< lineage/cursor/stats + block 0 learned state

  /// canonical_layers_spec() of the graph; "" = single-layer (v1 format).
  std::string arch;
  /// Raw input frame shape (v2 only; v1 implies {1, 1, base.input_channels}).
  std::uint32_t input_channels = 1;
  std::uint32_t input_height = 1;
  std::uint32_t input_width = 0;

  /// Learned state of one WTA block beyond the first.
  struct BlockState {
    std::uint32_t neuron_count = 0;
    std::uint32_t input_channels = 0;
    double g_min = 0.0;
    double g_max = 1.0;
    std::vector<double> conductance;
    std::vector<double> theta;
  };
  std::vector<BlockState> blocks;  ///< blocks 1..B-1, in stack order

  /// Final-block neuron labels (-1 = unlabelled); empty in v1 files and for
  /// unlabelled stacks.
  std::vector<std::int32_t> labels;

  bool single_layer() const { return arch.empty(); }
};

/// Stacked save: exact v1 bytes when `arch` is empty (blocks and labels must
/// be empty too), version 2 otherwise. Same atomicity and fault points as
/// save_checkpoint.
void save_stacked_checkpoint(const std::string& path,
                             const StackedCheckpoint& cp);

/// Unified multi-layer reader: accepts version 1 (fills `base`, leaves the
/// graph section empty) and version 2. Same validation and fault points as
/// load_checkpoint.
StackedCheckpoint load_stacked_checkpoint(const std::string& path);

/// Resume lineage surfaced to run manifests (see obs/manifest.hpp).
struct CheckpointLineage {
  bool resumed = false;
  std::uint64_t run_id = 0;
  std::uint64_t parent_run_id = 0;
  std::uint64_t checkpoint_count = 0;
  std::uint64_t presentation_cursor = 0;
};

}  // namespace pss::robust
