// Synaptic fault models from the authors' companion paper ("Improving
// Robustness of ReRAM-based SNN Accelerator with Stochastic STDP", She et
// al. 2019): ReRAM crossbar cells that are stuck at the minimum or maximum
// conductance (stuck-at-G_min / stuck-at-G_max manufacturing defects) and
// random conductance perturbation (programming noise / drift).
//
// Faults are applied deterministically: each synapse's fate is a Philox draw
// from a stream forked per decision type and indexed by the flat synapse id,
// so a (seed, plan) pair always damages the same cells — experiments comparing
// deterministic vs stochastic STDP see identical fault patterns.
#pragma once

#include <cstdint>

namespace pss {
class ConductanceMatrix;
}

namespace pss::robust {

struct SynapticFaultPlan {
  double stuck_lo_rate = 0.0;   ///< fraction of synapses stuck at g_min
  double stuck_hi_rate = 0.0;   ///< fraction of synapses stuck at g_max
  double perturb_rate = 0.0;    ///< fraction receiving Gaussian perturbation
  double perturb_sigma = 0.1;   ///< perturbation stddev as fraction of range
  std::uint64_t seed = 0x5eed;  ///< fault-pattern seed (independent of net)

  bool any() const {
    return stuck_lo_rate > 0.0 || stuck_hi_rate > 0.0 || perturb_rate > 0.0;
  }
};

struct SynapticFaultSummary {
  std::uint64_t stuck_lo = 0;
  std::uint64_t stuck_hi = 0;
  std::uint64_t perturbed = 0;

  std::uint64_t total() const { return stuck_lo + stuck_hi + perturbed; }
};

/// Damages `g` in place per the plan. Decision order per synapse: stuck-lo,
/// else stuck-hi, else perturb (a cell is affected by at most one fault).
/// Perturbed values are clamped back into [g_min, g_max].
SynapticFaultSummary apply_synaptic_faults(ConductanceMatrix& g,
                                           const SynapticFaultPlan& plan);

/// Builds a plan from the globally armed fault points `synapse.stuck_lo`,
/// `synapse.stuck_hi` and `synapse.perturb` (rate = fault rate; the perturb
/// point's `param`, when set, overrides perturb_sigma). Returns a plan with
/// any() == false when none are armed.
SynapticFaultPlan synaptic_plan_from_injector();

}  // namespace pss::robust
