// Numeric-divergence guards for the training loop: detect NaN/Inf and
// out-of-bounds learned state early and fail with a structured report naming
// the first bad synapse, instead of silently training on (and checkpointing)
// corrupted state.
#pragma once

#include <cstdint>
#include <string>

namespace pss {
class WtaNetwork;
}

namespace pss::robust {

/// What scan_network() found. Counts cover the full conductance matrix and
/// theta vector; `first_bad_*` locate the earliest offender for debugging.
struct DivergenceReport {
  std::uint64_t nan_count = 0;        ///< non-finite conductances (NaN)
  std::uint64_t inf_count = 0;        ///< non-finite conductances (±Inf)
  std::uint64_t below_min = 0;        ///< finite but < g_min
  std::uint64_t above_max = 0;        ///< finite but > g_max
  std::uint64_t theta_nonfinite = 0;  ///< NaN/Inf homeostatic offsets
  std::int64_t first_bad_synapse = -1;  ///< flat index; -1 = none
  double first_bad_value = 0.0;
  std::uint64_t presentation_cursor = 0;
  std::string context;  ///< where the scan ran (e.g. "image 1234")

  bool diverged() const {
    return nan_count || inf_count || below_min || above_max || theta_nonfinite;
  }

  /// One-line human-readable summary (used as the Error message).
  std::string to_string() const;
};

/// Scans the network's conductances and theta for non-finite or
/// out-of-bounds values. Read-only; cost is one pass over the synapse matrix
/// (run it per image/batch, not per step).
DivergenceReport scan_network(const WtaNetwork& network,
                              const std::string& context = "");

/// scan_network + throw pss::Error with the report text when diverged; also
/// bumps the `train.divergence` metrics counter.
void require_finite_network(const WtaNetwork& network,
                            const std::string& context = "");

}  // namespace pss::robust
