#include "pss/robust/guards.hpp"

#include <cmath>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/obs/metrics.hpp"

namespace pss::robust {

std::string DivergenceReport::to_string() const {
  std::ostringstream os;
  os << "divergence report";
  if (!context.empty()) os << " [" << context << "]";
  os << ": nan=" << nan_count << " inf=" << inf_count
     << " below_g_min=" << below_min << " above_g_max=" << above_max
     << " theta_nonfinite=" << theta_nonfinite;
  if (first_bad_synapse >= 0) {
    os << " first_bad_synapse=" << first_bad_synapse << " (value "
       << first_bad_value << ")";
  }
  os << " presentation_cursor=" << presentation_cursor;
  return os.str();
}

DivergenceReport scan_network(const WtaNetwork& network,
                              const std::string& context) {
  DivergenceReport report;
  report.context = context;
  report.presentation_cursor = network.presentation_index();

  const ConductanceMatrix& g = network.conductance();
  const double lo = g.g_min();
  const double hi = g.g_max();
  const std::span<const double> values = g.values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    bool bad = true;
    if (std::isnan(v)) {
      ++report.nan_count;
    } else if (std::isinf(v)) {
      ++report.inf_count;
    } else if (v < lo) {
      ++report.below_min;
    } else if (v > hi) {
      ++report.above_max;
    } else {
      bad = false;
    }
    if (bad && report.first_bad_synapse < 0) {
      report.first_bad_synapse = static_cast<std::int64_t>(i);
      report.first_bad_value = v;
    }
  }
  for (const double t : network.theta()) {
    if (!std::isfinite(t)) ++report.theta_nonfinite;
  }
  return report;
}

void require_finite_network(const WtaNetwork& network,
                            const std::string& context) {
  const DivergenceReport report = scan_network(network, context);
  if (report.diverged()) {
    obs::metrics().counter("train.divergence").add(1);
    throw Error(report.to_string());
  }
}

}  // namespace pss::robust
