#include "pss/robust/fault_injection.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/common/rng.hpp"
#include "pss/obs/metrics.hpp"

namespace pss::robust {

namespace {

/// FNV-1a over the point name: maps each point to its own Philox stream so
/// fire decisions at different points never share a counter sequence.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

double parse_number(const std::string& clause, const std::string& value) {
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty()) {
    throw Error("fault spec: bad number '" + value + "' in clause '" + clause +
                "'");
  }
  return out;
}

/// `after=`/`count=` thresholds are u64 hit counts. A plain cast of the
/// parsed double would be UB for NaN, negative, or out-of-range values
/// (found by the prop grammar fuzzer), so the value must be a non-negative
/// integer within the double's exact-integer range before conversion.
std::uint64_t parse_count(const std::string& clause, const std::string& key,
                          const std::string& value) {
  const double v = parse_number(clause, value);
  if (!(v >= 0.0) || v > 9007199254740992.0 || v != std::floor(v)) {
    throw Error("fault spec: " + key + " must be a non-negative integer, got '" +
                value + "' in clause '" + clause + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

void FaultInjector::arm(const std::string& point, FaultArm arm) {
  PSS_REQUIRE(!point.empty(), "fault point name must be non-empty");
  PSS_REQUIRE(arm.rate >= 0.0 && arm.rate <= 1.0,
              "fault rate must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mutex_);
  points_[point] = PointState{arm, 0, 0};
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_from_spec(const std::string& spec) {
  std::stringstream clauses(spec);
  std::string clause;
  while (std::getline(clauses, clause, ';')) {
    // Trim surrounding whitespace.
    const auto first = clause.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = clause.find_last_not_of(" \t");
    clause = clause.substr(first, last - first + 1);

    const auto colon = clause.find(':');
    const std::string point = clause.substr(0, colon);
    if (point.empty()) {
      throw Error("fault spec: missing point name in clause '" + clause + "'");
    }
    FaultArm arm;
    if (colon != std::string::npos) {
      std::stringstream opts(clause.substr(colon + 1));
      std::string opt;
      while (std::getline(opts, opt, ',')) {
        if (opt.empty()) continue;
        const auto eq = opt.find('=');
        if (eq == std::string::npos) {
          throw Error("fault spec: expected key=value, got '" + opt +
                      "' in clause '" + clause + "'");
        }
        const std::string key = opt.substr(0, eq);
        const std::string value = opt.substr(eq + 1);
        if (key == "rate") {
          arm.rate = parse_number(clause, value);
        } else if (key == "after") {
          arm.after = parse_count(clause, key, value);
        } else if (key == "count") {
          arm.count = parse_count(clause, key, value);
        } else if (key == "param") {
          arm.param = parse_number(clause, value);
        } else if (key == "kind") {
          if (value == "transient") {
            arm.transient = true;
          } else if (value == "fatal") {
            arm.transient = false;
          } else {
            throw Error("fault spec: kind must be transient|fatal, got '" +
                        value + "' in clause '" + clause + "'");
          }
        } else {
          throw Error("fault spec: unknown key '" + key + "' in clause '" +
                      clause + "'");
        }
      }
    }
    this->arm(point, arm);
  }
}

void FaultInjector::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.erase(point);
  if (points_.empty()) any_armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
}

bool FaultInjector::armed(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_.count(point) != 0;
}

bool FaultInjector::should_fire(const std::string& point) {
  if (!any_armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& st = it->second;
  const std::uint64_t hit = st.hits++;
  if (hit < st.arm.after) return false;
  if (st.fires >= st.arm.count) return false;
  const bool fire =
      st.arm.rate >= 1.0 ||
      CounterRng(seed_, fnv1a(point)).bernoulli(hit, st.arm.rate);
  if (fire) ++st.fires;
  return fire;
}

double FaultInjector::param(const std::string& point, double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? fallback : it->second.arm.param;
}

double FaultInjector::rate(const std::string& point, double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? fallback : it->second.arm.rate;
}

bool FaultInjector::transient(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? true : it->second.arm.transient;
}

std::uint64_t FaultInjector::fired(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjector::armed_points() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, state] : points_) out.push_back(name);
  return out;
}

FaultInjector& faults() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("PSS_FAULTS"); env && *env) {
      inj->arm_from_spec(env);
    }
    return inj;
  }();
  return *injector;
}

void fault_point(const char* point) {
  FaultInjector& inj = faults();
  if (!inj.any_armed()) return;
  if (!inj.should_fire(point)) return;
  obs::metrics().counter(std::string("fault.") + point + ".fired").add(1);
  const std::string what = std::string("injected fault at ") + point;
  if (inj.transient(point)) throw TransientError(what);
  throw Error(what);
}

}  // namespace pss::robust
