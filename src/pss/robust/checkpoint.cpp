#include "pss/robust/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "pss/common/error.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/robust/crc32.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss::robust {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append_pod(std::vector<unsigned char>& buf, const T& value) {
  const auto* p = reinterpret_cast<const unsigned char*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
void append_vector(std::vector<unsigned char>& buf, const std::vector<T>& v) {
  append_pod(buf, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  buf.insert(buf.end(), p, p + v.size() * sizeof(T));
}

/// Bounds-checked reader over the in-memory payload: every extraction
/// verifies the declared size against the bytes actually remaining before
/// touching (or allocating) anything.
class PayloadReader {
 public:
  PayloadReader(const unsigned char* data, std::size_t size,
                const std::string& path)
      : data_(data), size_(size), path_(path) {}

  template <typename T>
  T pod(const char* field) {
    require(sizeof(T), field);
    T value{};
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> vector(const char* field) {
    const auto n = pod<std::uint64_t>(field);
    const std::size_t remaining = size_ - pos_;
    if (n > remaining / sizeof(T)) {
      throw Error("checkpoint " + path_ + ": section '" + field +
                  "' declares " + std::to_string(n) + " elements but only " +
                  std::to_string(remaining) + " bytes remain");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), data_ + pos_, v.size() * sizeof(T));
    pos_ += v.size() * sizeof(T);
    return v;
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  void require(std::size_t bytes, const char* field) {
    if (size_ - pos_ < bytes) {
      throw Error("checkpoint " + path_ + ": truncated at field '" + field +
                  "'");
    }
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string path_;
};

std::vector<unsigned char> serialize_payload(const TrainingCheckpoint& cp) {
  std::vector<unsigned char> buf;
  buf.reserve(128 + cp.conductance.size() * sizeof(double) +
              cp.theta.size() * sizeof(double));
  append_pod(buf, cp.run_id);
  append_pod(buf, cp.parent_run_id);
  append_pod(buf, cp.checkpoint_count);
  append_pod(buf, cp.seed);
  append_pod(buf, cp.images_done);
  append_pod(buf, cp.presentation_cursor);
  append_pod(buf, cp.now_ms);
  append_pod(buf, cp.simulated_ms);
  append_pod(buf, cp.wall_seconds);
  append_pod(buf, cp.images_presented);
  append_pod(buf, cp.total_post_spikes);
  append_pod(buf, cp.total_input_spikes);
  append_pod(buf, cp.neuron_count);
  append_pod(buf, cp.input_channels);
  append_pod(buf, cp.g_min);
  append_pod(buf, cp.g_max);
  append_vector(buf, cp.conductance);
  append_vector(buf, cp.theta);
  return buf;
}

TrainingCheckpoint parse_payload(const unsigned char* data, std::size_t size,
                                 const std::string& path) {
  PayloadReader in(data, size, path);
  TrainingCheckpoint cp;
  cp.run_id = in.pod<std::uint64_t>("run_id");
  cp.parent_run_id = in.pod<std::uint64_t>("parent_run_id");
  cp.checkpoint_count = in.pod<std::uint64_t>("checkpoint_count");
  cp.seed = in.pod<std::uint64_t>("seed");
  cp.images_done = in.pod<std::uint64_t>("images_done");
  cp.presentation_cursor = in.pod<std::uint64_t>("presentation_cursor");
  cp.now_ms = in.pod<double>("now_ms");
  cp.simulated_ms = in.pod<double>("simulated_ms");
  cp.wall_seconds = in.pod<double>("wall_seconds");
  cp.images_presented = in.pod<std::uint64_t>("images_presented");
  cp.total_post_spikes = in.pod<std::uint64_t>("total_post_spikes");
  cp.total_input_spikes = in.pod<std::uint64_t>("total_input_spikes");
  cp.neuron_count = in.pod<std::uint32_t>("neuron_count");
  cp.input_channels = in.pod<std::uint32_t>("input_channels");
  cp.g_min = in.pod<double>("g_min");
  cp.g_max = in.pod<double>("g_max");
  cp.conductance = in.vector<double>("conductance");
  cp.theta = in.vector<double>("theta");
  PSS_REQUIRE(in.remaining() == 0,
              "checkpoint " + path + ": trailing bytes after last section");
  const std::uint64_t synapses =
      static_cast<std::uint64_t>(cp.neuron_count) * cp.input_channels;
  PSS_REQUIRE(cp.conductance.size() == synapses,
              "checkpoint " + path + ": conductance size does not match "
              "declared geometry");
  PSS_REQUIRE(cp.theta.size() == cp.neuron_count,
              "checkpoint " + path + ": theta size does not match neuron "
              "count");
  return cp;
}

}  // namespace

TrainingCheckpoint TrainingCheckpoint::capture(const WtaNetwork& network) {
  TrainingCheckpoint cp;
  cp.seed = network.config().seed;
  cp.presentation_cursor = network.presentation_index();
  cp.now_ms = network.now();
  cp.neuron_count = static_cast<std::uint32_t>(network.neuron_count());
  cp.input_channels = static_cast<std::uint32_t>(network.input_channels());
  cp.g_min = network.conductance().g_min();
  cp.g_max = network.conductance().g_max();
  cp.conductance = network.conductance().to_vector();
  cp.theta.assign(network.theta().begin(), network.theta().end());
  return cp;
}

void TrainingCheckpoint::restore(WtaNetwork& network) const {
  PSS_REQUIRE(network.neuron_count() == neuron_count &&
                  network.input_channels() == input_channels,
              "checkpoint geometry does not match the network");
  PSS_REQUIRE(network.config().seed == seed,
              "checkpoint seed does not match the network — resuming with a "
              "different seed would break bitwise reproducibility");
  // One bulk load through the StatePool; clamping matches what the
  // per-element set() path used to do.
  network.conductance().upload_clamped(conductance);
  network.restore_theta(theta);
  network.restore_cursor(presentation_cursor, now_ms);
}

void save_checkpoint(const std::string& path, const TrainingCheckpoint& cp) {
  PSS_REQUIRE(cp.neuron_count > 0 && cp.input_channels > 0,
              "refusing to save an empty checkpoint");
  std::vector<unsigned char> payload = serialize_payload(cp);
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  if (faults().should_fire("snapshot.corrupt")) {
    // Corrupt after the CRC is computed: the file lands on disk but
    // load_checkpoint rejects it — exercises the detection path.
    payload[payload.size() / 2] ^= 0x5A;
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PSS_REQUIRE(out.is_open(), "cannot create checkpoint file: " + tmp);
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    const auto payload_size = static_cast<std::uint64_t>(payload.size());
    out.write(reinterpret_cast<const char*>(&payload_size),
              sizeof(payload_size));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    PSS_REQUIRE(static_cast<bool>(out), "checkpoint write failed: " + tmp);
  }

  // Injected IO failure fires before the rename, so the previous checkpoint
  // (if any) is still intact — exactly the guarantee real crashes get.
  try {
    fault_point("io.snapshot.write");
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }

  PSS_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot rename checkpoint into place: " + path);
}

TrainingCheckpoint load_checkpoint(const std::string& path) {
  fault_point("io.snapshot.read");
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open checkpoint file: " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  constexpr std::uint64_t kHeaderSize =
      sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
      sizeof(std::uint32_t);
  PSS_REQUIRE(file_size >= kHeaderSize,
              "checkpoint " + path + ": file shorter than the header");

  char magic[8];
  in.read(magic, sizeof(magic));
  PSS_REQUIRE(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "not a pss checkpoint (bad magic): " + path);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  PSS_REQUIRE(version == kVersion,
              "checkpoint " + path + ": unsupported version " +
                  std::to_string(version));
  std::uint64_t payload_size = 0;
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  std::uint32_t declared_crc = 0;
  in.read(reinterpret_cast<char*>(&declared_crc), sizeof(declared_crc));
  PSS_REQUIRE(static_cast<bool>(in), "checkpoint " + path + ": short header");
  // The declared size feeds a std::size_t allocation below; on a 32-bit
  // size_t a >4 GiB value would silently wrap before the mismatch check ever
  // saw it. A real checkpoint is a few MiB, so reject implausible headers
  // outright while the value is still uint64.
  constexpr std::uint64_t kMaxPayloadSize = std::uint64_t{1} << 32;  // 4 GiB
  PSS_REQUIRE(payload_size < kMaxPayloadSize,
              "checkpoint " + path + ": header declares an implausible "
              "payload size (" + std::to_string(payload_size) +
              " bytes, limit " + std::to_string(kMaxPayloadSize) + ")");
  PSS_REQUIRE(payload_size == file_size - kHeaderSize,
              "checkpoint " + path + ": declared payload size " +
                  std::to_string(payload_size) + " does not match file (" +
                  std::to_string(file_size - kHeaderSize) + " bytes present)");

  std::vector<unsigned char> payload(static_cast<std::size_t>(payload_size));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  PSS_REQUIRE(static_cast<bool>(in), "checkpoint " + path + ": short payload");
  const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
  PSS_REQUIRE(actual_crc == declared_crc,
              "checkpoint " + path + ": payload CRC mismatch (corrupt file)");
  return parse_payload(payload.data(), payload.size(), path);
}

}  // namespace pss::robust
