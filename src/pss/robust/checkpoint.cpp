#include "pss/robust/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "pss/common/error.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/robust/crc32.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss::robust {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kVersionStacked = 2;  ///< + multi-layer graph section

template <typename T>
void append_pod(std::vector<unsigned char>& buf, const T& value) {
  const auto* p = reinterpret_cast<const unsigned char*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
void append_vector(std::vector<unsigned char>& buf, const std::vector<T>& v) {
  append_pod(buf, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  buf.insert(buf.end(), p, p + v.size() * sizeof(T));
}

/// Bounds-checked reader over the in-memory payload: every extraction
/// verifies the declared size against the bytes actually remaining before
/// touching (or allocating) anything.
class PayloadReader {
 public:
  PayloadReader(const unsigned char* data, std::size_t size,
                const std::string& path)
      : data_(data), size_(size), path_(path) {}

  template <typename T>
  T pod(const char* field) {
    require(sizeof(T), field);
    T value{};
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> vector(const char* field) {
    const auto n = pod<std::uint64_t>(field);
    const std::size_t remaining = size_ - pos_;
    if (n > remaining / sizeof(T)) {
      throw Error("checkpoint " + path_ + ": section '" + field +
                  "' declares " + std::to_string(n) + " elements but only " +
                  std::to_string(remaining) + " bytes remain");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), data_ + pos_, v.size() * sizeof(T));
    pos_ += v.size() * sizeof(T);
    return v;
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  void require(std::size_t bytes, const char* field) {
    if (size_ - pos_ < bytes) {
      throw Error("checkpoint " + path_ + ": truncated at field '" + field +
                  "'");
    }
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string path_;
};

std::vector<unsigned char> serialize_payload(const TrainingCheckpoint& cp) {
  std::vector<unsigned char> buf;
  buf.reserve(128 + cp.conductance.size() * sizeof(double) +
              cp.theta.size() * sizeof(double));
  append_pod(buf, cp.run_id);
  append_pod(buf, cp.parent_run_id);
  append_pod(buf, cp.checkpoint_count);
  append_pod(buf, cp.seed);
  append_pod(buf, cp.images_done);
  append_pod(buf, cp.presentation_cursor);
  append_pod(buf, cp.now_ms);
  append_pod(buf, cp.simulated_ms);
  append_pod(buf, cp.wall_seconds);
  append_pod(buf, cp.images_presented);
  append_pod(buf, cp.total_post_spikes);
  append_pod(buf, cp.total_input_spikes);
  append_pod(buf, cp.neuron_count);
  append_pod(buf, cp.input_channels);
  append_pod(buf, cp.g_min);
  append_pod(buf, cp.g_max);
  append_vector(buf, cp.conductance);
  append_vector(buf, cp.theta);
  return buf;
}

/// The v1 field block — shared verbatim by the v1 parser and the stacked
/// (v2) parser, which reads the graph section after it.
TrainingCheckpoint parse_v1_fields(PayloadReader& in, const std::string& path) {
  TrainingCheckpoint cp;
  cp.run_id = in.pod<std::uint64_t>("run_id");
  cp.parent_run_id = in.pod<std::uint64_t>("parent_run_id");
  cp.checkpoint_count = in.pod<std::uint64_t>("checkpoint_count");
  cp.seed = in.pod<std::uint64_t>("seed");
  cp.images_done = in.pod<std::uint64_t>("images_done");
  cp.presentation_cursor = in.pod<std::uint64_t>("presentation_cursor");
  cp.now_ms = in.pod<double>("now_ms");
  cp.simulated_ms = in.pod<double>("simulated_ms");
  cp.wall_seconds = in.pod<double>("wall_seconds");
  cp.images_presented = in.pod<std::uint64_t>("images_presented");
  cp.total_post_spikes = in.pod<std::uint64_t>("total_post_spikes");
  cp.total_input_spikes = in.pod<std::uint64_t>("total_input_spikes");
  cp.neuron_count = in.pod<std::uint32_t>("neuron_count");
  cp.input_channels = in.pod<std::uint32_t>("input_channels");
  cp.g_min = in.pod<double>("g_min");
  cp.g_max = in.pod<double>("g_max");
  cp.conductance = in.vector<double>("conductance");
  cp.theta = in.vector<double>("theta");
  const std::uint64_t synapses =
      static_cast<std::uint64_t>(cp.neuron_count) * cp.input_channels;
  PSS_REQUIRE(cp.conductance.size() == synapses,
              "checkpoint " + path + ": conductance size does not match "
              "declared geometry");
  PSS_REQUIRE(cp.theta.size() == cp.neuron_count,
              "checkpoint " + path + ": theta size does not match neuron "
              "count");
  return cp;
}

/// Shared file framing: header + CRC + payload, atomic tmp+rename, fault
/// points — used by the v1 and stacked writers (identical bytes for
/// identical payloads, which is what keeps empty-arch stacked saves
/// bitwise-equal to v1 saves).
void write_checkpoint_file(const std::string& path, std::uint32_t version,
                           std::vector<unsigned char> payload) {
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  if (faults().should_fire("snapshot.corrupt")) {
    // Corrupt after the CRC is computed: the file lands on disk but
    // load_checkpoint rejects it — exercises the detection path.
    payload[payload.size() / 2] ^= 0x5A;
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PSS_REQUIRE(out.is_open(), "cannot create checkpoint file: " + tmp);
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const auto payload_size = static_cast<std::uint64_t>(payload.size());
    out.write(reinterpret_cast<const char*>(&payload_size),
              sizeof(payload_size));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    PSS_REQUIRE(static_cast<bool>(out), "checkpoint write failed: " + tmp);
  }

  // Injected IO failure fires before the rename, so the previous checkpoint
  // (if any) is still intact — exactly the guarantee real crashes get.
  try {
    fault_point("io.snapshot.write");
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }

  PSS_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot rename checkpoint into place: " + path);
}

/// Shared read framing: validates magic, version (≤ max_version), declared
/// size and payload CRC; returns the raw payload bytes.
std::vector<unsigned char> read_checkpoint_file(const std::string& path,
                                                std::uint32_t max_version,
                                                std::uint32_t* version_out) {
  fault_point("io.snapshot.read");
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open checkpoint file: " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  constexpr std::uint64_t kHeaderSize =
      sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
      sizeof(std::uint32_t);
  PSS_REQUIRE(file_size >= kHeaderSize,
              "checkpoint " + path + ": file shorter than the header");

  char magic[8];
  in.read(magic, sizeof(magic));
  PSS_REQUIRE(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "not a pss checkpoint (bad magic): " + path);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  PSS_REQUIRE(version >= 1 && version <= max_version,
              "checkpoint " + path + ": unsupported version " +
                  std::to_string(version));
  std::uint64_t payload_size = 0;
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  std::uint32_t declared_crc = 0;
  in.read(reinterpret_cast<char*>(&declared_crc), sizeof(declared_crc));
  PSS_REQUIRE(static_cast<bool>(in), "checkpoint " + path + ": short header");
  // The declared size feeds a std::size_t allocation below; on a 32-bit
  // size_t a >4 GiB value would silently wrap before the mismatch check ever
  // saw it. A real checkpoint is a few MiB, so reject implausible headers
  // outright while the value is still uint64.
  constexpr std::uint64_t kMaxPayloadSize = std::uint64_t{1} << 32;  // 4 GiB
  PSS_REQUIRE(payload_size < kMaxPayloadSize,
              "checkpoint " + path + ": header declares an implausible "
              "payload size (" + std::to_string(payload_size) +
              " bytes, limit " + std::to_string(kMaxPayloadSize) + ")");
  PSS_REQUIRE(payload_size == file_size - kHeaderSize,
              "checkpoint " + path + ": declared payload size " +
                  std::to_string(payload_size) + " does not match file (" +
                  std::to_string(file_size - kHeaderSize) + " bytes present)");

  std::vector<unsigned char> payload(static_cast<std::size_t>(payload_size));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  PSS_REQUIRE(static_cast<bool>(in), "checkpoint " + path + ": short payload");
  const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
  PSS_REQUIRE(actual_crc == declared_crc,
              "checkpoint " + path + ": payload CRC mismatch (corrupt file)");
  *version_out = version;
  return payload;
}

}  // namespace

TrainingCheckpoint TrainingCheckpoint::capture(const WtaNetwork& network) {
  TrainingCheckpoint cp;
  cp.seed = network.config().seed;
  cp.presentation_cursor = network.presentation_index();
  cp.now_ms = network.now();
  cp.neuron_count = static_cast<std::uint32_t>(network.neuron_count());
  cp.input_channels = static_cast<std::uint32_t>(network.input_channels());
  cp.g_min = network.conductance().g_min();
  cp.g_max = network.conductance().g_max();
  cp.conductance = network.conductance().to_vector();
  cp.theta.assign(network.theta().begin(), network.theta().end());
  return cp;
}

void TrainingCheckpoint::restore(WtaNetwork& network) const {
  PSS_REQUIRE(network.neuron_count() == neuron_count &&
                  network.input_channels() == input_channels,
              "checkpoint geometry does not match the network");
  PSS_REQUIRE(network.config().seed == seed,
              "checkpoint seed does not match the network — resuming with a "
              "different seed would break bitwise reproducibility");
  // One bulk load through the StatePool; clamping matches what the
  // per-element set() path used to do.
  network.conductance().upload_clamped(conductance);
  network.restore_theta(theta);
  network.restore_cursor(presentation_cursor, now_ms);
}

void save_checkpoint(const std::string& path, const TrainingCheckpoint& cp) {
  PSS_REQUIRE(cp.neuron_count > 0 && cp.input_channels > 0,
              "refusing to save an empty checkpoint");
  write_checkpoint_file(path, kVersion, serialize_payload(cp));
}

TrainingCheckpoint load_checkpoint(const std::string& path) {
  std::uint32_t version = 0;
  const std::vector<unsigned char> payload =
      read_checkpoint_file(path, kVersion, &version);
  PayloadReader in(payload.data(), payload.size(), path);
  TrainingCheckpoint cp = parse_v1_fields(in, path);
  PSS_REQUIRE(in.remaining() == 0,
              "checkpoint " + path + ": trailing bytes after last section");
  return cp;
}

void save_stacked_checkpoint(const std::string& path,
                             const StackedCheckpoint& cp) {
  PSS_REQUIRE(cp.base.neuron_count > 0 && cp.base.input_channels > 0,
              "refusing to save an empty checkpoint");
  if (cp.single_layer()) {
    // Exact pre-graph bytes: a single-layer stacked checkpoint IS a v1 file.
    PSS_REQUIRE(cp.blocks.empty() && cp.labels.empty(),
                "a single-layer checkpoint cannot carry extra blocks or "
                "labels (v1 format)");
    write_checkpoint_file(path, kVersion, serialize_payload(cp.base));
    return;
  }
  std::vector<unsigned char> payload = serialize_payload(cp.base);
  std::vector<char> arch(cp.arch.begin(), cp.arch.end());
  append_vector(payload, arch);
  append_pod(payload, cp.input_channels);
  append_pod(payload, cp.input_height);
  append_pod(payload, cp.input_width);
  append_pod(payload, static_cast<std::uint64_t>(cp.blocks.size()));
  for (const StackedCheckpoint::BlockState& b : cp.blocks) {
    PSS_REQUIRE(b.conductance.size() ==
                        static_cast<std::size_t>(b.neuron_count) *
                            b.input_channels &&
                    b.theta.size() == b.neuron_count,
                "stacked checkpoint block state is inconsistent");
    append_pod(payload, b.neuron_count);
    append_pod(payload, b.input_channels);
    append_pod(payload, b.g_min);
    append_pod(payload, b.g_max);
    append_vector(payload, b.conductance);
    append_vector(payload, b.theta);
  }
  append_vector(payload, cp.labels);
  write_checkpoint_file(path, kVersionStacked, std::move(payload));
}

StackedCheckpoint load_stacked_checkpoint(const std::string& path) {
  std::uint32_t version = 0;
  const std::vector<unsigned char> payload =
      read_checkpoint_file(path, kVersionStacked, &version);
  PayloadReader in(payload.data(), payload.size(), path);
  StackedCheckpoint cp;
  cp.base = parse_v1_fields(in, path);
  if (version == kVersion) {
    // Pre-graph single-layer file: the graph section stays empty; the input
    // is the flat channel vector.
    cp.input_channels = 1;
    cp.input_height = 1;
    cp.input_width = cp.base.input_channels;
  } else {
    const std::vector<char> arch = in.vector<char>("arch");
    cp.arch.assign(arch.begin(), arch.end());
    PSS_REQUIRE(!cp.arch.empty(),
                "checkpoint " + path + ": v2 file with an empty arch section");
    cp.input_channels = in.pod<std::uint32_t>("input_channels");
    cp.input_height = in.pod<std::uint32_t>("input_height");
    cp.input_width = in.pod<std::uint32_t>("input_width");
    const auto block_count = in.pod<std::uint64_t>("block_count");
    PSS_REQUIRE(block_count <= 64,
                "checkpoint " + path +
                    ": implausible extra-block count " +
                    std::to_string(block_count));
    cp.blocks.reserve(static_cast<std::size_t>(block_count));
    for (std::uint64_t i = 0; i < block_count; ++i) {
      StackedCheckpoint::BlockState b;
      b.neuron_count = in.pod<std::uint32_t>("block.neurons");
      b.input_channels = in.pod<std::uint32_t>("block.inputs");
      b.g_min = in.pod<double>("block.g_min");
      b.g_max = in.pod<double>("block.g_max");
      b.conductance = in.vector<double>("block.conductance");
      b.theta = in.vector<double>("block.theta");
      PSS_REQUIRE(b.conductance.size() ==
                          static_cast<std::size_t>(b.neuron_count) *
                              b.input_channels &&
                      b.theta.size() == b.neuron_count,
                  "checkpoint " + path + ": block state sizes do not match "
                  "the declared geometry");
      cp.blocks.push_back(std::move(b));
    }
    cp.labels = in.vector<std::int32_t>("labels");
  }
  PSS_REQUIRE(in.remaining() == 0,
              "checkpoint " + path + ": trailing bytes after last section");
  return cp;
}

}  // namespace pss::robust
