// Kernel launch API — the heart of the GPU substitution.
//
// A pss "kernel" is a callable invoked once per logical thread index, exactly
// like a CUDA global function over blockIdx*blockDim+threadIdx. The engine
// partitions the index space over a persistent ThreadPool and synchronizes at
// the end of the launch (the simulator's per-step cudaDeviceSynchronize).
//
// Kernels must be data-parallel: thread i may write only to slot i of its
// output arrays (or use the documented reduce helpers). Combined with the
// counter-based RNG this gives bitwise-reproducible results independent of
// worker count — a property the tests assert.
//
// Dispatch cost control: waking the pool costs a mutex + two condvar hops
// (microseconds), which dominates kernels of a few hundred indices — the
// simulator's common case (one conductance row, one small neuron layer). A
// launch whose index space is at most grain() therefore runs inline on the
// calling thread; kernels stay bitwise-identical either way, so the cutoff
// is purely a scheduling decision.
//
// Observability: every launch site may pass a static tag string; the engine
// keeps per-tag launch/dispatch counts and — only while
// obs::metrics_enabled() — per-tag wall time split into inline vs dispatched
// launches. While obs::profile_enabled(), each launch is additionally
// bracketed by a hardware-counter read pair (cycles / instructions /
// cache-misses / branch-misses) aggregated per tag into obs::profiler()
// under "kernel.<tag>" — this is the perf-counter seam in the KernelTable
// dispatch path (DESIGN.md §4b). Counters are per submitting thread, so a
// dispatched launch charges only the coordination work to the row; with the
// default grain every simulator kernel launches inline and is fully
// measured. With both gates off the added cost is one relaxed atomic load +
// branch per gate per launch (bench_kernels measures it).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "pss/engine/thread_pool.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"

namespace pss {

/// Per-tag launch accounting (see Engine::tag_stats). Collected only while
/// obs::metrics_enabled(); times are monotonic nanoseconds.
struct LaunchTagStats {
  const char* tag = nullptr;
  std::uint64_t launches = 0;
  std::uint64_t dispatches = 0;   ///< subset of launches that woke the pool
  std::uint64_t inline_ns = 0;    ///< wall time of inline launches
  std::uint64_t dispatch_ns = 0;  ///< wall time of dispatched launches
};

class Engine {
 public:
  /// Default inline cutoff: below this many kernel threads, pool wake-up
  /// overhead exceeds the work for every kernel this simulator launches.
  static constexpr std::size_t kDefaultGrain = 2048;

  /// `worker_count == 0` -> hardware concurrency.
  explicit Engine(std::size_t worker_count = 0);

  std::size_t worker_count() const { return pool_.worker_count(); }

  /// Smallest index space worth waking the pool for. 0 forces every launch
  /// through the pool (benchmarks use this to measure dispatch overhead).
  std::size_t grain() const { return grain_; }
  void set_grain(std::size_t grain) { grain_ = grain; }

  /// Launches `kernel(i)` for every i in [0, thread_count). `tag` must be a
  /// string literal (stored by pointer) naming the kernel for per-tag
  /// accounting.
  template <typename Kernel>
  void launch(const char* tag, std::size_t thread_count, Kernel&& kernel) {
    if (thread_count == 0) return;
    ++launch_count_;
    const obs::PerfScope perf(
        obs::profile_enabled() ? &profile_row_for(tag) : nullptr);
    LaunchTagStats* stats = nullptr;
    std::uint64_t t0 = 0;
    if (obs::metrics_enabled()) {
      stats = &stats_for(tag);
      ++stats->launches;
      t0 = obs::monotonic_ns();
    }
    if (thread_count <= grain_ || pool_.worker_count() == 1) {
      for (std::size_t i = 0; i < thread_count; ++i) kernel(i);
      if (stats) stats->inline_ns += obs::monotonic_ns() - t0;
      return;
    }
    ++dispatch_count_;
    if (stats) ++stats->dispatches;
    pool_.parallel_for(thread_count,
                       [&kernel](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) kernel(i);
                       });
    if (stats) stats->dispatch_ns += obs::monotonic_ns() - t0;
  }

  template <typename Kernel>
  void launch(std::size_t thread_count, Kernel&& kernel) {
    launch("kernel", thread_count, std::forward<Kernel>(kernel));
  }

  /// Parallel sum-reduction of kernel results: sums `kernel(i)` over
  /// [0, thread_count). The shape CUDA code expresses as a block reduction.
  /// Partial sums combine in shard order, so the result is deterministic for
  /// a fixed worker count.
  template <typename Kernel>
  double launch_sum(const char* tag, std::size_t thread_count,
                    Kernel&& kernel) {
    if (thread_count == 0) return 0.0;
    ++launch_count_;
    const obs::PerfScope perf(
        obs::profile_enabled() ? &profile_row_for(tag) : nullptr);
    LaunchTagStats* stats = nullptr;
    std::uint64_t t0 = 0;
    if (obs::metrics_enabled()) {
      stats = &stats_for(tag);
      ++stats->launches;
      t0 = obs::monotonic_ns();
    }
    if (thread_count <= grain_ || pool_.worker_count() == 1) {
      double total = 0.0;
      for (std::size_t i = 0; i < thread_count; ++i) total += kernel(i);
      if (stats) stats->inline_ns += obs::monotonic_ns() - t0;
      return total;
    }
    ++dispatch_count_;
    if (stats) ++stats->dispatches;
    std::vector<double> partial(pool_.worker_count(), 0.0);
    pool_.parallel_shards(
        thread_count,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += kernel(i);
          partial[shard] = acc;
        });
    double total = 0.0;
    for (double p : partial) total += p;
    if (stats) stats->dispatch_ns += obs::monotonic_ns() - t0;
    return total;
  }

  template <typename Kernel>
  double launch_sum(std::size_t thread_count, Kernel&& kernel) {
    return launch_sum("kernel", thread_count, std::forward<Kernel>(kernel));
  }

  /// Launch statistics (counted on the submitting thread; an Engine has one
  /// submitter at a time). dispatch_count() is the subset of launches that
  /// woke the pool — the per-step dispatch budget the benches verify.
  std::uint64_t launch_count() const { return launch_count_; }
  std::uint64_t dispatch_count() const { return dispatch_count_; }

  /// Per-tag accounting rows (times populated only while metrics were
  /// enabled; counts only for launches issued while enabled).
  const std::vector<LaunchTagStats>& tag_stats() const { return tag_stats_; }

  /// Zeroes the launch/dispatch counters, the per-tag rows and the pool's
  /// busy-time accounting, so benches and phases can isolate their own
  /// launch budget instead of reading process-lifetime totals.
  void reset_counters() {
    launch_count_ = 0;
    dispatch_count_ = 0;
    tag_stats_.clear();
    pool_.reset_busy_ns();
  }

  /// The worker pool backing this engine (busy-time accounting lives there).
  const ThreadPool& pool() const { return pool_; }

 private:
  /// Row for `tag`, created on first use. Single-submitter, so plain data.
  /// Pointer comparison is the fast path (call sites pass literals); strcmp
  /// catches identical literals deduplicated differently across TUs.
  LaunchTagStats& stats_for(const char* tag) {
    for (LaunchTagStats& s : tag_stats_) {
      if (s.tag == tag || std::strcmp(s.tag, tag) == 0) return s;
    }
    tag_stats_.push_back(LaunchTagStats{tag, 0, 0, 0, 0});
    return tag_stats_.back();
  }

  /// Profiler row for `tag` ("kernel.<tag>" in obs::profiler()), resolved
  /// once per tag per engine and then cached — the registry lock is off the
  /// launch path. Same single-submitter / tag-literal contract as
  /// stats_for().
  obs::ProfileAccum& profile_row_for(const char* tag) {
    for (const auto& [t, row] : profile_rows_) {
      if (t == tag || std::strcmp(t, tag) == 0) return *row;
    }
    obs::ProfileAccum& row =
        obs::profiler().row(std::string("kernel.") + tag);
    profile_rows_.emplace_back(tag, &row);
    return row;
  }

  ThreadPool pool_;
  std::size_t grain_ = kDefaultGrain;
  std::uint64_t launch_count_ = 0;
  std::uint64_t dispatch_count_ = 0;
  std::vector<LaunchTagStats> tag_stats_;
  std::vector<std::pair<const char*, obs::ProfileAccum*>> profile_rows_;
};

/// Process-wide default engine (lazily constructed). The simulator and the
/// benches share it so thread creation cost is paid once, as a real CUDA
/// context would be.
Engine& default_engine();

/// Overrides the default engine's worker count. Must be called before the
/// first default_engine() use; throws afterwards. Used by tests that check
/// worker-count independence.
void configure_default_engine(std::size_t worker_count);

/// Mirrors an engine's launch accounting into the global metrics registry as
/// gauges (`<prefix>.launches`, `<prefix>.dispatches`,
/// `<prefix>.tag.<tag>.{launches,dispatches,inline_ns,dispatch_ns}`, and
/// `<prefix>.worker.<i>.busy_ns` from the pool) — called by run drivers just
/// before writing a metrics dump or manifest.
void publish_engine_stats(const Engine& engine, const std::string& prefix);

}  // namespace pss
