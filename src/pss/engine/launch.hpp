// Kernel launch API — the heart of the GPU substitution.
//
// A pss "kernel" is a callable invoked once per logical thread index, exactly
// like a CUDA global function over blockIdx*blockDim+threadIdx. The engine
// partitions the index space over a persistent ThreadPool and synchronizes at
// the end of the launch (the simulator's per-step cudaDeviceSynchronize).
//
// Kernels must be data-parallel: thread i may write only to slot i of its
// output arrays (or use the documented reduce helpers). Combined with the
// counter-based RNG this gives bitwise-reproducible results independent of
// worker count — a property the tests assert.
#pragma once

#include <cstdint>
#include <functional>

#include "pss/engine/thread_pool.hpp"

namespace pss {

class Engine {
 public:
  /// `worker_count == 0` -> hardware concurrency.
  explicit Engine(std::size_t worker_count = 0);

  std::size_t worker_count() const { return pool_.worker_count(); }

  /// Launches `kernel(i)` for every i in [0, thread_count).
  template <typename Kernel>
  void launch(std::size_t thread_count, Kernel&& kernel) {
    const std::function<void(std::size_t, std::size_t)> body =
        [&kernel](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) kernel(i);
        };
    pool_.parallel_for(thread_count, body);
  }

  /// Parallel sum-reduction of kernel results: sums `kernel(i)` over
  /// [0, thread_count). The shape CUDA code expresses as a block reduction.
  template <typename Kernel>
  double launch_sum(std::size_t thread_count, Kernel&& kernel) {
    const std::size_t parts = pool_.worker_count();
    std::vector<double> partial(parts, 0.0);
    const std::size_t chunk =
        parts == 0 ? thread_count : (thread_count + parts - 1) / parts;
    const std::function<void(std::size_t, std::size_t)> body =
        [&](std::size_t begin, std::size_t end) {
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += kernel(i);
          partial[chunk == 0 ? 0 : begin / chunk] += acc;
        };
    pool_.parallel_for(thread_count, body);
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  }

 private:
  ThreadPool pool_;
};

/// Process-wide default engine (lazily constructed). The simulator and the
/// benches share it so thread creation cost is paid once, as a real CUDA
/// context would be.
Engine& default_engine();

/// Overrides the default engine's worker count. Must be called before the
/// first default_engine() use; throws afterwards. Used by tests that check
/// worker-count independence.
void configure_default_engine(std::size_t worker_count);

}  // namespace pss
