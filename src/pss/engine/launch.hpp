// Kernel launch API — the heart of the GPU substitution.
//
// A pss "kernel" is a callable invoked once per logical thread index, exactly
// like a CUDA global function over blockIdx*blockDim+threadIdx. The engine
// partitions the index space over a persistent ThreadPool and synchronizes at
// the end of the launch (the simulator's per-step cudaDeviceSynchronize).
//
// Kernels must be data-parallel: thread i may write only to slot i of its
// output arrays (or use the documented reduce helpers). Combined with the
// counter-based RNG this gives bitwise-reproducible results independent of
// worker count — a property the tests assert.
//
// Dispatch cost control: waking the pool costs a mutex + two condvar hops
// (microseconds), which dominates kernels of a few hundred indices — the
// simulator's common case (one conductance row, one small neuron layer). A
// launch whose index space is at most grain() therefore runs inline on the
// calling thread; kernels stay bitwise-identical either way, so the cutoff
// is purely a scheduling decision.
#pragma once

#include <cstdint>

#include "pss/engine/thread_pool.hpp"

namespace pss {

class Engine {
 public:
  /// Default inline cutoff: below this many kernel threads, pool wake-up
  /// overhead exceeds the work for every kernel this simulator launches.
  static constexpr std::size_t kDefaultGrain = 2048;

  /// `worker_count == 0` -> hardware concurrency.
  explicit Engine(std::size_t worker_count = 0);

  std::size_t worker_count() const { return pool_.worker_count(); }

  /// Smallest index space worth waking the pool for. 0 forces every launch
  /// through the pool (benchmarks use this to measure dispatch overhead).
  std::size_t grain() const { return grain_; }
  void set_grain(std::size_t grain) { grain_ = grain; }

  /// Launches `kernel(i)` for every i in [0, thread_count).
  template <typename Kernel>
  void launch(std::size_t thread_count, Kernel&& kernel) {
    if (thread_count == 0) return;
    ++launch_count_;
    if (thread_count <= grain_ || pool_.worker_count() == 1) {
      for (std::size_t i = 0; i < thread_count; ++i) kernel(i);
      return;
    }
    ++dispatch_count_;
    pool_.parallel_for(thread_count,
                       [&kernel](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) kernel(i);
                       });
  }

  /// Parallel sum-reduction of kernel results: sums `kernel(i)` over
  /// [0, thread_count). The shape CUDA code expresses as a block reduction.
  /// Partial sums combine in shard order, so the result is deterministic for
  /// a fixed worker count.
  template <typename Kernel>
  double launch_sum(std::size_t thread_count, Kernel&& kernel) {
    if (thread_count == 0) return 0.0;
    ++launch_count_;
    if (thread_count <= grain_ || pool_.worker_count() == 1) {
      double total = 0.0;
      for (std::size_t i = 0; i < thread_count; ++i) total += kernel(i);
      return total;
    }
    ++dispatch_count_;
    std::vector<double> partial(pool_.worker_count(), 0.0);
    pool_.parallel_shards(
        thread_count,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += kernel(i);
          partial[shard] = acc;
        });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  }

  /// Launch statistics (counted on the submitting thread; an Engine has one
  /// submitter at a time). dispatch_count() is the subset of launches that
  /// woke the pool — the per-step dispatch budget the benches verify.
  std::uint64_t launch_count() const { return launch_count_; }
  std::uint64_t dispatch_count() const { return dispatch_count_; }

 private:
  ThreadPool pool_;
  std::size_t grain_ = kDefaultGrain;
  std::uint64_t launch_count_ = 0;
  std::uint64_t dispatch_count_ = 0;
};

/// Process-wide default engine (lazily constructed). The simulator and the
/// benches share it so thread creation cost is paid once, as a real CUDA
/// context would be.
Engine& default_engine();

/// Overrides the default engine's worker count. Must be called before the
/// first default_engine() use; throws afterwards. Used by tests that check
/// worker-count independence.
void configure_default_engine(std::size_t worker_count);

}  // namespace pss
