#include "pss/engine/thread_pool.hpp"

#include <algorithm>

#include "pss/obs/metrics.hpp"

namespace pss {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  busy_ns_ = std::make_unique<BusySlot[]>(worker_count);
  // The calling thread always executes one chunk itself, so spawn one fewer.
  const std::size_t spawned = worker_count - 1;
  tasks_.resize(spawned);
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& t : workers_) t.join();
}

std::uint64_t ThreadPool::worker_busy_ns(std::size_t w) const {
  return w < worker_count() ? busy_ns_[w].ns.load(std::memory_order_relaxed)
                            : 0;
}

void ThreadPool::reset_busy_ns() {
  for (std::size_t w = 0; w < worker_count(); ++w) {
    busy_ns_[w].ns.store(0, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t n, RangeFn fn, void* ctx) {
  if (n == 0) return;
  const bool timed = obs::metrics_enabled();
  const std::size_t parts = std::min(n, workers_.size() + 1);
  if (parts == 1) {
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    fn(ctx, 0, n);
    if (timed) {
      busy_ns_[0].ns.fetch_add(obs::monotonic_ns() - t0,
                               std::memory_order_relaxed);
    }
    return;
  }
  // Chunk i covers [i*chunk, (i+1)*chunk) — parallel_shards relies on this
  // partition to recover the shard index from `begin`.
  const std::size_t chunk = (n + parts - 1) / parts;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_ = 0;
    chunk_errors_.assign(parts, nullptr);
    for (std::size_t i = 1; i < parts; ++i) {
      Task& t = tasks_[i - 1];
      t.fn = fn;
      t.ctx = ctx;
      t.begin = std::min(n, i * chunk);
      t.end = std::min(n, (i + 1) * chunk);
      if (t.begin < t.end) ++pending_;
      else t.fn = nullptr;
    }
    ++generation_;
  }
  wake_.notify_all();

  std::exception_ptr caller_error;
  {
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    try {
      fn(ctx, 0, std::min(n, chunk));  // caller takes the first chunk
    } catch (...) {
      // Must not rethrow yet: workers still hold borrowed ctx pointers.
      caller_error = std::current_exception();
    }
    if (timed) {
      busy_ns_[0].ns.fetch_add(obs::monotonic_ns() - t0,
                               std::memory_order_relaxed);
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (caller_error) chunk_errors_[0] = std::move(caller_error);
  while (pending_ != 0) done_.wait(lock);
  for (std::exception_ptr& e : chunk_errors_) {
    if (e) {
      std::exception_ptr raised = e;
      e = nullptr;
      lock.unlock();
      std::rethrow_exception(raised);
    }
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Explicit wait loop (not the predicate overload) so the guarded
      // reads are visibly under mutex_ for the thread-safety analysis.
      while (!stopping_ &&
             !(generation_ != seen_generation && tasks_[worker_index].fn)) {
        wake_.wait(lock);
      }
      if (stopping_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      tasks_[worker_index].fn = nullptr;
    }
    if (task.fn) {
      const bool timed = obs::metrics_enabled();
      const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
      std::exception_ptr error;
      try {
        task.fn(task.ctx, task.begin, task.end);
      } catch (...) {
        error = std::current_exception();
      }
      if (timed) {
        busy_ns_[worker_index + 1].ns.fetch_add(obs::monotonic_ns() - t0,
                                                std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (error) chunk_errors_[worker_index + 1] = std::move(error);
      if (--pending_ == 0) done_.notify_all();
    }
  }
}

}  // namespace pss
