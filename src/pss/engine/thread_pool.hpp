// Persistent worker pool backing the kernel-launch API.
//
// On the paper's platform each simulation step launches CUDA kernels over all
// neurons/synapses. Here a fixed pool of std::threads plays the role of the
// streaming multiprocessors: work is split into contiguous index ranges and
// handed to workers; the submitting thread blocks until the whole range is
// done, matching the cudaDeviceSynchronize() at each step boundary.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pss {

class ThreadPool {
 public:
  /// `worker_count == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size() + 1; }

  /// Runs fn(begin, end) over a partition of [0, n) across all workers and
  /// the calling thread; returns when every chunk has finished. fn must be
  /// safe to call concurrently on disjoint ranges.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<Task> tasks_;     // one slot per worker, refilled per launch
  std::size_t pending_ = 0;     // tasks not yet completed in current launch
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace pss
