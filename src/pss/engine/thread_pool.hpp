// Persistent worker pool backing the kernel-launch API.
//
// On the paper's platform each simulation step launches CUDA kernels over all
// neurons/synapses. Here a fixed pool of std::threads plays the role of the
// streaming multiprocessors: work is split into contiguous index ranges and
// handed to workers; the submitting thread blocks until the whole range is
// done, matching the cudaDeviceSynchronize() at each step boundary.
//
// Dispatch is non-owning: a launch hands workers a raw (function pointer,
// context) pair borrowed for the duration of the call, so launching a kernel
// never allocates (the std::function it previously built per launch cost more
// than some of the kernels it dispatched).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "pss/common/thread_annotations.hpp"

namespace pss {

class ThreadPool {
 public:
  /// Raw range task: fn(ctx, begin, end). `ctx` points at caller-owned state
  /// that outlives the parallel_for call.
  using RangeFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// `worker_count == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size() + 1; }

  /// Runs fn(ctx, begin, end) over a partition of [0, n) across all workers
  /// and the calling thread; returns when every chunk has finished. fn must
  /// be safe to call concurrently on disjoint ranges. Only one thread may
  /// submit to a pool at a time.
  ///
  /// A chunk that throws no longer terminates the process: the exception is
  /// captured, every other chunk still runs to completion (the pool stays
  /// usable), and the exception is rethrown on the submitting thread. When
  /// several chunks throw in one launch, the lowest chunk index wins —
  /// deterministic regardless of thread scheduling.
  void parallel_for(std::size_t n, RangeFn fn, void* ctx);

  /// Callable adapter: borrows `f` (no copy, no allocation) for the duration
  /// of the call.
  template <typename F>
  void parallel_for(std::size_t n, F&& f) {
    using Fn = std::remove_reference_t<F>;
    parallel_for(
        n,
        [](void* ctx, std::size_t begin, std::size_t end) {
          (*static_cast<Fn*>(ctx))(begin, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(f))));
  }

  /// Nanoseconds worker `w` has spent executing chunks (0 = the calling
  /// thread's chunks) since construction or reset_busy_ns(). Collected only
  /// while obs::metrics_enabled(); per-worker utilization is busy/wall.
  std::uint64_t worker_busy_ns(std::size_t w) const;
  void reset_busy_ns();

  /// Like parallel_for but also passes the shard index (0 = calling thread;
  /// at most worker_count() shards per launch) so callers can keep
  /// per-shard state without atomics. `f(shard, begin, end)`.
  template <typename F>
  void parallel_shards(std::size_t n, F&& f) {
    // Mirrors the partition arithmetic of parallel_for (chunk i starts at
    // i*chunk), which is what makes begin/chunk the shard id.
    const std::size_t parts = std::min(n, worker_count());
    const std::size_t chunk = parts == 0 ? 1 : (n + parts - 1) / parts;
    parallel_for(n, [&f, chunk](std::size_t begin, std::size_t end) {
      f(begin / chunk, begin, end);
    });
  }

 private:
  struct Task {
    RangeFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Per-worker busy-time slot, padded so concurrent relaxed adds from
  /// different workers never share a cache line.
  struct alignas(64) BusySlot {
    std::atomic<std::uint64_t> ns{0};
  };

  void worker_loop(std::size_t worker_index);

  // workers_ and busy_ns_ are written only during construction (and joined
  // at destruction); busy-time slots are per-thread relaxed atomics. All
  // launch coordination state below is guarded by mutex_ — the annotations
  // let clang's -Wthread-safety prove every access path holds it.
  std::vector<std::thread> workers_;
  std::unique_ptr<BusySlot[]> busy_ns_;  // slot 0 = calling thread
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  /// One slot per worker, refilled per launch.
  std::vector<Task> tasks_ PSS_GUARDED_BY(mutex_);
  /// Slot i = chunk i; merged by the submitter after the launch drains.
  std::vector<std::exception_ptr> chunk_errors_ PSS_GUARDED_BY(mutex_);
  /// Tasks not yet completed in the current launch.
  std::size_t pending_ PSS_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ PSS_GUARDED_BY(mutex_) = 0;
  bool stopping_ PSS_GUARDED_BY(mutex_) = false;
};

}  // namespace pss
