// A CUDA-host-style buffer abstraction.
//
// ParallelSpikeSim's CPU "allocates memory and transfers data in unified data
// structures to GPU memory when simulation starts" (Sec. III-A). To keep the
// host-code structure faithful, simulation state lives in device_vector<T>:
// construction mirrors cudaMalloc + cudaMemcpy, and span()/view() is what
// kernels receive. On this CPU substrate the "device" is ordinary memory, so
// the copies are cheap; the value of the type is that module interfaces show
// exactly which state is kernel-visible.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "pss/common/error.hpp"

namespace pss {

template <typename T>
class device_vector {
 public:
  device_vector() = default;
  explicit device_vector(std::size_t n, T fill = T{}) : data_(n, fill) {}
  explicit device_vector(std::vector<T> host) : data_(std::move(host)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  void resize(std::size_t n, T fill = T{}) { data_.resize(n, fill); }
  void fill(T value) { data_.assign(data_.size(), value); }

  /// Host -> device transfer (sizes must match, like cudaMemcpy).
  void upload(std::span<const T> host) {
    PSS_REQUIRE(host.size() == data_.size(),
                "upload size mismatch: host " + std::to_string(host.size()) +
                    " vs device " + std::to_string(data_.size()));
    std::copy(host.begin(), host.end(), data_.begin());
  }

  /// Device -> host transfer.
  std::vector<T> download() const { return data_; }

  /// Kernel-side views.
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  std::vector<T> data_;
};

}  // namespace pss
