// SpikeEventList — the per-presentation spike event currency of the sparse
// compute path.
//
// The dense step loop asks "which channels fire at step s?" 784 times per
// millisecond; the event-driven path answers the whole presentation at once:
// encoders build one SpikeEventList up front (geometric inter-spike sampling
// for Poisson, phase arithmetic for Regular) and the step loop consumes
// per-step slices. The list is stored twice, because its two consumers index
// it on different axes:
//
//   step-major     at_step(s) — the integration/propagation loop's active
//                  channel slice for step s (ascending channel order, the
//                  same contract as the dense encoders' `active` output);
//   channel-major  channel_history(c) — every step channel c fired at,
//                  ascending. The lazy-STDP flush reconstructs historical
//                  pre-spike times from this when it applies deferred
//                  post-spike updates long after the fact.
//
// Plain host vectors, rebuilt per presentation: the list is presentation
// scratch (like the active-channel vector it replaces), not pool state.
// Event counts are bounded by steps × channels, far below u32 range.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

struct SpikeEventList {
  StepIndex steps = 0;  ///< presentation length the list was built for

  /// Step-major CSR: channels firing at step s are
  /// step_channels[step_offsets[s] .. step_offsets[s+1]), ascending.
  std::vector<std::uint32_t> step_offsets;  // size steps + 1
  std::vector<ChannelIndex> step_channels;

  /// Channel-major CSR over the same events: the steps channel c fires at
  /// are channel_steps[channel_offsets[c] .. channel_offsets[c+1]),
  /// ascending. channel_offsets covers every channel (size channels + 1).
  std::vector<std::uint32_t> channel_offsets;
  std::vector<std::uint32_t> channel_steps;

  std::size_t total() const { return step_channels.size(); }

  std::span<const ChannelIndex> at_step(StepIndex s) const {
    const auto lo = step_offsets[static_cast<std::size_t>(s)];
    const auto hi = step_offsets[static_cast<std::size_t>(s) + 1];
    return std::span<const ChannelIndex>(step_channels).subspan(lo, hi - lo);
  }

  std::span<const std::uint32_t> channel_history(ChannelIndex c) const {
    const auto lo = channel_offsets[c];
    const auto hi = channel_offsets[c + 1];
    return std::span<const std::uint32_t>(channel_steps).subspan(lo, hi - lo);
  }

  void clear() {
    steps = 0;
    step_offsets.clear();
    step_channels.clear();
    channel_offsets.clear();
    channel_steps.clear();
  }

  /// Rebuilds the step-major view from a filled channel-major view (the
  /// encoders sample per channel, the step loop consumes per step). Counting
  /// sort: O(total + steps), stable, and — iterating channels in ascending
  /// order — leaves each step's slice in ascending channel order, matching
  /// the dense encoders' output contract.
  void index_by_step(StepIndex step_count) {
    steps = step_count;
    const std::size_t n = static_cast<std::size_t>(step_count);
    step_offsets.assign(n + 1, 0);
    for (const std::uint32_t s : channel_steps) ++step_offsets[s + 1];
    for (std::size_t s = 0; s < n; ++s) step_offsets[s + 1] += step_offsets[s];
    step_channels.resize(channel_steps.size());
    std::vector<std::uint32_t> cursor(step_offsets.begin(),
                                      step_offsets.end() - 1);
    const std::size_t channels = channel_offsets.size() - 1;
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::uint32_t i = channel_offsets[c]; i < channel_offsets[c + 1];
           ++i) {
        step_channels[cursor[channel_steps[i]]++] =
            static_cast<ChannelIndex>(c);
      }
    }
  }
};

}  // namespace pss
