// Image-level parallelism for independent presentations.
//
// Labelling and test-set evaluation present images against frozen
// conductances, and the minibatch STDP mode computes per-image deltas against
// a frozen batch-start state — in all three cases the presentations are
// independent, so the win the paper gets from kernel-level parallelism is
// available here as embarrassing parallelism across images (cf. minibatch SNN
// processing, Saunders et al. 2019).
//
// A BatchRunner shards an index space [0, count) across a persistent worker
// pool. Each worker owns a serial Engine (one worker, inline launches) for
// its WtaNetwork replica: with a handful of hundred-neuron kernels per step,
// one image per core beats splitting each kernel across cores — so the
// parallelism is across presentations, not within one.
//
// Determinism: because WtaNetwork::present() is a pure function of
// (frozen state, presentation index, rates) — see wta_network.hpp — replicas
// replay any presentation bit for bit, and results assembled in index order
// are identical for every worker count. Tests assert this.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pss/common/backoff.hpp"
#include "pss/common/error.hpp"
#include "pss/common/thread_annotations.hpp"
#include "pss/engine/launch.hpp"
#include "pss/engine/thread_pool.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/trace.hpp"
#include "pss/robust/fault_injection.hpp"

namespace pss {

/// Collects per-item failures across shards of one BatchRunner::run so the
/// whole batch can finish before anything is rethrown on the caller. When
/// several items fail, the lowest item index is reported — deterministic
/// regardless of worker count or scheduling.
class ShardFailureLog {
 public:
  void record(std::size_t shard, std::size_t index, std::string what);
  bool empty() const;
  std::size_t size() const;
  /// Throws pss::Error describing the lowest-index failure (with shard
  /// context and the total failure count); no-op when empty.
  void rethrow_if_any() const;

 private:
  struct Failure {
    std::size_t shard = 0;
    std::size_t index = 0;
    std::string what;
  };
  mutable std::mutex mutex_;
  /// Appended concurrently by shards, merged by the submitting thread in
  /// rethrow_if_any(); every access path must hold mutex_.
  std::vector<Failure> failures_ PSS_GUARDED_BY(mutex_);
};

class BatchRunner {
 public:
  /// `worker_count == 0` -> hardware concurrency.
  explicit BatchRunner(std::size_t worker_count = 0);

  std::size_t worker_count() const { return pool_.worker_count(); }

  /// Serial engine dedicated to worker `w` — replicas constructed on it run
  /// every kernel inline on the worker's thread.
  Engine& worker_engine(std::size_t w) {
    PSS_REQUIRE(w < engines_.size(), "worker index out of range");
    return *engines_[w];
  }

  /// Runs body(worker, index) for every index in [0, count), contiguous
  /// index ranges sharded across workers (at most worker_count() shards;
  /// worker 0 is the calling thread). `body` must touch only worker-local
  /// state plus disjoint per-index output slots.
  ///
  /// While obs::metrics_enabled(), each shard's wall time lands in the
  /// `batch.shard_seconds` histogram (plus `batch.runs`/`batch.items`
  /// counters) and each shard emits a `batch.shard` trace span — purely
  /// observational, so results stay bitwise identical.
  ///
  /// Failure semantics: an item that throws TransientError (e.g. the
  /// `shard.worker` injected fault) is re-attempted up to retry_budget()
  /// times — bodies must be idempotent per index, which ours are (each item
  /// re-derives everything from frozen batch-start state). Any other
  /// exception, or an exhausted budget, records the failure, abandons that
  /// shard's remaining items, lets every other shard finish, and then
  /// rethrows on the caller as pss::Error with shard/item context. Retries
  /// and failures land in the `batch.retries` / `batch.failures` counters
  /// (always, independent of the metrics gate). The runner stays usable
  /// after a failed run.
  template <typename Body>
  void run(std::size_t count, Body&& body) {
    const bool observed = obs::metrics_enabled();
    if (observed) {
      obs::metrics().counter("batch.runs").add(1);
      obs::metrics().counter("batch.items").add(count);
    }
    ShardFailureLog failures;
    pool_.parallel_shards(
        count,
        [this, &body, &failures, observed](std::size_t shard,
                                           std::size_t begin,
                                           std::size_t end) {
          if (!observed) {
            run_shard(shard, begin, end, body, failures);
            return;
          }
          obs::TraceSpan span("batch.shard", "batch",
                              static_cast<std::int64_t>(shard));
          const std::uint64_t t0 = obs::monotonic_ns();
          run_shard(shard, begin, end, body, failures);
          shard_seconds_histogram().observe(
              static_cast<double>(obs::monotonic_ns() - t0) * 1e-9);
        });
    failures.rethrow_if_any();
  }

  /// Extra attempts granted to an item that throws TransientError.
  std::size_t retry_budget() const { return retry_budget_; }
  void set_retry_budget(std::size_t budget) { retry_budget_ = budget; }

  /// Delay schedule between transient-retry attempts — the shared
  /// deterministic capped-exponential policy (pss/common/backoff.hpp; the
  /// same policy pss_serve uses for requeue). The stream is the item index,
  /// so two runs with the same policy sleep through bit-for-bit the same
  /// schedule (delays never feed into simulation state, which keeps retried
  /// results bitwise-identical to fault-free ones either way). Default:
  /// base 1 ms, cap 64 ms, no jitter.
  const BackoffPolicy& retry_backoff() const { return retry_backoff_; }
  void set_retry_backoff(const BackoffPolicy& policy) {
    retry_backoff_ = policy;
  }

  /// Mirrors every worker engine's launch accounting (and the runner pool's
  /// busy time) into the metrics registry under `<prefix>.engine.<w>.*`.
  void publish_stats(const std::string& prefix) const;

 private:
  static obs::FixedHistogram& shard_seconds_histogram();

  template <typename Body>
  void run_shard(std::size_t shard, std::size_t begin, std::size_t end,
                 Body& body, ShardFailureLog& failures) {
    for (std::size_t i = begin; i < end; ++i) {
      std::size_t attempt = 0;
      for (;;) {
        try {
          robust::fault_point("shard.worker");
          body(shard, i);
          break;
        } catch (const TransientError& e) {
          if (attempt < retry_budget_) {
            // Back off before re-attempting: capped-exponential delay from
            // the shared policy, keyed by (item, attempt) so the schedule
            // is reproducible run to run.
            const double delay_ms = retry_backoff_.delay_ms(i, attempt);
            if (delay_ms > 0.0) {
              std::this_thread::sleep_for(std::chrono::duration<double,
                                                               std::milli>(
                  delay_ms));
            }
            ++attempt;
            obs::metrics().counter("batch.retries").add(1);
            continue;
          }
          failures.record(shard, i,
                          std::string(e.what()) + " (retry budget of " +
                              std::to_string(retry_budget_) + " exhausted)");
          return;  // abandon this shard; other shards run to completion
        } catch (const std::exception& e) {
          failures.record(shard, i, e.what());
          return;
        } catch (...) {
          failures.record(shard, i, "unknown exception");
          return;
        }
      }
    }
  }

  ThreadPool pool_;
  std::vector<std::unique_ptr<Engine>> engines_;  // one serial engine/worker
  std::size_t retry_budget_ = 2;
  BackoffPolicy retry_backoff_;
};

/// Lazily-built per-worker state (typically a WtaNetwork replica). Each slot
/// is created at most once, on first use, on its worker's own thread — so
/// construction cost is paid in parallel and only by workers that actually
/// receive a shard.
template <typename T>
class PerWorker {
 public:
  explicit PerWorker(std::size_t worker_count) : slots_(worker_count) {}

  /// Returns worker `w`'s instance, constructing it via `make()` on first
  /// access.
  template <typename Make>
  T& get(std::size_t w, Make&& make) {
    PSS_DASSERT(w < slots_.size());
    auto& slot = slots_[w];
    if (!slot) slot.emplace(make());
    return *slot;
  }

  /// Worker `w`'s instance if it was ever created.
  std::optional<T>& slot(std::size_t w) { return slots_[w]; }
  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<std::optional<T>> slots_;
};

}  // namespace pss
