#include "pss/engine/launch.hpp"

#include <memory>
#include <mutex>

#include "pss/common/error.hpp"

namespace pss {

Engine::Engine(std::size_t worker_count) : pool_(worker_count) {}

namespace {
std::mutex g_engine_mutex;
std::size_t g_configured_workers = 0;
bool g_engine_created = false;
}  // namespace

Engine& default_engine() {
  static std::unique_ptr<Engine> engine = [] {
    std::lock_guard<std::mutex> lock(g_engine_mutex);
    g_engine_created = true;
    return std::make_unique<Engine>(g_configured_workers);
  }();
  return *engine;
}

void configure_default_engine(std::size_t worker_count) {
  std::lock_guard<std::mutex> lock(g_engine_mutex);
  PSS_REQUIRE(!g_engine_created,
              "configure_default_engine must run before first use");
  g_configured_workers = worker_count;
}

}  // namespace pss
