#include "pss/engine/launch.hpp"

#include <memory>
#include <mutex>

#include "pss/common/error.hpp"

namespace pss {

Engine::Engine(std::size_t worker_count) : pool_(worker_count) {}

namespace {
std::mutex g_engine_mutex;
std::size_t g_configured_workers = 0;
bool g_engine_created = false;
}  // namespace

Engine& default_engine() {
  static std::unique_ptr<Engine> engine = [] {
    std::lock_guard<std::mutex> lock(g_engine_mutex);
    g_engine_created = true;
    return std::make_unique<Engine>(g_configured_workers);
  }();
  return *engine;
}

void configure_default_engine(std::size_t worker_count) {
  std::lock_guard<std::mutex> lock(g_engine_mutex);
  PSS_REQUIRE(!g_engine_created,
              "configure_default_engine must run before first use");
  g_configured_workers = worker_count;
}

void publish_engine_stats(const Engine& engine, const std::string& prefix) {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.gauge(prefix + ".workers").set(static_cast<double>(engine.worker_count()));
  reg.gauge(prefix + ".launches").set(static_cast<double>(engine.launch_count()));
  reg.gauge(prefix + ".dispatches")
      .set(static_cast<double>(engine.dispatch_count()));
  for (const LaunchTagStats& s : engine.tag_stats()) {
    const std::string base = prefix + ".tag." + s.tag;
    reg.gauge(base + ".launches").set(static_cast<double>(s.launches));
    reg.gauge(base + ".dispatches").set(static_cast<double>(s.dispatches));
    reg.gauge(base + ".inline_ns").set(static_cast<double>(s.inline_ns));
    reg.gauge(base + ".dispatch_ns").set(static_cast<double>(s.dispatch_ns));
  }
  for (std::size_t w = 0; w < engine.pool().worker_count(); ++w) {
    reg.gauge(prefix + ".worker." + std::to_string(w) + ".busy_ns")
        .set(static_cast<double>(engine.pool().worker_busy_ns(w)));
  }
}

}  // namespace pss
