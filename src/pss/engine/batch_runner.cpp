#include "pss/engine/batch_runner.hpp"

#include <algorithm>

namespace pss {

void ShardFailureLog::record(std::size_t shard, std::size_t index,
                             std::string what) {
  obs::metrics().counter("batch.failures").add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  failures_.push_back(Failure{shard, index, std::move(what)});
}

bool ShardFailureLog::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_.empty();
}

std::size_t ShardFailureLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_.size();
}

void ShardFailureLog::rethrow_if_any() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failures_.empty()) return;
  const auto first = std::min_element(
      failures_.begin(), failures_.end(),
      [](const Failure& a, const Failure& b) { return a.index < b.index; });
  throw Error("batch worker failure: shard " + std::to_string(first->shard) +
              " item " + std::to_string(first->index) + ": " + first->what +
              " (" + std::to_string(failures_.size()) +
              " item(s) failed this run)");
}

BatchRunner::BatchRunner(std::size_t worker_count) : pool_(worker_count) {
  engines_.reserve(pool_.worker_count());
  for (std::size_t i = 0; i < pool_.worker_count(); ++i) {
    engines_.push_back(std::make_unique<Engine>(1));
  }
}

obs::FixedHistogram& BatchRunner::shard_seconds_histogram() {
  // Exponential edges from 1 ms to ~1000 s — one shard is a contiguous run
  // of whole image presentations.
  static obs::FixedHistogram& h = obs::metrics().histogram(
      "batch.shard_seconds",
      {1e-3, 1e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 1000.0});
  return h;
}

void BatchRunner::publish_stats(const std::string& prefix) const {
  for (std::size_t w = 0; w < engines_.size(); ++w) {
    publish_engine_stats(*engines_[w],
                         prefix + ".engine." + std::to_string(w));
  }
  for (std::size_t w = 0; w < pool_.worker_count(); ++w) {
    obs::metrics()
        .gauge(prefix + ".worker." + std::to_string(w) + ".busy_ns")
        .set(static_cast<double>(pool_.worker_busy_ns(w)));
  }
}

}  // namespace pss
