#include "pss/engine/batch_runner.hpp"

namespace pss {

BatchRunner::BatchRunner(std::size_t worker_count) : pool_(worker_count) {
  engines_.reserve(pool_.worker_count());
  for (std::size_t i = 0; i < pool_.worker_count(); ++i) {
    engines_.push_back(std::make_unique<Engine>(1));
  }
}

}  // namespace pss
