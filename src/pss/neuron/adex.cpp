#include "pss/neuron/adex.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

AdexParameters adex_regular_spiking() { return AdexParameters{}; }

AdexParameters adex_adapting() {
  AdexParameters p;
  p.b = 300.0;
  p.tau_w = 200.0;
  return p;
}

bool adex_step(const AdexParameters& p, double& v, double& w, double current,
               TimeMs dt) {
  // Clamp the exponent: once V is a few ΔT above V_T the spike is certain
  // and the exact value is irrelevant (it is reset anyway).
  const double exponent = std::min((v - p.v_threshold) / p.delta_t, 20.0);
  const double dv =
      (-p.g_leak * (v - p.e_leak) +
       p.g_leak * p.delta_t * std::exp(exponent) - w + current) /
      p.capacitance;
  const double dw = (p.a * (v - p.e_leak) - w) / p.tau_w;
  v += dt * dv;
  w += dt * dw;
  if (v > p.v_spike) {
    v = p.v_reset;
    w += p.b;
    return true;
  }
  return false;
}

AdexPopulation::AdexPopulation(std::size_t size, AdexParameters params,
                               Engine* engine)
    : params_(params),
      engine_(engine ? engine : &default_engine()),
      v_(size, params.v_init),
      w_(size, 0.0),
      last_spike_(size, kNeverSpiked),
      inhibited_until_(size, -1.0),
      spiked_flag_(size, 0) {
  PSS_REQUIRE(size > 0, "population must not be empty");
  PSS_REQUIRE(params.capacitance > 0.0 && params.tau_w > 0.0 &&
                  params.delta_t > 0.0,
              "AdEx parameters must be positive");
}

void AdexPopulation::reset() {
  v_.fill(params_.v_init);
  w_.fill(0.0);
  last_spike_.fill(kNeverSpiked);
  inhibited_until_.fill(-1.0);
  spiked_flag_.fill(0);
  total_spikes_ = 0;
}

void AdexPopulation::step(std::span<const double> input_current, TimeMs now,
                          TimeMs dt, std::vector<NeuronIndex>& spikes,
                          std::span<const double> threshold_offset) {
  PSS_REQUIRE(input_current.size() == size(),
              "current vector size must equal population size");
  PSS_REQUIRE(threshold_offset.empty() || threshold_offset.size() == size(),
              "threshold offset size must equal population size");
  spikes.clear();

  auto v = v_.span();
  auto w = w_.span();
  auto last = last_spike_.span();
  auto inhibited = inhibited_until_.span();
  auto flag = spiked_flag_.span();
  const AdexParameters base = params_;

  engine_->launch("adex.step", size(), [&](std::size_t i) {
    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = base.v_reset;
      return;
    }
    AdexParameters p = base;
    if (!threshold_offset.empty()) p.v_threshold += threshold_offset[i];
    flag[i] = adex_step(p, v[i], w[i], input_current[i], dt) ? 1 : 0;
    if (flag[i]) last[i] = now;
  });

  for (std::size_t i = 0; i < size(); ++i) {
    if (flag[i]) {
      spikes.push_back(static_cast<NeuronIndex>(i));
      ++total_spikes_;
    }
  }
}

void AdexPopulation::inhibit(NeuronIndex neuron, TimeMs until) {
  PSS_REQUIRE(neuron < size(), "neuron index out of range");
  inhibited_until_[neuron] = until;
}

void AdexPopulation::inhibit_all_except(NeuronIndex winner, TimeMs until) {
  PSS_REQUIRE(winner < size(), "winner index out of range");
  auto inhibited = inhibited_until_.span();
  for (std::size_t i = 0; i < size(); ++i) {
    if (i != winner && until > inhibited[i]) inhibited[i] = until;
  }
}

double adex_spiking_frequency(const AdexParameters& params, double current,
                              TimeMs duration_ms, TimeMs settle_ms,
                              TimeMs dt) {
  PSS_REQUIRE(duration_ms > settle_ms, "duration must exceed settle time");
  double v = params.v_init;
  double w = 0.0;
  std::uint64_t spikes = 0;
  TimeMs t = 0.0;
  while (t < duration_ms) {
    t += dt;
    if (adex_step(params, v, w, current, dt) && t > settle_ms) ++spikes;
  }
  return static_cast<double>(spikes) / ((duration_ms - settle_ms) * 1e-3);
}

}  // namespace pss
