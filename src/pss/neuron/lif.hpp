// Leaky integrate-and-fire neuron model (paper Sec. II-A, eq. 1–3).
//
//   dv/dt = a + b·v + c·I          (eq. 1)
//   v -> v_reset  if v > v_th      (eq. 2)
//
// integrated with explicit Euler at the simulator step width. The paper's
// parameter values (Sec. III-D) give a leak equilibrium of ≈ -68.5 (below the
// -60.2 threshold), so neurons are silent without input and the f-I curve of
// Fig. 1a has a rheobase near I ≈ 2.6.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

class Backend;
class Engine;
class StatePool;

struct LifParameters {
  double v_threshold = -60.2;
  double v_reset = -74.7;
  double v_init = -70.0;  ///< initial membrane potential (Sec. III-D)
  double a = -6.77;       ///< constant drive term of eq. 1
  double b = -0.0989;     ///< leak coefficient of eq. 1 (must be < 0)
  double c = 0.314;       ///< input-current gain of eq. 1
  TimeMs refractory_ms = 0.0;  ///< optional absolute refractory period
};

/// The exact parameter set of Sec. III-D used in every paper experiment.
LifParameters paper_lif_parameters();

/// One Euler step of eq. 1 for a single neuron; returns the new potential.
inline double lif_integrate(const LifParameters& p, double v, double current,
                            TimeMs dt) {
  return v + dt * (p.a + p.b * v + p.c * current);
}

/// A population of LIF neurons whose structure-of-arrays state lives in a
/// backend-owned StatePool and is advanced by registered kernels (one logical
/// GPU thread per neuron, as in ParallelSpikeSim). The population either
/// shares a pool with its network (WtaNetwork) or owns one of its own
/// (standalone use in tests and benches).
class LifPopulation {
 public:
  /// Standalone: allocates a private pool on the default `cpu` backend (or
  /// one wrapping `engine` when given).
  LifPopulation(std::size_t size, LifParameters params,
                Engine* engine = nullptr);

  /// Shares `pool` (non-owning; the pool must outlive the population and
  /// have at least one neuron section).
  LifPopulation(StatePool& pool, LifParameters params);

  ~LifPopulation();
  LifPopulation(LifPopulation&&) noexcept;
  LifPopulation& operator=(LifPopulation&&) noexcept;

  std::size_t size() const;
  const LifParameters& params() const { return params_; }
  StatePool& pool() const { return *pool_; }

  /// Restores initial membrane potential and clears spike/inhibition state.
  void reset();

  /// Advances every neuron by dt given per-neuron input current. `now` is
  /// the simulation time at the *end* of the step. Appends the indices of
  /// neurons that spiked to `spikes` (cleared first).
  ///
  /// `threshold_offset` optionally raises each neuron's spike threshold
  /// (adaptive-threshold homeostasis); pass {} for the plain model.
  void step(std::span<const double> input_current, TimeMs now, TimeMs dt,
            std::vector<NeuronIndex>& spikes,
            std::span<const double> threshold_offset = {});

  /// Fused presentation-step kernel: current decay + synaptic accumulation
  /// (eq. 3) + neuron update in ONE launch, eliminating two of the three
  /// per-step dispatches. `currents` is updated in place:
  ///   I[i] = I[i]·decay + amplitude·Σ_{pre ∈ active} G[i·pre_count + pre]
  /// (decay_factor == 0 clears instead). On the `cpu` backend the operation
  /// order is identical to the unfused decay/accumulate_currents/step
  /// sequence, so the two paths are bitwise-interchangeable (asserted by
  /// tests).
  void step_fused(std::span<double> currents, double decay_factor,
                  std::span<const double> conductance, std::size_t pre_count,
                  std::span<const ChannelIndex> active_pre, double amplitude,
                  TimeMs now, TimeMs dt, std::vector<NeuronIndex>& spikes,
                  std::span<const double> threshold_offset = {});

  /// Suppresses a neuron until `until`: membrane pinned at reset, no spikes.
  /// This is the mechanism behind the WTA inhibition of Fig. 3.
  void inhibit(NeuronIndex neuron, TimeMs until);

  /// Inhibits every neuron except `winner` (the paper's second-layer
  /// "inhibitory signal to all other neurons").
  void inhibit_all_except(NeuronIndex winner, TimeMs until);

  std::span<const double> membrane() const;
  std::span<const TimeMs> last_spike_time() const;

  /// Total spikes emitted since construction or reset().
  std::uint64_t spike_count() const { return total_spikes_; }

 private:
  void collect_spikes(std::vector<NeuronIndex>& spikes);

  LifParameters params_;
  std::unique_ptr<Backend> owned_backend_;  ///< standalone ctor only
  std::unique_ptr<StatePool> owned_pool_;   ///< standalone ctor only
  StatePool* pool_ = nullptr;               ///< never null after construction
  std::uint64_t total_spikes_ = 0;
};

}  // namespace pss
