// Adaptive exponential integrate-and-fire (AdEx; Brette & Gerstner 2005).
//
// A third neuron model for the "supports different neuron/synaptic models"
// contribution: richer than LIF (spike-frequency adaptation, exponential
// spike initiation) while cheaper than conductance-based multi-compartment
// models. Dynamics:
//
//   C dV/dt = -g_L (V - E_L) + g_L ΔT e^{(V - V_T)/ΔT} - w + I
//   τ_w dw/dt = a (V - E_L) - w
//   if V > 0 mV:  V <- V_reset,  w <- w + b
#pragma once

#include <span>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/engine/device_vector.hpp"
#include "pss/engine/launch.hpp"

namespace pss {

struct AdexParameters {
  double capacitance = 281.0;  ///< C, pF
  double g_leak = 30.0;        ///< g_L, nS
  double e_leak = -70.6;       ///< E_L, mV
  double delta_t = 2.0;        ///< ΔT, mV (spike-initiation sharpness)
  double v_threshold = -50.4;  ///< V_T, mV (soft threshold)
  double v_spike = 0.0;        ///< detection ceiling, mV
  double v_reset = -70.6;      ///< mV
  double tau_w = 144.0;        ///< ms
  double a = 4.0;              ///< subthreshold adaptation, nS
  double b = 80.5;             ///< spike-triggered adaptation, pA
  double v_init = -70.6;
};

/// The canonical regular-spiking parameter set of Brette & Gerstner 2005.
AdexParameters adex_regular_spiking();

/// Strongly adapting variant (large b): pronounced rate adaptation.
AdexParameters adex_adapting();

/// One Euler step; current in pA. Returns true on a spike. The exponential
/// term is clamped to avoid overflow once V escapes past V_T.
bool adex_step(const AdexParameters& p, double& v, double& w, double current,
               TimeMs dt);

/// Population container matching the Lif/Izhikevich interface (inhibition +
/// threshold offsets) so it can drive the WTA network if desired.
class AdexPopulation {
 public:
  AdexPopulation(std::size_t size, AdexParameters params,
                 Engine* engine = nullptr);

  std::size_t size() const { return v_.size(); }
  const AdexParameters& params() const { return params_; }

  void reset();

  void step(std::span<const double> input_current, TimeMs now, TimeMs dt,
            std::vector<NeuronIndex>& spikes,
            std::span<const double> threshold_offset = {});

  void inhibit(NeuronIndex neuron, TimeMs until);
  void inhibit_all_except(NeuronIndex winner, TimeMs until);

  std::span<const double> membrane() const { return v_.span(); }
  std::span<const double> adaptation() const { return w_.span(); }
  std::span<const TimeMs> last_spike_time() const { return last_spike_.span(); }
  std::uint64_t spike_count() const { return total_spikes_; }

 private:
  AdexParameters params_;
  Engine* engine_;
  device_vector<double> v_;
  device_vector<double> w_;
  device_vector<TimeMs> last_spike_;
  device_vector<TimeMs> inhibited_until_;
  device_vector<std::uint8_t> spiked_flag_;
  std::uint64_t total_spikes_ = 0;
};

/// Spiking frequency under constant current (pA), for f-I characterization.
double adex_spiking_frequency(const AdexParameters& params, double current,
                              TimeMs duration_ms = 2000.0,
                              TimeMs settle_ms = 200.0,
                              TimeMs dt = kDefaultDtMs);

}  // namespace pss
