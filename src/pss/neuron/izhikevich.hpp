// Izhikevich two-variable neuron model (Izhikevich 2003).
//
// ParallelSpikeSim "supports different neuron/synaptic models" (paper
// contribution list) and the Fig. 4 comparison target, CARLsim, simulates
// Izhikevich neurons. This module provides the model both for the pss engine
// and for the CARLsim-style baseline simulator in pss/baseline.
//
//   dv/dt = 0.04 v^2 + 5 v + 140 - u + I
//   du/dt = a (b v - u)
//   if v >= 30 mV:  v <- c,  u <- u + d
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

class Backend;
class Engine;
class StatePool;

struct IzhikevichParameters {
  double a = 0.02;
  double b = 0.2;
  double c = -65.0;
  double d = 8.0;
  double v_init = -65.0;
  double v_peak = 30.0;
};

/// Canonical parameter presets from Izhikevich 2003 (the ones CARLsim's
/// tutorials use for cortical populations).
IzhikevichParameters izhikevich_regular_spiking();
IzhikevichParameters izhikevich_fast_spiking();
IzhikevichParameters izhikevich_chattering();
IzhikevichParameters izhikevich_intrinsically_bursting();

/// One step of the model using the standard two half-step integration for v
/// (0.5 ms halves at dt = 1 ms), the scheme CARLsim and the original paper
/// use for numerical stability. Returns true if the neuron spiked.
inline bool izhikevich_step(const IzhikevichParameters& p, double& v,
                            double& u, double current, TimeMs dt) {
  const double half = dt * 0.5;
  v += half * (0.04 * v * v + 5.0 * v + 140.0 - u + current);
  v += half * (0.04 * v * v + 5.0 * v + 140.0 - u + current);
  u += dt * (p.a * (p.b * v - u));
  if (v >= p.v_peak) {
    v = p.c;
    u += p.d;
    return true;
  }
  return false;
}

/// Population container mirroring LifPopulation's interface (including WTA
/// inhibition and per-neuron threshold offsets) so the WTA network and the
/// characterization code treat both models uniformly — the simulator
/// "supports different neuron/synaptic models". State lives in a
/// backend-owned StatePool (shared with the network, or private for
/// standalone use) and steps dispatch through registered kernels.
class IzhikevichPopulation {
 public:
  /// Standalone: allocates a private pool on the default `cpu` backend (or
  /// one wrapping `engine` when given).
  IzhikevichPopulation(std::size_t size, IzhikevichParameters params,
                       Engine* engine = nullptr);

  /// Shares `pool` (non-owning; the pool must outlive the population).
  IzhikevichPopulation(StatePool& pool, IzhikevichParameters params);

  ~IzhikevichPopulation();
  IzhikevichPopulation(IzhikevichPopulation&&) noexcept;
  IzhikevichPopulation& operator=(IzhikevichPopulation&&) noexcept;

  std::size_t size() const;
  const IzhikevichParameters& params() const { return params_; }
  StatePool& pool() const { return *pool_; }

  void reset();

  /// `threshold_offset` raises v_peak per neuron (homeostasis); pass {} for
  /// the plain model.
  void step(std::span<const double> input_current, TimeMs now, TimeMs dt,
            std::vector<NeuronIndex>& spikes,
            std::span<const double> threshold_offset = {});

  /// Fused decay + accumulate + update step; see LifPopulation::step_fused.
  void step_fused(std::span<double> currents, double decay_factor,
                  std::span<const double> conductance, std::size_t pre_count,
                  std::span<const ChannelIndex> active_pre, double amplitude,
                  TimeMs now, TimeMs dt, std::vector<NeuronIndex>& spikes,
                  std::span<const double> threshold_offset = {});

  /// WTA inhibition: pins the neuron at its reset potential until `until`.
  void inhibit(NeuronIndex neuron, TimeMs until);
  void inhibit_all_except(NeuronIndex winner, TimeMs until);

  std::span<const double> membrane() const;
  std::span<const double> recovery() const;
  std::span<const TimeMs> last_spike_time() const;
  std::uint64_t spike_count() const { return total_spikes_; }

 private:
  void collect_spikes(std::vector<NeuronIndex>& spikes);

  IzhikevichParameters params_;
  std::unique_ptr<Backend> owned_backend_;  ///< standalone ctor only
  std::unique_ptr<StatePool> owned_pool_;   ///< standalone ctor only
  StatePool* pool_ = nullptr;               ///< never null after construction
  std::uint64_t total_spikes_ = 0;
};

}  // namespace pss
