#include "pss/neuron/izhikevich.hpp"

#include "pss/common/error.hpp"

namespace pss {

IzhikevichParameters izhikevich_regular_spiking() {
  return IzhikevichParameters{0.02, 0.2, -65.0, 8.0, -65.0, 30.0};
}

IzhikevichParameters izhikevich_fast_spiking() {
  return IzhikevichParameters{0.1, 0.2, -65.0, 2.0, -65.0, 30.0};
}

IzhikevichParameters izhikevich_chattering() {
  return IzhikevichParameters{0.02, 0.2, -50.0, 2.0, -65.0, 30.0};
}

IzhikevichParameters izhikevich_intrinsically_bursting() {
  return IzhikevichParameters{0.02, 0.2, -55.0, 4.0, -65.0, 30.0};
}

IzhikevichPopulation::IzhikevichPopulation(std::size_t size,
                                           IzhikevichParameters params,
                                           Engine* engine)
    : params_(params),
      engine_(engine ? engine : &default_engine()),
      v_(size, params.v_init),
      u_(size, params.b * params.v_init),
      last_spike_(size, kNeverSpiked),
      inhibited_until_(size, -1.0),
      spiked_flag_(size, 0) {
  PSS_REQUIRE(size > 0, "population must not be empty");
}

void IzhikevichPopulation::reset() {
  v_.fill(params_.v_init);
  u_.fill(params_.b * params_.v_init);
  last_spike_.fill(kNeverSpiked);
  inhibited_until_.fill(-1.0);
  spiked_flag_.fill(0);
  total_spikes_ = 0;
}

void IzhikevichPopulation::step(std::span<const double> input_current,
                                TimeMs now, TimeMs dt,
                                std::vector<NeuronIndex>& spikes,
                                std::span<const double> threshold_offset) {
  PSS_REQUIRE(input_current.size() == size(),
              "current vector size must equal population size");
  PSS_REQUIRE(threshold_offset.empty() || threshold_offset.size() == size(),
              "threshold offset size must equal population size");
  spikes.clear();

  auto v = v_.span();
  auto u = u_.span();
  auto last = last_spike_.span();
  auto inhibited = inhibited_until_.span();
  auto flag = spiked_flag_.span();
  const IzhikevichParameters base = params_;

  engine_->launch("izhi.step", size(), [&](std::size_t i) {
    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = base.c;
      return;
    }
    IzhikevichParameters p = base;
    if (!threshold_offset.empty()) p.v_peak += threshold_offset[i];
    flag[i] = izhikevich_step(p, v[i], u[i], input_current[i], dt) ? 1 : 0;
    if (flag[i]) last[i] = now;
  });

  for (std::size_t i = 0; i < size(); ++i) {
    if (flag[i]) {
      spikes.push_back(static_cast<NeuronIndex>(i));
      ++total_spikes_;
    }
  }
}

void IzhikevichPopulation::step_fused(
    std::span<double> currents, double decay_factor,
    std::span<const double> conductance, std::size_t pre_count,
    std::span<const ChannelIndex> active_pre, double amplitude, TimeMs now,
    TimeMs dt, std::vector<NeuronIndex>& spikes,
    std::span<const double> threshold_offset) {
  PSS_REQUIRE(currents.size() == size(),
              "current vector size must equal population size");
  PSS_REQUIRE(conductance.size() == size() * pre_count,
              "conductance buffer size must equal size * pre_count");
  PSS_REQUIRE(threshold_offset.empty() || threshold_offset.size() == size(),
              "threshold offset size must equal population size");
  spikes.clear();

  auto v = v_.span();
  auto u = u_.span();
  auto last = last_spike_.span();
  auto inhibited = inhibited_until_.span();
  auto flag = spiked_flag_.span();
  const IzhikevichParameters base = params_;

  engine_->launch("izhi.fused", size(), [&](std::size_t i) {
    // Matches the unfused decay + accumulate_currents sequence bit for bit.
    double ci = decay_factor == 0.0 ? 0.0 : currents[i] * decay_factor;
    if (!active_pre.empty()) {
      const double* row = conductance.data() + i * pre_count;
      double acc = 0.0;
      for (ChannelIndex pre : active_pre) acc += row[pre];
      ci += amplitude * acc;
    }
    currents[i] = ci;

    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = base.c;
      return;
    }
    IzhikevichParameters p = base;
    if (!threshold_offset.empty()) p.v_peak += threshold_offset[i];
    flag[i] = izhikevich_step(p, v[i], u[i], ci, dt) ? 1 : 0;
    if (flag[i]) last[i] = now;
  });

  for (std::size_t i = 0; i < size(); ++i) {
    if (flag[i]) {
      spikes.push_back(static_cast<NeuronIndex>(i));
      ++total_spikes_;
    }
  }
}

void IzhikevichPopulation::inhibit(NeuronIndex neuron, TimeMs until) {
  PSS_REQUIRE(neuron < size(), "neuron index out of range");
  inhibited_until_[neuron] = until;
}

void IzhikevichPopulation::inhibit_all_except(NeuronIndex winner,
                                              TimeMs until) {
  PSS_REQUIRE(winner < size(), "winner index out of range");
  auto inhibited = inhibited_until_.span();
  for (std::size_t i = 0; i < size(); ++i) {
    if (i != winner && until > inhibited[i]) inhibited[i] = until;
  }
}

}  // namespace pss
