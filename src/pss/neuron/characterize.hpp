// Single-neuron characterization: the f-I curve of Fig. 1a.
//
// Drives one neuron with a constant current for a fixed duration and reports
// its steady spiking frequency. The Fig. 1 bench sweeps the current range and
// prints the resulting curve for both LIF (paper parameters) and Izhikevich.
#pragma once

#include <vector>

#include "pss/common/types.hpp"
#include "pss/neuron/izhikevich.hpp"
#include "pss/neuron/lif.hpp"

namespace pss {

struct FiPoint {
  double current = 0.0;
  double frequency_hz = 0.0;
};

/// Spiking frequency (Hz) of a single LIF neuron under constant current.
/// The first `settle_ms` of activity is discarded so the reported value is
/// steady-state.
double lif_spiking_frequency(const LifParameters& params, double current,
                             TimeMs duration_ms = 2000.0,
                             TimeMs settle_ms = 200.0,
                             TimeMs dt = kDefaultDtMs);

/// Same for an Izhikevich neuron.
double izhikevich_spiking_frequency(const IzhikevichParameters& params,
                                    double current,
                                    TimeMs duration_ms = 2000.0,
                                    TimeMs settle_ms = 200.0,
                                    TimeMs dt = kDefaultDtMs);

/// f-I curve over a uniformly sampled current range (Fig. 1a).
std::vector<FiPoint> lif_fi_curve(const LifParameters& params, double i_min,
                                  double i_max, std::size_t samples,
                                  TimeMs duration_ms = 2000.0);

std::vector<FiPoint> izhikevich_fi_curve(const IzhikevichParameters& params,
                                         double i_min, double i_max,
                                         std::size_t samples,
                                         TimeMs duration_ms = 2000.0);

/// Smallest constant current (within tolerance) that makes the LIF neuron
/// fire at all — the rheobase visible as the x-intercept of Fig. 1a.
double lif_rheobase(const LifParameters& params, double i_hi = 50.0,
                    double tolerance = 1e-3);

}  // namespace pss
