#include "pss/neuron/characterize.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

namespace {

template <typename StepFn>
double measure_frequency(StepFn&& step_once, TimeMs duration_ms,
                         TimeMs settle_ms, TimeMs dt) {
  PSS_REQUIRE(duration_ms > settle_ms, "duration must exceed settle time");
  PSS_REQUIRE(dt > 0.0, "dt must be positive");
  std::uint64_t spikes = 0;
  TimeMs t = 0.0;
  while (t < duration_ms) {
    t += dt;
    if (step_once() && t > settle_ms) ++spikes;
  }
  const double window_s = (duration_ms - settle_ms) * 1e-3;
  return static_cast<double>(spikes) / window_s;
}

}  // namespace

double lif_spiking_frequency(const LifParameters& params, double current,
                             TimeMs duration_ms, TimeMs settle_ms, TimeMs dt) {
  double v = params.v_init;
  return measure_frequency(
      [&] {
        v = lif_integrate(params, v, current, dt);
        if (v > params.v_threshold) {
          v = params.v_reset;
          return true;
        }
        return false;
      },
      duration_ms, settle_ms, dt);
}

double izhikevich_spiking_frequency(const IzhikevichParameters& params,
                                    double current, TimeMs duration_ms,
                                    TimeMs settle_ms, TimeMs dt) {
  double v = params.v_init;
  double u = params.b * params.v_init;
  return measure_frequency(
      [&] { return izhikevich_step(params, v, u, current, dt); }, duration_ms,
      settle_ms, dt);
}

std::vector<FiPoint> lif_fi_curve(const LifParameters& params, double i_min,
                                  double i_max, std::size_t samples,
                                  TimeMs duration_ms) {
  PSS_REQUIRE(samples >= 2, "need at least two samples");
  PSS_REQUIRE(i_max > i_min, "current range must be non-empty");
  std::vector<FiPoint> curve;
  curve.reserve(samples);
  for (std::size_t k = 0; k < samples; ++k) {
    const double i =
        i_min + (i_max - i_min) * static_cast<double>(k) /
        static_cast<double>(samples - 1);
    curve.push_back({i, lif_spiking_frequency(params, i, duration_ms)});
  }
  return curve;
}

std::vector<FiPoint> izhikevich_fi_curve(const IzhikevichParameters& params,
                                         double i_min, double i_max,
                                         std::size_t samples,
                                         TimeMs duration_ms) {
  PSS_REQUIRE(samples >= 2, "need at least two samples");
  PSS_REQUIRE(i_max > i_min, "current range must be non-empty");
  std::vector<FiPoint> curve;
  curve.reserve(samples);
  for (std::size_t k = 0; k < samples; ++k) {
    const double i =
        i_min + (i_max - i_min) * static_cast<double>(k) /
        static_cast<double>(samples - 1);
    curve.push_back({i, izhikevich_spiking_frequency(params, i, duration_ms)});
  }
  return curve;
}

double lif_rheobase(const LifParameters& params, double i_hi,
                    double tolerance) {
  double lo = 0.0;
  double hi = i_hi;
  PSS_REQUIRE(lif_spiking_frequency(params, hi, 1000.0) > 0.0,
              "upper current bound does not elicit spiking");
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (lif_spiking_frequency(params, mid, 1000.0) > 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace pss
