#include "pss/neuron/lif.hpp"

#include <algorithm>
#include <utility>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/error.hpp"

namespace pss {

LifParameters paper_lif_parameters() { return LifParameters{}; }

namespace {

void validate(const LifParameters& params) {
  PSS_REQUIRE(params.b < 0.0, "leak coefficient b must be negative");
  PSS_REQUIRE(params.v_reset < params.v_threshold,
              "reset potential must lie below threshold");
}

}  // namespace

LifPopulation::LifPopulation(std::size_t size, LifParameters params,
                             Engine* engine)
    : params_(params) {
  PSS_REQUIRE(size > 0, "population must not be empty");
  validate(params);
  if (engine) owned_backend_ = make_backend("cpu", engine);
  Backend* backend = owned_backend_ ? owned_backend_.get() : &default_backend();
  owned_pool_ = std::make_unique<StatePool>(
      backend, StatePool::Geometry{size, 0});
  pool_ = owned_pool_.get();
  reset();
}

LifPopulation::LifPopulation(StatePool& pool, LifParameters params)
    : params_(params), pool_(&pool) {
  validate(params);
  reset();
}

LifPopulation::~LifPopulation() = default;
LifPopulation::LifPopulation(LifPopulation&&) noexcept = default;
LifPopulation& LifPopulation::operator=(LifPopulation&&) noexcept = default;

std::size_t LifPopulation::size() const { return pool_->neurons(); }

std::span<const double> LifPopulation::membrane() const {
  return std::as_const(*pool_).membrane();
}

std::span<const TimeMs> LifPopulation::last_spike_time() const {
  return std::as_const(*pool_).last_spike();
}

void LifPopulation::reset() {
  auto v = pool_->membrane();
  std::fill(v.begin(), v.end(), params_.v_init);
  auto last = pool_->last_spike();
  std::fill(last.begin(), last.end(), kNeverSpiked);
  auto inhibited = pool_->inhibited_until();
  std::fill(inhibited.begin(), inhibited.end(), -1.0);
  auto flag = pool_->spiked();
  std::fill(flag.begin(), flag.end(), std::uint8_t{0});
  total_spikes_ = 0;
}

void LifPopulation::collect_spikes(std::vector<NeuronIndex>& spikes) {
  // Host-side compaction of the spike list (cheap: spikes are sparse).
  const auto flag = pool_->spiked();
  for (std::size_t i = 0; i < flag.size(); ++i) {
    if (flag[i]) {
      spikes.push_back(static_cast<NeuronIndex>(i));
      ++total_spikes_;
    }
  }
}

void LifPopulation::step(std::span<const double> input_current, TimeMs now,
                         TimeMs dt, std::vector<NeuronIndex>& spikes,
                         std::span<const double> threshold_offset) {
  PSS_REQUIRE(input_current.size() == size(),
              "current vector size must equal population size");
  PSS_REQUIRE(threshold_offset.empty() || threshold_offset.size() == size(),
              "threshold offset size must equal population size");
  spikes.clear();

  LifStepArgs args;
  args.params = params_;
  args.step.state = {pool_->membrane(), {}, pool_->last_spike(),
                     pool_->inhibited_until(), pool_->spiked()};
  args.step.input_current = input_current;
  args.step.threshold_offset = threshold_offset;
  args.step.now = now;
  args.step.dt = dt;
  Backend& backend = pool_->backend();
  backend.kernels().lif_step(backend.engine(), args);

  collect_spikes(spikes);
}

void LifPopulation::step_fused(std::span<double> currents, double decay_factor,
                               std::span<const double> conductance,
                               std::size_t pre_count,
                               std::span<const ChannelIndex> active_pre,
                               double amplitude, TimeMs now, TimeMs dt,
                               std::vector<NeuronIndex>& spikes,
                               std::span<const double> threshold_offset) {
  PSS_REQUIRE(currents.size() == size(),
              "current vector size must equal population size");
  PSS_REQUIRE(conductance.size() == size() * pre_count,
              "conductance buffer size must equal size * pre_count");
  PSS_REQUIRE(threshold_offset.empty() || threshold_offset.size() == size(),
              "threshold offset size must equal population size");
  spikes.clear();

  LifFusedStepArgs args;
  args.params = params_;
  args.step.state = {pool_->membrane(), {}, pool_->last_spike(),
                     pool_->inhibited_until(), pool_->spiked()};
  args.step.currents = currents;
  args.step.decay_factor = decay_factor;
  args.step.conductance = conductance;
  args.step.pre_count = pre_count;
  args.step.active_pre = active_pre;
  args.step.amplitude = amplitude;
  args.step.threshold_offset = threshold_offset;
  args.step.now = now;
  args.step.dt = dt;
  Backend& backend = pool_->backend();
  backend.kernels().lif_step_fused(backend.engine(), args);

  collect_spikes(spikes);
}

void LifPopulation::inhibit(NeuronIndex neuron, TimeMs until) {
  PSS_REQUIRE(neuron < size(), "neuron index out of range");
  pool_->inhibited_until()[neuron] = until;
}

void LifPopulation::inhibit_all_except(NeuronIndex winner, TimeMs until) {
  PSS_REQUIRE(winner < size(), "winner index out of range");
  InhibitScanArgs args{pool_->inhibited_until(), winner, until};
  Backend& backend = pool_->backend();
  backend.kernels().inhibit_scan(backend.engine(), args);
}

}  // namespace pss
