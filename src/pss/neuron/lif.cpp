#include "pss/neuron/lif.hpp"

#include "pss/common/error.hpp"

namespace pss {

LifParameters paper_lif_parameters() { return LifParameters{}; }

LifPopulation::LifPopulation(std::size_t size, LifParameters params,
                             Engine* engine)
    : params_(params),
      engine_(engine ? engine : &default_engine()),
      membrane_(size, params.v_init),
      last_spike_(size, kNeverSpiked),
      inhibited_until_(size, -1.0),
      spiked_flag_(size, 0) {
  PSS_REQUIRE(size > 0, "population must not be empty");
  PSS_REQUIRE(params.b < 0.0, "leak coefficient b must be negative");
  PSS_REQUIRE(params.v_reset < params.v_threshold,
              "reset potential must lie below threshold");
}

void LifPopulation::reset() {
  membrane_.fill(params_.v_init);
  last_spike_.fill(kNeverSpiked);
  inhibited_until_.fill(-1.0);
  spiked_flag_.fill(0);
  total_spikes_ = 0;
}

void LifPopulation::step(std::span<const double> input_current, TimeMs now,
                         TimeMs dt, std::vector<NeuronIndex>& spikes,
                         std::span<const double> threshold_offset) {
  PSS_REQUIRE(input_current.size() == size(),
              "current vector size must equal population size");
  PSS_REQUIRE(threshold_offset.empty() || threshold_offset.size() == size(),
              "threshold offset size must equal population size");
  spikes.clear();

  auto v = membrane_.span();
  auto last = last_spike_.span();
  auto inhibited = inhibited_until_.span();
  auto flag = spiked_flag_.span();
  const LifParameters p = params_;

  // Neuron-update kernel: one logical thread per neuron (paper Sec. III-A).
  engine_->launch("lif.step", size(), [&](std::size_t i) {
    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = p.v_reset;  // WTA inhibition pins the loser at reset
      return;
    }
    if (p.refractory_ms > 0.0 && last[i] != kNeverSpiked &&
        now - last[i] < p.refractory_ms) {
      v[i] = p.v_reset;
      return;
    }
    double vi = lif_integrate(p, v[i], input_current[i], dt);
    const double threshold =
        p.v_threshold + (threshold_offset.empty() ? 0.0 : threshold_offset[i]);
    if (vi > threshold) {
      vi = p.v_reset;
      flag[i] = 1;
      last[i] = now;
    }
    v[i] = vi;
  });

  // Host-side compaction of the spike list (cheap: spikes are sparse).
  for (std::size_t i = 0; i < size(); ++i) {
    if (flag[i]) {
      spikes.push_back(static_cast<NeuronIndex>(i));
      ++total_spikes_;
    }
  }
}

void LifPopulation::step_fused(std::span<double> currents, double decay_factor,
                               std::span<const double> conductance,
                               std::size_t pre_count,
                               std::span<const ChannelIndex> active_pre,
                               double amplitude, TimeMs now, TimeMs dt,
                               std::vector<NeuronIndex>& spikes,
                               std::span<const double> threshold_offset) {
  PSS_REQUIRE(currents.size() == size(),
              "current vector size must equal population size");
  PSS_REQUIRE(conductance.size() == size() * pre_count,
              "conductance buffer size must equal size * pre_count");
  PSS_REQUIRE(threshold_offset.empty() || threshold_offset.size() == size(),
              "threshold offset size must equal population size");
  spikes.clear();

  auto v = membrane_.span();
  auto last = last_spike_.span();
  auto inhibited = inhibited_until_.span();
  auto flag = spiked_flag_.span();
  const LifParameters p = params_;

  engine_->launch("lif.fused", size(), [&](std::size_t i) {
    // Synaptic current update (all neurons, inhibited or not — matches the
    // unfused decay + accumulate_currents sequence bit for bit).
    double ci = decay_factor == 0.0 ? 0.0 : currents[i] * decay_factor;
    if (!active_pre.empty()) {
      const double* row = conductance.data() + i * pre_count;
      double acc = 0.0;
      for (ChannelIndex pre : active_pre) acc += row[pre];
      ci += amplitude * acc;
    }
    currents[i] = ci;

    flag[i] = 0;
    if (now <= inhibited[i]) {
      v[i] = p.v_reset;
      return;
    }
    if (p.refractory_ms > 0.0 && last[i] != kNeverSpiked &&
        now - last[i] < p.refractory_ms) {
      v[i] = p.v_reset;
      return;
    }
    double vi = lif_integrate(p, v[i], ci, dt);
    const double threshold =
        p.v_threshold + (threshold_offset.empty() ? 0.0 : threshold_offset[i]);
    if (vi > threshold) {
      vi = p.v_reset;
      flag[i] = 1;
      last[i] = now;
    }
    v[i] = vi;
  });

  for (std::size_t i = 0; i < size(); ++i) {
    if (flag[i]) {
      spikes.push_back(static_cast<NeuronIndex>(i));
      ++total_spikes_;
    }
  }
}

void LifPopulation::inhibit(NeuronIndex neuron, TimeMs until) {
  PSS_REQUIRE(neuron < size(), "neuron index out of range");
  inhibited_until_[neuron] = until;
}

void LifPopulation::inhibit_all_except(NeuronIndex winner, TimeMs until) {
  PSS_REQUIRE(winner < size(), "winner index out of range");
  auto inhibited = inhibited_until_.span();
  for (std::size_t i = 0; i < size(); ++i) {
    if (i != winner && until > inhibited[i]) inhibited[i] = until;
  }
}

}  // namespace pss
