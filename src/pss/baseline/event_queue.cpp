#include "pss/baseline/event_queue.hpp"

namespace pss {

SpikeEventQueue::SpikeEventQueue(std::size_t max_delay_steps)
    : buckets_(max_delay_steps + 1) {
  PSS_REQUIRE(max_delay_steps >= 1, "queue needs at least one step of delay");
}

void SpikeEventQueue::schedule(std::uint32_t synapse_id,
                               std::size_t delay_steps) {
  PSS_REQUIRE(delay_steps >= 1 && delay_steps < buckets_.size(),
              "delay out of range");
  buckets_[(head_ + delay_steps) % buckets_.size()].push_back(synapse_id);
}

void SpikeEventQueue::advance() {
  buckets_[head_].clear();
  head_ = (head_ + 1) % buckets_.size();
}

std::size_t SpikeEventQueue::pending_count() const {
  std::size_t n = 0;
  for (const auto& b : buckets_) n += b.size();
  return n;
}

}  // namespace pss
