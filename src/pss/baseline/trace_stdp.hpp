// Trace-based deterministic STDP, the rule CARLsim implements (its ESTDP
// with exponential curves). Used by the baseline simulator; the pss core
// uses the paper's eq. 4–7 rules instead — having both allows the Fig. 4
// comparison to pit genuinely different learning machinery against each
// other.
//
// Every neuron carries a pre-trace and a post-trace that jump by 1 on a
// spike and decay exponentially. On a pre spike the synapse is depressed in
// proportion to the post-trace (post fired recently => anti-causal); on a
// post spike it is potentiated in proportion to the pre-trace.
#pragma once

#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

struct TraceStdpParams {
  double a_plus = 0.01;     ///< LTP rate
  double a_minus = 0.012;   ///< LTD rate
  double tau_plus_ms = 20.0;
  double tau_minus_ms = 20.0;
  double w_min = 0.0;
  double w_max = 1.0;
};

class TraceStdp {
 public:
  TraceStdp(std::size_t pre_count, std::size_t post_count,
            TraceStdpParams params);

  const TraceStdpParams& params() const { return params_; }

  /// Records a pre-neuron spike and returns the (negative) weight change to
  /// apply to each of its outgoing synapses as a function of the post
  /// neuron: call depression_for(post) while iterating.
  void on_pre_spike(NeuronIndex pre);
  void on_post_spike(NeuronIndex post);

  /// LTD magnitude for a synapse onto `post` at the current traces.
  double depression_for(NeuronIndex post) const;
  /// LTP magnitude for a synapse from `pre` at the current traces.
  double potentiation_for(NeuronIndex pre) const;

  /// Clamped weight update helpers.
  double apply_depression(double w, NeuronIndex post) const;
  double apply_potentiation(double w, NeuronIndex pre) const;

  /// Decays all traces by one step.
  void decay(TimeMs dt);

  std::span<const double> pre_trace() const { return pre_trace_; }
  std::span<const double> post_trace() const { return post_trace_; }

  void reset();

 private:
  TraceStdpParams params_;
  std::vector<double> pre_trace_;
  std::vector<double> post_trace_;
  TimeMs cached_dt_ = -1.0;
  double decay_pre_ = 0.0;
  double decay_post_ = 0.0;
};

}  // namespace pss
