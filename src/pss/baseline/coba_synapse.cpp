#include "pss/baseline/coba_synapse.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

CobaState::CobaState(std::size_t neuron_count, ReceptorParams params,
                     bool conductance_based)
    : params_(params),
      conductance_based_(conductance_based),
      g_exc_(neuron_count, 0.0),
      g_inh_(neuron_count, 0.0) {
  PSS_REQUIRE(neuron_count > 0, "need at least one neuron");
  PSS_REQUIRE(params.tau_exc_ms > 0.0 && params.tau_inh_ms > 0.0,
              "receptor time constants must be positive");
}

void CobaState::deliver(NeuronIndex post, double w, bool inhibitory) {
  PSS_DASSERT(post < g_exc_.size());
  PSS_DASSERT(w >= 0.0);
  if (inhibitory) {
    g_inh_[post] += w;
  } else {
    g_exc_[post] += w;
  }
}

void CobaState::currents_and_decay(std::span<const double> membrane, TimeMs dt,
                                   std::span<double> currents) {
  PSS_REQUIRE(membrane.size() == g_exc_.size() &&
                  currents.size() == g_exc_.size(),
              "vector sizes must match neuron count");
  if (dt != cached_dt_) {
    cached_dt_ = dt;
    decay_exc_ = std::exp(-dt / params_.tau_exc_ms);
    decay_inh_ = std::exp(-dt / params_.tau_inh_ms);
  }
  for (std::size_t i = 0; i < g_exc_.size(); ++i) {
    if (conductance_based_) {
      currents[i] += g_exc_[i] * (params_.e_exc - membrane[i]) +
                     g_inh_[i] * (params_.e_inh - membrane[i]);
    } else {
      // CUBA: decaying current injection, inhibition as negative current.
      currents[i] += g_exc_[i] - g_inh_[i];
    }
    g_exc_[i] *= decay_exc_;
    g_inh_[i] *= decay_inh_;
  }
}

void CobaState::reset() {
  std::fill(g_exc_.begin(), g_exc_.end(), 0.0);
  std::fill(g_inh_.begin(), g_inh_.end(), 0.0);
}

}  // namespace pss
