#include "pss/baseline/trace_stdp.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

TraceStdp::TraceStdp(std::size_t pre_count, std::size_t post_count,
                     TraceStdpParams params)
    : params_(params),
      pre_trace_(pre_count, 0.0),
      post_trace_(post_count, 0.0) {
  PSS_REQUIRE(params.tau_plus_ms > 0.0 && params.tau_minus_ms > 0.0,
              "trace time constants must be positive");
  PSS_REQUIRE(params.w_max > params.w_min, "weight range must be non-empty");
}

void TraceStdp::on_pre_spike(NeuronIndex pre) {
  PSS_DASSERT(pre < pre_trace_.size());
  pre_trace_[pre] += 1.0;
}

void TraceStdp::on_post_spike(NeuronIndex post) {
  PSS_DASSERT(post < post_trace_.size());
  post_trace_[post] += 1.0;
}

double TraceStdp::depression_for(NeuronIndex post) const {
  PSS_DASSERT(post < post_trace_.size());
  return params_.a_minus * post_trace_[post];
}

double TraceStdp::potentiation_for(NeuronIndex pre) const {
  PSS_DASSERT(pre < pre_trace_.size());
  return params_.a_plus * pre_trace_[pre];
}

double TraceStdp::apply_depression(double w, NeuronIndex post) const {
  return std::max(params_.w_min, w - depression_for(post));
}

double TraceStdp::apply_potentiation(double w, NeuronIndex pre) const {
  return std::min(params_.w_max, w + potentiation_for(pre));
}

void TraceStdp::decay(TimeMs dt) {
  if (dt != cached_dt_) {
    cached_dt_ = dt;
    decay_pre_ = std::exp(-dt / params_.tau_plus_ms);
    decay_post_ = std::exp(-dt / params_.tau_minus_ms);
  }
  for (double& t : pre_trace_) t *= decay_pre_;
  for (double& t : post_trace_) t *= decay_post_;
}

void TraceStdp::reset() {
  std::fill(pre_trace_.begin(), pre_trace_.end(), 0.0);
  std::fill(post_trace_.begin(), post_trace_.end(), 0.0);
}

}  // namespace pss
