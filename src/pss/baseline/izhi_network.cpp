#include "pss/baseline/izhi_network.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

BaselineNetwork::BaselineNetwork(BaselineConfig config)
    : config_(config) {
  PSS_REQUIRE(config.dt > 0.0, "dt must be positive");
}

int BaselineNetwork::add_group(const std::string& name, std::size_t size,
                               IzhikevichParameters params, bool inhibitory) {
  PSS_REQUIRE(!finalized_, "cannot add groups after run()");
  PSS_REQUIRE(size > 0, "group must not be empty");
  Group g;
  g.name = name;
  g.offset = neuron_params_.size();
  g.size = size;
  g.inhibitory = inhibitory;
  groups_.push_back(g);
  for (std::size_t i = 0; i < size; ++i) {
    neuron_params_.push_back(params);
    v_.push_back(params.v_init);
    u_.push_back(params.b * params.v_init);
  }
  return static_cast<int>(groups_.size()) - 1;
}

std::size_t BaselineNetwork::group_size(int group) const {
  PSS_REQUIRE(group >= 0 && static_cast<std::size_t>(group) < groups_.size(),
              "group id out of range");
  return groups_[static_cast<std::size_t>(group)].size;
}

int BaselineNetwork::connect(int pre_group, int post_group,
                             const std::vector<Connection>& connections) {
  PSS_REQUIRE(!finalized_, "cannot connect after run()");
  const Group& pre = groups_.at(static_cast<std::size_t>(pre_group));
  const Group& post = groups_.at(static_cast<std::size_t>(post_group));
  validate_connections(connections, pre.size, post.size);

  ConnectionSet set;
  set.pre_group = pre_group;
  set.post_group = post_group;
  set.first_synapse = syn_pre_.size();
  set.count = connections.size();
  sets_.push_back(set);

  for (const auto& c : connections) {
    syn_pre_.push_back(static_cast<NeuronIndex>(pre.offset + c.pre));
    syn_post_.push_back(static_cast<NeuronIndex>(post.offset + c.post));
    syn_weight_.push_back(c.weight);
    syn_delay_steps_.push_back(static_cast<std::uint16_t>(
        std::max(1.0, std::round(c.delay_ms / config_.dt))));
    syn_inhibitory_.push_back(pre.inhibitory ? 1 : 0);
    syn_plastic_.push_back(0);
  }
  return static_cast<int>(sets_.size()) - 1;
}

void BaselineNetwork::set_poisson_drive(int group, double rate_hz,
                                        double amplitude) {
  Group& g = groups_.at(static_cast<std::size_t>(group));
  PSS_REQUIRE(rate_hz >= 0.0, "rate must be non-negative");
  g.poisson_rate_hz = rate_hz;
  g.poisson_amplitude = amplitude;
}

void BaselineNetwork::enable_stdp(int connection_set, TraceStdpParams params) {
  PSS_REQUIRE(!finalized_, "cannot enable STDP after run()");
  ConnectionSet& set = sets_.at(static_cast<std::size_t>(connection_set));
  set.plastic = true;
  any_plastic_ = true;
  for (std::size_t k = 0; k < set.count; ++k) {
    syn_plastic_[set.first_synapse + k] = 1;
  }
  stdp_ = std::make_unique<TraceStdp>(neuron_count(), neuron_count(), params);
}

void BaselineNetwork::finalize() {
  const std::size_t n = neuron_count();
  PSS_REQUIRE(n > 0, "network has no neurons");

  // Forward CSR: synapses grouped by pre.
  csr_offsets_.assign(n + 1, 0);
  for (NeuronIndex pre : syn_pre_) csr_offsets_[pre + 1]++;
  for (std::size_t i = 1; i <= n; ++i) csr_offsets_[i] += csr_offsets_[i - 1];
  csr_synapse_.resize(syn_pre_.size());
  {
    std::vector<std::uint32_t> cursor(csr_offsets_.begin(),
                                      csr_offsets_.end() - 1);
    for (std::size_t s = 0; s < syn_pre_.size(); ++s) {
      csr_synapse_[cursor[syn_pre_[s]]++] = static_cast<std::uint32_t>(s);
    }
  }

  if (any_plastic_) {
    rev_offsets_.assign(n + 1, 0);
    for (NeuronIndex post : syn_post_) rev_offsets_[post + 1]++;
    for (std::size_t i = 1; i <= n; ++i) rev_offsets_[i] += rev_offsets_[i - 1];
    rev_synapse_.resize(syn_post_.size());
    std::vector<std::uint32_t> cursor(rev_offsets_.begin(),
                                      rev_offsets_.end() - 1);
    for (std::size_t s = 0; s < syn_post_.size(); ++s) {
      rev_synapse_[cursor[syn_post_[s]]++] = static_cast<std::uint32_t>(s);
    }
  }

  std::size_t max_delay = 1;
  for (std::uint16_t d : syn_delay_steps_) {
    max_delay = std::max<std::size_t>(max_delay, d);
  }
  queue_ = std::make_unique<SpikeEventQueue>(max_delay);
  coba_ = std::make_unique<CobaState>(n, config_.receptors,
                                      config_.conductance_based);
  finalized_ = true;
}

ActivityResult BaselineNetwork::run(TimeMs duration_ms,
                                    std::size_t max_recorded) {
  PSS_REQUIRE(duration_ms > 0.0, "duration must be positive");
  if (!finalized_) finalize();

  const std::size_t n = neuron_count();
  const TimeMs dt = config_.dt;
  const auto steps = static_cast<StepIndex>(std::ceil(duration_ms / dt));

  PoissonEncoder drive(n, config_.seed);
  {
    std::vector<double> rates(n, 0.0);
    for (const Group& g : groups_) {
      for (std::size_t i = 0; i < g.size; ++i) {
        rates[g.offset + i] = g.poisson_rate_hz;
      }
    }
    drive.set_rates(rates);
  }

  std::vector<double> currents(n, 0.0);
  std::vector<ChannelIndex> external;
  std::vector<NeuronIndex> spikes;

  ActivityResult result;
  result.per_neuron_spikes.assign(n, 0);

  Stopwatch clock;
  for (StepIndex s = 0; s < steps; ++s) {
    now_ += dt;
    ++step_;
    std::fill(currents.begin(), currents.end(), 0.0);

    // 1. External Poisson drive (direct current injection, CARLsim's
    //    current-injection input mode); amplitude depends on the owning
    //    group.
    drive.active_channels(step_, dt, external);
    for (ChannelIndex c : external) {
      for (const Group& g : groups_) {
        if (c >= g.offset && c < g.offset + g.size) {
          currents[c] += g.poisson_amplitude;
          break;
        }
      }
    }

    // 2. Due spike deliveries -> receptor state, plus LTD on pre spikes
    //    (handled at schedule time), then receptor currents + decay.
    for (std::uint32_t syn : queue_->due()) {
      coba_->deliver(syn_post_[syn], std::max(0.0, syn_weight_[syn]),
                     syn_inhibitory_[syn] != 0);
    }
    queue_->advance();
    coba_->currents_and_decay(v_, dt, currents);

    // 3. Neuron update.
    spikes.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (izhikevich_step(neuron_params_[i], v_[i], u_[i], currents[i], dt)) {
        spikes.push_back(static_cast<NeuronIndex>(i));
      }
    }

    // 4. Spike handling: schedule deliveries, STDP.
    for (NeuronIndex j : spikes) {
      ++result.per_neuron_spikes[j];
      ++result.total_spikes;
      if (result.raster.size() < max_recorded) {
        result.raster.emplace_back(now_, j);
      }
      if (stdp_) {
        // Post-spike LTP on incoming plastic synapses.
        stdp_->on_post_spike(j);
        for (std::uint32_t k = rev_offsets_[j]; k < rev_offsets_[j + 1]; ++k) {
          const std::uint32_t syn = rev_synapse_[k];
          if (syn_plastic_[syn]) {
            syn_weight_[syn] =
                stdp_->apply_potentiation(syn_weight_[syn], syn_pre_[syn]);
          }
        }
        // Pre-spike LTD on outgoing plastic synapses.
        stdp_->on_pre_spike(j);
        for (std::uint32_t k = csr_offsets_[j]; k < csr_offsets_[j + 1]; ++k) {
          const std::uint32_t syn = csr_synapse_[k];
          if (syn_plastic_[syn]) {
            syn_weight_[syn] =
                stdp_->apply_depression(syn_weight_[syn], syn_post_[syn]);
          }
        }
      }
      for (std::uint32_t k = csr_offsets_[j]; k < csr_offsets_[j + 1]; ++k) {
        const std::uint32_t syn = csr_synapse_[k];
        queue_->schedule(syn, syn_delay_steps_[syn]);
      }
    }
    if (stdp_) stdp_->decay(dt);
  }
  result.wall_seconds = clock.seconds();
  result.mean_rate_hz = static_cast<double>(result.total_spikes) /
                        static_cast<double>(n) / (duration_ms * 1e-3);
  result.steps_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(steps) / result.wall_seconds
          : 0.0;
  return result;
}

double BaselineNetwork::weight(int connection_set, std::size_t index) const {
  const ConnectionSet& set = sets_.at(static_cast<std::size_t>(connection_set));
  PSS_REQUIRE(index < set.count, "connection index out of range");
  return syn_weight_[set.first_synapse + index];
}

std::size_t BaselineNetwork::connection_count(int connection_set) const {
  return sets_.at(static_cast<std::size_t>(connection_set)).count;
}

}  // namespace pss
