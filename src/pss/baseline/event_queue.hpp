// Delayed spike-event delivery for the CARLsim-style baseline simulator.
//
// CARLsim delivers each spike to its targets after a per-connection axonal
// delay; this ring buffer holds, per future step, the list of synapse ids
// whose spike arrives then. Capacity covers the maximum delay in the
// network.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/error.hpp"

namespace pss {

class SpikeEventQueue {
 public:
  /// `max_delay_steps` is the largest schedulable delay.
  explicit SpikeEventQueue(std::size_t max_delay_steps);

  /// Schedules synapse `synapse_id` to fire `delay_steps` from now
  /// (1 <= delay_steps <= max_delay_steps).
  void schedule(std::uint32_t synapse_id, std::size_t delay_steps);

  /// Events due at the current step (valid until the next advance()).
  const std::vector<std::uint32_t>& due() const { return buckets_[head_]; }

  /// Clears the current slot and moves to the next step.
  void advance();

  std::size_t pending_count() const;

 private:
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::size_t head_ = 0;
};

}  // namespace pss
