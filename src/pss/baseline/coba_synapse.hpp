// Conductance-based (COBA) receptor dynamics, CARLsim-style.
//
// Each post-neuron carries exponentially decaying excitatory (AMPA-like) and
// inhibitory (GABA-like) conductances; an arriving spike increments the
// matching conductance by the synaptic weight, and the membrane current is
//   I = g_exc·(E_exc − v) + g_inh·(E_inh − v).
// A current-based (CUBA) mode is also provided (decaying current injection),
// matching CARLsim's two synapse modes.
#pragma once

#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

struct ReceptorParams {
  double tau_exc_ms = 5.0;    ///< AMPA decay
  double e_exc = 0.0;         ///< excitatory reversal potential (mV)
  double tau_inh_ms = 10.0;   ///< GABA-A decay
  double e_inh = -70.0;       ///< inhibitory reversal potential (mV)
};

class CobaState {
 public:
  CobaState(std::size_t neuron_count, ReceptorParams params,
            bool conductance_based = true);

  std::size_t size() const { return g_exc_.size(); }
  bool conductance_based() const { return conductance_based_; }
  const ReceptorParams& params() const { return params_; }

  /// Registers an arriving spike with weight `w` (w >= 0; sign selected by
  /// `inhibitory`).
  void deliver(NeuronIndex post, double w, bool inhibitory);

  /// Total synaptic current for each neuron given its membrane potential,
  /// then decays the conductances by one step.
  void currents_and_decay(std::span<const double> membrane, TimeMs dt,
                          std::span<double> currents);

  std::span<const double> g_exc() const { return g_exc_; }
  std::span<const double> g_inh() const { return g_inh_; }

  void reset();

 private:
  ReceptorParams params_;
  bool conductance_based_;
  std::vector<double> g_exc_;
  std::vector<double> g_inh_;
  TimeMs cached_dt_ = -1.0;
  double decay_exc_ = 0.0;
  double decay_inh_ = 0.0;
};

}  // namespace pss
