// CARLsim-style reference simulator (DESIGN.md substitution for CARLsim 4).
//
// Follows CARLsim's model choices: Izhikevich 4-parameter neurons organised
// in groups, COBA (or CUBA) synapses, per-connection axonal delays delivered
// through an event queue, fixed 1 ms integration steps, Poisson external
// drive, and optional trace-based ESTDP. It is the second simulator of the
// Fig. 4 comparison ("our platform is able to produce spiking activities
// similar to CARLsim") and a usable mini-simulator in its own right.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pss/baseline/coba_synapse.hpp"
#include "pss/baseline/event_queue.hpp"
#include "pss/baseline/trace_stdp.hpp"
#include "pss/common/rng.hpp"
#include "pss/common/stopwatch.hpp"
#include "pss/network/simulation.hpp"  // ActivityResult
#include "pss/network/topology.hpp"
#include "pss/neuron/izhikevich.hpp"

namespace pss {

struct BaselineConfig {
  TimeMs dt = kDefaultDtMs;
  bool conductance_based = true;
  ReceptorParams receptors;
  std::uint64_t seed = 42;
};

class BaselineNetwork {
 public:
  explicit BaselineNetwork(BaselineConfig config = {});

  /// Adds a neuron group; returns its group id. Inhibitory groups deliver
  /// onto the inhibitory receptor.
  int add_group(const std::string& name, std::size_t size,
                IzhikevichParameters params, bool inhibitory = false);

  std::size_t group_size(int group) const;
  std::size_t neuron_count() const { return neuron_params_.size(); }

  /// Wires `connections` (indices local to each group) from pre_group to
  /// post_group. Must be called before run(). Returns the connection-set id.
  int connect(int pre_group, int post_group,
              const std::vector<Connection>& connections);

  /// Applies independent Poisson current drive to a group (rate per neuron).
  void set_poisson_drive(int group, double rate_hz, double amplitude);

  /// Enables trace STDP on a connection set (weights clamped to the params'
  /// range).
  void enable_stdp(int connection_set, TraceStdpParams params);

  /// Runs for `duration_ms`, recording activity. Can be called repeatedly;
  /// state persists between calls.
  ActivityResult run(TimeMs duration_ms, std::size_t max_recorded = 20000);

  /// Weight of the k-th connection of a set (post-construction inspection).
  double weight(int connection_set, std::size_t index) const;
  std::size_t connection_count(int connection_set) const;

 private:
  struct Group {
    std::string name;
    std::size_t offset;
    std::size_t size;
    bool inhibitory;
    double poisson_rate_hz = 0.0;
    double poisson_amplitude = 0.0;
  };

  struct ConnectionSet {
    int pre_group;
    int post_group;
    std::size_t first_synapse;
    std::size_t count;
    bool plastic = false;
  };

  void finalize();

  BaselineConfig config_;
  std::vector<Group> groups_;
  std::vector<ConnectionSet> sets_;

  // Flat synapse arrays (global indices).
  std::vector<NeuronIndex> syn_pre_;
  std::vector<NeuronIndex> syn_post_;
  std::vector<double> syn_weight_;
  std::vector<std::uint16_t> syn_delay_steps_;
  std::vector<std::uint8_t> syn_inhibitory_;
  std::vector<std::uint8_t> syn_plastic_;

  // Per-pre CSR over synapses (built lazily at first run).
  bool finalized_ = false;
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<std::uint32_t> csr_synapse_;
  // Per-post CSR (built only when STDP is active).
  std::vector<std::uint32_t> rev_offsets_;
  std::vector<std::uint32_t> rev_synapse_;

  // Neuron state.
  std::vector<IzhikevichParameters> neuron_params_;
  std::vector<double> v_;
  std::vector<double> u_;

  std::unique_ptr<CobaState> coba_;
  std::unique_ptr<SpikeEventQueue> queue_;
  std::unique_ptr<TraceStdp> stdp_;
  bool any_plastic_ = false;

  StepIndex step_ = 0;
  TimeMs now_ = 0.0;
};

}  // namespace pss
