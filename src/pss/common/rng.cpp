#include "pss/common/rng.hpp"

#include <cmath>

namespace pss {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline std::uint32_t mulhi(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
}

inline std::uint32_t mullo(std::uint32_t a, std::uint32_t b) {
  return a * b;
}

inline std::array<std::uint32_t, 4> round_once(
    const std::array<std::uint32_t, 4>& ctr,
    const std::array<std::uint32_t, 2>& key) {
  const std::uint32_t hi0 = mulhi(kPhiloxM0, ctr[0]);
  const std::uint32_t lo0 = mullo(kPhiloxM0, ctr[0]);
  const std::uint32_t hi1 = mulhi(kPhiloxM1, ctr[2]);
  const std::uint32_t lo1 = mullo(kPhiloxM1, ctr[2]);
  return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

std::array<std::uint32_t, 4> philox4x32(std::array<std::uint32_t, 4> counter,
                                        std::array<std::uint32_t, 2> key) {
  for (int r = 0; r < 10; ++r) {
    counter = round_once(counter, key);
    key[0] += kPhiloxW0;
    key[1] += kPhiloxW1;
  }
  return counter;
}

std::uint32_t CounterRng::bits(std::uint64_t counter) const {
  const std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(counter),
      static_cast<std::uint32_t>(counter >> 32),
      static_cast<std::uint32_t>(stream_),
      static_cast<std::uint32_t>(stream_ >> 32)};
  const std::array<std::uint32_t, 2> key = {
      static_cast<std::uint32_t>(seed_),
      static_cast<std::uint32_t>(seed_ >> 32)};
  return philox4x32(ctr, key)[0];
}

double CounterRng::uniform(std::uint64_t counter) const {
  // 32 bits is plenty of resolution for Bernoulli gates; scale to [0,1).
  return bits(counter) * (1.0 / 4294967296.0);
}

void CounterRng::uniform_many(std::uint64_t first, std::span<double> out) const {
  uniform_many(first, 1, out);
}

void CounterRng::uniform_many(std::uint64_t first, std::uint64_t stride,
                              std::span<double> out) const {
  const std::uint32_t s0 = static_cast<std::uint32_t>(stream_);
  const std::uint32_t s1 = static_cast<std::uint32_t>(stream_ >> 32);
  const std::uint32_t k0 = static_cast<std::uint32_t>(seed_);
  const std::uint32_t k1 = static_cast<std::uint32_t>(seed_ >> 32);

  constexpr std::size_t kLanes = 8;
  std::size_t i = 0;
  for (; i + kLanes <= out.size(); i += kLanes) {
    // Interleaved lanes: each runs the same key schedule, so the key update
    // stays scalar while the per-lane round bodies form independent chains.
    std::uint32_t c0[kLanes], c1[kLanes], c2[kLanes], c3[kLanes];
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      const std::uint64_t counter = first + (i + lane) * stride;
      c0[lane] = static_cast<std::uint32_t>(counter);
      c1[lane] = static_cast<std::uint32_t>(counter >> 32);
      c2[lane] = s0;
      c3[lane] = s1;
    }
    std::uint32_t key0 = k0;
    std::uint32_t key1 = k1;
    for (int r = 0; r < 10; ++r) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const std::uint32_t hi0 = mulhi(kPhiloxM0, c0[lane]);
        const std::uint32_t lo0 = mullo(kPhiloxM0, c0[lane]);
        const std::uint32_t hi1 = mulhi(kPhiloxM1, c2[lane]);
        const std::uint32_t lo1 = mullo(kPhiloxM1, c2[lane]);
        c0[lane] = hi1 ^ c1[lane] ^ key0;
        c1[lane] = lo1;
        c2[lane] = hi0 ^ c3[lane] ^ key1;
        c3[lane] = lo0;
      }
      key0 += kPhiloxW0;
      key1 += kPhiloxW1;
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      out[i + lane] = c0[lane] * (1.0 / 4294967296.0);
    }
  }
  for (; i < out.size(); ++i) out[i] = uniform(first + i * stride);
}

double CounterRng::uniform(std::uint64_t counter, double lo, double hi) const {
  return lo + (hi - lo) * uniform(counter);
}

bool CounterRng::bernoulli(std::uint64_t counter, double p) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform(counter) < p;
}

std::uint32_t CounterRng::below(std::uint64_t counter, std::uint32_t n) const {
  // Lemire's multiply-shift; bias is < 2^-32 per draw, irrelevant here.
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(bits(counter)) * n) >> 32);
}

double CounterRng::normal(std::uint64_t counter) const {
  // Box–Muller on two independent indexed uniforms. Using 2*counter and
  // 2*counter+1 keeps draws for distinct counters independent.
  const double u1 = uniform(2 * counter);
  const double u2 = uniform(2 * counter + 1);
  const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
  return r * std::cos(6.283185307179586 * u2);
}

CounterRng CounterRng::fork(std::uint64_t substream) const {
  // SplitMix-style mix so fork(0) differs from the parent stream.
  std::uint64_t z = stream_ + 0x9E3779B97F4A7C15ull * (substream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return CounterRng(seed_, z ^ (z >> 31));
}

}  // namespace pss
