// Core vocabulary types shared by every pss module.
//
// The simulator operates on a fixed-step clock (paper Sec. III-A simulates
// the LIF differential equations with explicit Euler steps). Times are
// expressed in milliseconds of *biological* time; wall-clock measurements use
// pss::Stopwatch instead so the two cannot be confused.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace pss {

/// Index of a neuron inside a population/layer.
using NeuronIndex = std::uint32_t;

/// Index of an input channel (one spike train per pixel, paper Fig. 3).
using ChannelIndex = std::uint32_t;

/// Flat index of a synapse inside a ConductanceMatrix.
using SynapseIndex = std::uint64_t;

/// Biological simulation time in milliseconds.
using TimeMs = double;

/// Discrete simulation step count.
using StepIndex = std::uint64_t;

/// Class label of a dataset sample (0..9 for MNIST-like sets).
using Label = std::uint8_t;

/// Sentinel for "this neuron/channel has never spiked".
inline constexpr TimeMs kNeverSpiked = -std::numeric_limits<TimeMs>::infinity();

/// Simulation step width used throughout the paper's experiments.
inline constexpr TimeMs kDefaultDtMs = 1.0;

/// Side length of MNIST-format images; the paper's network has 28*28 = 784
/// input spike trains.
inline constexpr std::size_t kImageSide = 28;
inline constexpr std::size_t kImagePixels = kImageSide * kImageSide;

/// Number of excitatory neurons in the paper's first layer (Sec. III-B).
inline constexpr std::size_t kPaperLayerSize = 1000;

}  // namespace pss
