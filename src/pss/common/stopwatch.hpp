// Wall-clock measurement, kept distinct from biological TimeMs on purpose.
#pragma once

#include <chrono>

namespace pss {

/// Monotonic stopwatch used by the Fig. 4 / Fig. 7b / Fig. 8 run-time
/// measurements.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset();

  /// Seconds elapsed since construction or last reset().
  double seconds() const;

  /// Milliseconds elapsed since construction or last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pss
