// Error handling: one exception type plus precondition macros.
//
// Following the Core Guidelines (E.2, I.6): interfaces state preconditions and
// violations throw rather than corrupt state. Hot simulation kernels use
// assertions only in debug builds via PSS_DASSERT.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pss {

/// Exception thrown for any precondition/configuration violation in pss.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure that is expected to succeed if retried (I/O hiccup, injected
/// transient fault). BatchRunner re-attempts work items that throw this, up
/// to its retry budget; everything else is treated as permanent.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace pss

/// Precondition check that is always active (cheap checks on API boundaries).
#define PSS_REQUIRE(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) ::pss::detail::raise(#cond, __FILE__, __LINE__, msg); \
  } while (0)

/// Debug-only assertion for hot inner loops.
#ifdef NDEBUG
#define PSS_DASSERT(cond) ((void)0)
#else
#define PSS_DASSERT(cond) assert(cond)
#endif
