// "Did you mean" suggestions for identifier-like strings (config keys,
// backend names, layer-spec keys). Extracted from tools/run_options so the
// library-side spec parsers (graph layer grammar) share the one tolerance
// policy instead of growing private copies.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace pss {

/// Classic Levenshtein distance, used only on short identifier-like strings
/// (keys, backend names) to power "did you mean" suggestions.
inline std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

/// " — did you mean 'x'?" when some candidate is close enough, else "".
inline std::string suggestion_for(const std::string& got,
                                  const std::vector<std::string>& candidates) {
  std::size_t best = got.size() >= 5 ? 3 : 2;  // tolerance scales with length
  const std::string* pick = nullptr;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(got, c);
    if (d < best) {
      best = d;
      pick = &c;
    }
  }
  return pick ? " — did you mean '" + *pick + "'?" : "";
}

}  // namespace pss
