// Deterministic capped-exponential backoff — the one retry-delay policy
// shared by every retry path in the tree (BatchRunner transient retries,
// pss_serve request requeue after a worker fault).
//
// Determinism contract: the delay for (stream, attempt) is a pure function
// of the policy fields — the exponential ramp is plain arithmetic and the
// optional jitter is a counter-indexed Philox draw keyed by (seed, stream,
// attempt), mirroring the simulator's RNG discipline. Two runs with the same
// policy therefore compute bit-for-bit the same retry schedule, so a
// fault-injected run is as reproducible as a clean one (tests assert this).
// Only the *delays* are deterministic; whether they are slept through or
// recorded as not-before timestamps is the caller's business, and neither
// feeds back into simulation state.
#pragma once

#include <algorithm>
#include <cstdint>

#include "pss/common/rng.hpp"

namespace pss {

struct BackoffPolicy {
  double base_ms = 1.0;     ///< delay for attempt 0 (before jitter)
  double cap_ms = 64.0;     ///< upper clamp on the exponential ramp
  double multiplier = 2.0;  ///< per-attempt growth factor
  /// Jitter fraction in [0, 1): the computed delay is scaled by
  /// (1 - jitter * u) with u a deterministic uniform draw, spreading
  /// simultaneous retries apart without losing reproducibility. 0 = none.
  double jitter = 0.0;
  std::uint64_t seed = 0xb0ffu;  ///< Philox seed for the jitter stream

  /// Delay in milliseconds before retry number `attempt` (0-based) of the
  /// work item / request identified by `stream`. Pure function — see the
  /// header comment for the determinism contract.
  double delay_ms(std::uint64_t stream, std::uint64_t attempt) const {
    double delay = base_ms;
    for (std::uint64_t i = 0; i < attempt && delay < cap_ms; ++i) {
      delay *= multiplier;
    }
    delay = std::min(delay, cap_ms);
    if (jitter > 0.0) {
      const CounterRng rng(seed, stream);
      delay *= 1.0 - jitter * rng.uniform(attempt);
    }
    return delay;
  }
};

}  // namespace pss
