// Minimal leveled logger for the simulator and the experiment harnesses.
//
// Experiments print their tables to stdout; diagnostic chatter goes through
// this logger so benches can silence it (set_level(Level::kWarn)).
#pragma once

#include <sstream>
#include <string>

namespace pss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (thread-safe) if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pss

#define PSS_LOG_DEBUG ::pss::detail::LogLine(::pss::LogLevel::kDebug)
#define PSS_LOG_INFO ::pss::detail::LogLine(::pss::LogLevel::kInfo)
#define PSS_LOG_WARN ::pss::detail::LogLine(::pss::LogLevel::kWarn)
#define PSS_LOG_ERROR ::pss::detail::LogLine(::pss::LogLevel::kError)
