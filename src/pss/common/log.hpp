// Minimal leveled logger for the simulator and the experiment harnesses.
//
// Experiments print their tables to stdout; diagnostic chatter goes through
// this logger so benches can silence it (set_level(Level::kWarn)).
//
// Each emitted line carries an ISO-8601 UTC timestamp and a level tag:
//   2026-08-05T12:34:56.789Z [pss INFO] trained 400 images ...
// Output goes to a pluggable sink (stderr by default); tests install their
// own sink via set_log_sink to capture lines instead of scraping stderr.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace pss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every formatted line that passes the threshold. The string is
/// the complete line (timestamp + level tag + message, no trailing newline).
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Replaces the output sink. An empty sink restores the stderr default.
/// The sink is invoked under the logger's mutex, so it may be stateful.
void set_log_sink(LogSink sink);

/// "DEBUG" / "INFO" / "WARN" / "ERROR".
const char* log_level_name(LogLevel level);

/// Formats `message` the way the logger emits it: ISO-8601 UTC timestamp
/// with millisecond precision, then "[pss LEVEL]", then the message.
std::string format_log_line(LogLevel level, const std::string& message);

/// Emit one log line (thread-safe) if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pss

#define PSS_LOG_DEBUG ::pss::detail::LogLine(::pss::LogLevel::kDebug)
#define PSS_LOG_INFO ::pss::detail::LogLine(::pss::LogLevel::kInfo)
#define PSS_LOG_WARN ::pss::detail::LogLine(::pss::LogLevel::kWarn)
#define PSS_LOG_ERROR ::pss::detail::LogLine(::pss::LogLevel::kError)
