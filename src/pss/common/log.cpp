#include "pss/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

namespace pss {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;
LogSink g_sink;  // guarded by g_mutex; empty => stderr default
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string format_log_line(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char head[64];
  std::snprintf(head, sizeof(head),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ [pss %s] ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                log_level_name(level));
  return std::string(head) + message;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::string line = format_log_line(level, message);
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace pss
