// Counter-based random number generation (Philox-4x32-10).
//
// The paper performs the stochastic STDP draw "on-board the GPU to leverage
// the fast CUDA random number generator" (Sec. III-A). cuRAND's default
// device generator is counter-based: each GPU thread derives an independent
// stream from (seed, subsequence, offset) with no shared mutable state.
//
// We reproduce that discipline on the CPU with Philox-4x32-10 (Salmon et al.,
// SC'11 — the same family cuRAND ships). Determinism contract: a draw is a
// pure function of (seed, stream, counter), so simulations are reproducible
// regardless of how the engine schedules threads, exactly as on the GPU.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace pss {

/// Raw Philox-4x32-10 block function: maps a 128-bit counter and 64-bit key
/// to 128 bits of output. Stateless; safe to call concurrently.
std::array<std::uint32_t, 4> philox4x32(std::array<std::uint32_t, 4> counter,
                                        std::array<std::uint32_t, 2> key);

/// A stateless random stream: draws are indexed, not sequential.
///
/// `stream` typically identifies the consumer (e.g. a synapse or thread) and
/// `counter` advances with simulation events, mirroring cuRAND's
/// (subsequence, offset) addressing.
class CounterRng {
 public:
  CounterRng() = default;
  explicit CounterRng(std::uint64_t seed, std::uint64_t stream = 0)
      : seed_(seed), stream_(stream) {}

  /// 32 uniform random bits for event index `counter`.
  std::uint32_t bits(std::uint64_t counter) const;

  /// Uniform double in [0, 1) for event index `counter`.
  double uniform(std::uint64_t counter) const;

  /// Bulk draw: out[i] = uniform(first + i), bitwise-identical to the
  /// per-call form. Evaluates Philox blocks in interleaved groups so the
  /// ten-round dependency chain pipelines across lanes (and auto-vectorizes),
  /// which is several times faster than n scalar calls.
  void uniform_many(std::uint64_t first, std::span<double> out) const;

  /// Strided bulk draw: out[i] = uniform(first + i * stride), bitwise
  /// identical to the per-call form. Lets callers that consume one slot out
  /// of a fixed-size per-event draw group (e.g. the STDP row kernel's
  /// kDrawsPerEvent layout) pull just that slot without paying Philox for
  /// the unused counters — indexed draws are independent, so skipping
  /// counters never changes the values drawn at the others.
  void uniform_many(std::uint64_t first, std::uint64_t stride,
                    std::span<double> out) const;

  /// Uniform double in [lo, hi) for event index `counter`.
  double uniform(std::uint64_t counter, double lo, double hi) const;

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool bernoulli(std::uint64_t counter, double p) const;

  /// Uniform integer in [0, n) — rejection-free modulo with 64-bit widening.
  std::uint32_t below(std::uint64_t counter, std::uint32_t n) const;

  /// Standard normal variate (Box–Muller on two indexed uniforms).
  double normal(std::uint64_t counter) const;

  std::uint64_t seed() const { return seed_; }
  std::uint64_t stream() const { return stream_; }

  /// Derive an independent stream (e.g. one per neuron or per kernel).
  CounterRng fork(std::uint64_t substream) const;

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t stream_ = 0;
};

/// Convenience sequential adapter over CounterRng for code that wants a
/// classic generator interface (dataset synthesis, shuffles). Satisfies
/// std::uniform_random_bit_generator so it plugs into <random> and
/// std::shuffle.
class SequentialRng {
 public:
  using result_type = std::uint32_t;

  SequentialRng() = default;
  explicit SequentialRng(std::uint64_t seed, std::uint64_t stream = 0)
      : rng_(seed, stream) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()() { return rng_.bits(next_++); }

  double uniform() { return rng_.uniform(next_++); }
  double uniform(double lo, double hi) { return rng_.uniform(next_++, lo, hi); }
  bool bernoulli(double p) { return rng_.bernoulli(next_++, p); }
  std::uint32_t below(std::uint32_t n) { return rng_.below(next_++, n); }
  double normal() { return rng_.normal(next_++); }

  const CounterRng& base() const { return rng_; }

 private:
  CounterRng rng_;
  std::uint64_t next_ = 0;
};

}  // namespace pss
