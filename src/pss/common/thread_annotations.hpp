// Clang thread-safety (capability) annotation macros.
//
// The determinism contracts (bitwise worker-count invariance, checkpoint
// resume, cross-backend equivalence) all hinge on shared state being mutated
// only under the right lock or through atomics. Runtime tests catch races we
// happen to execute; these annotations let `-Wthread-safety` prove the
// locking discipline at compile time on every path, executed or not.
//
// The macros expand to Clang's capability attributes when the compiler
// supports them (clang with -Wthread-safety) and to nothing otherwise
// (GCC builds see plain declarations). Annotated classes therefore compile
// everywhere, but a clang build is the one that enforces the discipline —
// tools/ci_static_gate.sh runs it when clang is on PATH.
//
// Usage (see ThreadPool for the canonical example):
//   std::mutex mutex_;
//   std::size_t pending_ PSS_GUARDED_BY(mutex_);
//   void drain() PSS_REQUIRES(mutex_);
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PSS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PSS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (std::mutex already is one in
/// libc++/libstdc++ clang builds; use this for hand-rolled locks).
#define PSS_CAPABILITY(x) PSS_THREAD_ANNOTATION(capability(x))

/// A lock implementing shared/exclusive semantics.
#define PSS_SCOPED_CAPABILITY PSS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define PSS_GUARDED_BY(x) PSS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define PSS_PT_GUARDED_BY(x) PSS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held (exclusively) on entry.
#define PSS_REQUIRES(...) \
  PSS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held (shared) on entry.
#define PSS_REQUIRES_SHARED(...) \
  PSS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define PSS_ACQUIRE(...) PSS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define PSS_ACQUIRE_SHARED(...) \
  PSS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, released on return).
#define PSS_RELEASE(...) PSS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define PSS_RELEASE_SHARED(...) \
  PSS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define PSS_EXCLUDES(...) PSS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares which lock a try-acquire function obtains on success.
#define PSS_TRY_ACQUIRE(...) \
  PSS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the capability protecting the returned data.
#define PSS_RETURN_CAPABILITY(x) PSS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: body is exempt from analysis (document why at each use).
#define PSS_NO_THREAD_SAFETY_ANALYSIS \
  PSS_THREAD_ANNOTATION(no_thread_safety_analysis)
