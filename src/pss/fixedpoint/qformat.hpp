// Unsigned Q-format fixed-point descriptions (paper Sec. III-C).
//
// The paper stores synapse conductance G ∈ [G_min, G_max] = [0, 1] in fixed
// point and evaluates Q0.2, Q0.4, Q1.7 and Q1.15 ("2/4/8/16 bit" learning).
// Qm.n here means m integer bits and n fractional bits, unsigned — the
// convention that makes Q1.7 an 8-bit and Q1.15 a 16-bit word, matching
// Table II's row labels.
#pragma once

#include <cstdint>
#include <string>

namespace pss {

class QFormat {
 public:
  /// Constructs Qm.n. Requires 0 <= m, 1 <= n, m + n <= 31.
  QFormat(int integer_bits, int fraction_bits);

  /// Parses "Q1.7"-style names (as printed in Table II).
  static QFormat parse(const std::string& name);

  int integer_bits() const { return integer_bits_; }
  int fraction_bits() const { return fraction_bits_; }
  int total_bits() const { return integer_bits_ + fraction_bits_; }

  /// Smallest representable increment: 2^-n. This is also the ΔG used for
  /// 8-bit-and-below learning (paper: "ΔG is set to 1/2^n").
  double resolution() const { return resolution_; }

  /// Largest representable value: (2^(m+n) - 1) * 2^-n.
  double max_value() const { return max_value_; }

  /// Number of representable levels: 2^(m+n).
  std::uint32_t level_count() const { return level_count_; }

  /// True if `value` lies exactly on the representation grid within range.
  bool representable(double value) const;

  /// Raw code for the largest representable value <= `value` (clamped).
  std::uint32_t floor_code(double value) const;

  /// Value of raw code `code` (clamped to the level count).
  double from_code(std::uint32_t code) const;

  /// "Qm.n" string, e.g. "Q1.15".
  std::string name() const;

  friend bool operator==(const QFormat& a, const QFormat& b) {
    return a.integer_bits_ == b.integer_bits_ &&
           a.fraction_bits_ == b.fraction_bits_;
  }

 private:
  int integer_bits_;
  int fraction_bits_;
  double resolution_;
  double max_value_;
  std::uint32_t level_count_;
};

/// The four formats evaluated in Table II, in ascending bit width.
QFormat q0_2();
QFormat q0_4();
QFormat q1_7();
QFormat q1_15();

}  // namespace pss
