// Quantization with the paper's three rounding options (Sec. III-C).
//
// "Quantization for low precision learning is performed before the LTP/LTD
// phase" — i.e. a float update ΔG is computed, added to the conductance, and
// the result is snapped back to the Q-format grid with one of:
//   * bit truncation        — round toward zero (floor for non-negative G),
//   * rounding to nearest   — classic round-half-up,
//   * stochastic rounding   — round up with probability
//                             P_up = (ΔG - ΔG_truncated) · 2^n    (eq. 8),
//                             i.e. proportional to the fractional position
//                             between the two neighbouring grid points.
//
// Stochastic rounding consumes one uniform draw per operation; the draw is a
// *parameter*, not internal state, so callers can index it with the
// counter-based RNG and keep results reproducible under any thread schedule.
#pragma once

#include <optional>

#include "pss/fixedpoint/qformat.hpp"

namespace pss {

enum class RoundingMode {
  kTruncate,   ///< "bit truncation" column of Table II
  kNearest,    ///< "rounding to nearest" column
  kStochastic  ///< "stochastic" column (eq. 8)
};

const char* rounding_mode_name(RoundingMode mode);

class Quantizer {
 public:
  Quantizer(QFormat format, RoundingMode mode);

  const QFormat& format() const { return format_; }
  RoundingMode mode() const { return mode_; }

  /// Snaps `value` to the grid. `u` is a uniform [0,1) draw, used only by
  /// stochastic rounding (pass anything for the other modes; default 0 makes
  /// stochastic rounding degenerate to truncation, which is never what you
  /// want in learning — so learning code always passes a real draw).
  double quantize(double value, double u = 0.0) const;

  /// Probability that `quantize(value, u)` rounds up rather than down, i.e.
  /// eq. 8 evaluated at `value`. Exposed for tests and for the Fig. 6b
  /// distribution analysis. Returns 0 or 1 for deterministic modes.
  double round_up_probability(double value) const;

 private:
  QFormat format_;
  RoundingMode mode_;
};

/// The per-update conductance step for low-precision learning: the paper sets
/// ΔG = 1/2^n for 8-bit and lower precision; for 16-bit and above the float
/// STDP update (eq. 4/5) is used and then rounded. Returns nullopt in the
/// latter case.
std::optional<double> low_precision_delta_g(const QFormat& format);

}  // namespace pss
