#include "pss/fixedpoint/quantizer.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

const char* rounding_mode_name(RoundingMode mode) {
  switch (mode) {
    case RoundingMode::kTruncate: return "truncation";
    case RoundingMode::kNearest: return "nearest";
    case RoundingMode::kStochastic: return "stochastic";
  }
  return "?";
}

Quantizer::Quantizer(QFormat format, RoundingMode mode)
    : format_(format), mode_(mode) {}

double Quantizer::quantize(double value, double u) const {
  if (value <= 0.0) return 0.0;
  if (value >= format_.max_value()) return format_.max_value();

  const double res = format_.resolution();
  const double scaled = value / res;
  const double lower = std::floor(scaled);
  const double frac = scaled - lower;  // == (ΔG - ΔG_trunc)·2^n of eq. 8

  double code = lower;
  switch (mode_) {
    case RoundingMode::kTruncate:
      break;
    case RoundingMode::kNearest:
      if (frac >= 0.5) code += 1.0;
      break;
    case RoundingMode::kStochastic:
      if (u < frac) code += 1.0;
      break;
  }
  const double q = code * res;
  return q > format_.max_value() ? format_.max_value() : q;
}

double Quantizer::round_up_probability(double value) const {
  if (value <= 0.0 || value >= format_.max_value()) return 0.0;
  const double scaled = value / format_.resolution();
  const double frac = scaled - std::floor(scaled);
  switch (mode_) {
    case RoundingMode::kTruncate: return 0.0;
    case RoundingMode::kNearest: return frac >= 0.5 ? 1.0 : 0.0;
    case RoundingMode::kStochastic: return frac;
  }
  return 0.0;
}

std::optional<double> low_precision_delta_g(const QFormat& format) {
  if (format.total_bits() <= 8) return format.resolution();
  return std::nullopt;
}

}  // namespace pss
