#include "pss/fixedpoint/qformat.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

QFormat::QFormat(int integer_bits, int fraction_bits)
    : integer_bits_(integer_bits), fraction_bits_(fraction_bits) {
  PSS_REQUIRE(integer_bits >= 0, "integer bits must be non-negative");
  PSS_REQUIRE(fraction_bits >= 1, "need at least one fractional bit");
  PSS_REQUIRE(integer_bits + fraction_bits <= 31,
              "total width must fit a 32-bit code");
  resolution_ = std::ldexp(1.0, -fraction_bits_);
  level_count_ = 1u << (integer_bits_ + fraction_bits_);
  max_value_ = (level_count_ - 1) * resolution_;
}

QFormat QFormat::parse(const std::string& name) {
  PSS_REQUIRE(name.size() >= 4 && (name[0] == 'Q' || name[0] == 'q'),
              "Q-format name must look like 'Q1.7', got '" + name + "'");
  const auto dot = name.find('.');
  PSS_REQUIRE(dot != std::string::npos && dot > 1 && dot + 1 < name.size(),
              "Q-format name must look like 'Q1.7', got '" + name + "'");
  int m = 0;
  int n = 0;
  try {
    m = std::stoi(name.substr(1, dot - 1));
    n = std::stoi(name.substr(dot + 1));
  } catch (const std::exception&) {
    throw Error("Q-format name must look like 'Q1.7', got '" + name + "'");
  }
  return QFormat(m, n);
}

bool QFormat::representable(double value) const {
  if (value < 0.0 || value > max_value_) return false;
  const double scaled = value / resolution_;
  return scaled == std::floor(scaled);
}

std::uint32_t QFormat::floor_code(double value) const {
  if (value <= 0.0) return 0;
  const double scaled = std::floor(value / resolution_);
  if (scaled >= static_cast<double>(level_count_ - 1)) return level_count_ - 1;
  return static_cast<std::uint32_t>(scaled);
}

double QFormat::from_code(std::uint32_t code) const {
  if (code >= level_count_) code = level_count_ - 1;
  return code * resolution_;
}

std::string QFormat::name() const {
  // Built by appending onto a named string: the `"Q" + std::to_string(...)`
  // rvalue chain trips GCC 12's false-positive -Wrestrict (PR 105329), which
  // would breach the -Werror wall of the lint preset.
  std::string out = "Q";
  out += std::to_string(integer_bits_);
  out += '.';
  out += std::to_string(fraction_bits_);
  return out;
}

QFormat q0_2() { return QFormat(0, 2); }
QFormat q0_4() { return QFormat(0, 4); }
QFormat q1_7() { return QFormat(1, 7); }
QFormat q1_15() { return QFormat(1, 15); }

}  // namespace pss
