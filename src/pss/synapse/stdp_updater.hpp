// The unified per-synapse learning step: direction decision (deterministic
// window vs stochastic gates, eq. 6–7), magnitude (eq. 4–5 or the 1/2^n
// low-precision quantum), and precision/rounding handling (Sec. III-C,
// eq. 8). This one class is the paper's core contribution in executable
// form; the WTA network invokes it at the two STDP event types.
//
// Event semantics (Fig. 1b sign convention: Δt = t_post − t_pre):
//  * post-spike event — evaluated for every afferent synapse when the
//    post-neuron fires, with causal gap = t_post − t_pre_last ≥ 0:
//      - deterministic: potentiate iff gap ≤ window, otherwise depress (the
//        Querlioz-style rule of paper ref. [4], the source of eq. 4–5).
//      - stochastic: potentiate with probability P_pot = γ_pot·e^(−gap/τ_pot)
//        (eq. 6). No depression on this event.
//  * pre-spike event — evaluated when an input spike arrives at a synapse
//    whose post-neuron fired `age` ms earlier (anti-causal, Δt = −age ≤ 0):
//      - deterministic: no update (ref. [4] updates only at post spikes).
//      - stochastic: depress with probability P_dep = γ_dep·e^(Δt/τ_dep)
//        (eq. 7 verbatim).
//    Under Poisson inputs this makes potentiation-vs-depression pressure a
//    function of the input rate: high-rate (feature) pixels precede post
//    spikes often and win potentiation; low-rate (background) pixels mostly
//    arrive uncorrelated and slowly depress — the mechanism behind the
//    paper's conductance maps.
//
// Magnitude and precision:
//  * fp32: the float ΔG of eq. 4–5 applied directly.
//  * fixed point, deterministic rule (any width) and stochastic rule at
//    16 bit: the float ΔG is snapped to the 1/2^n grid with the selected
//    rounding option. This is where Table II's baseline spread comes from —
//    at Q0.2/Q0.4 the float ΔG (≈0.005–0.01) is far below one quantum, so
//    truncation and round-to-nearest produce ΔG = 0 (no learning at all,
//    chance accuracy) while stochastic rounding applies a full quantum with
//    probability ΔG·2^n (eq. 8) and rescues a little learning.
//  * fixed point ≤ 8 bit, stochastic rule: "ΔG is set to 1/2^n" verbatim —
//    the eq. 6–7 gates already supply the probabilistic thinning that keeps
//    the *expected* update fine-grained, which is exactly why stochastic
//    STDP survives 2-bit operation (Table II) while the deterministic rule
//    collapses.
//
// All randomness enters through explicit uniform draws so callers can index
// them with the counter-based RNG (reproducibility under any scheduling).
#pragma once

#include <optional>

#include "pss/fixedpoint/quantizer.hpp"
#include "pss/synapse/stdp_deterministic.hpp"
#include "pss/synapse/stdp_stochastic.hpp"

namespace pss {

enum class StdpKind { kDeterministic, kStochastic };

const char* stdp_kind_name(StdpKind kind);

/// Where stochastic depression draws happen. The paper's eq. 7 is written
/// for anti-causal pre-after-post pairs (kPreSpikeEq7); its inspiration,
/// Srinivasan et al. (ref. [14]), additionally depresses synapses whose pre
/// was silent when the post-neuron fired (kStaleAtPost) — the stochastic
/// analogue of the Querlioz LTD branch, and the pathway that actually drives
/// background pixels toward G_min under Poisson input statistics (a
/// rate-linear anti-causal term alone cannot: both its LTP and LTD pressure
/// scale with input rate). kBoth enables the two pathways together. The
/// bench_ablations binary quantifies the choice.
enum class DepressionMode { kStaleAtPost, kPreSpikeEq7, kBoth };

const char* depression_mode_name(DepressionMode mode);

struct StdpUpdaterConfig {
  StdpKind kind = StdpKind::kStochastic;
  StdpMagnitudeParams magnitude;  ///< eq. 4–5 parameters (Table I)
  StochasticGateParams gate;      ///< eq. 6–7 parameters (Table I)
  DepressionMode depression = DepressionMode::kStaleAtPost;
  /// Causal window of the deterministic rule.
  double det_window_ms = 20.0;
  /// Fixed-point storage; nullopt = fp32.
  std::optional<QFormat> format;
  RoundingMode rounding = RoundingMode::kNearest;
};

class StdpUpdater {
 public:
  explicit StdpUpdater(const StdpUpdaterConfig& config);

  const StdpUpdaterConfig& config() const { return config_; }

  /// Post-spike event: new conductance for a synapse currently at `g` whose
  /// pre-neuron last fired `gap_ms` ago (+inf if never). `u_pot` feeds the
  /// eq. 6 draw, `u_dep` the stale-depression draw, `u_round` stochastic
  /// rounding.
  double update_at_post_spike(double g, double gap_ms, double u_pot,
                              double u_dep, double u_round) const;

  /// Stochastic post-spike event with the eq. 6 / stale-depression gate
  /// probabilities supplied by the caller instead of recomputed here.
  /// Bitwise-identical to update_at_post_spike(g, gap, ...) whenever
  /// p_pot == gate().p_pot(gap) and p_dep_stale == gate().p_dep_stale(gap);
  /// exists so bulk kernels (cpu_simd) can hoist/memoize the exp() calls —
  /// e.g. every never-fired pre shares p_pot(∞) = +0 and
  /// p_dep_stale(∞) = γ_dep exactly. Stochastic rule only.
  double update_at_post_spike_gated(double g, double p_pot,
                                    double p_dep_stale, double u_pot,
                                    double u_dep, double u_round) const;

  /// The eq. 6–7 gate evaluator (for callers precomputing probabilities to
  /// feed update_at_post_spike_gated).
  const StochasticGate& gate() const { return gate_; }

  /// Which of the kDrawsPerEvent post-spike draw slots this configuration
  /// can ever read. Counter-indexed draws are independent, so bulk callers
  /// may skip generating unused slots without changing any consumed value:
  ///  * slot 0 (u_pot)   — stochastic rule only;
  ///  * slot 1 (u_dep)   — stochastic rule with a stale-at-post pathway;
  ///  * slot 2 (u_round) — stochastic *rounding* into a fixed-point grid
  ///                       (full-quantum mode and deterministic rounding
  ///                       never consult the draw).
  bool consumes_pot_draw() const {
    return config_.kind == StdpKind::kStochastic;
  }
  bool consumes_dep_draw() const {
    return config_.kind == StdpKind::kStochastic &&
           config_.depression != DepressionMode::kPreSpikeEq7;
  }
  bool consumes_round_draw() const {
    return quantizer_.has_value() && !full_quantum_mode_ &&
           config_.rounding == RoundingMode::kStochastic;
  }

  /// Pre-spike event: new conductance when an input spike arrives
  /// `post_age_ms` after the post-neuron's last spike (+inf if the post
  /// neuron has not fired). No-op unless the depression mode includes the
  /// eq. 7 anti-causal pathway (stochastic rule only).
  double update_at_pre_spike(double g, double post_age_ms, double u_gate,
                             double u_round) const;

  /// True when pre-spike events can ever change conductance (lets callers
  /// skip the anti-causal bookkeeping otherwise).
  bool wants_pre_spike_events() const {
    return config_.kind == StdpKind::kStochastic &&
           config_.depression != DepressionMode::kStaleAtPost;
  }

  /// Upper clamp actually reachable: min(g_max, format max value) — e.g.
  /// Q0.2 caps conductance at 0.75 even though g_max = 1.
  double effective_g_max() const { return effective_g_max_; }

  /// True when α_p, α_d ≥ 0 — apply()'s saturation fast path is then exact:
  /// a synapse at the bound it is moving toward returns that bound bitwise,
  /// for every draw value. Bulk callers build on this to skip entire event
  /// chains of synapses parked at g_min with no pre spikes (gap = ∞ makes
  /// potentiation probability exactly +0), without generating any draws —
  /// see kernels_sparse.cpp's stdp_flush.
  bool nonneg_deltas() const { return nonneg_deltas_; }

  /// Uniform draws each event type consumes (RNG counter bookkeeping).
  static constexpr std::uint64_t kDrawsPerEvent = 3;

 private:
  double apply(double g, bool potentiate, double u_round) const;

  StdpUpdaterConfig config_;
  DeterministicStdp magnitude_rule_;
  StochasticGate gate_;
  std::optional<Quantizer> quantizer_;
  double effective_g_max_;
  bool full_quantum_mode_;  // stochastic rule at <= 8 bits
  bool nonneg_deltas_;      // α_p, α_d ≥ 0 → saturation fast path is exact
};

}  // namespace pss
