#include "pss/synapse/parameter_registry.hpp"

#include "pss/common/error.hpp"

namespace pss {

namespace {

std::vector<Table1Row> build_rows() {
  std::vector<Table1Row> rows;

  // γ_pot τ_pot γ_dep τ_dep f_max f_min — Table I, transcribed verbatim.
  Table1Row r2{"2 bit", LearningOption::k2Bit, std::nullopt,
               StochasticGateParams{0.2, 20.0, 0.2, 10.0}, q0_2(), 22.0, 1.0,
               500.0};
  Table1Row r4{"4 bit", LearningOption::k4Bit, std::nullopt,
               StochasticGateParams{0.3, 30.0, 0.3, 10.0}, q0_4(), 22.0, 1.0,
               500.0};
  Table1Row r8{"8 bit", LearningOption::k8Bit, std::nullopt,
               StochasticGateParams{0.5, 30.0, 0.5, 10.0}, q1_7(), 22.0, 1.0,
               500.0};
  Table1Row r16{"16 bit", LearningOption::k16Bit,
                StdpMagnitudeParams{0.01, 3.0, 0.005, 3.0, 1.0, 0.0},
                StochasticGateParams{0.9, 30.0, 0.9, 10.0}, q1_15(), 22.0, 1.0,
                500.0};
  Table1Row rf{"fp32", LearningOption::kFloat32,
               StdpMagnitudeParams{0.01, 3.0, 0.005, 3.0, 1.0, 0.0},
               StochasticGateParams{0.9, 30.0, 0.9, 10.0}, std::nullopt, 22.0,
               1.0, 500.0};
  Table1Row rhf{"high frequency", LearningOption::kHighFrequency,
                StdpMagnitudeParams{0.01, 3.0, 0.005, 3.0, 1.0, 0.0},
                StochasticGateParams{0.3, 80.0, 0.2, 5.0}, std::nullopt, 78.0,
                5.0, 100.0};

  rows.push_back(r2);
  rows.push_back(r4);
  rows.push_back(r8);
  rows.push_back(r16);
  rows.push_back(rf);
  rows.push_back(rhf);
  return rows;
}

}  // namespace

const std::vector<Table1Row>& table1_rows() {
  static const std::vector<Table1Row> rows = build_rows();
  return rows;
}

const Table1Row& table1_row(LearningOption option) {
  for (const auto& row : table1_rows()) {
    if (row.option == option) return row;
  }
  throw Error("unknown learning option");
}

const char* learning_option_name(LearningOption option) {
  switch (option) {
    case LearningOption::k2Bit: return "2 bit";
    case LearningOption::k4Bit: return "4 bit";
    case LearningOption::k8Bit: return "8 bit";
    case LearningOption::k16Bit: return "16 bit";
    case LearningOption::kFloat32: return "fp32";
    case LearningOption::kHighFrequency: return "high frequency";
  }
  return "?";
}

}  // namespace pss
