#include "pss/synapse/conductance_matrix.hpp"

#include <algorithm>
#include <utility>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/error.hpp"

namespace pss {

ConductanceMatrix::ConductanceMatrix(std::size_t post_count,
                                     std::size_t pre_count, double g_min,
                                     double g_max, Engine* engine) {
  PSS_REQUIRE(post_count > 0 && pre_count > 0, "matrix must be non-empty");
  if (engine) owned_backend_ = make_backend("cpu", engine);
  Backend* backend = owned_backend_ ? owned_backend_.get() : &default_backend();
  owned_pool_ = std::make_unique<StatePool>(
      backend, StatePool::Geometry{post_count, pre_count});
  pool_ = owned_pool_.get();
  pool_->set_g_bounds(g_min, g_max);
}

ConductanceMatrix::ConductanceMatrix(StatePool& pool, double g_min,
                                     double g_max)
    : pool_(&pool) {
  PSS_REQUIRE(pool.neurons() > 0 && pool.channels() > 0,
              "matrix must be non-empty");
  pool_->set_g_bounds(g_min, g_max);
}

ConductanceMatrix::~ConductanceMatrix() = default;
ConductanceMatrix::ConductanceMatrix(ConductanceMatrix&&) noexcept = default;
ConductanceMatrix& ConductanceMatrix::operator=(ConductanceMatrix&&) noexcept =
    default;

std::size_t ConductanceMatrix::post_count() const { return pool_->neurons(); }
std::size_t ConductanceMatrix::pre_count() const { return pool_->channels(); }
std::size_t ConductanceMatrix::synapse_count() const {
  return pool_->neurons() * pool_->channels();
}
double ConductanceMatrix::g_min() const { return pool_->g_min(); }
double ConductanceMatrix::g_max() const { return pool_->g_max(); }
double ConductanceMatrix::learn_lo() const { return pool_->learn_lo(); }
double ConductanceMatrix::learn_hi() const { return pool_->learn_hi(); }

void ConductanceMatrix::initialize_uniform(double lo, double hi,
                                           SequentialRng& rng,
                                           const Quantizer* quantizer) {
  pool_->init_g_uniform(lo, hi, rng, quantizer);
}

double ConductanceMatrix::get(NeuronIndex post, ChannelIndex pre) const {
  PSS_DASSERT(pre < pre_count());
  return std::as_const(*pool_).g_row(post)[pre];
}

void ConductanceMatrix::set(NeuronIndex post, ChannelIndex pre, double g) {
  PSS_DASSERT(pre < pre_count());
  pool_->g_row(post)[pre] = pool_->clamp_g(g);
}

std::span<const double> ConductanceMatrix::row(NeuronIndex post) const {
  return std::as_const(*pool_).g_row(post);
}

std::span<double> ConductanceMatrix::row_mut(NeuronIndex post) {
  return pool_->g_row(post);
}

void ConductanceMatrix::accumulate_currents(
    std::span<const ChannelIndex> active_pre, double spike_amplitude,
    std::span<double> currents) const {
  PSS_REQUIRE(currents.size() == post_count(),
              "currents vector size must equal post count");
  CurrentAccumulateArgs args{std::as_const(*pool_).g(), pre_count(), active_pre,
                             spike_amplitude, currents};
  Backend& backend = pool_->backend();
  backend.kernels().current_accumulate(backend.engine(), args);
}

double ConductanceMatrix::mean() const {
  double sum = 0.0;
  const auto g = values();
  for (double v : g) sum += v;
  return sum / static_cast<double>(g.size());
}

double ConductanceMatrix::min_value() const {
  const auto g = values();
  return *std::min_element(g.begin(), g.end());
}

double ConductanceMatrix::max_value() const {
  const auto g = values();
  return *std::max_element(g.begin(), g.end());
}

std::vector<double> ConductanceMatrix::to_vector() const {
  const auto g = values();
  return std::vector<double>(g.begin(), g.end());
}

std::span<const double> ConductanceMatrix::values() const {
  return std::as_const(*pool_).g();
}

void ConductanceMatrix::upload(std::span<const double> values) {
  pool_->load_g(values, /*clamp=*/false);
}

void ConductanceMatrix::upload_clamped(std::span<const double> values) {
  pool_->load_g(values, /*clamp=*/true);
}

}  // namespace pss
