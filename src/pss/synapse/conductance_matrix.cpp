#include "pss/synapse/conductance_matrix.hpp"

#include <algorithm>

#include "pss/common/error.hpp"

namespace pss {

ConductanceMatrix::ConductanceMatrix(std::size_t post_count,
                                     std::size_t pre_count, double g_min,
                                     double g_max, Engine* engine)
    : post_count_(post_count),
      pre_count_(pre_count),
      g_min_(g_min),
      g_max_(g_max),
      engine_(engine ? engine : &default_engine()),
      g_(post_count * pre_count, g_min) {
  PSS_REQUIRE(post_count > 0 && pre_count > 0, "matrix must be non-empty");
  PSS_REQUIRE(g_max > g_min, "conductance range must be non-empty");
}

void ConductanceMatrix::initialize_uniform(double lo, double hi,
                                           SequentialRng& rng,
                                           const Quantizer* quantizer) {
  PSS_REQUIRE(hi >= lo, "invalid init range");
  for (auto& value : g_.span()) {
    double v = std::clamp(rng.uniform(lo, hi), g_min_, g_max_);
    if (quantizer) v = quantizer->quantize(v, rng.uniform());
    value = v;
  }
}

double ConductanceMatrix::get(NeuronIndex post, ChannelIndex pre) const {
  PSS_DASSERT(post < post_count_ && pre < pre_count_);
  return g_[static_cast<std::size_t>(post) * pre_count_ + pre];
}

void ConductanceMatrix::set(NeuronIndex post, ChannelIndex pre, double g) {
  PSS_DASSERT(post < post_count_ && pre < pre_count_);
  g_[static_cast<std::size_t>(post) * pre_count_ + pre] =
      std::clamp(g, g_min_, g_max_);
}

std::span<const double> ConductanceMatrix::row(NeuronIndex post) const {
  PSS_REQUIRE(post < post_count_, "post index out of range");
  return g_.span().subspan(static_cast<std::size_t>(post) * pre_count_,
                           pre_count_);
}

std::span<double> ConductanceMatrix::row_mut(NeuronIndex post) {
  PSS_REQUIRE(post < post_count_, "post index out of range");
  return g_.span().subspan(static_cast<std::size_t>(post) * pre_count_,
                           pre_count_);
}

void ConductanceMatrix::accumulate_currents(
    std::span<const ChannelIndex> active_pre, double spike_amplitude,
    std::span<double> currents) const {
  PSS_REQUIRE(currents.size() == post_count_,
              "currents vector size must equal post count");
  if (active_pre.empty()) return;
  auto g = g_.span();
  const std::size_t pre_count = pre_count_;
  engine_->launch("current.accumulate", post_count_, [&](std::size_t post) {
    const double* row = g.data() + post * pre_count;
    double acc = 0.0;
    for (ChannelIndex pre : active_pre) acc += row[pre];
    currents[post] += spike_amplitude * acc;
  });
}

double ConductanceMatrix::mean() const {
  double sum = 0.0;
  for (double v : g_.span()) sum += v;
  return sum / static_cast<double>(g_.size());
}

double ConductanceMatrix::min_value() const {
  return *std::min_element(g_.span().begin(), g_.span().end());
}

double ConductanceMatrix::max_value() const {
  return *std::max_element(g_.span().begin(), g_.span().end());
}

std::vector<double> ConductanceMatrix::to_vector() const {
  return g_.download();
}

void ConductanceMatrix::upload(std::span<const double> values) {
  PSS_REQUIRE(values.size() == g_.size(),
              "upload size must equal synapse count");
  std::copy(values.begin(), values.end(), g_.span().begin());
}

}  // namespace pss
