// Deterministic conductance-dependent STDP magnitudes (paper eq. 4–5).
//
//   ΔG_p = α_p · exp(-β_p · (G - G_min)/(G_max - G_min))     (eq. 4)
//   ΔG_d = α_d · exp(-β_d · (G_max - G)/(G_max - G_min))     (eq. 5)
//
// The rule comes from Querlioz et al. (paper ref. [4]): potentiation steps
// shrink as G approaches G_max and depression steps shrink as G approaches
// G_min, which keeps conductances inside [G_min, G_max] with soft bounds.
//
// Event semantics (also from ref. [4], and what the paper's baseline
// reproduces at Diehl-level accuracy): when a post-neuron spikes, every
// afferent synapse is updated — potentiated if its pre-neuron spiked within
// the causal window (Δt = t_post - t_pre ≤ window), depressed otherwise.
// This "depress the stale inputs" branch is what drives background pixels to
// G_min and is also why the deterministic rule collapses at low precision:
// with ΔG fixed at 1/2^n every post spike slams hundreds of synapses by a
// full quantization step (Fig. 6b, bottom).
#pragma once

namespace pss {

struct StdpMagnitudeParams {
  double alpha_p = 0.01;   ///< α_p of eq. 4 (Table I, 16-bit row)
  double beta_p = 3.0;     ///< β_p of eq. 4
  double alpha_d = 0.005;  ///< α_d of eq. 5
  double beta_d = 3.0;     ///< β_d of eq. 5
  double g_max = 1.0;
  double g_min = 0.0;
};

class DeterministicStdp {
 public:
  explicit DeterministicStdp(StdpMagnitudeParams params);

  const StdpMagnitudeParams& params() const { return params_; }

  /// ΔG_p of eq. 4 evaluated at conductance g (non-negative).
  double potentiation_delta(double g) const;

  /// ΔG_d of eq. 5 evaluated at conductance g (non-negative; caller
  /// subtracts).
  double depression_delta(double g) const;

  /// g + ΔG_p, clamped to [g_min, g_max].
  double potentiate(double g) const;

  /// g - ΔG_d, clamped to [g_min, g_max].
  double depress(double g) const;

 private:
  StdpMagnitudeParams params_;
  double inv_range_;  // 1 / (g_max - g_min)
};

}  // namespace pss
