// Stochastic STDP gate probabilities (paper Sec. II-C, eq. 6–7).
//
//   P_pot = γ_pot · exp(-Δt / τ_pot)     for causal pairs, Δt ≥ 0   (eq. 6)
//   P_dep = γ_dep · exp( Δt / τ_dep)     for anti-causal pairs, Δt ≤ 0 (eq. 7)
//
// Δt follows Fig. 1b's sign convention: Δt = t_post_event − t_pre_event for
// potentiation (pre fired first, Δt ≥ 0), and Δt < 0 "when the spiking
// neuron spikes before a spike from the input train arrives". Both
// probabilities therefore decay exponentially with |Δt| and peak at γ.
//
// Event semantics in the learning loop: updates are evaluated when a
// post-neuron spikes (the only cheap point under WTA — post spikes are rare).
// For each afferent synapse with Δt = t_post − t_pre_last ≥ 0:
//   * the potentiation draw uses eq. 6 directly: P = p_pot(Δt);
//   * the depression draw uses the complement form
//       P = γ_dep · (1 − exp(−Δt / τ_dep)),
//     which is eq. 7 marginalised over the next pre arrival for a Poisson
//     train: a synapse whose pre has been silent for Δt is exactly the one
//     whose next pre spike will arrive after the post spike (anti-causal,
//     eq. 7), and the longer the silence the more certainly so. The
//     complement rises with Δt, matching the paper's "for depression, the
//     probability is higher when Δt is larger".
// Both forms are exposed so eq. 7 can also be used verbatim at pre-spike
// events (p_dep) — the Fig. 1c bench plots it — while the learning loop uses
// p_dep_stale.
#pragma once

namespace pss {

struct StochasticGateParams {
  double gamma_pot = 0.9;  ///< γ_pot of eq. 6 (peak potentiation probability)
  double tau_pot = 30.0;   ///< τ_pot of eq. 6, in ms
  double gamma_dep = 0.9;  ///< γ_dep of eq. 7
  double tau_dep = 10.0;   ///< τ_dep of eq. 7, in ms
  /// Time constant of the *stale-input* depression component (the long-term
  /// branch of the ref. [14] long-term/short-term synapse): a synapse whose
  /// pre-neuron has been silent for `gap` is depressed with probability
  /// γ_dep·(1 − e^(−gap/τ_stale)). Much longer than τ_dep by design — τ_dep
  /// shapes the anti-causal eq. 7 window (tens of ms), τ_stale discriminates
  /// "this input is not part of the pattern" (order of the slowest
  /// information-carrying inter-spike interval).
  double tau_stale = 80.0;
};

class StochasticGate {
 public:
  explicit StochasticGate(StochasticGateParams params);

  const StochasticGateParams& params() const { return params_; }

  /// Eq. 6: potentiation probability for causal time difference dt ≥ 0.
  /// Returns 0 for negative dt (anti-causal pairs never potentiate).
  double p_pot(double dt) const;

  /// Eq. 7 verbatim: depression probability for anti-causal dt ≤ 0.
  /// Returns 0 for positive dt.
  double p_dep(double dt) const;

  /// Stale-input depression probability at post-spike events (see
  /// tau_stale): γ_dep · (1 − e^(−dt/τ_stale)) for dt ≥ 0. Rises from 0 to
  /// γ_dep.
  double p_dep_stale(double dt) const;

 private:
  StochasticGateParams params_;
};

}  // namespace pss
