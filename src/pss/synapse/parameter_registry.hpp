// Table I of the paper: the tuned parameter sets for each learning option.
//
// Rows 2/4/8-bit leave α/β/G blank because at those widths the update
// magnitude is fixed at ΔG = 1/2^n (Sec. III-C) — only the stochastic gate
// (γ, τ) and the input frequency range apply. The 16-bit row doubles as the
// full-precision (fp32) configuration, and the "high frequency" row is the
// fast-learning mode of Sec. IV-C (t_learn 100 ms instead of 500 ms).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/fixedpoint/qformat.hpp"
#include "pss/synapse/stdp_deterministic.hpp"
#include "pss/synapse/stdp_stochastic.hpp"

namespace pss {

enum class LearningOption {
  k2Bit,
  k4Bit,
  k8Bit,
  k16Bit,
  kFloat32,       ///< 16-bit row parameters, no quantization (paper's fp32)
  kHighFrequency  ///< fast-learning mode (Sec. IV-C)
};

struct Table1Row {
  std::string name;
  LearningOption option;
  /// α/β/G parameters of eq. 4–5; nullopt for ≤8-bit rows where ΔG = 1/2^n.
  std::optional<StdpMagnitudeParams> magnitude;
  StochasticGateParams gate;
  /// Storage format; nullopt for fp32.
  std::optional<QFormat> format;
  double f_input_max_hz = 22.0;
  double f_input_min_hz = 1.0;
  /// Per-image presentation time (Sec. IV-C: 500 ms baseline, 100 ms
  /// high-frequency).
  TimeMs t_learn_ms = 500.0;
};

/// The Table I row for a learning option. Values are transcribed verbatim
/// from the paper.
const Table1Row& table1_row(LearningOption option);

/// All rows in paper order (2/4/8/16-bit, fp32, high frequency).
const std::vector<Table1Row>& table1_rows();

const char* learning_option_name(LearningOption option);

}  // namespace pss
