// Dense all-to-all conductance storage (paper Fig. 3: "input spike trains and
// first layer are connected by synapses in an all-to-all fashion").
//
// Layout is post-major: row(post) is the contiguous conductance array of one
// neuron — exactly the per-neuron "conductance array that learns to recognize
// a specific pattern", and the natural access pattern of both hot kernels:
//   * current accumulation (one kernel thread per post-neuron scans the
//     active-input list against its row), and
//   * STDP update on a post spike (touches one full row).
#pragma once

#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/engine/device_vector.hpp"
#include "pss/engine/launch.hpp"
#include "pss/fixedpoint/quantizer.hpp"

namespace pss {

class ConductanceMatrix {
 public:
  ConductanceMatrix(std::size_t post_count, std::size_t pre_count,
                    double g_min = 0.0, double g_max = 1.0,
                    Engine* engine = nullptr);

  std::size_t post_count() const { return post_count_; }
  std::size_t pre_count() const { return pre_count_; }
  std::size_t synapse_count() const { return post_count_ * pre_count_; }
  double g_min() const { return g_min_; }
  double g_max() const { return g_max_; }

  /// Fills every conductance uniformly at random in [lo, hi] (clamped to the
  /// matrix range). If a quantizer is given, values are snapped to its grid —
  /// low-precision learning starts from representable state.
  void initialize_uniform(double lo, double hi, SequentialRng& rng,
                          const Quantizer* quantizer = nullptr);

  double get(NeuronIndex post, ChannelIndex pre) const;

  /// Clamps to [g_min, g_max] and stores. Quantization is the caller's job —
  /// the STDP updater owns the rounding mode and the RNG counters.
  void set(NeuronIndex post, ChannelIndex pre, double g);

  std::span<const double> row(NeuronIndex post) const;
  std::span<double> row_mut(NeuronIndex post);

  /// Current-accumulation kernel (eq. 3): for every post-neuron,
  ///   I[post] += spike_amplitude · Σ_{pre ∈ active} G[post][pre].
  /// One logical thread per post-neuron.
  void accumulate_currents(std::span<const ChannelIndex> active_pre,
                           double spike_amplitude,
                           std::span<double> currents) const;

  double mean() const;
  double min_value() const;
  double max_value() const;

  /// Flat copy of all conductances (Fig. 6b distribution analysis).
  std::vector<double> to_vector() const;

  /// Read-only view of the full post-major buffer (post*pre_count + pre).
  /// The fused step kernel and replica sharing read through this.
  std::span<const double> values() const { return g_.span(); }

  /// Bulk-replaces every conductance (no clamping — values must already lie
  /// in range, e.g. copied from another matrix of the same shape).
  void upload(std::span<const double> values);

 private:
  std::size_t post_count_;
  std::size_t pre_count_;
  double g_min_;
  double g_max_;
  Engine* engine_;
  device_vector<double> g_;
};

}  // namespace pss
