// Dense all-to-all conductance storage (paper Fig. 3: "input spike trains and
// first layer are connected by synapses in an all-to-all fashion").
//
// Layout is post-major: row(post) is the contiguous conductance array of one
// neuron — exactly the per-neuron "conductance array that learns to recognize
// a specific pattern", and the natural access pattern of both hot kernels:
//   * current accumulation (one kernel thread per post-neuron scans the
//     active-input list against its row), and
//   * STDP update on a post spike (touches one full row).
//
// The buffer itself lives in the StatePool's conductance section; this class
// is the synapse-level API over it. All bounds/clamp/row-offset handling is
// delegated to the pool's single accessor set — do not reimplement it here
// or at call sites.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/fixedpoint/quantizer.hpp"

namespace pss {

class Backend;
class Engine;
class StatePool;

class ConductanceMatrix {
 public:
  /// Standalone: allocates a private pool on the default `cpu` backend (or
  /// one wrapping `engine` when given).
  ConductanceMatrix(std::size_t post_count, std::size_t pre_count,
                    double g_min = 0.0, double g_max = 1.0,
                    Engine* engine = nullptr);

  /// Shares `pool` (non-owning): the matrix is the view over the pool's
  /// conductance section, shaped neurons × channels.
  ConductanceMatrix(StatePool& pool, double g_min, double g_max);

  ~ConductanceMatrix();
  ConductanceMatrix(ConductanceMatrix&&) noexcept;
  ConductanceMatrix& operator=(ConductanceMatrix&&) noexcept;

  std::size_t post_count() const;
  std::size_t pre_count() const;
  std::size_t synapse_count() const;
  double g_min() const;
  double g_max() const;

  /// The range STDP learning may reach: [learn_lo, learn_hi] =
  /// [g_min, min(g_max, quantizer cap)] (see StatePool::set_learn_cap).
  double learn_lo() const;
  double learn_hi() const;

  StatePool& pool() const { return *pool_; }

  /// Fills every conductance uniformly at random in [lo, hi] (clamped to the
  /// matrix range). If a quantizer is given, values are snapped to its grid —
  /// low-precision learning starts from representable state.
  void initialize_uniform(double lo, double hi, SequentialRng& rng,
                          const Quantizer* quantizer = nullptr);

  double get(NeuronIndex post, ChannelIndex pre) const;

  /// Clamps to [g_min, g_max] and stores. Quantization is the caller's job —
  /// the STDP updater owns the rounding mode and the RNG counters.
  void set(NeuronIndex post, ChannelIndex pre, double g);

  std::span<const double> row(NeuronIndex post) const;
  std::span<double> row_mut(NeuronIndex post);

  /// Current-accumulation kernel (eq. 3): for every post-neuron,
  ///   I[post] += spike_amplitude · Σ_{pre ∈ active} G[post][pre].
  /// One logical thread per post-neuron.
  void accumulate_currents(std::span<const ChannelIndex> active_pre,
                           double spike_amplitude,
                           std::span<double> currents) const;

  double mean() const;
  double min_value() const;
  double max_value() const;

  /// Flat copy of all conductances (Fig. 6b distribution analysis).
  std::vector<double> to_vector() const;

  /// Read-only view of the full post-major buffer (post*pre_count + pre).
  /// The fused step kernel and replica sharing read through this.
  std::span<const double> values() const;

  /// Bulk-replaces every conductance (no clamping — values must already lie
  /// in range, e.g. copied from another matrix of the same shape).
  void upload(std::span<const double> values);

  /// Bulk-replace with every element clamped to [g_min, g_max] — the restore
  /// path for external data (checkpoints, damaged snapshots).
  void upload_clamped(std::span<const double> values);

 private:
  std::unique_ptr<Backend> owned_backend_;  ///< standalone ctor only
  std::unique_ptr<StatePool> owned_pool_;   ///< standalone ctor only
  StatePool* pool_ = nullptr;               ///< never null after construction
};

}  // namespace pss
