#include "pss/synapse/stdp_stochastic.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

StochasticGate::StochasticGate(StochasticGateParams params) : params_(params) {
  PSS_REQUIRE(params.gamma_pot >= 0.0 && params.gamma_pot <= 1.0,
              "gamma_pot must be a probability");
  PSS_REQUIRE(params.gamma_dep >= 0.0 && params.gamma_dep <= 1.0,
              "gamma_dep must be a probability");
  PSS_REQUIRE(params.tau_pot > 0.0 && params.tau_dep > 0.0 &&
                  params.tau_stale > 0.0,
              "time constants must be positive");
}

double StochasticGate::p_pot(double dt) const {
  if (dt < 0.0) return 0.0;
  return params_.gamma_pot * std::exp(-dt / params_.tau_pot);
}

double StochasticGate::p_dep(double dt) const {
  if (dt > 0.0) return 0.0;
  return params_.gamma_dep * std::exp(dt / params_.tau_dep);
}

double StochasticGate::p_dep_stale(double dt) const {
  if (dt <= 0.0) return 0.0;
  return params_.gamma_dep * (1.0 - std::exp(-dt / params_.tau_stale));
}

}  // namespace pss
