#include "pss/synapse/stdp_deterministic.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

DeterministicStdp::DeterministicStdp(StdpMagnitudeParams params)
    : params_(params) {
  PSS_REQUIRE(params.g_max > params.g_min,
              "conductance range must be non-empty");
  PSS_REQUIRE(params.alpha_p >= 0.0 && params.alpha_d >= 0.0,
              "step magnitudes must be non-negative");
  inv_range_ = 1.0 / (params.g_max - params.g_min);
}

double DeterministicStdp::potentiation_delta(double g) const {
  const double x = std::clamp((g - params_.g_min) * inv_range_, 0.0, 1.0);
  return params_.alpha_p * std::exp(-params_.beta_p * x);
}

double DeterministicStdp::depression_delta(double g) const {
  const double x = std::clamp((params_.g_max - g) * inv_range_, 0.0, 1.0);
  return params_.alpha_d * std::exp(-params_.beta_d * x);
}

double DeterministicStdp::potentiate(double g) const {
  return std::min(params_.g_max, g + potentiation_delta(g));
}

double DeterministicStdp::depress(double g) const {
  return std::max(params_.g_min, g - depression_delta(g));
}

}  // namespace pss
