#include "pss/synapse/stdp_updater.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

const char* stdp_kind_name(StdpKind kind) {
  switch (kind) {
    case StdpKind::kDeterministic: return "deterministic";
    case StdpKind::kStochastic: return "stochastic";
  }
  return "?";
}

const char* depression_mode_name(DepressionMode mode) {
  switch (mode) {
    case DepressionMode::kStaleAtPost: return "stale-at-post";
    case DepressionMode::kPreSpikeEq7: return "pre-spike-eq7";
    case DepressionMode::kBoth: return "both";
  }
  return "?";
}

StdpUpdater::StdpUpdater(const StdpUpdaterConfig& config)
    : config_(config),
      magnitude_rule_(config.magnitude),
      gate_(config.gate),
      effective_g_max_(config.magnitude.g_max),
      full_quantum_mode_(false),
      nonneg_deltas_(config.magnitude.alpha_p >= 0.0 &&
                     config.magnitude.alpha_d >= 0.0) {
  PSS_REQUIRE(config.det_window_ms > 0.0, "causal window must be positive");
  if (config_.format) {
    quantizer_.emplace(*config_.format, config_.rounding);
    effective_g_max_ = std::min(effective_g_max_, config_.format->max_value());
    full_quantum_mode_ = config_.kind == StdpKind::kStochastic &&
                         config_.format->total_bits() <= 8;
  }
}

double StdpUpdater::apply(double g, bool potentiate, double u_round) const {
  // Saturation fast path: with α_p, α_d ≥ 0 every ΔG is ≥ 0 (eq. 4–5,
  // quantized or full-quantum alike), so a synapse already at the bound it
  // is moving toward comes back clamped to that same bound — the magnitude
  // math cannot change the result. Bitwise-identical to the full path; in a
  // trained network most conductances sit at the bounds (the paper's bimodal
  // maps), so this skips most of the exp() calls in the learning hot loop.
  if (nonneg_deltas_) {
    if (potentiate) {
      if (g >= effective_g_max_) return effective_g_max_;
    } else if (g <= config_.magnitude.g_min) {
      return config_.magnitude.g_min;
    }
  }
  const double magnitude = potentiate ? magnitude_rule_.potentiation_delta(g)
                                      : magnitude_rule_.depression_delta(g);
  double delta = magnitude;
  if (quantizer_) {
    if (full_quantum_mode_) {
      // "For 8-bit and lower precision learning, ΔG is set to 1/2^n."
      delta = config_.format->resolution();
    } else {
      // Snap the float ΔG of eq. 4-5 to the representation grid with the
      // selected rounding option (eq. 8 for stochastic rounding).
      delta = quantizer_->quantize(magnitude, u_round);
    }
  }
  const double g2 = potentiate ? g + delta : g - delta;
  return std::clamp(g2, config_.magnitude.g_min, effective_g_max_);
}

double StdpUpdater::update_at_post_spike(double g, double gap_ms, double u_pot,
                                         double u_dep, double u_round) const {
  PSS_DASSERT(gap_ms >= 0.0);
  if (config_.kind == StdpKind::kDeterministic) {
    return apply(g, gap_ms <= config_.det_window_ms, u_round);
  }
  if (u_pot < gate_.p_pot(gap_ms)) return apply(g, true, u_round);
  if (config_.depression != DepressionMode::kPreSpikeEq7 &&
      u_dep < gate_.p_dep_stale(gap_ms)) {
    return apply(g, false, u_round);
  }
  return g;
}

double StdpUpdater::update_at_post_spike_gated(double g, double p_pot,
                                               double p_dep_stale,
                                               double u_pot, double u_dep,
                                               double u_round) const {
  PSS_DASSERT(config_.kind == StdpKind::kStochastic);
  if (u_pot < p_pot) return apply(g, true, u_round);
  if (config_.depression != DepressionMode::kPreSpikeEq7 &&
      u_dep < p_dep_stale) {
    return apply(g, false, u_round);
  }
  return g;
}

double StdpUpdater::update_at_pre_spike(double g, double post_age_ms,
                                        double u_gate, double u_round) const {
  PSS_DASSERT(post_age_ms >= 0.0);
  if (!wants_pre_spike_events()) return g;
  // Eq. 7 with Δt = t_post - t_pre = -post_age_ms.
  if (u_gate < gate_.p_dep(-post_age_ms)) return apply(g, false, u_round);
  return g;
}

}  // namespace pss
