// Dataset containers and the training/labelling/inference splits of
// paper Sec. III-B.
#pragma once

#include <string>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/data/image.hpp"

namespace pss {

/// An ordered collection of labelled images.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Image> images) : images_(std::move(images)) {}

  std::size_t size() const { return images_.size(); }
  bool empty() const { return images_.empty(); }
  const Image& operator[](std::size_t i) const { return images_[i]; }

  void push_back(Image image) { images_.push_back(std::move(image)); }

  /// First `n` images (or fewer if the set is smaller).
  Dataset head(std::size_t n) const;

  /// Images [begin, end).
  Dataset slice(std::size_t begin, std::size_t end) const;

  /// In-place Fisher–Yates shuffle with a seeded generator.
  void shuffle(SequentialRng& rng);

  /// Number of distinct labels (assumes labels are 0..k-1).
  std::size_t class_count() const;

  /// Count of images carrying `label`.
  std::size_t count_label(Label label) const;

  const std::vector<Image>& images() const { return images_; }

 private:
  std::vector<Image> images_;
};

/// Train/test pair as the paper uses it. The paper labels neurons with the
/// first 1000 test images and infers on the remaining 9000; labelling_split
/// reproduces that protocol for any test-set size.
struct LabeledDataset {
  std::string name;
  Dataset train;
  Dataset test;

  /// Splits test into (labelling, inference) with `labelling_count` images
  /// in the first part (clamped to the test size).
  std::pair<Dataset, Dataset> labelling_split(std::size_t labelling_count) const;
};

}  // namespace pss
