#include "pss/data/dataset.hpp"

#include <algorithm>

#include "pss/common/error.hpp"

namespace pss {

Dataset Dataset::head(std::size_t n) const {
  return slice(0, std::min(n, images_.size()));
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  PSS_REQUIRE(begin <= end && end <= images_.size(), "invalid slice bounds");
  return Dataset(std::vector<Image>(images_.begin() + begin,
                                    images_.begin() + end));
}

void Dataset::shuffle(SequentialRng& rng) {
  for (std::size_t i = images_.size(); i > 1; --i) {
    const std::size_t j = rng.below(static_cast<std::uint32_t>(i));
    std::swap(images_[i - 1], images_[j]);
  }
}

std::size_t Dataset::class_count() const {
  Label max_label = 0;
  for (const auto& img : images_) max_label = std::max(max_label, img.label);
  return images_.empty() ? 0 : static_cast<std::size_t>(max_label) + 1;
}

std::size_t Dataset::count_label(Label label) const {
  return static_cast<std::size_t>(
      std::count_if(images_.begin(), images_.end(),
                    [label](const Image& img) { return img.label == label; }));
}

std::pair<Dataset, Dataset> LabeledDataset::labelling_split(
    std::size_t labelling_count) const {
  const std::size_t n = std::min(labelling_count, test.size());
  return {test.slice(0, n), test.slice(n, test.size())};
}

}  // namespace pss
