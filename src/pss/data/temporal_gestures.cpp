#include "pss/data/temporal_gestures.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

void gesture_direction(Label label, double* dx, double* dy) {
  const double angle =
      2.0 * kPi * static_cast<double>(label % kGestureClasses) /
      static_cast<double>(kGestureClasses);
  *dx = std::cos(angle);
  *dy = std::sin(angle);
}

GestureSequence render_gesture(Label label, const GestureConfig& config,
                               SequentialRng& rng) {
  PSS_REQUIRE(config.frames >= 2, "a gesture needs at least two frames");
  GestureSequence seq;
  seq.label = static_cast<Label>(label % kGestureClasses);
  seq.frames.reserve(config.frames);

  double dx = 0.0;
  double dy = 0.0;
  gesture_direction(seq.label, &dx, &dy);

  // The bar starts behind the canvas centre along the motion axis and sweeps
  // through it; the perpendicular axis carries the bar's extent.
  const double px = -dy;  // bar axis (perpendicular to motion)
  const double py = dx;
  const double speed = rng.uniform(0.55, 0.8);  // total sweep, canvas units
  const double phase = rng.uniform(-0.08, 0.08);
  const double half_len = rng.uniform(0.22, 0.34);
  const double radius = rng.uniform(0.035, 0.055);
  const double strength = rng.uniform(0.8, 1.0);
  const double cx = 0.5 + rng.uniform(-0.06, 0.06);
  const double cy = 0.5 + rng.uniform(-0.06, 0.06);

  Canvas canvas(config.side);
  for (std::size_t f = 0; f < config.frames; ++f) {
    // Sweep progress in [-1/2, 1/2] around the centre.
    const double u =
        (static_cast<double>(f) / static_cast<double>(config.frames - 1) -
         0.5) *
            speed +
        phase;
    const double bx = cx + u * dx;
    const double by = cy + u * dy;
    canvas.clear();
    canvas.line(bx - half_len * px, by - half_len * py, bx + half_len * px,
                by + half_len * py, radius, strength);
    seq.frames.push_back(canvas.render(255.0, 0.6, config.noise, &rng));
  }
  return seq;
}

GestureDataset make_temporal_gestures(const GestureConfig& config) {
  GestureDataset set;
  set.name = "temporal_gestures";

  SequentialRng train_rng(config.seed, /*stream=*/0x6765 /* "ge" */);
  set.train.reserve(config.train_count);
  for (std::size_t i = 0; i < config.train_count; ++i) {
    set.train.push_back(render_gesture(
        static_cast<Label>(i % kGestureClasses), config, train_rng));
  }

  SequentialRng test_rng(config.seed, /*stream=*/0x7374 /* "st" */);
  set.test.reserve(config.test_count);
  for (std::size_t i = 0; i < config.test_count; ++i) {
    set.test.push_back(render_gesture(
        static_cast<Label>(i % kGestureClasses), config, test_rng));
  }
  return set;
}

}  // namespace pss
