// Procedural Fashion-MNIST substitute (see DESIGN.md substitution table).
//
// Ten apparel classes rendered as filled, textured silhouettes. Crucially —
// and deliberately — several classes share most of their lit area (t-shirt /
// pullover / coat / shirt all share the torso; sneaker / ankle-boot share the
// sole wedge) and differ only in smaller features (sleeve length, collar,
// shaft). This reproduces the property the paper's Fashion-MNIST experiment
// turns on: "all synapses learn the overlapping features of all classes"
// under deterministic STDP (Fig. 5a) while stochastic STDP still separates
// the classes.
#pragma once

#include "pss/common/rng.hpp"
#include "pss/data/dataset.hpp"
#include "pss/data/synthetic_digits.hpp"  // SyntheticConfig

namespace pss {

/// Fashion-MNIST class names (index == label), for table printing.
const char* fashion_class_name(Label label);

/// One jittered, textured sample of apparel class `label` (0..9).
Image render_fashion(Label label, double noise, SequentialRng& rng);

/// A full train/test dataset with uniformly distributed labels.
LabeledDataset make_synthetic_fashion(const SyntheticConfig& config = {});

}  // namespace pss
