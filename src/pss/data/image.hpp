// Grayscale image container and a float canvas for procedural rasterisation.
//
// Images follow the MNIST convention: 28x28, 8-bit, row-major, intensity 0 =
// background and 255 = brightest foreground. The Canvas supports the stroke
// and fill primitives the synthetic dataset generators are built from.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"

namespace pss {

struct Image {
  std::uint16_t width = kImageSide;
  std::uint16_t height = kImageSide;
  Label label = 0;
  std::vector<std::uint8_t> pixels;  // row-major, size width*height

  Image() : pixels(kImagePixels, 0) {}
  Image(std::uint16_t w, std::uint16_t h)
      : width(w), height(h), pixels(static_cast<std::size_t>(w) * h, 0) {}

  std::size_t pixel_count() const { return pixels.size(); }
  std::uint8_t at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x];
  }
  std::uint8_t& at(std::size_t x, std::size_t y) {
    return pixels[y * width + x];
  }
  std::span<const std::uint8_t> span() const { return pixels; }

  /// Mean intensity over all pixels — quick feature used by tests.
  double mean_intensity() const;
};

/// Float accumulation canvas in normalized [0,1]^2 coordinates. Drawing
/// operations accumulate "ink"; render() tone-maps to an 8-bit Image.
class Canvas {
 public:
  explicit Canvas(std::uint16_t side = kImageSide);

  std::uint16_t side() const { return side_; }

  void clear();

  /// Stamps a soft round brush of the given radius (normalized units) at
  /// (x, y), accumulating `strength` ink at the centre.
  void stamp(double x, double y, double radius, double strength = 1.0);

  /// Draws a line from (x0,y0) to (x1,y1) with a soft brush.
  void line(double x0, double y0, double x1, double y1, double radius,
            double strength = 1.0);

  /// Draws a quadratic Bezier curve through control point (cx, cy).
  void curve(double x0, double y0, double cx, double cy, double x1, double y1,
             double radius, double strength = 1.0);

  /// Fills every pixel whose normalized centre satisfies `inside`,
  /// accumulating `strength` ink.
  void fill(const std::function<bool(double, double)>& inside,
            double strength = 1.0);

  /// Multiplies existing ink by `factor` wherever `inside` holds — used for
  /// texture (stripes, shading) on filled shapes.
  void modulate(const std::function<bool(double, double)>& inside,
                double factor);

  /// Tone-maps the ink buffer to an 8-bit image: ink >= saturation maps to
  /// peak intensity, linear below. Adds uniform pixel noise of amplitude
  /// `noise` (fraction of 255) using `rng`, clamped to [0, 255].
  Image render(double peak_intensity = 255.0, double saturation = 1.0,
               double noise = 0.0, SequentialRng* rng = nullptr) const;

 private:
  std::uint16_t side_;
  std::vector<float> ink_;
};

/// Affine jitter applied by the generators: rotate by `angle` radians about
/// the image centre, scale, then translate (dx, dy) in normalized units.
struct Jitter {
  double angle = 0.0;
  double scale = 1.0;
  double dx = 0.0;
  double dy = 0.0;

  /// Maps a normalized point through the jitter transform.
  void apply(double& x, double& y) const;
};

}  // namespace pss
