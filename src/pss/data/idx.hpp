// IDX file format support (the format MNIST and Fashion-MNIST ship in).
//
// If the real datasets are available (environment variable PSS_MNIST_DIR or
// an explicit directory), every experiment harness runs on them unchanged;
// otherwise the synthetic generators substitute (see DESIGN.md).
//
// Format reference (Y. LeCun): big-endian magic 0x00000803 for 3-D image
// tensors and 0x00000801 for 1-D label vectors, followed by dimension sizes
// and raw unsigned bytes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pss/data/dataset.hpp"

namespace pss {

/// Reads an IDX image file (magic 0x00000803). Throws pss::Error on
/// malformed input.
std::vector<Image> read_idx_images(const std::string& path);

/// Reads an IDX label file (magic 0x00000801).
std::vector<Label> read_idx_labels(const std::string& path);

/// Writes images/labels in IDX format (for round-trip tests and exporting
/// synthetic sets).
void write_idx_images(const std::string& path, const std::vector<Image>& images);
void write_idx_labels(const std::string& path, const std::vector<Label>& labels);

/// Loads a full MNIST-layout dataset from a directory containing
/// {train,t10k}-{images,labels}-idx{3,1}-ubyte (optionally without the
/// "-idx?-ubyte" suffix). Returns nullopt if the files are absent.
std::optional<LabeledDataset> load_idx_dataset(const std::string& directory,
                                               const std::string& name);

/// Checks PSS_MNIST_DIR (or PSS_FASHION_DIR for name == "fashion-mnist") and
/// loads the real dataset when present.
std::optional<LabeledDataset> load_real_dataset_from_env(const std::string& name);

}  // namespace pss
