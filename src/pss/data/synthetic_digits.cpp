#include "pss/data/synthetic_digits.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Stroke plotter that applies jitter + control-point noise before drawing.
class DigitBrush {
 public:
  DigitBrush(Canvas& canvas, const Jitter& jitter, double radius,
             double point_noise, SequentialRng& rng)
      : canvas_(canvas),
        jitter_(jitter),
        radius_(radius),
        point_noise_(point_noise),
        rng_(rng) {}

  void line(double x0, double y0, double x1, double y1) {
    perturb(x0, y0);
    perturb(x1, y1);
    canvas_.line(x0, y0, x1, y1, radius_);
  }

  void curve(double x0, double y0, double cx, double cy, double x1,
             double y1) {
    perturb(x0, y0);
    perturb(cx, cy);
    perturb(x1, y1);
    canvas_.curve(x0, y0, cx, cy, x1, y1, radius_);
  }

  /// Parametric ellipse centred at (cx, cy), radii (rx, ry).
  void ellipse(double cx, double cy, double rx, double ry) {
    double jcx = cx;
    double jcy = cy;
    perturb(jcx, jcy);
    const int steps = 40;
    for (int k = 0; k <= steps; ++k) {
      const double a = kTwoPi * k / steps;
      double x = jcx + rx * std::cos(a);
      double y = jcy + ry * std::sin(a);
      jitter_.apply(x, y);
      canvas_.stamp(x, y, radius_);
    }
  }

 private:
  void perturb(double& x, double& y) {
    x += rng_.uniform(-point_noise_, point_noise_);
    y += rng_.uniform(-point_noise_, point_noise_);
    jitter_.apply(x, y);
  }

  Canvas& canvas_;
  const Jitter& jitter_;
  double radius_;
  double point_noise_;
  SequentialRng& rng_;
};

void draw_digit_strokes(DigitBrush& b, Label digit) {
  switch (digit) {
    case 0:
      b.ellipse(0.5, 0.5, 0.18, 0.27);
      break;
    case 1:
      b.line(0.52, 0.2, 0.52, 0.8);
      b.line(0.4, 0.32, 0.52, 0.2);
      break;
    case 2:
      b.curve(0.3, 0.35, 0.5, 0.12, 0.7, 0.38);
      b.line(0.7, 0.38, 0.3, 0.78);
      b.line(0.3, 0.78, 0.73, 0.78);
      break;
    case 3:
      b.curve(0.32, 0.24, 0.78, 0.26, 0.5, 0.48);
      b.curve(0.5, 0.48, 0.82, 0.62, 0.32, 0.78);
      break;
    case 4:
      b.line(0.62, 0.2, 0.26, 0.58);
      b.line(0.26, 0.58, 0.78, 0.58);
      b.line(0.63, 0.2, 0.63, 0.82);
      break;
    case 5:
      b.line(0.7, 0.22, 0.33, 0.22);
      b.line(0.33, 0.22, 0.31, 0.48);
      b.curve(0.31, 0.48, 0.85, 0.55, 0.34, 0.8);
      break;
    case 6:
      b.curve(0.64, 0.2, 0.3, 0.3, 0.31, 0.62);
      b.ellipse(0.47, 0.64, 0.16, 0.15);
      break;
    case 7:
      b.line(0.28, 0.25, 0.72, 0.25);
      b.line(0.72, 0.25, 0.42, 0.8);
      break;
    case 8:
      b.ellipse(0.5, 0.36, 0.14, 0.13);
      b.ellipse(0.5, 0.64, 0.17, 0.15);
      break;
    case 9:
      b.ellipse(0.5, 0.36, 0.16, 0.14);
      b.curve(0.66, 0.38, 0.68, 0.6, 0.56, 0.8);
      break;
    default:
      throw Error("digit label must be 0..9");
  }
}

}  // namespace

Image render_digit(Label digit, double noise, SequentialRng& rng) {
  PSS_REQUIRE(digit <= 9, "digit label must be 0..9");
  Canvas canvas;

  Jitter jitter;
  jitter.angle = rng.uniform(-0.12, 0.12);
  jitter.scale = rng.uniform(0.85, 1.08);
  jitter.dx = rng.uniform(-0.06, 0.06);
  jitter.dy = rng.uniform(-0.06, 0.06);

  const double radius = rng.uniform(0.035, 0.06);
  const double point_noise = 0.018;
  DigitBrush brush(canvas, jitter, radius, point_noise, rng);
  draw_digit_strokes(brush, digit);

  const double peak = rng.uniform(200.0, 255.0);
  Image img = canvas.render(peak, /*saturation=*/0.8, noise, &rng);
  img.label = digit;
  return img;
}

LabeledDataset make_synthetic_digits(const SyntheticConfig& config) {
  LabeledDataset ds;
  ds.name = "synthetic-mnist";

  SequentialRng train_rng(config.seed, /*stream=*/1);
  for (std::size_t i = 0; i < config.train_count; ++i) {
    ds.train.push_back(
        render_digit(static_cast<Label>(i % 10), config.noise, train_rng));
  }
  ds.train.shuffle(train_rng);

  SequentialRng test_rng(config.seed, /*stream=*/2);
  for (std::size_t i = 0; i < config.test_count; ++i) {
    ds.test.push_back(
        render_digit(static_cast<Label>(i % 10), config.noise, test_rng));
  }
  ds.test.shuffle(test_rng);
  return ds;
}

}  // namespace pss
