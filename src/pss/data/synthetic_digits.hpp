// Procedural MNIST substitute (see DESIGN.md substitution table).
//
// Each of the ten digit classes is a set of strokes (lines and quadratic
// curves) rasterised with a soft brush onto a 28x28 canvas, with per-sample
// jitter in rotation, scale, translation, stroke control points, brush width
// and intensity, plus background pixel noise. The result matches the
// properties the paper's MNIST experiments depend on: bright class-specific
// strokes on a dark background, largely disjoint features between classes,
// and enough intra-class variability that learning is non-trivial.
#pragma once

#include "pss/common/rng.hpp"
#include "pss/data/dataset.hpp"

namespace pss {

struct SyntheticConfig {
  std::size_t train_count = 2000;
  std::size_t test_count = 600;
  std::uint64_t seed = 7;
  /// Background noise amplitude (fraction of full scale).
  double noise = 0.015;
};

/// One jittered sample of digit class `digit` (0..9).
Image render_digit(Label digit, double noise, SequentialRng& rng);

/// A full train/test dataset with uniformly distributed labels.
/// Train and test samples are drawn from independent RNG streams.
LabeledDataset make_synthetic_digits(const SyntheticConfig& config = {});

}  // namespace pss
