#include "pss/data/idx.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "pss/common/error.hpp"
#include "pss/common/log.hpp"

namespace pss {

namespace {

constexpr std::uint32_t kImageMagic = 0x00000803;
constexpr std::uint32_t kLabelMagic = 0x00000801;

std::uint32_t read_be32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  PSS_REQUIRE(static_cast<bool>(in), "unexpected end of IDX file");
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

void write_be32(std::ostream& out, std::uint32_t v) {
  const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                              static_cast<unsigned char>(v >> 16),
                              static_cast<unsigned char>(v >> 8),
                              static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

std::string find_existing(const std::string& dir,
                          std::initializer_list<const char*> names) {
  for (const char* n : names) {
    const auto p = std::filesystem::path(dir) / n;
    if (std::filesystem::exists(p)) return p.string();
  }
  return {};
}

}  // namespace

std::vector<Image> read_idx_images(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open IDX image file: " + path);
  PSS_REQUIRE(read_be32(in) == kImageMagic,
              "bad magic in IDX image file: " + path);
  const std::uint32_t count = read_be32(in);
  const std::uint32_t rows = read_be32(in);
  const std::uint32_t cols = read_be32(in);
  PSS_REQUIRE(rows > 0 && cols > 0 && rows <= 4096 && cols <= 4096,
              "implausible IDX image dimensions in " + path);
  std::vector<Image> images;
  images.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Image img(static_cast<std::uint16_t>(cols),
              static_cast<std::uint16_t>(rows));
    in.read(reinterpret_cast<char*>(img.pixels.data()),
            static_cast<std::streamsize>(img.pixels.size()));
    PSS_REQUIRE(static_cast<bool>(in), "truncated IDX image file: " + path);
    images.push_back(std::move(img));
  }
  return images;
}

std::vector<Label> read_idx_labels(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "cannot open IDX label file: " + path);
  PSS_REQUIRE(read_be32(in) == kLabelMagic,
              "bad magic in IDX label file: " + path);
  const std::uint32_t count = read_be32(in);
  std::vector<Label> labels(count);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(labels.size()));
  PSS_REQUIRE(static_cast<bool>(in), "truncated IDX label file: " + path);
  return labels;
}

void write_idx_images(const std::string& path,
                      const std::vector<Image>& images) {
  PSS_REQUIRE(!images.empty(), "refusing to write an empty IDX image file");
  std::ofstream out(path, std::ios::binary);
  PSS_REQUIRE(out.is_open(), "cannot create IDX image file: " + path);
  write_be32(out, kImageMagic);
  write_be32(out, static_cast<std::uint32_t>(images.size()));
  write_be32(out, images[0].height);
  write_be32(out, images[0].width);
  for (const auto& img : images) {
    PSS_REQUIRE(img.width == images[0].width && img.height == images[0].height,
                "all images in an IDX file must share dimensions");
    out.write(reinterpret_cast<const char*>(img.pixels.data()),
              static_cast<std::streamsize>(img.pixels.size()));
  }
}

void write_idx_labels(const std::string& path,
                      const std::vector<Label>& labels) {
  std::ofstream out(path, std::ios::binary);
  PSS_REQUIRE(out.is_open(), "cannot create IDX label file: " + path);
  write_be32(out, kLabelMagic);
  write_be32(out, static_cast<std::uint32_t>(labels.size()));
  out.write(reinterpret_cast<const char*>(labels.data()),
            static_cast<std::streamsize>(labels.size()));
}

namespace {

std::optional<Dataset> load_split(const std::string& dir, const char* img_a,
                                  const char* img_b, const char* lbl_a,
                                  const char* lbl_b) {
  const std::string img_path = find_existing(dir, {img_a, img_b});
  const std::string lbl_path = find_existing(dir, {lbl_a, lbl_b});
  if (img_path.empty() || lbl_path.empty()) return std::nullopt;
  auto images = read_idx_images(img_path);
  const auto labels = read_idx_labels(lbl_path);
  PSS_REQUIRE(images.size() == labels.size(),
              "image/label count mismatch in " + dir);
  for (std::size_t i = 0; i < images.size(); ++i) images[i].label = labels[i];
  return Dataset(std::move(images));
}

}  // namespace

std::optional<LabeledDataset> load_idx_dataset(const std::string& directory,
                                               const std::string& name) {
  auto train = load_split(directory, "train-images-idx3-ubyte", "train-images",
                          "train-labels-idx1-ubyte", "train-labels");
  auto test = load_split(directory, "t10k-images-idx3-ubyte", "t10k-images",
                         "t10k-labels-idx1-ubyte", "t10k-labels");
  if (!train || !test) return std::nullopt;
  return LabeledDataset{name, std::move(*train), std::move(*test)};
}

std::optional<LabeledDataset> load_real_dataset_from_env(
    const std::string& name) {
  const char* env_var =
      (name == "fashion-mnist") ? "PSS_FASHION_DIR" : "PSS_MNIST_DIR";
  const char* dir = std::getenv(env_var);
  if (dir == nullptr) return std::nullopt;
  auto ds = load_idx_dataset(dir, name);
  if (ds) {
    PSS_LOG_INFO << "loaded real " << name << " from " << dir << " ("
                 << ds->train.size() << " train / " << ds->test.size()
                 << " test)";
  } else {
    PSS_LOG_WARN << env_var << " is set but IDX files not found in " << dir;
  }
  return ds;
}

}  // namespace pss
