#include "pss/data/image.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

double Image::mean_intensity() const {
  double sum = 0.0;
  for (std::uint8_t p : pixels) sum += p;
  return sum / static_cast<double>(pixels.size());
}

Canvas::Canvas(std::uint16_t side)
    : side_(side), ink_(static_cast<std::size_t>(side) * side, 0.0f) {
  PSS_REQUIRE(side >= 4, "canvas too small");
}

void Canvas::clear() { std::fill(ink_.begin(), ink_.end(), 0.0f); }

void Canvas::stamp(double x, double y, double radius, double strength) {
  const double r_px = radius * side_;
  const double cx = x * side_;
  const double cy = y * side_;
  const int lo_x = std::max(0, static_cast<int>(std::floor(cx - r_px - 1)));
  const int hi_x =
      std::min<int>(side_ - 1, static_cast<int>(std::ceil(cx + r_px + 1)));
  const int lo_y = std::max(0, static_cast<int>(std::floor(cy - r_px - 1)));
  const int hi_y =
      std::min<int>(side_ - 1, static_cast<int>(std::ceil(cy + r_px + 1)));
  const double inv_r2 = 1.0 / std::max(1e-9, r_px * r_px);
  for (int py = lo_y; py <= hi_y; ++py) {
    for (int px = lo_x; px <= hi_x; ++px) {
      const double dx = px + 0.5 - cx;
      const double dy = py + 0.5 - cy;
      const double d2 = (dx * dx + dy * dy) * inv_r2;
      if (d2 >= 1.0) continue;
      // Smooth falloff: full ink at centre, zero at the rim.
      const double w = 1.0 - d2;
      ink_[static_cast<std::size_t>(py) * side_ + px] +=
          static_cast<float>(strength * w);
    }
  }
}

void Canvas::line(double x0, double y0, double x1, double y1, double radius,
                  double strength) {
  const double len = std::hypot(x1 - x0, y1 - y0);
  const int steps = std::max(2, static_cast<int>(len * side_ * 2.0));
  for (int k = 0; k <= steps; ++k) {
    const double t = static_cast<double>(k) / steps;
    stamp(x0 + t * (x1 - x0), y0 + t * (y1 - y0), radius, strength);
  }
}

void Canvas::curve(double x0, double y0, double cx, double cy, double x1,
                   double y1, double radius, double strength) {
  const double approx_len =
      std::hypot(cx - x0, cy - y0) + std::hypot(x1 - cx, y1 - cy);
  const int steps = std::max(2, static_cast<int>(approx_len * side_ * 2.0));
  for (int k = 0; k <= steps; ++k) {
    const double t = static_cast<double>(k) / steps;
    const double mt = 1.0 - t;
    const double x = mt * mt * x0 + 2.0 * mt * t * cx + t * t * x1;
    const double y = mt * mt * y0 + 2.0 * mt * t * cy + t * t * y1;
    stamp(x, y, radius, strength);
  }
}

void Canvas::fill(const std::function<bool(double, double)>& inside,
                  double strength) {
  for (int py = 0; py < side_; ++py) {
    for (int px = 0; px < side_; ++px) {
      const double x = (px + 0.5) / side_;
      const double y = (py + 0.5) / side_;
      if (inside(x, y)) {
        ink_[static_cast<std::size_t>(py) * side_ + px] +=
            static_cast<float>(strength);
      }
    }
  }
}

void Canvas::modulate(const std::function<bool(double, double)>& inside,
                      double factor) {
  for (int py = 0; py < side_; ++py) {
    for (int px = 0; px < side_; ++px) {
      const double x = (px + 0.5) / side_;
      const double y = (py + 0.5) / side_;
      if (inside(x, y)) {
        ink_[static_cast<std::size_t>(py) * side_ + px] *=
            static_cast<float>(factor);
      }
    }
  }
}

Image Canvas::render(double peak_intensity, double saturation, double noise,
                     SequentialRng* rng) const {
  PSS_REQUIRE(saturation > 0.0, "saturation must be positive");
  Image img(side_, side_);
  for (std::size_t i = 0; i < ink_.size(); ++i) {
    double v =
        std::min(1.0, static_cast<double>(ink_[i]) / saturation) * peak_intensity;
    if (noise > 0.0 && rng != nullptr) {
      v += rng->uniform(-noise, noise) * 255.0;
    }
    img.pixels[i] =
        static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
  return img;
}

void Jitter::apply(double& x, double& y) const {
  const double cx = x - 0.5;
  const double cy = y - 0.5;
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const double rx = (c * cx - s * cy) * scale;
  const double ry = (s * cx + c * cy) * scale;
  x = rx + 0.5 + dx;
  y = ry + 0.5 + dy;
}

}  // namespace pss
