#include "pss/data/synthetic_fashion.hpp"

#include <cmath>

#include "pss/common/error.hpp"

namespace pss {

namespace {

/// Per-sample jittered shape parameters shared by the garment classes.
struct GarmentGeometry {
  double cx;           // horizontal centre
  double top;          // torso top y
  double bottom;       // torso bottom y
  double shoulder_hw;  // torso half-width at the shoulders
  double waist_hw;     // torso half-width at the hem
  double sleeve_hw;    // extra half-width covered by sleeves
  double sleeve_end;   // sleeve bottom y
};

GarmentGeometry jittered_garment(SequentialRng& rng) {
  GarmentGeometry g;
  g.cx = 0.5 + rng.uniform(-0.03, 0.03);
  g.top = 0.24 + rng.uniform(-0.02, 0.02);
  g.bottom = 0.76 + rng.uniform(-0.02, 0.02);
  g.shoulder_hw = 0.17 + rng.uniform(-0.015, 0.015);
  g.waist_hw = 0.15 + rng.uniform(-0.015, 0.015);
  g.sleeve_hw = 0.11 + rng.uniform(-0.015, 0.015);
  g.sleeve_end = 0.0;  // set per class
  return g;
}

bool in_torso(const GarmentGeometry& g, double x, double y) {
  if (y < g.top || y > g.bottom) return false;
  const double t = (y - g.top) / (g.bottom - g.top);
  const double hw = g.shoulder_hw + (g.waist_hw - g.shoulder_hw) * t;
  return std::abs(x - g.cx) <= hw;
}

bool in_sleeves(const GarmentGeometry& g, double x, double y) {
  if (y < g.top || y > g.sleeve_end) return false;
  // Sleeves taper as they descend.
  const double t = (y - g.top) / std::max(1e-9, g.sleeve_end - g.top);
  const double outer = g.shoulder_hw + g.sleeve_hw * (1.0 - 0.35 * t);
  const double inner = g.shoulder_hw * (1.0 - 0.15 * t);
  const double dx = std::abs(x - g.cx);
  return dx > inner && dx <= outer;
}

/// Shoe sole wedge: below a slanted top edge, above the sole line.
bool in_wedge(double x, double y, double cx, double toe_y, double heel_y,
              double sole_y, double half_len) {
  if (std::abs(x - cx) > half_len) return false;
  const double t = (x - (cx - half_len)) / (2.0 * half_len);
  const double top = heel_y + (toe_y - heel_y) * t;  // heel left, toe right
  return y >= top && y <= sole_y;
}

/// Multiplicative speckle texture over the whole lit area.
void speckle(Image& img, double depth, SequentialRng& rng) {
  for (auto& p : img.pixels) {
    if (p == 0) continue;
    const double f = 1.0 - rng.uniform(0.0, depth);
    p = static_cast<std::uint8_t>(p * f);
  }
}

}  // namespace

const char* fashion_class_name(Label label) {
  static const char* names[10] = {"t-shirt", "trouser", "pullover", "dress",
                                  "coat",    "sandal",  "shirt",    "sneaker",
                                  "bag",     "ankle boot"};
  PSS_REQUIRE(label <= 9, "fashion label must be 0..9");
  return names[label];
}

Image render_fashion(Label label, double noise, SequentialRng& rng) {
  PSS_REQUIRE(label <= 9, "fashion label must be 0..9");
  Canvas canvas;
  GarmentGeometry g = jittered_garment(rng);

  switch (label) {
    case 0: {  // t-shirt: torso + short sleeves
      g.sleeve_end = g.top + 0.16;
      canvas.fill([&](double x, double y) {
        return in_torso(g, x, y) || in_sleeves(g, x, y);
      });
      break;
    }
    case 1: {  // trouser: hip band + two legs
      const double hip_top = g.top;
      const double hip_bot = g.top + 0.12;
      const double leg_hw = 0.055 + rng.uniform(-0.008, 0.008);
      const double gap = 0.065 + rng.uniform(-0.008, 0.008);
      const double hem = 0.84 + rng.uniform(-0.02, 0.02);
      canvas.fill([&](double x, double y) {
        if (y >= hip_top && y <= hip_bot && std::abs(x - g.cx) <= gap + leg_hw)
          return true;
        if (y > hip_bot && y <= hem) {
          const double dx = std::abs(x - g.cx);
          return dx >= gap - leg_hw && dx <= gap + leg_hw;
        }
        return false;
      });
      break;
    }
    case 2: {  // pullover: torso + long sleeves + knit stripes
      g.sleeve_end = g.bottom - 0.06;
      canvas.fill([&](double x, double y) {
        return in_torso(g, x, y) || in_sleeves(g, x, y);
      });
      const double phase = rng.uniform(0.0, 0.08);
      canvas.modulate(
          [&](double, double y) {
            return std::fmod(y + phase, 0.08) < 0.03;
          },
          0.65);
      break;
    }
    case 3: {  // dress: narrow bodice flaring to a wide hem
      const double hem = 0.85 + rng.uniform(-0.02, 0.02);
      const double top_hw = 0.10 + rng.uniform(-0.01, 0.01);
      const double hem_hw = 0.22 + rng.uniform(-0.02, 0.02);
      canvas.fill([&](double x, double y) {
        if (y < g.top || y > hem) return false;
        const double t = (y - g.top) / (hem - g.top);
        const double hw = top_hw + (hem_hw - top_hw) * t * t;
        return std::abs(x - g.cx) <= hw;
      });
      break;
    }
    case 4: {  // coat: same torso/sleeves as pullover/shirt, dark open-front
               // strip and a shaded lapel band are its only distinguishers —
               // graded interior features, not silhouette (see header).
      g.sleeve_end = g.bottom - 0.06;
      canvas.fill([&](double x, double y) {
        return in_torso(g, x, y) || in_sleeves(g, x, y);
      });
      canvas.modulate(
          [&](double x, double y) {
            return std::abs(x - g.cx) < 0.025 && y > g.top + 0.06;
          },
          0.3);
      canvas.modulate(
          [&](double x, double y) {
            const double dx = std::abs(x - g.cx);
            return dx >= 0.025 && dx < 0.07 && y > g.top && y < g.top + 0.2;
          },
          0.55);
      break;
    }
    case 5: {  // sandal: thin straps + a sole
      const double sole_y = 0.74 + rng.uniform(-0.02, 0.02);
      const double half_len = 0.26 + rng.uniform(-0.02, 0.02);
      canvas.fill([&](double x, double y) {
        if (std::abs(x - 0.5) > half_len) return false;
        if (y >= sole_y && y <= sole_y + 0.05) return true;  // sole
        // Three slanted straps above the sole.
        for (int k = 0; k < 3; ++k) {
          const double y0 = sole_y - 0.06 - 0.07 * k + 0.12 * (x - 0.24);
          if (y >= y0 && y <= y0 + 0.028) return true;
        }
        return false;
      });
      break;
    }
    case 6: {  // shirt: torso + long sleeves + collar notch + button strip
      g.sleeve_end = g.bottom - 0.06;
      canvas.fill([&](double x, double y) {
        return in_torso(g, x, y) || in_sleeves(g, x, y);
      });
      canvas.modulate(
          [&](double x, double y) {  // collar notch
            return std::abs(x - g.cx) < 0.055 - (y - g.top) * 0.6 &&
                   y < g.top + 0.09;
          },
          0.25);
      canvas.modulate(
          [&](double x, double y) {  // button strip
            return std::abs(x - g.cx) < 0.012 && y > g.top + 0.1;
          },
          0.55);
      break;
    }
    case 7: {  // sneaker: low wedge + bright sole stripe
      const double sole_y = 0.72 + rng.uniform(-0.02, 0.02);
      const double half_len = 0.27 + rng.uniform(-0.02, 0.02);
      const double toe_y = sole_y - 0.10;
      const double heel_y = sole_y - 0.19;
      canvas.fill([&](double x, double y) {
        return in_wedge(x, y, 0.5, toe_y, heel_y, sole_y, half_len);
      });
      canvas.modulate(
          [&](double x, double y) {
            return y > sole_y - 0.035 && std::abs(x - 0.5) <= half_len;
          },
          1.8);
      break;
    }
    case 8: {  // bag: body rectangle + handle arc
      const double top = 0.42 + rng.uniform(-0.02, 0.02);
      const double bot = 0.78 + rng.uniform(-0.02, 0.02);
      const double hw = 0.24 + rng.uniform(-0.02, 0.02);
      canvas.fill([&](double x, double y) {
        return y >= top && y <= bot && std::abs(x - 0.5) <= hw;
      });
      // Handle drawn as a stroked arc above the body.
      canvas.curve(0.5 - hw * 0.6, top, 0.5, top - 0.22, 0.5 + hw * 0.6, top,
                   0.025, 1.2);
      break;
    }
    case 9: {  // ankle boot: sneaker wedge + shaft
      const double sole_y = 0.74 + rng.uniform(-0.02, 0.02);
      const double half_len = 0.26 + rng.uniform(-0.02, 0.02);
      const double toe_y = sole_y - 0.11;
      const double heel_y = sole_y - 0.2;
      const double shaft_top = 0.32 + rng.uniform(-0.02, 0.02);
      canvas.fill([&](double x, double y) {
        if (in_wedge(x, y, 0.5, toe_y, heel_y, sole_y, half_len)) return true;
        // Shaft rises from the heel side.
        return x >= 0.5 - half_len && x <= 0.5 - half_len + 0.22 &&
               y >= shaft_top && y < heel_y + 0.05;
      });
      break;
    }
    default:
      throw Error("fashion label must be 0..9");
  }

  const double peak = rng.uniform(170.0, 235.0);
  Image img = canvas.render(peak, /*saturation=*/0.9, noise, &rng);
  speckle(img, 0.25, rng);
  img.label = label;
  return img;
}

LabeledDataset make_synthetic_fashion(const SyntheticConfig& config) {
  LabeledDataset ds;
  ds.name = "synthetic-fashion";

  SequentialRng train_rng(config.seed, /*stream=*/3);
  for (std::size_t i = 0; i < config.train_count; ++i) {
    ds.train.push_back(
        render_fashion(static_cast<Label>(i % 10), config.noise, train_rng));
  }
  ds.train.shuffle(train_rng);

  SequentialRng test_rng(config.seed, /*stream=*/4);
  for (std::size_t i = 0; i < config.test_count; ++i) {
    ds.test.push_back(
        render_fashion(static_cast<Label>(i % 10), config.noise, test_rng));
  }
  ds.test.shuffle(test_rng);
  return ds;
}

}  // namespace pss
