// Procedural temporal-gesture streams: the graph's frame-by-frame workload
// (DESIGN.md substitution table — a DVS-gesture stand-in the repo can
// generate deterministically).
//
// Each sample is a short frame sequence of a bright bar sweeping across the
// canvas in one of eight compass directions; the class IS the motion
// direction, so no single frame is sufficient — static frames from different
// classes are near-identical (a bar somewhere on the canvas) and only the
// frame-to-frame change pattern separates them. Consumed through
// NetworkGraph::present_sequence with temporal-diff ON/OFF encoding, where
// the OFF plane trails the ON plane along the motion vector — a
// direction-selective spatial pattern the conv/WTA stack can learn.
//
// Per-sample jitter: sweep phase, speed, bar length/thickness, intensity and
// pixel noise. Train/test draw from independent RNG streams.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/data/image.hpp"

namespace pss {

/// One labelled frame sequence.
struct GestureSequence {
  Label label = 0;  ///< motion direction, 0..kGestureClasses-1
  std::vector<Image> frames;
};

inline constexpr std::size_t kGestureClasses = 8;

/// Direction unit vector of class `label` (compass order: E, NE, N, ... SE).
/// Exposed for tests and docs.
void gesture_direction(Label label, double* dx, double* dy);

struct GestureConfig {
  std::size_t train_count = 400;
  std::size_t test_count = 160;
  std::size_t frames = 12;      ///< frames per sequence
  std::uint16_t side = kImageSide;
  std::uint64_t seed = 11;
  double noise = 0.01;  ///< per-pixel render noise (fraction of full scale)
};

/// One jittered sweep of direction `label`.
GestureSequence render_gesture(Label label, const GestureConfig& config,
                               SequentialRng& rng);

/// A labelled train/test gesture set with uniformly distributed directions.
struct GestureDataset {
  std::string name;
  std::vector<GestureSequence> train;
  std::vector<GestureSequence> test;
};

GestureDataset make_temporal_gestures(const GestureConfig& config = {});

}  // namespace pss
