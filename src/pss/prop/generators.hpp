// Domain generators over prop::Source — the structured-input vocabulary the
// property suites share: WTA configs, rate vectors, spike trains, Q-formats,
// `layers=` specs, `faults=` schedules, and mutation-based malformed-string
// fuzzing for the grammar suites.
//
// Generators draw ONLY through the Source (enforced by the pss_lint
// `prop-seed` rule): that is what makes every generated case replayable from
// a (seed, case) pair and shrinkable through the choice tape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/fixedpoint/qformat.hpp"
#include "pss/network/wta_network.hpp"
#include "pss/prop/source.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss::prop {

/// One of the four Table II formats, or an arbitrary valid Qm.n.
QFormat gen_qformat(Source& s);

/// A full learning-rule configuration: rule kind, magnitudes, gates,
/// depression pathway, precision and rounding — parameter ranges bracket
/// Table I generously.
StdpUpdaterConfig gen_stdp_config(Source& s);

/// A small, trainable WTA network configuration on `backend` (derived from
/// a Table I row, then perturbed: geometry, seeds, amplitudes, fused/lazy
/// toggles, learning rates). Sized for fast property evaluation.
WtaConfig gen_wta_config(Source& s, const std::string& backend);

/// Per-channel Poisson rates in [0, max_hz]; a fraction of channels silent.
std::vector<double> gen_rates(Source& s, std::size_t channels, double max_hz);

/// Last-pre-spike times for a conductance row at post-spike time `t_post`:
/// a mix of recent spikes (gap in [0, 3·window]), ancient ones, and
/// never-fired (-infinity), matching what the presentation loop feeds the
/// stdp_row kernel.
std::vector<TimeMs> gen_pre_spike_times(Source& s, std::size_t channels,
                                        TimeMs t_post, TimeMs window_ms);

/// A valid `layers=` spec for the default 28×28 input: encode options, an
/// optional conv(/pool) front-end whose kernel fits, 1–2 WTA blocks, an
/// optional readout segment.
std::string gen_layers_spec(Source& s);

/// A valid `faults=` spec over the known fault points: 1–2 clauses with a
/// generated subset of rate/after/count/kind keys.
std::string gen_fault_spec(Source& s);

/// Applies 1–4 random character-level mutations (insert/delete/replace/
/// duplicate from a grammar-flavoured alphabet) — the fuzz step for the
/// "malformed strings always produce a structured error" properties.
std::string mutate_string(Source& s, std::string text);

/// A deliberately malformed `layers=` spec drawn from the crasher families
/// the fuzzer found (non-finite reals, overflowing integers, structural
/// garbage), with generated payloads.
std::string gen_bad_layers_spec(Source& s);

/// A deliberately malformed `faults=` clause (bad numbers for after/count,
/// out-of-range rate, unknown kind/key, structural garbage).
std::string gen_bad_fault_spec(Source& s);

/// argv-style "key=value" tokens over the shared run-option keys with
/// type-plausible and garbage values mixed (for spec_from_config fuzzing).
std::vector<std::string> gen_run_option_tokens(Source& s);

}  // namespace pss::prop
