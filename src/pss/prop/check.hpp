// Property runner: generate N cases, run the property on each, shrink the
// first failure, and report a one-line repro recipe.
//
// A property is any callable over Source that generates its inputs and
// asserts its invariant (via PSS_PROP_ASSERT / prop::fail, or by letting an
// exception escape). check() returns a CheckResult rather than asserting
// itself so the harness stays test-framework-agnostic; gtest suites do
//
//   const prop::CheckResult r = prop::check("name", [](prop::Source& s) {…});
//   EXPECT_TRUE(r.ok()) << r.report();
//
// Reproducing a failure: every failure report carries the single line
//
//   PSS_PROP_SEED=<seed> PSS_PROP_CASE=<k>
//
// Re-running the same test binary with those environment variables set
// replays exactly that case (generation is a pure function of
// (seed ⊕ name-hash, case index) over Philox). PSS_PROP_CASES=<n> scales
// every check's case budget (e.g. a nightly soak).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "pss/prop/source.hpp"

namespace pss::prop {

struct CheckOptions {
  std::uint64_t seed = 0x5eed2026u;
  std::uint32_t cases = 100;
  /// Predicate-call budget for shrinking a failure.
  std::uint32_t shrink_evals = 4000;
  /// Give up when discards exceed cases · this factor (generator bug guard).
  std::uint32_t max_discard_factor = 10;
  /// When false, PSS_PROP_SEED / PSS_PROP_CASE / PSS_PROP_CASES are ignored
  /// (the harness self-tests pin their own seeds).
  bool read_env = true;
};

struct CheckResult {
  std::string name;
  std::uint64_t seed = 0;  ///< effective seed (after env override)
  bool failed = false;
  bool gave_up = false;  ///< discard budget exhausted (counts as failed)
  std::uint64_t failing_case = 0;
  std::uint32_t cases_run = 0;
  std::uint32_t discards = 0;
  std::string message;         ///< failure message of the original case
  std::string shrunk_message;  ///< failure message on the minimized tape
  Tape failing_tape;           ///< as generated
  Tape shrunk_tape;            ///< after shrinking
  std::uint32_t shrink_evaluations = 0;

  bool ok() const { return !failed; }

  /// The one-line repro recipe: "PSS_PROP_SEED=… PSS_PROP_CASE=…".
  std::string repro() const;

  /// Human-readable failure report (includes repro()); empty when ok.
  std::string report() const;
};

using Property = std::function<void(Source&)>;

/// Runs `property` over options.cases generated cases. On the first failing
/// case, shrinks its tape and replays the minimized case for the final
/// message. Deterministic for a fixed (seed, name, property).
CheckResult check(const std::string& name, const Property& property,
                  CheckOptions options = {});

/// Replays exactly one (seed, case_index) pair — what setting PSS_PROP_SEED
/// and PSS_PROP_CASE does, callable directly (the repro-validation tests
/// use it to prove recipes reproduce).
CheckResult run_case(const std::string& name, const Property& property,
                     std::uint64_t seed, std::uint64_t case_index,
                     CheckOptions options = {});

/// The Source a given (name, seed, case) generates from — exposed so tests
/// can pin tape determinism.
Source case_source(const std::string& name, std::uint64_t seed,
                   std::uint64_t case_index);

}  // namespace pss::prop

/// Property-side assertion: fails the current case (and is caught and
/// shrunk by the runner) instead of aborting the test binary.
#define PSS_PROP_ASSERT(cond, message)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pss::prop::fail(std::string("PSS_PROP_ASSERT(" #cond ") failed: ") + \
                        (message));                                        \
    }                                                                      \
  } while (false)
