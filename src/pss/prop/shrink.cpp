#include "pss/prop/shrink.hpp"

#include <utility>

namespace pss::prop {

namespace {

struct Budget {
  const std::function<bool(const Tape&)>& predicate;
  std::uint32_t limit;
  ShrinkStats stats;

  bool spent() const { return stats.evaluations >= limit; }

  bool try_candidate(const Tape& candidate) {
    if (spent()) return false;
    ++stats.evaluations;
    const bool fails = predicate(candidate);
    if (fails) ++stats.accepted;
    return fails;
  }
};

/// Delete contiguous blocks, chunk size halving. Returns true if the tape
/// got shorter.
bool size_pass(Tape& tape, Budget& budget) {
  bool improved = false;
  for (std::size_t len = tape.size() / 2; len >= 1; len /= 2) {
    std::size_t start = 0;
    while (start + len <= tape.size() && !budget.spent()) {
      Tape candidate;
      candidate.reserve(tape.size() - len);
      candidate.insert(candidate.end(), tape.begin(),
                       tape.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       tape.begin() + static_cast<std::ptrdiff_t>(start + len),
                       tape.end());
      if (budget.try_candidate(candidate)) {
        tape = std::move(candidate);
        improved = true;
        // Do not advance: the next block slid into `start`.
      } else {
        start += len;
      }
    }
    if (len == 1) break;
  }
  return improved;
}

/// Per-position descent toward 0. Returns true if any value decreased.
bool value_pass(Tape& tape, Budget& budget) {
  bool improved = false;
  for (std::size_t i = 0; i < tape.size() && !budget.spent(); ++i) {
    while (tape[i] > 0 && !budget.spent()) {
      const std::uint64_t v = tape[i];
      bool stepped = false;
      for (const std::uint64_t candidate_value :
           {std::uint64_t{0}, v / 2, v - 1}) {
        if (candidate_value >= v) continue;
        Tape candidate = tape;
        candidate[i] = candidate_value;
        if (budget.try_candidate(candidate)) {
          tape[i] = candidate_value;
          improved = true;
          stepped = true;
          break;
        }
      }
      if (!stepped) break;
    }
  }
  return improved;
}

}  // namespace

Tape shrink_tape(Tape failing,
                 const std::function<bool(const Tape&)>& still_fails,
                 std::uint32_t eval_limit, ShrinkStats* stats) {
  Budget budget{still_fails, eval_limit, {}};
  bool improved = true;
  while (improved && !budget.spent()) {
    improved = false;
    if (size_pass(failing, budget)) improved = true;
    if (value_pass(failing, budget)) improved = true;
  }
  if (stats != nullptr) *stats = budget.stats;
  return failing;
}

}  // namespace pss::prop
