// Choice-tape randomness source — the primitive the property harness is
// built on (DESIGN.md "Property & differential harness").
//
// Every generator draws through a Source. In generation mode each draw comes
// from the counter-based Philox stream and is RECORDED on a tape (one u64
// per draw); in replay mode draws are read back off the tape. The tape is
// therefore a complete, portable serialization of one generated test case —
// shrinking operates on the tape alone (delete draws, reduce values toward
// zero) and regenerates the structured value through the very same generator
// code, so every shrunk candidate is by construction a value the generator
// could have produced.
//
// Two conventions make tapes shrink well:
//  * every primitive maps tape value 0 to its minimal result (bits() → 0,
//    unit() → 0.0, boolean() → false, choose() → first alternative), and
//  * replay draws past the tape end return 0 — deleting a tape suffix
//    degrades a case toward the minimal one instead of crashing the replay.
//
// Properties reject uninteresting cases with prop::discard() and fail with
// prop::fail() / PSS_PROP_ASSERT (see check.hpp).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "pss/common/rng.hpp"

namespace pss::prop {

/// One recorded test case: the sequence of raw choices its generators made.
using Tape = std::vector<std::uint64_t>;

/// Thrown by prop::discard(). Deliberately NOT derived from std::exception:
/// a property wrapping code-under-test in catch (const std::exception&)
/// must not swallow its own discard signal.
struct Discard {
  std::string reason;
};

/// Thrown by prop::fail() / PSS_PROP_ASSERT. Not derived from
/// std::exception for the same reason as Discard: the harness, not the
/// property body, classifies it.
struct Failure {
  std::string message;
};

/// Rejects the current case (e.g. a generated config that violates a
/// precondition). The runner draws a fresh case instead; discards do not
/// count against the case budget.
[[noreturn]] void discard(const std::string& reason);

/// Fails the current case with a message; the runner records and shrinks it.
[[noreturn]] void fail(const std::string& message);

class Source {
 public:
  /// Generation mode: draws from `rng` at sequential counters, recording
  /// each result on the tape.
  explicit Source(const CounterRng& rng) : rng_(rng) {}

  /// Replay mode: draws come from `tape` (clamped into the requested
  /// bound); draws past the end return 0.
  explicit Source(Tape tape) : replay_(true), tape_(std::move(tape)) {}

  /// Uniform integer in [0, bound_inclusive].
  std::uint64_t bits(std::uint64_t bound_inclusive);

  /// Uniform integer in [lo, hi] (requires lo <= hi).
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1) with 53-bit resolution; tape value 0 → 0.0
  /// and smaller tape values → smaller results (shrink-friendly).
  double unit();

  /// Uniform double in [lo, hi); shrinks toward lo.
  double real(double lo, double hi);

  /// True with probability p; shrinks toward false.
  bool boolean(double p = 0.5);

  /// One of the listed alternatives; shrinks toward the first.
  template <typename T>
  T choose(std::initializer_list<T> options) {
    const auto n = static_cast<std::uint64_t>(options.size());
    const std::uint64_t index = n == 0 ? 0 : bits(n - 1);
    return *(options.begin() + static_cast<std::ptrdiff_t>(index));
  }

  bool replay() const { return replay_; }
  const Tape& tape() const { return tape_; }
  /// Draws made so far (tape cursor in replay mode, tape size otherwise).
  std::size_t draws() const { return replay_ ? pos_ : tape_.size(); }

 private:
  bool replay_ = false;
  Tape tape_;
  std::size_t pos_ = 0;  ///< replay cursor
  CounterRng rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace pss::prop
