#include "pss/prop/source.hpp"

namespace pss::prop {

void discard(const std::string& reason) { throw Discard{reason}; }

void fail(const std::string& message) { throw Failure{message}; }

std::uint64_t Source::bits(std::uint64_t bound_inclusive) {
  std::uint64_t value = 0;
  if (replay_) {
    value = pos_ < tape_.size() ? tape_[pos_] : 0;
    ++pos_;
    // Clamp (not wrap): a shrunk tape value can only shrink the result.
    if (value > bound_inclusive) value = bound_inclusive;
    return value;
  }
  if (bound_inclusive > 0) {
    if (bound_inclusive < 0xffffffffull) {
      value = rng_.below(counter_++,
                         static_cast<std::uint32_t>(bound_inclusive) + 1);
    } else {
      // Wide bound: compose two 32-bit words. The modulo bias is far below
      // anything a generator distribution could notice.
      const std::uint64_t hi = rng_.bits(counter_++);
      const std::uint64_t lo = rng_.bits(counter_++);
      value = (hi << 32) | lo;
      if (bound_inclusive != 0xffffffffffffffffull) {
        value %= bound_inclusive + 1;
      }
    }
  }
  tape_.push_back(value);
  return value;
}

std::uint64_t Source::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + bits(hi - lo);
}

double Source::unit() {
  // 53-bit mantissa: tape value k maps to k·2⁻⁵³, so value shrinking is
  // result shrinking and 0 is exactly 0.0.
  const std::uint64_t k = bits((1ull << 53) - 1);
  return static_cast<double>(k) * 0x1p-53;
}

double Source::real(double lo, double hi) { return lo + unit() * (hi - lo); }

bool Source::boolean(double p) {
  if (replay_) return bits(1) != 0;
  // Record the outcome, not the raw draw, so tape value 0 is always `false`
  // regardless of p.
  const bool out = rng_.uniform(counter_++) < p;
  tape_.push_back(out ? 1 : 0);
  return out;
}

}  // namespace pss::prop
