#include "pss/prop/check.hpp"

#include <cstdlib>
#include <exception>
#include <sstream>

#include "pss/common/error.hpp"
#include "pss/prop/shrink.hpp"

namespace pss::prop {

namespace {

/// FNV-1a over the property name: mixed into the seed so different
/// properties in one binary explore independent streams while a
/// (seed, case) pair still replays deterministically for the named one.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

bool env_u64(const char* name, std::uint64_t* out) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

enum class Outcome { kPass, kDiscard, kFail };

/// Runs the property on a Source, classifying the result. Anything thrown
/// except Discard is a failure — including pss::Error escaping the code
/// under test.
Outcome run_property(const Property& property, Source& source,
                     std::string* message) {
  try {
    property(source);
    return Outcome::kPass;
  } catch (const Discard&) {
    return Outcome::kDiscard;
  } catch (const Failure& failure) {
    *message = failure.message;
    return Outcome::kFail;
  } catch (const std::exception& e) {
    *message = std::string("unhandled exception: ") + e.what();
    return Outcome::kFail;
  } catch (...) {
    *message = "unhandled non-standard exception";
    return Outcome::kFail;
  }
}

}  // namespace

std::string CheckResult::repro() const {
  std::ostringstream out;
  out << "PSS_PROP_SEED=" << seed << " PSS_PROP_CASE=" << failing_case;
  return out.str();
}

std::string CheckResult::report() const {
  if (ok()) return "";
  std::ostringstream out;
  out << "property '" << name << "' ";
  if (gave_up) {
    out << "gave up: " << message << "\n";
    return out.str();
  }
  out << "failed at case " << failing_case << " (seed " << seed << ")\n"
      << "  " << message << "\n"
      << "  shrunk tape: " << failing_tape.size() << " -> "
      << shrunk_tape.size() << " choices (" << shrink_evaluations
      << " evals)";
  if (!shrunk_message.empty() && shrunk_message != message) {
    out << "\n  minimized failure: " << shrunk_message;
  }
  out << "\n  repro: " << repro() << "\n";
  return out.str();
}

Source case_source(const std::string& name, std::uint64_t seed,
                   std::uint64_t case_index) {
  return Source(CounterRng(seed ^ fnv1a(name), case_index));
}

CheckResult run_case(const std::string& name, const Property& property,
                     std::uint64_t seed, std::uint64_t case_index,
                     CheckOptions options) {
  CheckResult result;
  result.name = name;
  result.seed = seed;
  result.failing_case = case_index;
  // A single case may still discard; walk forward through the same
  // per-case rejection protocol check() uses (a discarded case index never
  // appears in a repro line, so in practice this runs the one case).
  Source source = case_source(name, seed, case_index);
  std::string message;
  const Outcome outcome = run_property(property, source, &message);
  result.cases_run = 1;
  if (outcome == Outcome::kDiscard) {
    result.discards = 1;
    return result;
  }
  if (outcome == Outcome::kPass) return result;

  result.failed = true;
  result.message = message;
  result.failing_tape = source.tape();

  const auto still_fails = [&](const Tape& tape) {
    Source replay((Tape(tape)));
    std::string ignored;
    return run_property(property, replay, &ignored) == Outcome::kFail;
  };
  ShrinkStats stats;
  result.shrunk_tape = shrink_tape(result.failing_tape, still_fails,
                                   options.shrink_evals, &stats);
  result.shrink_evaluations = stats.evaluations;

  Source minimized((Tape(result.shrunk_tape)));
  run_property(property, minimized, &result.shrunk_message);
  return result;
}

CheckResult check(const std::string& name, const Property& property,
                  CheckOptions options) {
  std::uint64_t seed = options.seed;
  std::uint64_t only_case = 0;
  bool have_only_case = false;
  if (options.read_env) {
    env_u64("PSS_PROP_SEED", &seed);
    have_only_case = env_u64("PSS_PROP_CASE", &only_case);
    std::uint64_t cases_override = 0;
    if (env_u64("PSS_PROP_CASES", &cases_override) && cases_override > 0) {
      options.cases = static_cast<std::uint32_t>(cases_override);
    }
  }

  if (have_only_case) {
    return run_case(name, property, seed, only_case, options);
  }

  CheckResult result;
  result.name = name;
  result.seed = seed;
  const std::uint64_t discard_budget =
      static_cast<std::uint64_t>(options.cases) * options.max_discard_factor;
  std::uint64_t case_index = 0;
  while (result.cases_run < options.cases) {
    Source source = case_source(name, seed, case_index);
    std::string message;
    const Outcome outcome = run_property(property, source, &message);
    if (outcome == Outcome::kDiscard) {
      ++result.discards;
      ++case_index;
      if (result.discards > discard_budget) {
        result.failed = true;
        result.gave_up = true;
        result.message =
            "discard budget exhausted (" + std::to_string(result.discards) +
            " discards for " + std::to_string(result.cases_run) +
            " accepted cases) — generator rejects too much";
        return result;
      }
      continue;
    }
    ++result.cases_run;
    if (outcome == Outcome::kFail) {
      CheckResult failing =
          run_case(name, property, seed, case_index, options);
      failing.cases_run = result.cases_run;
      failing.discards = result.discards;
      return failing;
    }
    ++case_index;
  }
  return result;
}

}  // namespace pss::prop
