#include "pss/prop/generators.hpp"

#include <limits>

namespace pss::prop {

namespace {

/// Finite decimal formatting for generated spec payloads (std::to_string's
/// fixed six decimals — always re-parseable by the strict spec parsers).
std::string num(double v) { return std::to_string(v); }

}  // namespace

QFormat gen_qformat(Source& s) {
  if (s.boolean(0.6)) {
    // The four Table II formats, minimal-first.
    switch (s.bits(3)) {
      case 0: return q0_2();
      case 1: return q0_4();
      case 2: return q1_7();
      default: return q1_15();
    }
  }
  const int m = static_cast<int>(s.bits(2));           // 0..2 integer bits
  const int n = static_cast<int>(s.range(1, 15));      // 1..15 fraction bits
  return QFormat(m, n);
}

StdpUpdaterConfig gen_stdp_config(Source& s) {
  StdpUpdaterConfig config;
  config.kind = s.boolean(0.3) ? StdpKind::kDeterministic
                               : StdpKind::kStochastic;
  config.magnitude.alpha_p = s.real(0.001, 0.05);
  config.magnitude.beta_p = s.real(0.5, 4.0);
  config.magnitude.alpha_d = s.real(0.0005, 0.02);
  config.magnitude.beta_d = s.real(0.5, 4.0);
  config.magnitude.g_min = 0.0;
  config.magnitude.g_max = 1.0;
  config.gate.gamma_pot = s.real(0.1, 1.0);
  config.gate.tau_pot = s.real(5.0, 60.0);
  config.gate.gamma_dep = s.real(0.1, 1.0);
  config.gate.tau_dep = s.real(2.0, 30.0);
  config.gate.tau_stale = s.real(20.0, 200.0);
  config.depression = s.choose({DepressionMode::kStaleAtPost,
                                DepressionMode::kPreSpikeEq7,
                                DepressionMode::kBoth});
  config.det_window_ms = s.real(5.0, 40.0);
  if (s.boolean(0.5)) {
    config.format = gen_qformat(s);
  } else {
    config.format.reset();
  }
  config.rounding = s.choose({RoundingMode::kNearest, RoundingMode::kTruncate,
                              RoundingMode::kStochastic});
  return config;
}

WtaConfig gen_wta_config(Source& s, const std::string& backend) {
  const LearningOption option =
      s.choose({LearningOption::kFloat32, LearningOption::k16Bit,
                LearningOption::k8Bit, LearningOption::k4Bit,
                LearningOption::k2Bit});
  const StdpKind kind =
      s.boolean(0.25) ? StdpKind::kDeterministic : StdpKind::kStochastic;
  const std::size_t neurons = s.range(2, 14);
  WtaConfig config = WtaConfig::from_table1(option, kind, neurons);
  config.backend = backend;
  config.input_channels = s.range(4, 32);
  config.seed = s.bits(0xffffffffull);
  config.fused_step = s.boolean(0.5);
  config.lazy_stdp = s.boolean(0.5);
  config.t_inh_ms = s.real(5.0, 30.0);
  config.spike_amplitude = s.real(1.0, 5.0);
  config.learning_rate_scale = s.real(1.0, 8.0);
  config.init_g_lo = s.real(0.05, 0.4);
  config.init_g_hi = config.init_g_lo + s.real(0.1, 0.5);
  if (s.boolean(0.3)) config.reference_total_rate_hz = 0.0;  // fixed amplitude
  return config;
}

std::vector<double> gen_rates(Source& s, std::size_t channels, double max_hz) {
  std::vector<double> rates(channels, 0.0);
  for (double& rate : rates) {
    if (s.boolean(0.7)) rate = s.real(0.0, max_hz);
  }
  return rates;
}

std::vector<TimeMs> gen_pre_spike_times(Source& s, std::size_t channels,
                                        TimeMs t_post, TimeMs window_ms) {
  std::vector<TimeMs> last(channels,
                           -std::numeric_limits<TimeMs>::infinity());
  for (TimeMs& t : last) {
    switch (s.bits(2)) {
      case 0:  // never fired
        break;
      case 1:  // recent, inside ~the causal window
        t = t_post - s.real(0.0, 3.0 * window_ms);
        break;
      default:  // ancient
        t = t_post - s.real(3.0 * window_ms, 50.0 * window_ms);
        break;
    }
  }
  return last;
}

std::string gen_layers_spec(Source& s) {
  std::string spec = "encode:peak=" + std::to_string(s.range(20, 200));
  if (s.boolean(0.3)) spec += ",temporal=diff";
  const bool with_conv = s.boolean(0.5);
  if (with_conv) {
    spec += ";conv:filters=" + std::to_string(s.range(1, 4)) +
            ",kernel=" + std::to_string(s.range(2, 5)) +
            ",stride=" + std::to_string(s.range(1, 2)) +
            ",bank=" + std::string(s.boolean() ? "gabor" : "dog");
    if (s.boolean(0.5)) spec += ",threshold=" + num(s.real(0.5, 4.0));
    if (s.boolean(0.5)) spec += ",gain=" + num(s.real(0.2, 3.0));
    if (s.boolean(0.3)) spec += ",decay_ms=" + num(s.real(0.0, 5.0));
    if (s.boolean(0.4)) {
      spec += ";pool:window=" + std::to_string(s.range(2, 3));
    }
  }
  const std::uint64_t wta_blocks = s.range(1, 2);
  for (std::uint64_t b = 0; b < wta_blocks; ++b) {
    spec += ";wta:neurons=" + std::to_string(s.range(2, 12));
    if (s.boolean(0.4)) spec += ",gain=" + num(s.real(0.2, 3.0));
  }
  if (s.boolean(0.4)) {
    spec += ";readout:inhibition=" + std::string(s.boolean() ? "1" : "0") +
            ",theta=" + std::string(s.boolean() ? "1" : "0");
  }
  return spec;
}

namespace {

const char* gen_fault_point(Source& s) {
  return s.choose({"io.snapshot.write", "io.snapshot.read", "snapshot.corrupt",
                   "shard.worker", "serve.worker", "train.interrupt",
                   "synapse.stuck"});
}

}  // namespace

std::string gen_fault_spec(Source& s) {
  std::string spec;
  const std::uint64_t clauses = s.range(1, 2);
  for (std::uint64_t c = 0; c < clauses; ++c) {
    if (c > 0) spec += ";";
    spec += gen_fault_point(s);
    std::string opts;
    if (s.boolean(0.7)) {
      opts += std::string(opts.empty() ? "" : ",") + "rate=" +
              num(static_cast<double>(s.bits(4)) / 4.0);
    }
    if (s.boolean(0.5)) {
      opts += std::string(opts.empty() ? "" : ",") + "after=" +
              std::to_string(s.bits(5));
    }
    if (s.boolean(0.5)) {
      opts += std::string(opts.empty() ? "" : ",") + "count=" +
              std::to_string(s.range(1, 3));
    }
    if (s.boolean(0.5)) {
      opts += std::string(opts.empty() ? "" : ",") + "kind=" +
              (s.boolean() ? "transient" : "fatal");
    }
    if (!opts.empty()) spec += ":" + opts;
  }
  return spec;
}

std::string mutate_string(Source& s, std::string text) {
  static const char kAlphabet[] = ";:,=+-.eExX 0123456789abznif\t";
  const std::uint64_t mutations = s.range(1, 4);
  for (std::uint64_t m = 0; m < mutations; ++m) {
    const char c =
        kAlphabet[s.bits(sizeof(kAlphabet) - 2)];  // excl. the NUL
    if (text.empty()) {
      text.push_back(c);
      continue;
    }
    const std::size_t pos =
        static_cast<std::size_t>(s.bits(text.size() - 1));
    switch (s.bits(3)) {
      case 0:
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos), c);
        break;
      case 1:
        text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      case 2:
        text[pos] = c;
        break;
      default:
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                    text[pos]);
        break;
    }
  }
  return text;
}

std::string gen_bad_layers_spec(Source& s) {
  switch (s.bits(7)) {
    case 0:
      return "encode:peak=" + std::string(s.boolean() ? "inf" : "nan") +
             ";wta:neurons=" + std::to_string(s.range(1, 8));
    case 1:
      return "conv:gain=" + std::string(s.boolean() ? "nan" : "1e999") +
             ",filters=2,kernel=3;wta:neurons=4";
    case 2:
      // ULLONG_MAX is ...615: a final digit of 6–9 guarantees the value
      // overflows strtoull — which must be an error, not a clamp.
      return "wta:neurons=1844674407370955161" + std::to_string(6 + s.bits(3));
    case 3:
      return "wta:neurons=" + std::to_string(s.range(1, 8)) +
             ";conv:filters=2,kernel=3";  // conv after wta
    case 4:
      return "pool:window=2;wta:neurons=4";  // pool with no conv predecessor
    case 5:
      return "wta:neurons=";  // empty value
    case 6:
      return ";;wta:neurons=4";  // empty segments
    default:
      return "wta:neurons=" + std::to_string(s.range(1, 8)) + ",gain=-" +
             num(s.real(0.1, 2.0));  // gain must be > 0
  }
}

std::string gen_bad_fault_spec(Source& s) {
  const std::string point = gen_fault_point(s);
  switch (s.bits(7)) {
    case 0:
      return point + ":after=" + std::string(s.boolean() ? "nan" : "-3");
    case 1:
      return point + ":count=" + std::string(s.boolean() ? "1e300" : "inf");
    case 2:
      return point + ":after=" + num(s.real(0.1, 0.9));  // non-integer
    case 3:
      return point + ":rate=" + num(s.real(1.5, 9.0));  // out of [0, 1]
    case 4: {
      // Character mutations can cancel out; force the value off the
      // transient|fatal vocabulary so the clause is genuinely malformed.
      std::string kind = mutate_string(s, "transient");
      if (kind == "transient" || kind == "fatal") kind += "z";
      return point + ":kind=" + kind;
    }
    case 5:
      return point + ":bogus_key=" + std::to_string(s.bits(9));
    case 6:
      return ":rate=1";  // missing point name
    default:
      return point + ":rate";  // not key=value
  }
}

std::vector<std::string> gen_run_option_tokens(Source& s) {
  std::vector<std::string> tokens;
  const std::uint64_t count = s.range(1, 5);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string key =
        s.choose({"neurons", "train", "label", "eval", "workers", "batch",
                  "seed", "option", "kind", "rounding", "backend",
                  "checkpoints", "checkpoint_every", "fault_seed"});
    std::string value;
    switch (s.bits(4)) {
      case 0:  // plausible small integer
        value = std::to_string(s.bits(200));
        break;
      case 1:  // negative integer (several keys must reject these)
        value = "-" + std::to_string(s.range(1, 1000));
        break;
      case 2:  // enum-ish word, sometimes valid
        value = s.choose({"fp32", "2bit", "stochastic", "nearest", "cpu",
                          "cpu_simd", "gpu", "bogus"});
        break;
      case 3:  // number with trailing garbage
        value = std::to_string(s.bits(99)) + s.choose({"x", "e", ".", " "});
        break;
      default:  // mutated digits
        value = mutate_string(s, std::to_string(s.bits(999)));
        break;
    }
    tokens.push_back(key + "=" + value);
  }
  return tokens;
}

}  // namespace pss::prop
