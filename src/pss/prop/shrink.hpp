// Greedy tape shrinker: given a failing choice tape, find a smaller one
// that still fails the property.
//
// Two alternating passes until a fixpoint (or the evaluation budget runs
// out):
//  * size pass — delete contiguous tape blocks, chunk size halving from
//    half the tape down to single draws (ddmin-style);
//  * value pass — per position, descend each choice toward 0 (try 0, then
//    v/2, then v−1, keeping the first that still fails).
//
// Every accepted candidate strictly decreases the (length, Σ values)
// measure, so shrinking always terminates; with a deterministic predicate
// (tape replay is pure — see source.hpp) the result is a deterministic
// function of the input tape.
#pragma once

#include <cstdint>
#include <functional>

#include "pss/prop/source.hpp"

namespace pss::prop {

struct ShrinkStats {
  std::uint32_t evaluations = 0;  ///< predicate calls spent
  std::uint32_t accepted = 0;     ///< candidates that still failed
};

/// `still_fails(tape)` must replay the property on the candidate tape and
/// return true iff it still fails. At most `eval_limit` predicate calls.
Tape shrink_tape(Tape failing,
                 const std::function<bool(const Tape&)>& still_fails,
                 std::uint32_t eval_limit, ShrinkStats* stats = nullptr);

}  // namespace pss::prop
