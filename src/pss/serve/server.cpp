#include "pss/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "pss/common/error.hpp"
#include "pss/engine/launch.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/trace.hpp"
#include "pss/robust/fault_injection.hpp"
#include "pss/serve/net.hpp"

namespace pss::serve {

namespace {

/// Hot-path metric handles, resolved once (registration takes a lock).
struct ServeMetrics {
  obs::Counter& admitted;
  obs::Counter& completed;
  obs::Counter& shed;
  obs::Counter& expired;
  obs::Counter& requeue;
  obs::Counter& faults;
  obs::Counter& worker_restarts;
  obs::Counter& reloads;
  obs::Counter& batches;
  obs::FixedHistogram& latency;
  obs::FixedHistogram& batch_size;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m{
      obs::metrics().counter("serve.admitted"),
      obs::metrics().counter("serve.completed"),
      obs::metrics().counter("serve.shed"),
      obs::metrics().counter("serve.expired"),
      obs::metrics().counter("serve.requeue"),
      obs::metrics().counter("serve.faults"),
      obs::metrics().counter("serve.worker_restarts"),
      obs::metrics().counter("serve.reloads"),
      obs::metrics().counter("serve.batches"),
      obs::metrics().histogram("serve.latency_seconds",
                               {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                                0.5, 1.0, 2.5, 5.0, 10.0}),
      obs::metrics().histogram("serve.batch_size",
                               {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}),
  };
  return m;
}

std::uint64_t ms_to_ns(std::uint64_t ms) { return ms * 1000000ull; }

}  // namespace

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)),
      frequency_map_(options_.f_min_hz, options_.f_max_hz),
      queue_(std::make_unique<RequestQueue>(options_.queue_capacity)) {
  PSS_REQUIRE(net::available(), "pss_serve requires socket support");
  PSS_REQUIRE(options_.workers > 0, "serve: need at least one worker");
  PSS_REQUIRE(options_.max_batch > 0, "serve: max_batch must be positive");
  install_model(load_model(options_.model_path, options_.base_config));
  listen_fd_ = net::listen_loopback(options_.port, 64, port_);

  slots_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (std::size_t i = 0; i < options_.workers; ++i) {
    slots_[i]->last_beat_ns.store(obs::monotonic_ns(),
                                  std::memory_order_release);
    slots_[i]->thread = std::thread(&ServeServer::worker_loop, this, i);
  }
  monitor_ = std::thread(&ServeServer::monitor_loop, this);
  acceptor_ = std::thread(&ServeServer::acceptor_loop, this);
}

ServeServer::~ServeServer() { stop(); }

std::shared_ptr<const ModelBundle> ServeServer::current_model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

void ServeServer::install_model(ModelBundle bundle) {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  bundle.generation = generation_.load(std::memory_order_relaxed) + 1;
  input_units_.store(bundle.input_units, std::memory_order_release);
  model_ = std::make_shared<const ModelBundle>(std::move(bundle));
  generation_.store(model_->generation, std::memory_order_release);
}

void ServeServer::reload() {
  ModelBundle bundle = load_model(options_.model_path, options_.base_config);
  PSS_REQUIRE(bundle.input_units ==
                  input_units_.load(std::memory_order_acquire),
              "serve: reload rejected — input geometry changed");
  install_model(std::move(bundle));
  serve_metrics().reloads.add(1);
}

void ServeServer::absorb_training(const graph::NetworkGraph& replica) {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  ModelBundle updated = *model_;
  for (std::size_t b = 0; b < replica.block_count(); ++b) {
    const WtaNetwork& block = replica.block(b);
    updated.model.blocks[b].conductance = block.conductance().to_vector();
    updated.model.blocks[b].theta.assign(block.theta().begin(),
                                         block.theta().end());
  }
  updated.generation = generation_.load(std::memory_order_relaxed) + 1;
  model_ = std::make_shared<const ModelBundle>(std::move(updated));
  generation_.store(model_->generation, std::memory_order_release);
}

void ServeServer::wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock,
                [&] { return stopping_.load(std::memory_order_acquire); });
}

void ServeServer::request_shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  queue_->shutdown();
  wait_cv_.notify_all();
}

std::string ServeServer::stats_text() const {
  const ServeMetrics& m = serve_metrics();
  std::string text;
  text += "generation=" + std::to_string(model_generation());
  text += " depth=" + std::to_string(queue_->depth());
  text += " admitted=" + std::to_string(m.admitted.value());
  text += " completed=" + std::to_string(m.completed.value());
  text += " shed=" + std::to_string(m.shed.value());
  text += " expired=" + std::to_string(m.expired.value());
  text += " requeue=" + std::to_string(m.requeue.value());
  text += " faults=" + std::to_string(m.faults.value());
  text += " worker_restarts=" + std::to_string(m.worker_restarts.value());
  text += " reloads=" + std::to_string(m.reloads.value());
  return text;
}

Response ServeServer::execute(graph::NetworkGraph& replica,
                              const ModelBundle& bundle,
                              const PendingRequest& pending) {
  obs::TraceSpan span("serve.present", "serve",
                      static_cast<std::int64_t>(pending.seq));
  // The admission sequence number is the presentation index — a requeued
  // request re-executed on any replica replays bit for bit (the graph's
  // front-end encoder packs index·kMaxFrames into 32 bits, hence the wrap).
  replica.set_presentation_index(pending.seq &
                                 (0xffffffffull /
                                  graph::NetworkGraph::kMaxFrames));
  const bool learn = pending.request.verb == Verb::kTrain;
  // Online training refines the readout block; the frozen front-end and
  // earlier blocks are exactly the layer-wise schedule's inference path.
  const int learn_block =
      learn ? static_cast<int>(replica.block_count()) - 1 : -1;
  const graph::GraphResult result =
      replica.present(pending.rates_hz, options_.t_present_ms, learn_block);
  if (learn) {
    return {Status::kOk, pending.request.id, result.winner(), "trained"};
  }
  const int predicted = predict_from_counts(
      result.spike_counts, bundle.neuron_labels, bundle.class_count);
  return {Status::kOk, pending.request.id, predicted, ""};
}

void ServeServer::worker_loop(std::size_t slot_index) {
  WorkerSlot& slot = *slots_[slot_index];
  const std::uint64_t window_ns = ms_to_ns(options_.window_ms);
  const auto beat = [&slot] {
    slot.last_beat_ns.store(obs::monotonic_ns(), std::memory_order_release);
  };
  const auto erase_one = [&slot](const PendingPtr& request) {
    const std::lock_guard<std::mutex> lock(slot.inflight_mutex);
    slot.inflight.erase(
        std::remove(slot.inflight.begin(), slot.inflight.end(), request),
        slot.inflight.end());
  };
  const auto requeue_with_backoff = [this](const PendingPtr& request) {
    const double delay_ms = options_.backoff.delay_ms(
        request->seq, request->attempts.load(std::memory_order_relaxed));
    // Counter first: once the request is back in the queue another worker
    // can answer it, and the client must never observe a response whose
    // requeue has not been counted yet.
    serve_metrics().requeue.add(1);
    queue_->requeue(request, obs::monotonic_ns() +
                                 static_cast<std::uint64_t>(delay_ms * 1e6));
  };

  try {
    Engine engine(1);  // serial: parallelism is across requests, not inside
    std::shared_ptr<const ModelBundle> bundle;
    std::optional<graph::NetworkGraph> replica;

    for (;;) {
      beat();
      std::vector<PendingPtr> batch =
          queue_->next_batch(options_.max_batch, window_ns);
      if (batch.empty()) return;  // shutdown + drained
      beat();
      serve_metrics().batches.add(1);
      serve_metrics().batch_size.observe(static_cast<double>(batch.size()));
      {
        const std::lock_guard<std::mutex> lock(slot.inflight_mutex);
        slot.inflight.insert(slot.inflight.end(), batch.begin(), batch.end());
      }
      // Torn-free hot reload: the generation is only consulted between
      // batches, so every presentation inside a batch runs on one model.
      if (!bundle || bundle->generation !=
                         generation_.load(std::memory_order_acquire)) {
        bundle = current_model();
        replica = instantiate(*bundle, &engine);
      }

      for (const PendingPtr& request : batch) {
        beat();
        if (request->completed()) {  // duplicate after a stale-beat requeue
          erase_one(request);
          continue;
        }
        const std::uint64_t now = obs::monotonic_ns();
        if (request->deadline_ns <= now) {
          request->complete({Status::kDeadlineExceeded, request->request.id,
                             0, "deadline expired before execution"},
                            [] { serve_metrics().expired.add(1); });
          erase_one(request);
          continue;
        }
        try {
          robust::fault_point("serve.worker");
          Response response = execute(*replica, *bundle, *request);
          const bool trained = request->request.verb == Verb::kTrain &&
                               response.status == Status::kOk;
          // `won` gates absorb_training below: after a stale-heartbeat
          // requeue a straggler duplicate can reach here with the request
          // already answered — absorbing its STDP update again would apply
          // the same example twice and break bit-for-bit replay.
          const bool won = request->complete(std::move(response), [&request] {
            serve_metrics().completed.add(1);
            serve_metrics().latency.observe(
                static_cast<double>(obs::monotonic_ns() -
                                    request->admitted_ns) /
                1e9);
          });
          erase_one(request);
          if (trained && won) {
            // Publish the updated weights; other workers resync between
            // batches. Concurrent trains are last-write-wins (documented).
            absorb_training(*replica);
            bundle = current_model();
          }
        } catch (const TransientError&) {
          // Transient fault: this worker survives; the request retries on
          // any worker after a deterministic backoff. Its deadline is the
          // retry cap — a request that keeps faulting eventually expires.
          serve_metrics().faults.add(1);
          erase_one(request);
          requeue_with_backoff(request);
        }
      }
    }
  } catch (const std::exception&) {
    // Fatal fault — simulate a crash: leave the inflight list as-is and die.
    // The heartbeat monitor joins us, requeues the orphans, and restarts
    // the slot.
    serve_metrics().faults.add(1);
    slot.dead.store(true, std::memory_order_release);
  }
}

void ServeServer::drain_and_requeue(WorkerSlot& slot) {
  std::vector<PendingPtr> orphans;
  {
    const std::lock_guard<std::mutex> lock(slot.inflight_mutex);
    orphans.swap(slot.inflight);
  }
  const std::uint64_t now = obs::monotonic_ns();
  for (const PendingPtr& request : orphans) {
    if (request->completed()) continue;
    const double delay_ms = options_.backoff.delay_ms(
        request->seq, request->attempts.load(std::memory_order_relaxed));
    serve_metrics().requeue.add(1);  // before the queue can hand it out
    queue_->requeue(request,
                    now + static_cast<std::uint64_t>(delay_ms * 1e6));
  }
}

void ServeServer::monitor_loop() {
  const std::uint64_t timeout_ns = ms_to_ns(options_.heartbeat_timeout_ms);
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.heartbeat_interval_ms));
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      WorkerSlot& slot = *slots_[i];
      if (slot.retired) continue;
      if (slot.dead.load(std::memory_order_acquire)) {
        // The thread exited after a fatal fault; its inflight requests are
        // orphaned until we recover them here.
        if (slot.thread.joinable()) slot.thread.join();
        drain_and_requeue(slot);
        serve_metrics().worker_restarts.add(1);
        if (slot.restarts++ >= options_.max_worker_restarts) {
          slot.retired = true;  // capped — slot stays down
          continue;
        }
        slot.dead.store(false, std::memory_order_release);
        slot.last_beat_ns.store(obs::monotonic_ns(),
                                std::memory_order_release);
        slot.thread = std::thread(&ServeServer::worker_loop, this, i);
      } else {
        // Missed-heartbeat path: a worker holding inflight work that has
        // not beaten within the timeout is presumed hung. Requeue its work
        // (once-only completion makes a late answer harmless) but leave the
        // thread alone — it may still come back.
        bool busy = false;
        {
          const std::lock_guard<std::mutex> lock(slot.inflight_mutex);
          busy = !slot.inflight.empty();
        }
        const std::uint64_t beat =
            slot.last_beat_ns.load(std::memory_order_acquire);
        if (busy && obs::monotonic_ns() - beat > timeout_ns) {
          drain_and_requeue(slot);
        }
      }
    }
  }
}

Response ServeServer::handle_inline_or_admit(
    const Request& request, const std::shared_ptr<Outbox>& outbox,
    bool& answered_inline) {
  answered_inline = true;
  switch (request.verb) {
    case Verb::kPing:
      return {Status::kOk, request.id, 0, "pong"};
    case Verb::kStats:
      return {Status::kOk, request.id,
              static_cast<std::int64_t>(queue_->depth()), stats_text()};
    case Verb::kReload:
      try {
        reload();
        return {Status::kOk, request.id,
                static_cast<std::int64_t>(model_generation()), "reloaded"};
      } catch (const std::exception& e) {
        return {Status::kError, request.id, 0, e.what()};
      }
    case Verb::kShutdown:
      return {Status::kOk, request.id, 0, "shutting down"};
    case Verb::kClassify:
    case Verb::kTrain: {
      const std::size_t channels =
          input_units_.load(std::memory_order_acquire);
      if (request.body.size() != channels) {
        return {Status::kError, request.id, 0,
                "body must carry " + std::to_string(channels) +
                    " pixels, got " + std::to_string(request.body.size())};
      }
      if (request.verb == Verb::kClassify && !current_model()->can_classify()) {
        return {Status::kError, request.id, 0,
                "model has no neuron labels (loaded from a training "
                "checkpoint) — classify unavailable"};
      }
      auto pending = std::make_shared<PendingRequest>();
      pending->request = request;
      frequency_map_.frequencies(pending->request.body, pending->rates_hz);
      const std::uint32_t budget_ms = request.deadline_ms != 0
                                          ? request.deadline_ms
                                          : options_.default_deadline_ms;
      pending->deadline_ns = obs::monotonic_ns() + ms_to_ns(budget_ms);
      pending->outbox = outbox;
      if (queue_->admit(pending)) {
        serve_metrics().admitted.add(1);
        answered_inline = false;  // a worker will answer via the outbox
        return {};
      }
      serve_metrics().shed.add(1);
      return {Status::kOverloaded, request.id, 0, "admission queue full"};
    }
  }
  return {Status::kError, request.id, 0, "unreachable verb"};
}

void ServeServer::connection_loop(Connection* connection) {
  // Writer: drains the outbox until it is closed and empty. Responses
  // arrive from workers (queued verbs) and from the reader (inline verbs).
  std::thread writer([this, connection] {
    Response response;
    while (connection->outbox->pop(response)) {
      const std::vector<std::uint8_t> bytes = encode_response(response);
      if (!net::write_frame(connection->fd, bytes,
                            static_cast<int>(options_.io_timeout_ms))) {
        break;  // stalled or vanished client; stop delivering
      }
    }
  });

  std::vector<std::uint8_t> payload;
  for (;;) {
    if (!net::read_frame(connection->fd, payload, kMaxFrameBytes,
                         static_cast<int>(options_.io_timeout_ms))) {
      break;  // EOF, oversized frame, read deadline, or shutdown_read
    }
    Request request;
    try {
      request = decode_request(payload);
    } catch (const std::exception& e) {
      connection->outbox->push({Status::kError, 0, 0, e.what()});
      break;  // protocol error: answer, then drop the connection
    }
    bool answered_inline = false;
    Response response =
        handle_inline_or_admit(request, connection->outbox, answered_inline);
    if (answered_inline) connection->outbox->push(std::move(response));
    if (request.verb == Verb::kShutdown) {
      request_shutdown();
      break;
    }
  }
  connection->outbox->close();
  writer.join();
  // The fd stays open here; the reaper/stop() is its single owner (closing
  // it from this thread would race stop()'s shutdown_read on a reused fd).
  connection->finished.store(true, std::memory_order_release);
}

void ServeServer::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = net::accept_connection(listen_fd_, 100);
    // Reap finished connections so a long-lived daemon does not accumulate
    // joinable threads.
    {
      const std::lock_guard<std::mutex> lock(conn_mutex_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if (it->finished.load(std::memory_order_acquire)) {
          it->thread.join();
          net::close_fd(it->fd);
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      net::shutdown_and_close(fd);
      return;
    }
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    Connection& connection = connections_.emplace_back();
    connection.fd = fd;
    connection.outbox = std::make_shared<Outbox>();
    connection.thread =
        std::thread(&ServeServer::connection_loop, this, &connection);
  }
}

void ServeServer::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  request_shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  if (monitor_.joinable()) monitor_.join();
  for (const auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  // Safety net: answer anything still queued or orphaned (possible when
  // every worker slot died past its restart cap).
  for (;;) {
    const std::vector<PendingPtr> leftovers =
        queue_->next_batch(options_.max_batch, 0);
    if (leftovers.empty()) break;
    for (const PendingPtr& request : leftovers) {
      request->complete(
          {Status::kError, request->request.id, 0, "server stopped"});
    }
  }
  for (const auto& slot : slots_) {
    std::vector<PendingPtr> orphans;
    {
      const std::lock_guard<std::mutex> lock(slot->inflight_mutex);
      orphans.swap(slot->inflight);
    }
    for (const PendingPtr& request : orphans) {
      request->complete(
          {Status::kError, request->request.id, 0, "server stopped"});
    }
  }
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (Connection& connection : connections_) {
      net::shutdown_read(connection.fd);  // unblock the reader promptly
    }
  }
  for (;;) {
    Connection* connection = nullptr;
    {
      const std::lock_guard<std::mutex> lock(conn_mutex_);
      if (connections_.empty()) break;
      connection = &connections_.front();
    }
    if (connection->thread.joinable()) connection->thread.join();
    net::close_fd(connection->fd);
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.pop_front();
  }
  net::shutdown_and_close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace pss::serve
