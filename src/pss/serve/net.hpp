// Loopback socket primitives — the ONE translation unit in the tree allowed
// to issue raw socket syscalls (enforced by the pss_lint rule
// `raw-socket-syscall`, mirroring how perf_event_open is confined to
// pss/obs/perf.cpp). Every consumer — the pss_serve daemon, its client, the
// obs metrics exporter — goes through these wrappers, so bind/accept error
// handling, read/write deadlines, and bounded buffering live in a single
// audited place.
//
// Layering note: this is a leaf utility (depends only on pss/common). It
// lives under serve/ because the daemon is its primary consumer, but lower
// layers (obs/exporter.cpp) may use it freely.
//
// Every blocking call takes a millisecond deadline and is poll-driven, so a
// slow or stalled peer can never wedge the calling thread — the property the
// exporter slow-loris regression test pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pss::serve::net {

/// True when the platform has BSD sockets (Linux/macOS). All other entry
/// points throw pss::Error when this is false.
bool available();

/// Binds + listens on 127.0.0.1:`port` (0 = ephemeral) and returns the
/// listening fd; the bound port lands in `bound_port`. Throws pss::Error on
/// failure (port in use, no socket support).
int listen_loopback(std::uint16_t port, int backlog,
                    std::uint16_t& bound_port);

/// Accepts one pending connection, waiting at most `timeout_ms`. Returns the
/// connection fd, or -1 on timeout / transient accept failure.
int accept_connection(int listen_fd, int timeout_ms);

/// Connects to 127.0.0.1:`port`, waiting at most `timeout_ms` for the
/// handshake. Throws pss::Error on refusal or timeout.
int connect_loopback(std::uint16_t port, int timeout_ms);

/// Reads whatever is available (at most `cap` bytes), waiting up to
/// `timeout_ms` for the first byte. Returns the byte count, 0 on orderly
/// peer shutdown, -1 on timeout or error.
std::ptrdiff_t read_some(int fd, void* buf, std::size_t cap, int timeout_ms);

/// Reads exactly `n` bytes within an overall `timeout_ms` budget. Returns
/// false on EOF/timeout/error (partial data is discarded by the caller).
bool read_exact(int fd, void* buf, std::size_t n, int timeout_ms);

/// Writes all `n` bytes within an overall `timeout_ms` budget (poll-driven;
/// never blocks past it on a stalled reader). Returns false on failure.
bool write_all(int fd, const void* buf, std::size_t n, int timeout_ms);

/// Length-prefixed framing: a frame is a little-endian u32 payload size
/// followed by the payload. `read_frame` rejects frames larger than
/// `max_bytes` (returns false — the caller should drop the connection; an
/// oversized or garbage prefix must not drive allocation). Returns false on
/// EOF/timeout as well; `write_frame` mirrors write_all semantics.
bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_bytes, int timeout_ms);
bool write_frame(int fd, std::span<const std::uint8_t> payload,
                 int timeout_ms);

/// Closes an fd (no-op for fd < 0).
void close_fd(int fd);

/// Half-closes the read side so a read_frame blocked on another thread
/// returns promptly; the write side stays usable for draining responses.
void shutdown_read(int fd);

/// Half-closes + closes a listening fd so a blocked accept_connection poll
/// returns promptly on another thread.
void shutdown_and_close(int fd);

}  // namespace pss::serve::net
