// Minimal loopback client for pss_serve — used by the daemon's CLI verbs,
// the integration tests, and the bench_serve load generator. One connection,
// synchronous call() or pipelined send()/receive() (the pipelined form is
// what lets the server's batching window actually coalesce).
#pragma once

#include <cstdint>
#include <span>

#include "pss/serve/protocol.hpp"

namespace pss::serve {

class ServeClient {
 public:
  /// Connects to 127.0.0.1:`port`. Throws pss::Error on refusal/timeout.
  explicit ServeClient(std::uint16_t port, int timeout_ms = 10000);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends one request and waits for one response (matching is positional:
  /// the server answers a connection's inline verbs in order and queued
  /// verbs in completion order — use call() only on its own, not mixed with
  /// a pipelined burst).
  Response call(const Request& request);

  /// Fire-and-forget send; pair with receive(). Throws pss::Error when the
  /// write stalls past the timeout.
  void send(const Request& request);

  /// Next response in arrival order. Throws pss::Error on EOF/timeout.
  Response receive();

  /// Convenience wrappers; id is assigned internally.
  Response classify(std::span<const std::uint8_t> pixels,
                    std::uint32_t deadline_ms = 0);
  Response ping();
  Response stats();
  Response reload();
  Response shutdown_server();

 private:
  std::uint64_t take_id() { return next_id_++; }

  int fd_ = -1;
  int timeout_ms_;
  std::uint64_t next_id_ = 1;
};

}  // namespace pss::serve
