#include "pss/serve/net.hpp"

#include <cstring>

#include "pss/common/error.hpp"
#include "pss/obs/metrics.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <arpa/inet.h>    // pss-lint: allow(raw-socket-syscall)
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>   // pss-lint: allow(raw-socket-syscall)
#include <poll.h>
#include <sys/socket.h>   // pss-lint: allow(raw-socket-syscall)
#include <unistd.h>
#define PSS_HAVE_SOCKETS 1
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: disable_sigpipe() sets SO_NOSIGPIPE per fd
#endif
#endif

namespace pss::serve::net {

#if defined(PSS_HAVE_SOCKETS)

namespace {

/// Platforms without MSG_NOSIGNAL (macOS) deliver SIGPIPE on send() to a
/// disconnected peer, which would kill the whole daemon — suppress it per
/// socket instead. Must run on every fd from socket() AND accept() (accepted
/// sockets do not inherit the option on all BSDs).
void disable_sigpipe(int fd) {
#if defined(__APPLE__)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);  // pss-lint: allow(raw-socket-syscall)
#else
  (void)fd;  // MSG_NOSIGNAL on send() covers it
#endif
}

/// Remaining budget helper: deadlines are tracked as absolute monotonic
/// nanoseconds so a sequence of polls never exceeds the caller's total.
std::uint64_t deadline_from(int timeout_ms) {
  return obs::monotonic_ns() +
         static_cast<std::uint64_t>(timeout_ms < 0 ? 0 : timeout_ms) *
             1000000ull;
}

int remaining_ms(std::uint64_t deadline_ns) {
  const std::uint64_t now = obs::monotonic_ns();
  if (now >= deadline_ns) return 0;
  const std::uint64_t ms = (deadline_ns - now) / 1000000ull;
  return ms > 60000 ? 60000 : static_cast<int>(ms);
}

bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (ready == 0) return false;  // timeout
    if (errno == EINTR) continue;
    return false;
  }
}

}  // namespace

bool available() { return true; }

int listen_loopback(std::uint16_t port, int backlog,
                    std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // pss-lint: allow(raw-socket-syscall)
  PSS_REQUIRE(fd >= 0, "serve/net: socket() failed");
  disable_sigpipe(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);  // pss-lint: allow(raw-socket-syscall)

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||  // pss-lint: allow(raw-socket-syscall)
      ::listen(fd, backlog) != 0) {  // pss-lint: allow(raw-socket-syscall)
    ::close(fd);
    PSS_REQUIRE(false,
                "serve/net: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);  // pss-lint: allow(raw-socket-syscall)
  bound_port = ntohs(bound.sin_port);
  return fd;
}

int accept_connection(int listen_fd, int timeout_ms) {
  if (!wait_fd(listen_fd, POLLIN, timeout_ms)) return -1;
  const int fd = ::accept(listen_fd, nullptr, nullptr);  // pss-lint: allow(raw-socket-syscall)
  if (fd >= 0) disable_sigpipe(fd);
  return fd;
}

int connect_loopback(std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // pss-lint: allow(raw-socket-syscall)
  PSS_REQUIRE(fd >= 0, "serve/net: socket() failed");
  disable_sigpipe(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  // Non-blocking connect so the handshake honors the deadline.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),  // pss-lint: allow(raw-socket-syscall)
                           sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    PSS_REQUIRE(false, "serve/net: cannot connect to 127.0.0.1:" +
                           std::to_string(port));
  }
  if (rc != 0) {
    if (!wait_fd(fd, POLLOUT, timeout_ms)) {
      ::close(fd);
      PSS_REQUIRE(false, "serve/net: connect timeout to 127.0.0.1:" +
                             std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);  // pss-lint: allow(raw-socket-syscall)
    if (err != 0) {
      ::close(fd);
      PSS_REQUIRE(false, "serve/net: connect to 127.0.0.1:" +
                             std::to_string(port) + " failed: " +
                             std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

std::ptrdiff_t read_some(int fd, void* buf, std::size_t cap, int timeout_ms) {
  if (!wait_fd(fd, POLLIN, timeout_ms)) return -1;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);  // pss-lint: allow(raw-socket-syscall)
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool read_exact(int fd, void* buf, std::size_t n, int timeout_ms) {
  const std::uint64_t deadline = deadline_from(timeout_ms);
  std::size_t got = 0;
  auto* out = static_cast<std::uint8_t*>(buf);
  while (got < n) {
    const int budget = remaining_ms(deadline);
    if (budget <= 0) return false;
    const std::ptrdiff_t r = read_some(fd, out + got, n - got, budget);
    if (r <= 0) return false;  // EOF, timeout or error
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n, int timeout_ms) {
  const std::uint64_t deadline = deadline_from(timeout_ms);
  std::size_t sent = 0;
  const auto* src = static_cast<const std::uint8_t*>(buf);
  while (sent < n) {
    const int budget = remaining_ms(deadline);
    if (budget <= 0) return false;
    if (!wait_fd(fd, POLLOUT, budget)) return false;
    const ssize_t w = ::send(fd, src + sent, n - sent, MSG_NOSIGNAL);  // pss-lint: allow(raw-socket-syscall)
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_bytes, int timeout_ms) {
  const std::uint64_t deadline = deadline_from(timeout_ms);
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, sizeof prefix, timeout_ms)) return false;
  const std::uint32_t size = static_cast<std::uint32_t>(prefix[0]) |
                             (static_cast<std::uint32_t>(prefix[1]) << 8) |
                             (static_cast<std::uint32_t>(prefix[2]) << 16) |
                             (static_cast<std::uint32_t>(prefix[3]) << 24);
  // Bound before allocating: a garbage prefix must not drive a huge resize.
  if (size > max_bytes) return false;
  payload.resize(size);
  if (size == 0) return true;
  return read_exact(fd, payload.data(), size, remaining_ms(deadline));
}

bool write_frame(int fd, std::span<const std::uint8_t> payload,
                 int timeout_ms) {
  const std::uint64_t deadline = deadline_from(timeout_ms);
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(size & 0xff),
      static_cast<std::uint8_t>((size >> 8) & 0xff),
      static_cast<std::uint8_t>((size >> 16) & 0xff),
      static_cast<std::uint8_t>((size >> 24) & 0xff)};
  if (!write_all(fd, prefix, sizeof prefix, timeout_ms)) return false;
  if (payload.empty()) return true;
  return write_all(fd, payload.data(), payload.size(), remaining_ms(deadline));
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_read(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RD);  // pss-lint: allow(raw-socket-syscall)
}

void shutdown_and_close(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);  // pss-lint: allow(raw-socket-syscall)
  ::close(fd);
}

#else  // !PSS_HAVE_SOCKETS

bool available() { return false; }

namespace {
[[noreturn]] void unavailable() {
  PSS_REQUIRE(false, "serve/net: no socket support on this platform");
}
}  // namespace

int listen_loopback(std::uint16_t, int, std::uint16_t&) { unavailable(); }
int accept_connection(int, int) { unavailable(); }
int connect_loopback(std::uint16_t, int) { unavailable(); }
std::ptrdiff_t read_some(int, void*, std::size_t, int) { unavailable(); }
bool read_exact(int, void*, std::size_t, int) { unavailable(); }
bool write_all(int, const void*, std::size_t, int) { unavailable(); }
bool read_frame(int, std::vector<std::uint8_t>&, std::uint32_t, int) {
  unavailable();
}
bool write_frame(int, std::span<const std::uint8_t>, int) { unavailable(); }
void close_fd(int) {}
void shutdown_read(int) {}
void shutdown_and_close(int) {}

#endif  // PSS_HAVE_SOCKETS

}  // namespace pss::serve::net
