#include "pss/serve/protocol.hpp"

#include <cstring>

#include "pss/common/error.hpp"

namespace pss::serve {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Cursor over an immutable payload; every read is bounds-checked so a
/// truncated frame surfaces as pss::Error, never as an out-of-range read.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    PSS_REQUIRE(pos_ < data_.size(), "serve: truncated payload");
    return data_[pos_++];
  }

  std::uint32_t u32() {
    PSS_REQUIRE(pos_ + 4 <= data_.size(), "serve: truncated payload");
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  std::span<const std::uint8_t> bytes(std::uint32_t n) {
    PSS_REQUIRE(pos_ + n <= data_.size(), "serve: truncated payload");
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kClassify: return "classify";
    case Verb::kTrain: return "train";
    case Verb::kStats: return "stats";
    case Verb::kReload: return "reload";
    case Verb::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kError: return "error";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  PSS_REQUIRE(request.body.size() < kMaxFrameBytes,
              "serve: request body exceeds frame bound");
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 4 + 4 + request.body.size());
  out.push_back(static_cast<std::uint8_t>(request.verb));
  put_u64(out, request.id);
  put_u32(out, request.deadline_ms);
  put_u32(out, static_cast<std::uint32_t>(request.body.size()));
  out.insert(out.end(), request.body.begin(), request.body.end());
  return out;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  PSS_REQUIRE(response.message.size() < kMaxFrameBytes,
              "serve: response message exceeds frame bound");
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 8 + 4 + response.message.size());
  out.push_back(static_cast<std::uint8_t>(response.status));
  put_u64(out, response.id);
  put_u64(out, static_cast<std::uint64_t>(response.value));
  put_u32(out, static_cast<std::uint32_t>(response.message.size()));
  out.insert(out.end(), response.message.begin(), response.message.end());
  return out;
}

Request decode_request(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  Request request;
  const std::uint8_t verb = in.u8();
  PSS_REQUIRE(verb <= static_cast<std::uint8_t>(Verb::kShutdown),
              "serve: unknown verb " + std::to_string(verb));
  request.verb = static_cast<Verb>(verb);
  request.id = in.u64();
  request.deadline_ms = in.u32();
  const std::uint32_t body_size = in.u32();
  const auto body = in.bytes(body_size);
  request.body.assign(body.begin(), body.end());
  PSS_REQUIRE(in.exhausted(), "serve: trailing bytes after request");
  return request;
}

Response decode_response(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  Response response;
  const std::uint8_t status = in.u8();
  PSS_REQUIRE(status <= static_cast<std::uint8_t>(Status::kError),
              "serve: unknown status " + std::to_string(status));
  response.status = static_cast<Status>(status);
  response.id = in.u64();
  response.value = static_cast<std::int64_t>(in.u64());
  const std::uint32_t message_size = in.u32();
  const auto message = in.bytes(message_size);
  response.message.assign(message.begin(), message.end());
  PSS_REQUIRE(in.exhausted(), "serve: trailing bytes after response");
  return response;
}

}  // namespace pss::serve
