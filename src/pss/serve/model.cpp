#include "pss/serve/model.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "pss/common/error.hpp"
#include "pss/robust/checkpoint.hpp"

namespace pss::serve {

namespace {

/// File kind sniffed from the 8-byte magic without consuming the stream.
enum class ModelKind { kSnapshot, kCheckpoint };

ModelKind sniff_kind(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PSS_REQUIRE(in.is_open(), "serve: cannot open model file: " + path);
  char magic[8] = {};
  in.read(magic, sizeof magic);
  PSS_REQUIRE(static_cast<bool>(in),
              "serve: model file too short for a magic: " + path);
  if (std::memcmp(magic, "PSSSNAP1", 8) == 0) return ModelKind::kSnapshot;
  if (std::memcmp(magic, "PSSCKPT1", 8) == 0) return ModelKind::kCheckpoint;
  PSS_REQUIRE(false, "serve: " + path +
                         " is neither a pss snapshot nor a checkpoint");
}

}  // namespace

ModelBundle load_model(const std::string& path, const WtaConfig& base_config) {
  ModelBundle bundle;
  bundle.config = base_config;
  bundle.source_path = path;

  switch (sniff_kind(path)) {
    case ModelKind::kSnapshot: {
      bundle.state = load_snapshot(path);
      break;
    }
    case ModelKind::kCheckpoint: {
      const robust::TrainingCheckpoint cp = robust::load_checkpoint(path);
      bundle.state.neuron_count = cp.neuron_count;
      bundle.state.input_channels = cp.input_channels;
      bundle.state.g_min = cp.g_min;
      bundle.state.g_max = cp.g_max;
      bundle.state.conductance = cp.conductance;
      bundle.state.theta = cp.theta;
      break;
    }
  }

  bundle.config.neuron_count = bundle.state.neuron_count;
  bundle.config.input_channels = bundle.state.input_channels;
  bundle.neuron_labels.assign(bundle.state.neuron_labels.begin(),
                              bundle.state.neuron_labels.end());
  int max_label = -1;
  for (const int label : bundle.neuron_labels) {
    max_label = std::max(max_label, label);
  }
  bundle.class_count =
      max_label < 0 ? 0 : static_cast<std::size_t>(max_label) + 1;
  return bundle;
}

WtaNetwork instantiate(const ModelBundle& bundle, Engine* engine) {
  WtaNetwork network(bundle.config, engine);
  bundle.state.restore(network);
  return network;
}

int predict_from_counts(std::span<const std::uint32_t> spike_counts,
                        std::span<const int> neuron_labels,
                        std::size_t class_count) {
  PSS_REQUIRE(spike_counts.size() == neuron_labels.size(),
              "serve: spike count vector size must equal neuron count");
  if (class_count == 0) return -1;
  std::vector<double> score(class_count, 0.0);
  std::vector<std::size_t> sizes(class_count, 0);
  for (std::size_t j = 0; j < neuron_labels.size(); ++j) {
    const int label = neuron_labels[j];
    if (label < 0) continue;
    PSS_REQUIRE(static_cast<std::size_t>(label) < class_count,
                "serve: neuron label out of class range");
    score[static_cast<std::size_t>(label)] += spike_counts[j];
    ++sizes[static_cast<std::size_t>(label)];
  }
  double best = 0.0;
  int winner = -1;
  for (std::size_t c = 0; c < class_count; ++c) {
    if (sizes[c] == 0) continue;
    const double mean = score[c] / static_cast<double>(sizes[c]);
    if (mean > best) {
      best = mean;
      winner = static_cast<int>(c);
    }
  }
  return winner;
}

}  // namespace pss::serve
