#include "pss/serve/model.hpp"

#include <algorithm>

#include "pss/common/error.hpp"

namespace pss::serve {

ModelBundle load_model(const std::string& path, const WtaConfig& base_config) {
  ModelBundle bundle;
  bundle.source_path = path;
  bundle.model = graph::load_graph_model(path);
  bundle.config = bundle.model.to_config(base_config);
  bundle.input_units = graph::compute_shapes(bundle.config).front().units();
  bundle.neuron_labels.assign(bundle.model.labels.begin(),
                              bundle.model.labels.end());
  int max_label = -1;
  for (const int label : bundle.neuron_labels) {
    max_label = std::max(max_label, label);
  }
  bundle.class_count =
      max_label < 0 ? 0 : static_cast<std::size_t>(max_label) + 1;
  return bundle;
}

graph::NetworkGraph instantiate(const ModelBundle& bundle, Engine* engine) {
  graph::NetworkGraph replica(bundle.config, engine);
  bundle.model.restore(replica);
  return replica;
}

int predict_from_counts(std::span<const std::uint32_t> spike_counts,
                        std::span<const int> neuron_labels,
                        std::size_t class_count) {
  PSS_REQUIRE(spike_counts.size() == neuron_labels.size(),
              "serve: spike count vector size must equal neuron count");
  if (class_count == 0) return -1;
  std::vector<double> score(class_count, 0.0);
  std::vector<std::size_t> sizes(class_count, 0);
  for (std::size_t j = 0; j < neuron_labels.size(); ++j) {
    const int label = neuron_labels[j];
    if (label < 0) continue;
    PSS_REQUIRE(static_cast<std::size_t>(label) < class_count,
                "serve: neuron label out of class range");
    score[static_cast<std::size_t>(label)] += spike_counts[j];
    ++sizes[static_cast<std::size_t>(label)];
  }
  double best = 0.0;
  int winner = -1;
  for (std::size_t c = 0; c < class_count; ++c) {
    if (sizes[c] == 0) continue;
    const double mean = score[c] / static_cast<double>(sizes[c]);
    if (mean > best) {
      best = mean;
      winner = static_cast<int>(c);
    }
  }
  return winner;
}

}  // namespace pss::serve
