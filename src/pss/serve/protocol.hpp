// pss_serve wire protocol: length-prefixed frames (see serve/net.hpp for the
// framing) carrying one request or one response each, little-endian
// fixed-width fields throughout. Encode/decode are pure byte-vector
// functions, so the whole protocol is unit-testable without a socket.
//
// Request payload layout:
//   u8  verb          (Verb)
//   u64 id            client-chosen correlation id, echoed in the response
//   u32 deadline_ms   per-request budget from admission (0 = server default)
//   u32 body_size     pixel bytes that follow
//   u8  body[]        pixels (row-major u8 intensities) for classify/train;
//                     empty for admin verbs
//
// Response payload layout:
//   u8  status        (Status)
//   u64 id            echo of the request id
//   i64 value         classify -> predicted class (-1 = abstain);
//                     stats    -> current queue depth; others 0
//   u32 message_size  diagnostic text that follows (errors, stats)
//   u8  message[]
//
// Failure semantics on the wire: a malformed or oversized frame is a
// protocol error — decode throws pss::Error and the server drops the
// connection (never the process). Overload and deadline misses are *not*
// errors: they are explicit kOverloaded / kDeadlineExceeded responses, so a
// client can always tell "shed by backpressure" from "broken".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pss::serve {

/// Largest accepted frame payload. Classify bodies are one image (~784 B);
/// the bound exists so a garbage length prefix cannot drive allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class Verb : std::uint8_t {
  kPing = 0,      ///< liveness probe; served inline, never queued
  kClassify = 1,  ///< present body image (learn off), return predicted class
  kTrain = 2,     ///< present body image with STDP on (online learning)
  kStats = 3,     ///< queue depth + text counters snapshot
  kReload = 4,    ///< hot-reload the model file (same as SIGHUP)
  kShutdown = 5,  ///< graceful daemon stop
};

enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,        ///< admission queue full — request was shed
  kDeadlineExceeded = 2,  ///< deadline passed before a worker finished it
  kError = 3,             ///< permanent failure; message has the reason
};

const char* verb_name(Verb verb);
const char* status_name(Status status);

struct Request {
  Verb verb = Verb::kPing;
  std::uint64_t id = 0;
  std::uint32_t deadline_ms = 0;    ///< 0 = server default
  std::vector<std::uint8_t> body;   ///< image pixels for classify/train
};

struct Response {
  Status status = Status::kOk;
  std::uint64_t id = 0;
  std::int64_t value = 0;
  std::string message;
};

std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);

/// Throw pss::Error on truncated/oversized/unknown-enum payloads.
Request decode_request(std::span<const std::uint8_t> payload);
Response decode_response(std::span<const std::uint8_t> payload);

}  // namespace pss::serve
