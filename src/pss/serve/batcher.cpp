#include "pss/serve/batcher.hpp"

#include <algorithm>
#include <chrono>

#include "pss/obs/metrics.hpp"

namespace pss::serve {

namespace {

obs::Counter& expired_counter() {
  static obs::Counter& c = obs::metrics().counter("serve.expired");
  return c;
}

obs::Gauge& depth_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("serve.queue_depth");
  return g;
}

}  // namespace

void Outbox::push(Response response) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;  // client already gone; nothing to deliver to
    queue_.push_back(std::move(response));
  }
  cv_.notify_one();
}

void Outbox::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Outbox::pop(Response& response) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  response = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool PendingRequest::complete(Response response,
                              const std::function<void()>& on_win) {
  bool expected = false;
  if (!done_.compare_exchange_strong(expected, true,
                                     std::memory_order_acq_rel)) {
    return false;  // a racing duplicate execution already answered
  }
  if (on_win) on_win();  // metrics land before the client can see the answer
  if (const std::shared_ptr<Outbox> box = outbox.lock()) {
    box->push(std::move(response));
  }
  return true;
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

bool RequestQueue::admit(const PendingPtr& request) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return false;
    if (ready_.size() + delayed_.size() >= capacity_) return false;
    request->seq = next_seq_++;
    request->admitted_ns = obs::monotonic_ns();
    ready_.push_back(request);
    depth_gauge().set(static_cast<double>(ready_.size() + delayed_.size()));
  }
  cv_.notify_one();
  return true;
}

void RequestQueue::requeue(const PendingPtr& request,
                           std::uint64_t not_before_ns) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    request->attempts.fetch_add(1, std::memory_order_relaxed);
    if (not_before_ns <= obs::monotonic_ns()) {
      // Requeued work is older than anything waiting — serve it first so a
      // fault cannot starve the request behind fresh arrivals.
      ready_.push_front(request);
    } else {
      delayed_.push_back({not_before_ns, request});
    }
    depth_gauge().set(static_cast<double>(ready_.size() + delayed_.size()));
  }
  cv_.notify_one();
}

std::uint64_t RequestQueue::promote_ripe(std::uint64_t now_ns) {
  std::uint64_t soonest = 0;
  for (std::size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].not_before_ns <= now_ns) {
      // Ripe backoff entries also jump the line (see requeue above).
      ready_.push_front(std::move(delayed_[i].request));
      delayed_[i] = std::move(delayed_.back());
      delayed_.pop_back();
    } else {
      if (soonest == 0 || delayed_[i].not_before_ns < soonest) {
        soonest = delayed_[i].not_before_ns;
      }
      ++i;
    }
  }
  return soonest;
}

std::vector<PendingPtr> RequestQueue::next_batch(std::size_t max_batch,
                                                 std::uint64_t window_ns) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const std::uint64_t now = obs::monotonic_ns();
    const std::uint64_t soonest_delayed = promote_ripe(now);

    // Shed expired requests before they reach a worker: a presentation takes
    // hundreds of simulated ms, so running one for a dead deadline only
    // delays live requests behind it.
    while (!ready_.empty() && ready_.front()->deadline_ns <= now) {
      const PendingPtr victim = std::move(ready_.front());
      ready_.pop_front();
      victim->complete({Status::kDeadlineExceeded, victim->request.id, 0,
                        "deadline expired in queue"},
                       [] { expired_counter().add(1); });
    }
    depth_gauge().set(static_cast<double>(ready_.size() + delayed_.size()));

    if (!ready_.empty()) {
      const std::uint64_t oldest_wait = now - ready_.front()->admitted_ns;
      if (ready_.size() >= max_batch || oldest_wait >= window_ns ||
          shutdown_) {
        std::vector<PendingPtr> batch;
        const std::size_t take = std::min(max_batch, ready_.size());
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(ready_.front()));
          ready_.pop_front();
        }
        depth_gauge().set(
            static_cast<double>(ready_.size() + delayed_.size()));
        return batch;
      }
    } else if (shutdown_ && delayed_.empty()) {
      return {};  // drained — worker should exit
    }

    // Sleep until whichever comes first: the batching window closing on the
    // oldest ready request, the next delayed entry ripening, or a wake-up
    // from admit/requeue/shutdown. With nothing ready and nothing ripening
    // there is no timed event at all, so block indefinitely on the condvar —
    // a timed nap keyed off `now + window_ns` would busy-spin an idle worker
    // at 100% CPU when window_ms == 0 (user-settable).
    if (ready_.empty() && soonest_delayed == 0) {
      cv_.wait(lock);
      continue;
    }
    std::uint64_t wake_ns = soonest_delayed;
    if (!ready_.empty()) {
      wake_ns = ready_.front()->admitted_ns + window_ns;
      if (ready_.front()->deadline_ns < wake_ns) {
        wake_ns = ready_.front()->deadline_ns;
      }
      if (soonest_delayed != 0 && soonest_delayed < wake_ns) {
        wake_ns = soonest_delayed;
      }
    }
    const std::uint64_t nap = wake_ns > now ? wake_ns - now : 1;
    cv_.wait_for(lock, std::chrono::nanoseconds(nap));
  }
}

void RequestQueue::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ready_.size() + delayed_.size();
}

std::uint64_t RequestQueue::admitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

}  // namespace pss::serve
