#include "pss/serve/client.hpp"

#include "pss/common/error.hpp"
#include "pss/serve/net.hpp"

namespace pss::serve {

ServeClient::ServeClient(std::uint16_t port, int timeout_ms)
    : fd_(net::connect_loopback(port, timeout_ms)), timeout_ms_(timeout_ms) {}

ServeClient::~ServeClient() { net::close_fd(fd_); }

void ServeClient::send(const Request& request) {
  const std::vector<std::uint8_t> bytes = encode_request(request);
  PSS_REQUIRE(net::write_frame(fd_, bytes, timeout_ms_),
              "serve client: send failed (stalled or closed connection)");
}

Response ServeClient::receive() {
  std::vector<std::uint8_t> payload;
  PSS_REQUIRE(net::read_frame(fd_, payload, kMaxFrameBytes, timeout_ms_),
              "serve client: no response (EOF or timeout)");
  return decode_response(payload);
}

Response ServeClient::call(const Request& request) {
  send(request);
  return receive();
}

Response ServeClient::classify(std::span<const std::uint8_t> pixels,
                               std::uint32_t deadline_ms) {
  Request request;
  request.verb = Verb::kClassify;
  request.id = take_id();
  request.deadline_ms = deadline_ms;
  request.body.assign(pixels.begin(), pixels.end());
  return call(request);
}

Response ServeClient::ping() {
  return call({Verb::kPing, take_id(), 0, {}});
}

Response ServeClient::stats() {
  return call({Verb::kStats, take_id(), 0, {}});
}

Response ServeClient::reload() {
  return call({Verb::kReload, take_id(), 0, {}});
}

Response ServeClient::shutdown_server() {
  return call({Verb::kShutdown, take_id(), 0, {}});
}

}  // namespace pss::serve
