// Model loading for the serving daemon. A model file is any artifact the
// training side writes: a single-layer snapshot ("PSSSNAP1"), a stacked
// graph model ("PSSSNAP2"), or a training checkpoint ("PSSCKPT1", v1 or
// v2) — all sniffed by magic through graph::load_graph_model and unified
// into one ModelBundle: the GraphConfig the model instantiates plus its
// learned per-block state. A single-layer snapshot serves as a one-block
// graph whose presentations are bitwise those of the standalone WtaNetwork,
// so pre-graph deployments keep their exact replay guarantees.
//
// A checkpoint may carry no neuron labels, in which case a daemon serving
// it accepts only `train` (online learning) and admin verbs; `classify`
// returns kError with an explanatory message rather than guessing.
//
// Hot reload: the server keeps the current bundle behind a mutex with a
// monotonically increasing generation; workers re-instantiate their replica
// between batches when the generation moves, so a reload is torn-free —
// in-flight presentations finish on the old weights, later ones see the new.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pss/graph/graph_snapshot.hpp"
#include "pss/graph/network_graph.hpp"

namespace pss::serve {

struct ModelBundle {
  graph::GraphConfig config;   ///< architecture over the base WtaConfig
  graph::GraphModel model;     ///< learned per-block state + labels
  /// Units of the graph's encoded input — the request body size workers
  /// validate against and present.
  std::size_t input_units = 0;
  std::vector<int> neuron_labels;  ///< final block; empty → no classify
  std::size_t class_count = 0;     ///< 0 when classify is unavailable
  std::uint64_t generation = 0;    ///< set by the server on (re)load
  std::string source_path;

  bool can_classify() const { return class_count > 0; }
};

/// Loads `path` (snapshot, graph model, or checkpoint — detected by magic)
/// and resolves its architecture over `base_config` (backend / timing / STDP
/// template; geometry comes from the file). Honors the fault points of the
/// underlying loaders. Throws pss::Error on unreadable/corrupt files.
ModelBundle load_model(const std::string& path, const WtaConfig& base_config);

/// Builds a graph replica carrying the bundle's learned state on `engine`
/// (serial Engine(1) per serve worker — pool parallelism is across requests,
/// never within a replica, mirroring BatchRunner's discipline).
graph::NetworkGraph instantiate(const ModelBundle& bundle, Engine* engine);

/// Pure scoring: argmax of mean per-class spike counts over the labelled
/// neurons, -1 = abstain. Same rule as SnnClassifier::predict_from_counts,
/// exposed as a free function so serve workers score replica output without
/// holding a classifier (which wants a network reference).
int predict_from_counts(std::span<const std::uint32_t> spike_counts,
                        std::span<const int> neuron_labels,
                        std::size_t class_count);

}  // namespace pss::serve
