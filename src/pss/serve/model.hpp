// Model loading for the serving daemon. A model file is either a trained
// snapshot (magic "PSSSNAP1" — learned state + neuron labels, produced by
// `pss_run mode=train snapshot=...`) or a training checkpoint (magic
// "PSSCKPT1" — learned state only, produced mid-training by the fault-
// tolerance path). The two are unified into one ModelBundle: a geometry-
// corrected WtaConfig plus a NetworkSnapshot of the learned state.
//
// A checkpoint has no neuron labels, so a daemon serving one accepts only
// `train` (online learning) and admin verbs; `classify` returns kError with
// an explanatory message rather than guessing.
//
// Hot reload: the server keeps the current bundle behind a mutex with a
// monotonically increasing generation; workers re-instantiate their replica
// between batches when the generation moves, so a reload is torn-free —
// in-flight presentations finish on the old weights, later ones see the new.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pss/io/snapshot.hpp"
#include "pss/network/wta_network.hpp"

namespace pss::serve {

struct ModelBundle {
  WtaConfig config;            ///< base config with file geometry applied
  NetworkSnapshot state;       ///< learned conductances / theta / labels
  std::vector<int> neuron_labels;  ///< empty when loaded from a checkpoint
  std::size_t class_count = 0;     ///< 0 when classify is unavailable
  std::uint64_t generation = 0;    ///< set by the server on (re)load
  std::string source_path;

  bool can_classify() const { return class_count > 0; }
};

/// Loads `path` (snapshot or checkpoint, detected by magic) and merges its
/// geometry into `base_config`. Honors the fault points of the underlying
/// loaders. Throws pss::Error on unreadable/corrupt files.
ModelBundle load_model(const std::string& path, const WtaConfig& base_config);

/// Builds a network carrying the bundle's learned state on `engine` (serial
/// Engine(1) per serve worker — pool parallelism is across requests, never
/// within a replica, mirroring BatchRunner's discipline).
WtaNetwork instantiate(const ModelBundle& bundle, Engine* engine);

/// Pure scoring: argmax of mean per-class spike counts over the labelled
/// neurons, -1 = abstain. Same rule as SnnClassifier::predict_from_counts,
/// exposed as a free function so serve workers score replica output without
/// holding a classifier (which wants a network reference).
int predict_from_counts(std::span<const std::uint32_t> spike_counts,
                        std::span<const int> neuron_labels,
                        std::size_t class_count);

}  // namespace pss::serve
