// The pss_serve daemon core: a fleet of trained-network replicas behind a
// framed loopback protocol, with heartbeat supervision, deterministic
// requeue, and deadline-aware backpressure.
//
// Thread architecture (see DESIGN.md §5 for the state machines):
//
//   acceptor ──spawns──▶ connection reader ──admit──▶ RequestQueue
//                        connection writer ◀──Outbox◀─┐
//   worker[i]: Engine(1) + replica; pulls batches ────┘
//   monitor:   heartbeat scan; drains + requeues failed workers' inflight
//
// Each worker owns a serial Engine and a NetworkGraph replica of the loaded
// model — single-layer snapshots serve as one-block graphs, stacked models
// ("PSSSNAP2" / checkpoint v2) as their full conv/pool/WTA stack (the
// BatchRunner replica-per-worker discipline). A request's admission
// sequence number is used verbatim as the replica presentation index, and a
// presentation is a pure function of (learned state, index, rates) — so
// re-executing a requeued request on any healthy worker yields a
// bitwise-identical answer, and a fault-injected run returns exactly the
// responses of a fault-free one (tests assert this).
//
// Failure handling:
//  * TransientError during a presentation (fault point `serve.worker`,
//    kind=transient): the worker requeues that request with a delay from the
//    shared BackoffPolicy and moves on — the worker survives.
//  * Fatal Error (kind=fatal): the worker thread marks itself dead and exits
//    *without* cleaning up, simulating a crash. The heartbeat monitor joins
//    it, requeues its in-flight requests, and restarts the slot (up to
//    max_worker_restarts).
//  * Missed heartbeat (hung worker holding in-flight work): the monitor
//    requeues the inflight set but leaves the thread alone; once-only
//    completion makes a late answer from the straggler harmless.
//
// Overload: admission is bounded by queue_capacity — a full queue sheds new
// requests with an explicit kOverloaded response (never silent drops, never
// unbounded memory). Requests whose deadline expires while queued are
// answered kDeadlineExceeded without occupying a worker.
//
// Hot reload (SIGHUP in the daemon, or the `reload` verb): the new model is
// loaded off to the side, then swapped in under the model mutex with a
// bumped generation. Workers notice the generation between batches and
// re-instantiate their replica — in-flight presentations finish on the old
// weights (torn-free), later requests see the new ones.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pss/common/backoff.hpp"
#include "pss/common/thread_annotations.hpp"
#include "pss/common/types.hpp"
#include "pss/encoding/pixel_frequency.hpp"
#include "pss/serve/batcher.hpp"
#include "pss/serve/model.hpp"

namespace pss {
class Engine;
}

namespace pss::serve {

struct ServeOptions {
  std::string model_path;      ///< snapshot or checkpoint (sniffed by magic)
  WtaConfig base_config;       ///< backend / timing template; geometry comes
                               ///< from the model file
  double f_min_hz = 1.0;       ///< pixel→rate encoding (Table I baseline)
  double f_max_hz = 22.0;
  TimeMs t_present_ms = 300.0;

  std::uint16_t port = 0;      ///< 0 = ephemeral (bound port via port())
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;   ///< admission bound (backpressure)
  std::size_t max_batch = 8;         ///< batch-size flush threshold
  std::uint32_t window_ms = 5;       ///< batching-window flush deadline
  std::uint32_t default_deadline_ms = 2000;  ///< for requests sending 0
  std::uint32_t io_timeout_ms = 10000;       ///< per-connection read/write
  std::uint32_t heartbeat_interval_ms = 20;  ///< monitor scan period
  std::uint32_t heartbeat_timeout_ms = 1000; ///< stale-beat threshold
  std::uint32_t max_worker_restarts = 8;     ///< per slot, then it retires
  BackoffPolicy backoff;       ///< requeue delay schedule (deterministic)
};

class ServeServer {
 public:
  /// Loads the model, binds the port, and starts every thread. Throws
  /// pss::Error when the model or port is unusable.
  explicit ServeServer(ServeOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks until request_shutdown() (shutdown verb, signal, or test).
  void wait();

  /// Initiates graceful shutdown: stop admission, drain the queue, answer
  /// everything in flight. Safe from connection threads; join happens in
  /// stop()/destructor.
  void request_shutdown();

  /// Reloads options.model_path and swaps it in (torn-free). Throws
  /// pss::Error on a bad file — the old model stays serving.
  void reload();

  std::uint64_t model_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// True once shutdown has been requested (daemon main-loop poll).
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  /// Human-readable counters for the stats verb.
  std::string stats_text() const;

  /// Joins every thread (idempotent; the destructor calls it).
  void stop();

 private:
  struct WorkerSlot {
    std::thread thread;
    std::atomic<std::uint64_t> last_beat_ns{0};
    std::atomic<bool> dead{false};  ///< set by a fatally faulted worker
    std::mutex inflight_mutex;
    std::vector<PendingPtr> inflight PSS_GUARDED_BY(inflight_mutex);
    std::uint32_t restarts = 0;     ///< monitor thread only
    bool retired = false;           ///< monitor thread only
  };

  struct Connection {
    int fd = -1;
    std::shared_ptr<Outbox> outbox;
    std::thread thread;             ///< reader (owns a nested writer)
    std::atomic<bool> finished{false};
  };

  void worker_loop(std::size_t slot_index);
  void monitor_loop();
  void acceptor_loop();
  void connection_loop(Connection* connection);

  /// Handles one decoded request on a connection thread; admin verbs answer
  /// inline, classify/train go through admission.
  Response handle_inline_or_admit(const Request& request,
                                  const std::shared_ptr<Outbox>& outbox,
                                  bool& answered_inline);

  /// Executes one classify/train presentation on a worker replica.
  Response execute(graph::NetworkGraph& replica, const ModelBundle& bundle,
                   const PendingRequest& pending);

  /// Moves a failed worker's inflight set back into the queue with backoff.
  void drain_and_requeue(WorkerSlot& slot);

  std::shared_ptr<const ModelBundle> current_model() const;
  void install_model(ModelBundle bundle) PSS_EXCLUDES(model_mutex_);
  /// Publishes a train-updated replica's weights as the next generation.
  void absorb_training(const graph::NetworkGraph& replica);

  ServeOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex model_mutex_;
  std::shared_ptr<const ModelBundle> model_ PSS_GUARDED_BY(model_mutex_);
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> input_units_{0};

  PixelFrequencyMap frequency_map_;
  std::unique_ptr<RequestQueue> queue_;

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::thread monitor_;
  std::thread acceptor_;

  std::mutex conn_mutex_;
  std::list<Connection> connections_ PSS_GUARDED_BY(conn_mutex_);

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
};

}  // namespace pss::serve
