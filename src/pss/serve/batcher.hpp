// Admission queue + dynamic batching window for pss_serve.
//
// Life of a request: the connection reader decodes it and calls admit() —
// which either assigns the next admission sequence number (used verbatim as
// the replica presentation index, making re-execution after requeue bitwise
// deterministic) or refuses because the queue is at capacity (the caller
// responds kOverloaded: load is shed at admission, not after queueing).
// Workers pull coalesced batches via next_batch(); a batch flushes when it
// reaches `max_batch` requests or when the oldest ready request has waited
// `window_ns` (whichever first), so light load trades a bounded latency bump
// for batching and heavy load batches maximally.
//
// Requeue: when a worker faults, its in-flight requests re-enter through
// requeue() with a not-before timestamp from the shared BackoffPolicy
// (pss/common/backoff.hpp). Requeued work bypasses the capacity bound — it
// was already admitted; shedding it now would turn one worker fault into
// client-visible errors.
//
// Completion is once-only: PendingRequest::complete() swaps an atomic flag,
// so if a "lost" request is requeued and then both the old and new execution
// finish, the second response is dropped. Presentations are pure functions
// of (state, seq, rates), so either execution's answer is the same answer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "pss/common/thread_annotations.hpp"
#include "pss/serve/protocol.hpp"

namespace pss::serve {

/// Per-connection response channel. The connection's writer thread drains
/// it; workers push completions from any thread. Holding only a weak_ptr in
/// PendingRequest lets a connection vanish (client gone) without stranding
/// the worker: completions for a dead connection are dropped.
class Outbox {
 public:
  void push(Response response);
  /// Marks the channel closed and wakes the writer (which then drains what
  /// remains and exits).
  void close();
  /// Blocks for the next response. Returns false when closed and drained.
  bool pop(Response& response);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Response> queue_ PSS_GUARDED_BY(mutex_);
  bool closed_ PSS_GUARDED_BY(mutex_) = false;
};

struct PendingRequest {
  Request request;
  std::vector<double> rates_hz;   ///< encoded once at admission
  std::uint64_t seq = 0;          ///< admission sequence == presentation index
  std::uint64_t deadline_ns = 0;  ///< absolute monotonic deadline
  std::uint64_t admitted_ns = 0;  ///< for the end-to-end latency histogram
  /// Completed requeue round-trips. Atomic: the heartbeat monitor's
  /// stale-beat requeue can race a hung-but-alive worker's transient-fault
  /// requeue of the same request, and both read it for the backoff delay.
  std::atomic<std::uint32_t> attempts{0};
  std::weak_ptr<Outbox> outbox;

  /// Delivers the response to the owning connection exactly once; later
  /// calls (duplicate execution after a requeue race) are no-ops. Returns
  /// whether this call won. `on_win` runs after the once-only claim but
  /// BEFORE the response becomes visible to the client — callers use it for
  /// metric bumps so a client can never observe a response whose counter
  /// has not landed yet.
  bool complete(Response response,
                const std::function<void()>& on_win = nullptr);

  bool completed() const { return done_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> done_{false};
};

using PendingPtr = std::shared_ptr<PendingRequest>;

/// Bounded MPMC admission queue with a delayed lane for backoff requeues.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admits under the capacity bound; returns false (shed) when full or
  /// shut down. Stamps seq/admitted_ns on success.
  bool admit(const PendingPtr& request);

  /// Re-enters an already-admitted request after a worker fault; never
  /// sheds. `not_before_ns` (absolute monotonic) holds it in the delayed
  /// lane until the backoff expires.
  void requeue(const PendingPtr& request, std::uint64_t not_before_ns);

  /// Pulls the next coalesced batch (blocking): flushes at `max_batch`
  /// requests or once the oldest ready request has waited `window_ns`.
  /// Expired requests are completed with kDeadlineExceeded internally and
  /// never returned. An empty result means the queue was shut down and fully
  /// drained.
  std::vector<PendingPtr> next_batch(std::size_t max_batch,
                                     std::uint64_t window_ns);

  /// Stops admission and wakes every waiter. Queued requests remain
  /// drainable so a graceful shutdown can answer them.
  void shutdown();

  std::size_t depth() const;
  std::uint64_t admitted() const;

 private:
  struct Delayed {
    std::uint64_t not_before_ns;
    PendingPtr request;
  };

  /// Moves ripe delayed entries into the ready lane; returns the soonest
  /// unripe not-before (or 0 when the delayed lane is empty).
  std::uint64_t promote_ripe(std::uint64_t now_ns) PSS_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingPtr> ready_ PSS_GUARDED_BY(mutex_);
  std::vector<Delayed> delayed_ PSS_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ PSS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ PSS_GUARDED_BY(mutex_) = false;
};

}  // namespace pss::serve
