// Engine micro-benchmarks (google-benchmark): the three hot kernels of the
// simulator — neuron update, current accumulation (eq. 3), STDP row update —
// plus the Philox draw and the Poisson encoder. These are the per-step costs
// behind the Fig. 4 performance comparison.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/neuron/lif.hpp"
#include "pss/synapse/conductance_matrix.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {
namespace {

void BM_PhiloxDraw(benchmark::State& state) {
  CounterRng rng(42, 7);
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform(c++));
  }
}
BENCHMARK(BM_PhiloxDraw);

void BM_LifPopulationStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  LifPopulation pop(n, paper_lif_parameters());
  std::vector<double> current(n, 3.0);
  std::vector<NeuronIndex> spikes;
  TimeMs t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    pop.step(current, t, 1.0, spikes);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_LifPopulationStep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CurrentAccumulation(benchmark::State& state) {
  const auto posts = static_cast<std::size_t>(state.range(0));
  ConductanceMatrix m(posts, kImagePixels);
  SequentialRng rng(1);
  m.initialize_uniform(0.2, 0.8, rng);
  // Typical active-channel count for a 1-22 Hz encoded digit: a handful.
  std::vector<ChannelIndex> active;
  for (ChannelIndex c = 0; c < 8; ++c) active.push_back(c * 97);
  std::vector<double> currents(posts, 0.0);
  for (auto _ : state) {
    m.accumulate_currents(active, 3.0, currents);
    benchmark::DoNotOptimize(currents.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(posts * active.size()));
}
BENCHMARK(BM_CurrentAccumulation)->Arg(100)->Arg(1000);

void BM_StdpRowUpdate(benchmark::State& state) {
  // One post-spike event: every afferent synapse of the winner updates.
  StdpUpdaterConfig cfg;
  cfg.kind = state.range(0) == 0 ? StdpKind::kDeterministic
                                 : StdpKind::kStochastic;
  const StdpUpdater updater(cfg);
  CounterRng rng(3, 1);
  std::vector<double> row(kImagePixels, 0.5);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t pre = 0; pre < row.size(); ++pre) {
      const double gap = static_cast<double>((pre * 13) % 200);
      row[pre] = updater.update_at_post_spike(
          row[pre], gap, rng.uniform(counter), rng.uniform(counter + 1),
          rng.uniform(counter + 2));
      counter += 3;
    }
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kImagePixels));
  state.SetLabel(state.range(0) == 0 ? "deterministic" : "stochastic");
}
BENCHMARK(BM_StdpRowUpdate)->Arg(0)->Arg(1);

void BM_PoissonEncoderStep(benchmark::State& state) {
  PoissonEncoder enc(kImagePixels, 5);
  enc.set_uniform_rate(10.0);
  std::vector<ChannelIndex> active;
  StepIndex step = 0;
  for (auto _ : state) {
    enc.active_channels(step++, 1.0, active);
    benchmark::DoNotOptimize(active.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kImagePixels));
}
BENCHMARK(BM_PoissonEncoderStep);

}  // namespace
}  // namespace pss

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to BENCH_kernels.json
// so CI and sweep scripts always get a machine-readable record; any explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
