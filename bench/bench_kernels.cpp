// Engine micro-benchmarks (google-benchmark): the three hot kernels of the
// simulator — neuron update, current accumulation (eq. 3), STDP row update —
// plus the Philox draw and the Poisson encoder. These are the per-step costs
// behind the Fig. 4 performance comparison.
//
// Also measures the observability layer itself: BM_TraceSpanDisabled /
// BM_MetricsCounterDisabled pin the disabled-path cost (one relaxed load +
// branch — the "zero-cost when off" contract), and BM_EngineLaunchInline
// runs with obs off vs on so the <2% per-step regression budget is checkable
// from the same binary.
//
// Results are routed through the metrics registry and written to
// out/BENCH_kernels.json in the shared pss.metrics.v1 schema (gauge
// "bench.kernels.<name>.real_ns" per benchmark), the same format every other
// bench emits.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "pss/backend/backend.hpp"
#include "pss/backend/kernels.hpp"
#include "pss/backend/state_pool.hpp"
#include "pss/common/rng.hpp"
#include "pss/encoding/poisson_encoder.hpp"
#include "pss/engine/launch.hpp"
#include "pss/neuron/lif.hpp"
#include "pss/obs/metrics.hpp"
#include "pss/obs/perf.hpp"
#include "pss/obs/trace.hpp"
#include "pss/synapse/conductance_matrix.hpp"
#include "pss/synapse/stdp_updater.hpp"

namespace pss {
namespace {

/// Benchmarks taking a backend argument map 0 -> cpu, 1 -> cpu_simd.
const char* backend_arg_name(std::int64_t arg) {
  return arg == 0 ? "cpu" : "cpu_simd";
}

void BM_PhiloxDraw(benchmark::State& state) {
  CounterRng rng(42, 7);
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform(c++));
  }
}
BENCHMARK(BM_PhiloxDraw);

void BM_LifPopulationStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  LifPopulation pop(n, paper_lif_parameters());
  std::vector<double> current(n, 3.0);
  std::vector<NeuronIndex> spikes;
  TimeMs t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    pop.step(current, t, 1.0, spikes);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_LifPopulationStep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CurrentAccumulation(benchmark::State& state) {
  const auto posts = static_cast<std::size_t>(state.range(0));
  ConductanceMatrix m(posts, kImagePixels);
  SequentialRng rng(1);
  m.initialize_uniform(0.2, 0.8, rng);
  // Typical active-channel count for a 1-22 Hz encoded digit: a handful.
  std::vector<ChannelIndex> active;
  for (ChannelIndex c = 0; c < 8; ++c) active.push_back(c * 97);
  std::vector<double> currents(posts, 0.0);
  for (auto _ : state) {
    m.accumulate_currents(active, 3.0, currents);
    benchmark::DoNotOptimize(currents.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(posts * active.size()));
}
BENCHMARK(BM_CurrentAccumulation)->Arg(100)->Arg(1000);

void BM_StdpRowUpdate(benchmark::State& state) {
  // One post-spike event: every afferent synapse of the winner updates.
  StdpUpdaterConfig cfg;
  cfg.kind = state.range(0) == 0 ? StdpKind::kDeterministic
                                 : StdpKind::kStochastic;
  const StdpUpdater updater(cfg);
  CounterRng rng(3, 1);
  std::vector<double> row(kImagePixels, 0.5);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t pre = 0; pre < row.size(); ++pre) {
      const double gap = static_cast<double>((pre * 13) % 200);
      row[pre] = updater.update_at_post_spike(
          row[pre], gap, rng.uniform(counter), rng.uniform(counter + 1),
          rng.uniform(counter + 2));
      counter += 3;
    }
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kImagePixels));
  state.SetLabel(state.range(0) == 0 ? "deterministic" : "stochastic");
}
BENCHMARK(BM_StdpRowUpdate)->Arg(0)->Arg(1);

// ---- backend kernel-table dispatch ----------------------------------------
// The same two hot kernels measured through the pluggable backend seam
// (registry lookup + kernel-table function pointer), per backend. Compare
// against the direct-call benchmarks above to see the dispatch cost, and
// across Arg(0)/Arg(1) for the cpu vs cpu_simd kernel difference
// (bench_backend holds the authoritative cross-backend numbers).

void BM_BackendFusedStep(benchmark::State& state) {
  const char* name = backend_arg_name(state.range(0));
  auto backend = make_backend(name);
  StatePool pool(backend.get(), StatePool::Geometry{256, kImagePixels});
  pool.set_g_bounds(0.0, 1.0);
  SequentialRng init(7);
  pool.init_g_uniform(0.2, 0.8, init, nullptr);
  std::vector<ChannelIndex> active;
  for (std::size_t c = 0; c < kImagePixels; c += 3) {
    active.push_back(static_cast<ChannelIndex>(c));
  }

  LifFusedStepArgs args;
  args.params = paper_lif_parameters();
  args.step.state =
      NeuronStateView{pool.membrane(), pool.recovery(), pool.last_spike(),
                      pool.inhibited_until(), pool.spiked()};
  args.step.currents = pool.currents();
  args.step.decay_factor = 0.8;
  args.step.conductance = std::as_const(pool).g();
  args.step.pre_count = pool.channels();
  args.step.active_pre = active;
  args.step.amplitude = 3.0;
  args.step.dt = 0.5;
  TimeMs t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    args.step.now = t;
    backend->kernels().lif_step_fused(backend->engine(), args);
    benchmark::DoNotOptimize(pool.currents().data());
  }
  state.SetLabel(name);
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BackendFusedStep)->Arg(0)->Arg(1);

void BM_BackendStdpRow(benchmark::State& state) {
  const char* name = backend_arg_name(state.range(0));
  auto backend = make_backend(name);
  StatePool pool(backend.get(), StatePool::Geometry{8, kImagePixels});
  pool.set_g_bounds(0.0, 1.0);
  SequentialRng init(7);
  pool.init_g_uniform(0.2, 0.8, init, nullptr);
  auto last_pre = pool.last_pre_spike();
  for (std::size_t c = 0; c < pool.channels(); ++c) {
    last_pre[c] = (c % 2 == 0) ? kNeverSpiked
                               : 0.5 * static_cast<double>((c * 13) % 80);
  }
  const StdpUpdater updater{StdpUpdaterConfig{}};
  CounterRng rng(3, 9);

  StdpRowArgs args;
  args.updater = &updater;
  args.last_pre_spike = std::as_const(pool).last_pre_spike();
  args.rng = &rng;
  std::uint64_t event = 0;
  for (auto _ : state) {
    ++event;
    args.row = pool.g_row(static_cast<NeuronIndex>(event % 8));
    args.t_post = 40.0 + static_cast<double>(event);
    args.counter_base =
        event * static_cast<std::uint64_t>(kImagePixels) *
        StdpUpdater::kDrawsPerEvent;
    backend->kernels().stdp_row(backend->engine(), args);
    benchmark::DoNotOptimize(args.row.data());
  }
  state.SetLabel(name);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kImagePixels));
}
BENCHMARK(BM_BackendStdpRow)->Arg(0)->Arg(1);

void BM_PoissonEncoderStep(benchmark::State& state) {
  PoissonEncoder enc(kImagePixels, 5);
  enc.set_uniform_rate(10.0);
  std::vector<ChannelIndex> active;
  StepIndex step = 0;
  for (auto _ : state) {
    enc.active_channels(step++, 1.0, active);
    benchmark::DoNotOptimize(active.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kImagePixels));
}
BENCHMARK(BM_PoissonEncoderStep);

// ---- observability-layer overhead -----------------------------------------

/// Disabled path: what every instrumented call site pays when tracing is off.
void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::set_trace_enabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::set_trace_enabled(true);
  obs::reset_trace();
  std::uint64_t emitted = 0;
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench");
    benchmark::DoNotOptimize(&span);
    // Bound buffer growth so long runs measure the append, not allocation.
    if (++emitted % 65536 == 0) {
      state.PauseTiming();
      obs::reset_trace();
      state.ResumeTiming();
    }
  }
  obs::set_trace_enabled(false);
  obs::reset_trace();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_MetricsCounterDisabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  obs::Counter& c = obs::metrics().counter("bench.counter");
  for (auto _ : state) {
    if (obs::metrics_enabled()) c.add(1);  // the gated call-site pattern
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_MetricsCounterDisabled);

/// The profiler's disabled path: the same relaxed-load + branch pattern as
/// BM_MetricsCounterDisabled, pinning the per-launch cost of the
/// obs::profile_enabled() gate to the PR 2 budget (a few ns).
void BM_ProfileGateDisabled(benchmark::State& state) {
  obs::set_profile_enabled(false);
  obs::ProfileAccum& row = obs::profiler().row("bench.gate");
  for (auto _ : state) {
    const obs::PerfScope scope(obs::profile_enabled() ? &row : nullptr);
    benchmark::DoNotOptimize(&row);
  }
}
BENCHMARK(BM_ProfileGateDisabled);

void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::metrics().counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
    benchmark::DoNotOptimize(&c);
  }
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_MetricsCounterAdd);

/// Inline engine launch (the common small-network path) with the obs layer
/// off vs on — the pair bounds the per-launch accounting overhead that the
/// <2% per-step regression budget constrains.
void BM_EngineLaunchInline(benchmark::State& state) {
  obs::set_metrics_enabled(state.range(0) != 0);
  Engine engine(1);
  std::vector<double> v(256, 1.0);
  for (auto _ : state) {
    engine.launch("bench.kernel", v.size(),
                  [&](std::size_t i) { v[i] = v[i] * 1.0000001 + 1e-12; });
    benchmark::DoNotOptimize(v.data());
  }
  obs::set_metrics_enabled(false);
  state.SetLabel(state.range(0) != 0 ? "obs on" : "obs off");
  state.SetItemsProcessed(state.iterations() * static_cast<long>(v.size()));
}
BENCHMARK(BM_EngineLaunchInline)->Arg(0)->Arg(1);

/// Console reporter that mirrors every run into the metrics registry so the
/// machine-readable record shares the pss.metrics.v1 schema with the other
/// benches (gauge "bench.kernels.<name>.real_ns").
class RegistryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::string name = run.benchmark_name();
      for (char& ch : name) {
        if (ch == '/' || ch == ':' || ch == ' ') ch = '.';
      }
      obs::metrics()
          .gauge("bench.kernels." + name + ".real_ns")
          .set(run.GetAdjustedRealTime());
      obs::metrics()
          .gauge("bench.kernels." + name + ".iterations")
          .set(static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace
}  // namespace pss

// Like BENCHMARK_MAIN(), but routes results through the metrics registry and
// always writes out/BENCH_kernels.json (pss.metrics.v1) so CI and sweep
// scripts get a machine-readable record in the same schema as every other
// bench. google-benchmark's own --benchmark_out still works if passed.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pss::RegistryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  std::filesystem::create_directories("out");
  pss::obs::publish_profile_stats();
  pss::obs::write_metrics_json("out/BENCH_kernels.json", "bench_kernels");
  pss::obs::write_profile_json("out/BENCH_kernels.profile.json",
                               "bench_kernels");
  std::printf("wrote out/BENCH_kernels.json\n");
  return 0;
}
