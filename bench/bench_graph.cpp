// Layer-graph bench: stacked conv→pool→WTA vs the single-layer baseline on
// the digits workload, plus the temporal-gesture stream through an oriented
// Gabor front-end — accuracy and wall-clock for both, published as
// out/BENCH_graph.json (gated against bench/baselines/graph.json by
// tools/bench_compare.py).
//
//   scale=quick|standard   workload size (default quick, ~30 s)
//   seed=<n>               dataset + network seed (default 3)
//
// The stacked digits number is NOT expected to beat the single layer at
// quick scale — a fixed DoG front-end on a tiny budget mostly costs
// resolution — but it must stay clearly above chance and its cost must stay
// bounded; the gesture row is the one the front-end exists for (direction
// classes are invisible to any single frame, so the single-layer baseline
// sits at chance there; see EXPERIMENTS.md).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "pss/data/temporal_gestures.hpp"
#include "pss/graph/graph_trainer.hpp"
#include "pss/graph/layer_spec.hpp"
#include "pss/graph/network_graph.hpp"

namespace pss::bench {
namespace {

struct GraphScale {
  std::size_t train = 120;
  std::size_t label = 60;
  std::size_t eval = 60;
  std::size_t gesture_train = 120;
  std::size_t gesture_label = 48;
  std::size_t gesture_eval = 48;
};

GraphScale graph_scale(const Config& args) {
  const std::string name = args.get_string("scale", "quick");
  GraphScale s;
  if (name == "standard") {
    s.train = 400;
    s.label = 150;
    s.eval = 150;
    s.gesture_train = 400;
    s.gesture_label = 160;
    s.gesture_eval = 160;
  } else if (name != "quick") {
    throw Error("unknown scale '" + name + "' (quick|standard)");
  }
  return s;
}

WtaConfig graph_base(std::uint64_t seed) {
  WtaConfig base =
      WtaConfig::from_table1(LearningOption::kFloat32, StdpKind::kStochastic,
                             100);
  base.seed = seed;
  return base;
}

/// Trains/labels/evaluates `config` on the digit set; returns
/// (accuracy, train seconds, eval seconds).
std::tuple<double, double, double> run_digits(const graph::GraphConfig& config,
                                              const LabeledDataset& data,
                                              const GraphScale& s) {
  graph::NetworkGraph net(config);
  graph::GraphTrainerConfig tc;
  tc.t_learn_ms = 150.0;
  tc.t_readout_ms = 150.0;
  graph::GraphTrainer trainer(net, tc);

  const std::uint64_t train_t0 = obs::monotonic_ns();
  trainer.train(data.train.head(s.train));
  const double train_s =
      static_cast<double>(obs::monotonic_ns() - train_t0) * 1e-9;

  const auto [label_set, eval_set] = data.labelling_split(s.label);
  trainer.label(label_set);
  const std::uint64_t eval_t0 = obs::monotonic_ns();
  const graph::GraphEvaluation eval = trainer.evaluate(eval_set.head(s.eval));
  const double eval_s =
      static_cast<double>(obs::monotonic_ns() - eval_t0) * 1e-9;
  return {eval.accuracy(), train_s, eval_s};
}

void body(const Config& args) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 3));
  const GraphScale s = graph_scale(args);

  print_header("layer-graph stacks (DESIGN.md §6)",
               "deep SNN front-ends (conv/pool + stacked STDP blocks) extend "
               "the single-layer WTA trainer to spatial and temporal "
               "workloads");

  SyntheticConfig synth;
  synth.train_count = s.train;
  synth.test_count = s.label + s.eval;
  synth.seed = 7;
  const LabeledDataset digits = make_synthetic_digits(synth);

  // Single-layer baseline: the one-layer graph instance of the same base.
  const auto [single_acc, single_train_s, single_eval_s] =
      run_digits(graph::single_wta_graph(graph_base(seed)), digits, s);

  // Stacked: DoG conv → 2×2 pool → WTA over the pooled spike planes.
  graph::GraphConfig stacked = graph::graph_config_from_spec(
      "conv:filters=6,kernel=7,stride=2;pool:window=2;wta:neurons=100",
      graph_base(seed));
  const auto [stacked_acc, stacked_train_s, stacked_eval_s] =
      run_digits(stacked, digits, s);

  // Temporal gestures: direction classification needs oriented filters over
  // ON/OFF temporal-difference planes — the workload the front-end exists
  // for. (A single-layer static-rate model is at chance here: every frame
  // is "a bar somewhere"; only the change pattern carries the class.)
  GestureConfig gc;
  gc.train_count = s.gesture_train;
  gc.test_count = s.gesture_label + s.gesture_eval;
  const GestureDataset gestures = make_temporal_gestures(gc);

  graph::GraphConfig gesture_cfg = graph::graph_config_from_spec(
      "encode:temporal=diff;"
      "conv:filters=6,kernel=7,stride=3,bank=gabor;wta:neurons=100",
      graph_base(seed));
  graph::NetworkGraph gesture_net(gesture_cfg);
  graph::GraphTrainerConfig gtc;
  gtc.frame_ms = 20.0;
  graph::GraphTrainer gesture_trainer(gesture_net, gtc);
  const std::uint64_t gesture_t0 = obs::monotonic_ns();
  gesture_trainer.train(gestures.train);
  const double gesture_train_s =
      static_cast<double>(obs::monotonic_ns() - gesture_t0) * 1e-9;
  const std::vector<GestureSequence> label_set(
      gestures.test.begin(),
      gestures.test.begin() + static_cast<std::ptrdiff_t>(s.gesture_label));
  const std::vector<GestureSequence> eval_set(
      gestures.test.begin() + static_cast<std::ptrdiff_t>(s.gesture_label),
      gestures.test.end());
  gesture_trainer.label(label_set);
  const graph::GraphEvaluation gesture_eval =
      gesture_trainer.evaluate(eval_set);

  TablePrinter table({"config", "workload", "accuracy", "chance",
                      "train s", "eval ms/img"});
  const auto eval_ms = [](double seconds, std::size_t n) {
    return n == 0 ? 0.0 : seconds * 1000.0 / static_cast<double>(n);
  };
  table.add_row({"wta(100)", "digits", format_fixed(single_acc, 3), "0.100",
             format_fixed(single_train_s, 1),
             format_fixed(eval_ms(single_eval_s, s.eval), 1)});
  table.add_row({"conv6-pool2-wta100", "digits", format_fixed(stacked_acc, 3),
             "0.100", format_fixed(stacked_train_s, 1),
             format_fixed(eval_ms(stacked_eval_s, s.eval), 1)});
  table.add_row({"diff-gabor6-wta100", "gestures",
             format_fixed(gesture_eval.accuracy(), 3), "0.125",
             format_fixed(gesture_train_s, 1), "-"});
  table.print();

  record("graph.digits.single.accuracy", single_acc);
  record("graph.digits.single.train_seconds", single_train_s);
  record("graph.digits.stacked.accuracy", stacked_acc);
  record("graph.digits.stacked.train_seconds", stacked_train_s);
  record("graph.digits.stacked.eval_ms_per_image",
         eval_ms(stacked_eval_s, s.eval));
  record("graph.gestures.accuracy", gesture_eval.accuracy());
  record("graph.gestures.train_seconds", gesture_train_s);

  const std::string path = write_bench_record("graph");
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace pss::bench

int main(int argc, char** argv) {
  return pss::bench::bench_main(argc, argv, "graph", pss::bench::body);
}
