// Table I — parameters for the different learning options, printed from the
// registry (transcribed verbatim from the paper) together with the derived
// quantities each row implies (quantization step, effective G ceiling,
// presentation time). Acts as the configuration audit for every other bench.
#include "bench_common.hpp"
#include "pss/synapse/stdp_updater.hpp"

using namespace pss;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "table1_parameters", [](const Config&) {
    bench::print_header("Table I — parameters for different learning options",
                        "verbatim transcription; blank α/β cells mean "
                        "ΔG = 1/2^n at that precision");

    TablePrinter t({"option", "αP", "βP", "αD", "βD", "Gmax", "Gmin", "γpot",
                    "τpot", "γdep", "τdep", "f max", "f min"});
    for (const Table1Row& row : table1_rows()) {
      auto opt = [&](double StdpMagnitudeParams::*field) {
        return row.magnitude ? format_fixed((*row.magnitude).*field, 3) : "-";
      };
      t.add_row({row.name, opt(&StdpMagnitudeParams::alpha_p),
                 opt(&StdpMagnitudeParams::beta_p),
                 opt(&StdpMagnitudeParams::alpha_d),
                 opt(&StdpMagnitudeParams::beta_d),
                 opt(&StdpMagnitudeParams::g_max),
                 opt(&StdpMagnitudeParams::g_min),
                 format_fixed(row.gate.gamma_pot, 1),
                 format_fixed(row.gate.tau_pot, 0),
                 format_fixed(row.gate.gamma_dep, 1),
                 format_fixed(row.gate.tau_dep, 0),
                 format_fixed(row.f_input_max_hz, 0),
                 format_fixed(row.f_input_min_hz, 0)});
    }
    t.print();

    std::printf("\nderived per-row quantities:\n");
    TablePrinter d({"option", "format", "ΔG quantum", "G ceiling",
                    "t_learn (ms)"});
    for (const Table1Row& row : table1_rows()) {
      StdpUpdaterConfig cfg;
      cfg.kind = StdpKind::kStochastic;
      cfg.magnitude = row.magnitude.value_or(
          StdpMagnitudeParams{0.01, 3.0, 0.005, 3.0, 1.0, 0.0});
      cfg.gate = row.gate;
      cfg.format = row.format;
      const StdpUpdater updater(cfg);
      d.add_row({row.name, row.format ? row.format->name() : "fp32",
                 row.format && row.format->total_bits() <= 8
                     ? format_fixed(row.format->resolution(), 4)
                     : "eq.4-5 float",
                 format_fixed(updater.effective_g_max(), 4),
                 format_fixed(row.t_learn_ms, 0)});
    }
    d.print();
  });
}
