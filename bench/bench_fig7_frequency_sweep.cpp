// Fig. 7 — high-frequency learning:
//   (a) accuracy loss vs maximum input frequency for deterministic and
//       stochastic STDP: the deterministic rule degrades sharply above a
//       low f_max while stochastic STDP (short-term gates, Table I
//       high-frequency row) keeps a usable accuracy out to ~78 Hz;
//   (b) accuracy vs run-time: raising frequency cuts per-image presentation
//       time (frequency-control module) so the same accuracy level is
//       reached in a fraction of the wall-clock.
#include "bench_common.hpp"
#include "pss/experiment/sweep.hpp"
#include "pss/io/csv.hpp"

using namespace pss;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig7_frequency_sweep", [](const Config& args) {
    bench::Scale scale = bench::parse_scale(args);
    if (scale.name == "quick") scale.train_images = 250;  // 10 sweeps below
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const LabeledDataset mnist = bench::load_dataset("mnist", scale, 7);

    bench::print_header(
        "Fig. 7a — accuracy loss vs maximum input frequency",
        "deterministic STDP collapses beyond a low f_max; stochastic STDP "
        "with short-term gates extends the usable range to ~78 Hz");

    const std::vector<double> f_max_values = {22.0, 44.0, 66.0, 78.0, 120.0};
    CsvWriter csv(bench::out_dir() + "/fig7a_frequency_sweep.csv",
                  {"f_max_hz", "kind", "accuracy", "loss_vs_baseline"});

    TablePrinter t({"f_max (Hz)", "det acc (%)", "det loss (pp)",
                    "stoch acc (%)", "stoch loss (pp)"});
    std::vector<std::vector<SweepPoint>> curves;
    for (const StdpKind kind :
         {StdpKind::kDeterministic, StdpKind::kStochastic}) {
      // The stochastic branch uses the high-frequency row's short-term gate
      // parameters (higher tau_pot, lower tau_dep — Sec. IV-C); the
      // deterministic baseline has no such knob.
      ExperimentSpec base = bench::make_spec(
          scale, kind,
          kind == StdpKind::kStochastic ? LearningOption::kHighFrequency
                                        : LearningOption::kFloat32,
          seed);
      base.f_min_hz = 1.0;
      base.f_max_hz = 22.0;
      base.t_learn_ms = 500.0;
      curves.push_back(
          sweep_input_frequency(base, mnist, f_max_values, true));
    }
    for (std::size_t i = 0; i < f_max_values.size(); ++i) {
      const double det = curves[0][i].result.accuracy;
      const double sto = curves[1][i].result.accuracy;
      const double det0 = curves[0][0].result.accuracy;
      const double sto0 = curves[1][0].result.accuracy;
      t.add_row({format_fixed(f_max_values[i], 0), format_fixed(100 * det, 1),
                 format_fixed(100 * (det0 - det), 1),
                 format_fixed(100 * sto, 1),
                 format_fixed(100 * (sto0 - sto), 1)});
      csv.row({f_max_values[i], 0.0, det, det0 - det});
      csv.row({f_max_values[i], 1.0, sto, sto0 - sto});
    }
    t.print();

    bench::print_header(
        "Fig. 7b — accuracy vs run-time",
        "high-frequency learning reaches its final accuracy in a fraction "
        "of the baseline's wall-clock (paper: 542 min -> 131 min at full "
        "scale; the ratio, not the absolute time, is the reproduced shape)");

    TablePrinter rt({"mode", "t_learn/img (ms)", "train wall (s)",
                     "sim time (s bio)", "accuracy (%)"});
    CsvWriter rt_csv(bench::out_dir() + "/fig7b_runtime.csv",
                     {"mode", "wall_s", "accuracy"});
    for (const auto& [option, label] :
         {std::pair<LearningOption, const char*>{LearningOption::kFloat32,
                                                 "baseline 1-22Hz/500ms"},
          {LearningOption::kHighFrequency, "high-freq 5-78Hz/100ms"}}) {
      ExperimentSpec spec =
          bench::make_spec(scale, StdpKind::kStochastic, option, seed);
      const ExperimentResult r = run_learning_experiment(spec, mnist);
      rt.add_row({label,
                  format_fixed(spec.trainer_config().t_learn_ms, 0),
                  format_fixed(r.train_wall_seconds, 1),
                  format_fixed(r.simulated_learning_ms * 1e-3, 0),
                  format_fixed(100 * r.accuracy, 1)});
      rt_csv.row({option == LearningOption::kFloat32 ? 0.0 : 1.0,
                  r.train_wall_seconds, r.accuracy});
    }
    rt.print();
  });
}
