// Fig. 5 — conductance-map visualization:
//   (a) deterministic (baseline) vs stochastic STDP on MNIST and
//       Fashion-MNIST: on the complex set the baseline "learns the
//       overlapping features of all classes" (washed-out maps) while
//       stochastic STDP learns distinct patterns;
//   (b) effect of the input-frequency range on the stochastic maps: beyond
//       a limit the maps degrade toward chaos.
//
// Maps are written as tiled PGM sheets into out/, and the table quantifies
// map quality with the per-neuron quartile contrast plus accuracy.
#include "bench_common.hpp"
#include "pss/io/pgm.hpp"
#include "pss/learning/trainer.hpp"

using namespace pss;

namespace {

struct MapRun {
  std::string label;
  ExperimentResult result;
};

ExperimentResult run_and_dump_maps(const ExperimentSpec& spec,
                                   const LabeledDataset& data,
                                   const std::string& pgm_name) {
  // Re-run the training part manually so we can grab the network's maps.
  WtaNetwork net(spec.network_config());
  UnsupervisedTrainer trainer(net, spec.trainer_config());
  trainer.train(data.train.head(spec.train_images));
  const auto maps = conductance_maps(net, 25);
  write_pgm(bench::out_dir() + "/" + pgm_name, tile_images(maps, 5, 5));
  // Full protocol (fresh network, same seed -> same trajectory) for the
  // accuracy column.
  return run_learning_experiment(spec, data);
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig5_conductance_maps", [](const Config& args) {
    const bench::Scale scale = bench::parse_scale(args);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    bench::print_header(
        "Fig. 5a — conductance maps: baseline vs stochastic STDP",
        "both rules learn digit maps; on Fashion-MNIST the baseline washes "
        "out (low map contrast, low accuracy) while stochastic STDP keeps "
        "class-specific maps");

    const LabeledDataset mnist = bench::load_dataset("mnist", scale, 7);
    const LabeledDataset fashion =
        bench::load_dataset("fashion-mnist", scale, 7);

    std::vector<MapRun> runs;
    for (const auto& [data, dname] :
         {std::pair<const LabeledDataset&, std::string>{mnist, "mnist"},
          {fashion, "fashion"}}) {
      for (const StdpKind kind :
           {StdpKind::kDeterministic, StdpKind::kStochastic}) {
        ExperimentSpec spec =
            bench::make_spec(scale, kind, LearningOption::kFloat32, seed);
        spec.name = dname + " " + stdp_kind_name(kind);
        const std::string pgm = "fig5a_" + dname + "_" +
                                stdp_kind_name(kind) + ".pgm";
        runs.push_back({spec.name, run_and_dump_maps(spec, data, pgm)});
      }
    }

    TablePrinter t({"dataset / rule", "accuracy (%)", "map contrast",
                    "G at bottom", "G at top"});
    for (const auto& r : runs) {
      t.add_row({r.label, format_fixed(100.0 * r.result.accuracy, 1),
                 format_fixed(r.result.conductance_contrast, 3),
                 format_fixed(r.result.bottom_fraction, 2),
                 format_fixed(r.result.top_fraction, 2)});
    }
    t.print();
    std::printf("\nmap sheets written to out/fig5a_*.pgm (25 neurons each)\n");

    bench::print_header(
        "Fig. 5b — stochastic maps vs input spike-train frequency",
        "maps stay clean over a wide f_max range and degrade toward chaotic "
        "state beyond it");

    TablePrinter fb({"f_max (Hz)", "accuracy (%)", "map contrast"});
    for (const double f_max : {22.0, 44.0, 78.0, 140.0}) {
      ExperimentSpec spec = bench::make_spec(scale, StdpKind::kStochastic,
                                             LearningOption::kHighFrequency,
                                             seed);
      spec.f_max_hz = f_max;
      spec.f_min_hz = std::max(1.0, f_max * 5.0 / 78.0);
      spec.t_learn_ms = std::max(40.0, 500.0 * 22.0 / f_max);
      spec.train_images = scale.train_images;
      spec.name = "f_max=" + format_fixed(f_max, 0);
      const std::string pgm =
          "fig5b_fmax" + format_fixed(f_max, 0) + ".pgm";
      const ExperimentResult r = run_and_dump_maps(spec, mnist, pgm);
      fb.add_row({format_fixed(f_max, 0), format_fixed(100.0 * r.accuracy, 1),
                  format_fixed(r.conductance_contrast, 3)});
    }
    fb.print();
    std::printf("\nmap sheets written to out/fig5b_*.pgm\n");
  });
}
