// Batched presentation engine — dispatch-overhead and image-parallel scaling
// measurements behind the launch-fusion / minibatch work (cf. the paper's
// Sec. IV performance analysis; image-level parallelism after Saunders et
// al. 2019).
//
// Sections:
//   1. per-step launch accounting: the fused step must need at most one
//      engine launch per simulated step (three unfused), and with the grain
//      cutoff the common small-network path issues zero pool dispatches;
//   2. fused vs unfused presentation timing, with a bitwise identity check;
//   3. labelling + evaluation, sequential vs BatchRunner at 1/2/4 workers,
//      identity-checked against the sequential confusion matrix;
//   4. minibatch STDP training vs per-image training.
//
// Results land in out/BENCH_batch_runner.json for sweep scripts — published
// through the shared metrics registry (pss.metrics.v1, "bench.*" gauges), the
// same schema every other bench emits.
// Arguments: neurons=50 images=40 t_ms=200 workers=1,2,4 seed=9 scale=...
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pss/engine/batch_runner.hpp"
#include "pss/learning/classifier.hpp"
#include "pss/learning/labeler.hpp"
#include "pss/learning/trainer.hpp"

using namespace pss;

namespace {

std::vector<std::size_t> parse_workers(const Config& args) {
  std::stringstream ss(args.get_string("workers", "1,2,4"));
  std::vector<std::size_t> workers;
  for (std::string item; std::getline(ss, item, ',');) {
    workers.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return workers;
}

WtaConfig bench_config(std::size_t neurons, std::uint64_t seed, bool fused,
                       const std::string& backend) {
  WtaConfig cfg = WtaConfig::from_table1(LearningOption::kFloat32,
                                         StdpKind::kStochastic, neurons);
  cfg.seed = seed;
  cfg.fused_step = fused;
  cfg.backend = backend;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "batch_runner", [](const Config& args) {
    bench::print_header(
        "Batched presentation engine — launch overhead & image parallelism",
        "fused stepping cuts per-step kernel launches 3x; independent "
        "presentations scale across cores with bitwise-identical results");

    const std::size_t neurons =
        static_cast<std::size_t>(args.get_int("neurons", 50));
    const std::size_t images =
        static_cast<std::size_t>(args.get_int("images", 40));
    const TimeMs t_ms = args.get_double("t_ms", 200.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 9));
    const std::vector<std::size_t> worker_counts = parse_workers(args);
    // Compute backend for every network in the sweep (backend=cpu|cpu_simd).
    const std::string backend = args.get_string("backend", "cpu");

    const LabeledDataset data =
        bench::load_dataset("mnist", bench::Scale{}, seed);
    const PixelFrequencyMap map(1.0, 22.0);
    std::vector<double> rates(kImagePixels);
    map.frequencies(data.train[0].pixels, rates);
    const std::size_t steps = static_cast<std::size_t>(t_ms / kDefaultDtMs);

    // ---- 1. launch accounting per presentation --------------------------
    std::printf("\n[1] engine launches per %.0f ms presentation (%zu steps)\n",
                t_ms, steps);
    TablePrinter launches(
        {"path", "launches", "dispatches", "launch/step", "dispatch/step"});
    struct Accounting {
      const char* name;
      bool fused;
      std::size_t grain;
    };
    double fused_launch_per_step = 0.0;
    double fused_dispatch_per_step = 0.0;
    for (const Accounting& acc :
         {Accounting{"fused + grain cutoff", true, Engine::kDefaultGrain},
          Accounting{"fused, forced dispatch", true, 0},
          Accounting{"unfused + grain cutoff", false, Engine::kDefaultGrain}}) {
      Engine engine(2);
      engine.set_grain(acc.grain);
      WtaNetwork net(bench_config(neurons, seed, acc.fused, backend), &engine);
      net.present(rates, t_ms, true);
      const double per_step =
          static_cast<double>(engine.launch_count()) / static_cast<double>(steps);
      const double disp_per_step =
          static_cast<double>(engine.dispatch_count()) /
          static_cast<double>(steps);
      launches.add_row({acc.name, std::to_string(engine.launch_count()),
                        std::to_string(engine.dispatch_count()),
                        format_fixed(per_step, 2),
                        format_fixed(disp_per_step, 2)});
      if (acc.fused && acc.grain != 0) {
        fused_launch_per_step = per_step;
        fused_dispatch_per_step = disp_per_step;
      }
    }
    launches.print();
    std::printf("common path: %.2f dispatches/step (claim: <= 1)\n",
                fused_dispatch_per_step);

    // ---- 2. fused vs unfused timing + identity --------------------------
    std::printf("\n[2] fused vs unfused stepping (%zu learning images)\n",
                images);
    double fused_s = 0.0;
    double unfused_s = 0.0;
    std::vector<double> g_fused;
    std::vector<double> g_unfused;
    for (bool fused : {true, false}) {
      WtaNetwork net(bench_config(neurons, seed, fused, backend));
      UnsupervisedTrainer trainer(net, TrainerConfig{1.0, 22.0, t_ms});
      const TrainingStats stats = trainer.train(data.train.head(images));
      (fused ? fused_s : unfused_s) = stats.wall_seconds;
      (fused ? g_fused : g_unfused) = net.conductance().to_vector();
    }
    const bool fused_identical = g_fused == g_unfused;
    TablePrinter fusion({"path", "seconds", "speedup", "identical"});
    fusion.add_row({"unfused", format_fixed(unfused_s, 3), "1.00", "-"});
    fusion.add_row({"fused", format_fixed(fused_s, 3),
                    format_fixed(unfused_s / fused_s, 2),
                    fused_identical ? "yes" : "NO"});
    fusion.print();

    // ---- 3. batched labelling + evaluation ------------------------------
    std::printf("\n[3] labelling + evaluation, %zu + %zu images\n", images,
                images);
    WtaNetwork trained(bench_config(neurons, seed, true, backend));
    {
      UnsupervisedTrainer trainer(trained, TrainerConfig{1.0, 22.0, t_ms});
      trainer.train(data.train.head(images));
    }
    const auto [label_full, eval_full] = data.labelling_split(100);
    const Dataset label_set = label_full.head(images);
    const Dataset eval_set = eval_full.head(images);

    Engine serial(1);
    WtaNetwork seq_net = trained.replicate(&serial);
    bench::RecordedTimer seq_clock("batch_runner.sequential_label_eval");
    const LabelingResult seq_labels =
        label_neurons(seq_net, label_set, map, t_ms);
    SnnClassifier seq_classifier(seq_net, seq_labels.neuron_labels,
                                 seq_labels.class_count, map, t_ms);
    const EvaluationResult seq_eval = seq_classifier.evaluate(eval_set);
    const double sequential_s = seq_clock.stop();

    TablePrinter scaling(
        {"workers", "seconds", "speedup", "accuracy", "identical"});
    scaling.add_row({"sequential", format_fixed(sequential_s, 3), "1.00",
                     format_fixed(seq_eval.accuracy, 3), "-"});
    std::vector<std::pair<std::size_t, double>> batched_timings;
    for (std::size_t w : worker_counts) {
      BatchRunner runner(w);
      WtaNetwork net = trained.replicate(&serial);
      bench::RecordedTimer clock("batch_runner.label_eval.w" +
                                 std::to_string(w));
      const LabelingResult labels =
          label_neurons(net, label_set, map, t_ms, runner);
      SnnClassifier classifier(net, labels.neuron_labels, labels.class_count,
                               map, t_ms);
      const EvaluationResult eval = classifier.evaluate(eval_set, runner);
      const double batched_s = clock.stop();
      batched_timings.emplace_back(w, batched_s);
      const bool identical =
          labels.neuron_labels == seq_labels.neuron_labels &&
          eval.confusion.to_string() == seq_eval.confusion.to_string();
      scaling.add_row({std::to_string(runner.worker_count()),
                       format_fixed(batched_s, 3),
                       format_fixed(sequential_s / batched_s, 2),
                       format_fixed(eval.accuracy, 3),
                       identical ? "yes" : "NO"});
    }
    scaling.print();

    // ---- 4. minibatch STDP training -------------------------------------
    std::printf("\n[4] training, per-image vs minibatch STDP (batch=8)\n");
    TablePrinter training({"schedule", "workers", "seconds", "speedup"});
    double per_image_s = 0.0;
    {
      WtaNetwork net(bench_config(neurons, seed, true, backend));
      UnsupervisedTrainer trainer(net, TrainerConfig{1.0, 22.0, t_ms});
      per_image_s = trainer.train(data.train.head(images)).wall_seconds;
      training.add_row(
          {"per-image", "1", format_fixed(per_image_s, 3), "1.00"});
    }
    std::vector<std::pair<std::size_t, double>> minibatch_timings;
    for (std::size_t w : worker_counts) {
      TrainerConfig tc{1.0, 22.0, t_ms};
      tc.batch_size = 8;
      WtaNetwork net(bench_config(neurons, seed, true, backend));
      UnsupervisedTrainer trainer(net, tc);
      BatchRunner runner(w);
      const double s =
          trainer.train(data.train.head(images), runner).wall_seconds;
      minibatch_timings.emplace_back(w, s);
      training.add_row({"minibatch", std::to_string(runner.worker_count()),
                        format_fixed(s, 3), format_fixed(per_image_s / s, 2)});
    }
    training.print();

    // ---- JSON record (shared pss.metrics.v1 schema) ---------------------
    bench::record("batch_runner.neurons", static_cast<double>(neurons));
    bench::record("batch_runner.images", static_cast<double>(images));
    bench::record("batch_runner.t_ms", t_ms);
    bench::record("batch_runner.fused_launches_per_step",
                  fused_launch_per_step);
    bench::record("batch_runner.fused_dispatches_per_step",
                  fused_dispatch_per_step);
    bench::record("batch_runner.fused_identical",
                  fused_identical ? 1.0 : 0.0);
    bench::record("batch_runner.unfused_train_s", unfused_s);
    bench::record("batch_runner.fused_train_s", fused_s);
    bench::record("batch_runner.per_image_train_s", per_image_s);
    // (label_eval.w<N>.seconds gauges were recorded by the RecordedTimers.)
    for (const auto& [w, s_] : minibatch_timings) {
      bench::record("batch_runner.minibatch_train.w" + std::to_string(w) +
                        ".seconds",
                    s_);
    }
    const std::string json_path = bench::write_bench_record("batch_runner");
    std::printf("\nwrote %s\n", json_path.c_str());
  });
}
