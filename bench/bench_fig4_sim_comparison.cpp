// Fig. 4 — spiking-activity accuracy and simulation performance:
// "an SNN of 10^3 LIF neurons and 10^4 synapses ... our platform is able to
//  produce spiking activities similar to CARLsim. However, we observe an
//  increased simulation time in ParallelSpikeSim due to the use of more
//  complex unified data structures."
//
// Three simulators run the same random recurrent network under identical
// Poisson drive: the pss engine with LIF, the pss engine with Izhikevich,
// and the CARLsim-style baseline (Izhikevich + COBA + delay queues). We
// report per-neuron rate statistics, the rate-profile correlation between
// simulators, and wall-clock steps/second.
#include "bench_common.hpp"
#include "pss/baseline/izhi_network.hpp"
#include "pss/io/csv.hpp"
#include "pss/network/simulation.hpp"
#include "pss/stats/spiketrain.hpp"
#include "pss/stats/summary.hpp"

using namespace pss;

namespace {

std::vector<double> to_rates(const std::vector<std::uint32_t>& spikes,
                             double duration_ms) {
  std::vector<double> rates(spikes.size());
  for (std::size_t i = 0; i < spikes.size(); ++i) {
    rates[i] = spikes[i] / (duration_ms * 1e-3);
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig4_sim_comparison", [](const Config& args) {
    bench::print_header(
        "Fig. 4 — spiking activity & simulation performance comparison",
        "equivalent spiking activity across simulators; ParallelSpikeSim "
        "somewhat slower per step than the leaner CARLsim-style baseline");

    const std::size_t neurons =
        static_cast<std::size_t>(args.get_int("neurons", 1000));
    const double duration = args.get_double("duration_ms", 2000.0);
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 99));

    // 10^4 synapses over 10^3 neurons -> p = 0.01 (scaled with population).
    const double p = 10.0 / static_cast<double>(neurons);
    SequentialRng wiring(seed);
    const auto connections = connect_random(
        neurons, neurons, p,
        [](NeuronIndex, NeuronIndex) { return 0.8; }, wiring);
    std::printf("network: %zu neurons, %zu synapses, %.0f ms biological\n\n",
                neurons, connections.size(), duration);

    ActivityConfig drive;
    drive.duration_ms = duration;
    drive.input_rate_hz = 50.0;
    drive.input_amplitude = 14.0;
    drive.seed = seed;

    const auto lif = run_lif_activity(neurons, paper_lif_parameters(),
                                      connections, drive);
    const auto izh = run_izhikevich_activity(
        neurons, izhikevich_regular_spiking(), connections, drive);

    // CARLsim-style reference, in CUBA mode so a connection weight means
    // the same thing (injected current) as in the pss runs, and with the
    // same drive seed so all three simulators see identical Poisson trains.
    BaselineConfig carl_cfg;
    carl_cfg.conductance_based = false;
    carl_cfg.seed = seed;
    BaselineNetwork carl(carl_cfg);
    const int group =
        carl.add_group("exc", neurons, izhikevich_regular_spiking());
    carl.connect(group, group, connections);
    carl.set_poisson_drive(group, drive.input_rate_hz, drive.input_amplitude);
    const auto base = carl.run(duration);

    TablePrinter t({"simulator", "total spikes", "mean rate (Hz)",
                    "steps/s (wall)", "ms bio / s wall"});
    auto add = [&](const char* name, const ActivityResult& r) {
      t.add_row({name, std::to_string(r.total_spikes),
                 format_fixed(r.mean_rate_hz, 2),
                 format_fixed(r.steps_per_second, 0),
                 format_fixed(duration / std::max(1e-9, r.wall_seconds) / 1e3,
                              1)});
    };
    add("ParallelSpikeSim LIF", lif);
    add("ParallelSpikeSim Izhikevich", izh);
    add("CARLsim-style baseline", base);
    t.print();

    // Activity equivalence: identical model + identical drive -> the
    // per-neuron rate profiles of the pss Izhikevich run and the baseline
    // should correlate strongly (they differ only in synapse formalism).
    const auto rate_izh = to_rates(izh.per_neuron_spikes, duration);
    const auto rate_base = to_rates(base.per_neuron_spikes, duration);
    const auto rate_lif = to_rates(lif.per_neuron_spikes, duration);
    std::printf("\nper-neuron rate correlation (pss Izhikevich vs baseline): %.3f\n",
                pearson_correlation(rate_izh, rate_base));
    std::printf("per-neuron rate correlation (pss LIF vs baseline):        %.3f\n",
                pearson_correlation(rate_lif, rate_base));

    const SummaryStats s_lif = summarize(rate_lif);
    const SummaryStats s_base = summarize(rate_base);
    std::printf("rate distribution  pss LIF: mean %.2f sd %.2f | baseline: "
                "mean %.2f sd %.2f (Hz)\n",
                s_lif.mean, s_lif.stddev, s_base.mean, s_base.stddev);

    // Per-train fine structure: ISI irregularity of the population and the
    // van Rossum distance between the two Izhikevich implementations on the
    // most active neuron (same model + same drive -> small distance relative
    // to a shuffled-pair control).
    auto times_of = [](const ActivityResult& r, NeuronIndex n) {
      std::vector<TimeMs> out;
      for (const auto& [spike_t, j] : r.raster) {
        if (j == n) out.push_back(spike_t);
      }
      return out;
    };
    const auto busiest = static_cast<NeuronIndex>(
        std::max_element(izh.per_neuron_spikes.begin(),
                         izh.per_neuron_spikes.end()) -
        izh.per_neuron_spikes.begin());
    const auto train_izh = times_of(izh, busiest);
    const auto train_base = times_of(base, busiest);
    const auto train_other = times_of(base, static_cast<NeuronIndex>((busiest + 1) % neurons));
    if (train_izh.size() > 2 && train_base.size() > 2) {
      const IsiStats cv_izh = isi_statistics(train_izh);
      std::printf("busiest neuron ISI: mean %.1f ms, CV %.2f (Poisson-like "
                  "irregular firing)\n",
                  cv_izh.mean_ms, cv_izh.cv);
      const double d_same = van_rossum_distance(train_izh, train_base, 20.0);
      const double d_ctrl = van_rossum_distance(train_izh, train_other, 20.0);
      std::printf("van Rossum distance (tau 20 ms): same neuron across "
                  "simulators %.2f vs different-neuron control %.2f\n",
                  d_same, d_ctrl);
    }

    CsvWriter csv(bench::out_dir() + "/fig4_rates.csv",
                  {"neuron", "lif_hz", "izhikevich_hz", "baseline_hz"});
    for (std::size_t i = 0; i < neurons; ++i) {
      csv.row({static_cast<double>(i), rate_lif[i], rate_izh[i], rate_base[i]});
    }
  });
}
